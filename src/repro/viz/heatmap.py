"""SVG heatmaps of congestion / demand grids.

Renders a :class:`~repro.congestion.model.CongestionMap` (or any cell
grid) as a colour-graded SVG, optionally overlaying routed trees — the
classic global-router congestion picture. For negotiated runs,
:func:`overuse_heatmap_svg` renders a :class:`~repro.congestion.model.
CapacityGrid`'s utilisation with overused cells outlined — the picture
``repro negotiate --heatmap-svg`` writes per scenario.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..congestion.model import CapacityGrid, CongestionMap
from ..routing.embedding import embed_tree
from ..routing.tree import RoutingTree


def _heat_color(value: float) -> str:
    """White → yellow → red ramp for ``value`` in [0, 1]."""
    v = min(max(value, 0.0), 1.0)
    if v < 0.5:
        # white (255,255,255) -> yellow (255,220,80)
        t = v / 0.5
        g = round(255 - 35 * t)
        b = round(255 - 175 * t)
        return f"rgb(255,{g},{b})"
    # yellow -> red (214,39,40)
    t = (v - 0.5) / 0.5
    r = round(255 - 41 * t)
    g = round(220 - 181 * t)
    b = round(80 - 40 * t)
    return f"rgb({r},{g},{b})"


def congestion_heatmap_svg(
    cmap: CongestionMap,
    trees: Sequence[RoutingTree] = (),
    size: float = 480.0,
    title: str = "congestion",
    vmax: Optional[float] = None,
) -> str:
    """A standalone SVG heatmap of the map's weights with tree overlays.

    ``vmax`` sets the saturation point of the colour ramp (defaults to the
    maximum cell weight).
    """
    nx, ny = cmap.nx, cmap.ny
    top = vmax if vmax is not None else max(
        (w for col in cmap.weights for w in col), default=1.0
    )
    top = max(top, 1e-12)
    margin = 28.0
    board = size - 2 * margin
    cell_px = board / max(nx, ny)

    span_x = nx * cmap.cell
    span_y = ny * cmap.cell

    def tx(x: float) -> float:
        return margin + (x - cmap.xlo) / span_x * (nx * cell_px)

    def ty(y: float) -> float:
        return size - margin - (y - cmap.ylo) / span_y * (ny * cell_px)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size:.0f}" '
        f'height="{size:.0f}" viewBox="0 0 {size:.0f} {size:.0f}">'
        f'<rect width="100%" height="100%" fill="white"/>'
        f'<text x="{size / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13" font-family="sans-serif">{title} '
        f"(max {top:.1f})</text>"
    ]
    for ix in range(nx):
        for iy in range(ny):
            color = _heat_color(cmap.weights[ix][iy] / top)
            x = margin + ix * cell_px
            y = size - margin - (iy + 1) * cell_px
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_px:.1f}" '
                f'height="{cell_px:.1f}" fill="{color}" '
                f'stroke="#ddd" stroke-width="0.5"/>'
            )
    for tree in trees:
        for seg in embed_tree(tree):
            parts.append(
                f'<line x1="{tx(seg.a.x):.1f}" y1="{ty(seg.a.y):.1f}" '
                f'x2="{tx(seg.b.x):.1f}" y2="{ty(seg.b.y):.1f}" '
                f'stroke="#1f77b4" stroke-width="1.2" opacity="0.75"/>'
            )
    parts.append("</svg>")
    return "".join(parts)


def overuse_heatmap_svg(
    grid: CapacityGrid,
    trees: Sequence[RoutingTree] = (),
    size: float = 480.0,
    title: str = "overuse",
    vmax: Optional[float] = None,
) -> str:
    """A standalone SVG of a capacity grid's utilisation and overuse.

    Cell colour is demand/capacity through the heat ramp (``vmax``
    defaults to the peak utilisation, never below 1.0 so the ramp's red
    end always means "over capacity"); cells whose demand exceeds
    capacity are additionally outlined in black — the per-iteration
    congestion picture of a :class:`~repro.congestion.negotiate.
    NegotiatedRouter` run. Tree overlays mirror
    :func:`congestion_heatmap_svg`.
    """
    nx, ny = grid.nx, grid.ny
    utils = [
        [
            (
                float(grid.demand[ix, iy]) / float(grid.capacity[ix, iy])
                if float(grid.capacity[ix, iy]) > 0
                and float(grid.capacity[ix, iy]) != float("inf")
                else 0.0
            )
            for iy in range(ny)
        ]
        for ix in range(nx)
    ]
    top = vmax if vmax is not None else max(
        1.0, max((u for col in utils for u in col), default=1.0)
    )
    top = max(top, 1e-12)
    margin = 28.0
    board = size - 2 * margin
    cell_px = board / max(nx, ny)
    span_x = nx * grid.cell
    span_y = ny * grid.cell

    def tx(x: float) -> float:
        return margin + (x - grid.xlo) / span_x * (nx * cell_px)

    def ty(y: float) -> float:
        return size - margin - (y - grid.ylo) / span_y * (ny * cell_px)

    overused = grid.overused_cells()
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size:.0f}" '
        f'height="{size:.0f}" viewBox="0 0 {size:.0f} {size:.0f}">'
        f'<rect width="100%" height="100%" fill="white"/>'
        f'<text x="{size / 2:.0f}" y="16" text-anchor="middle" '
        f'font-size="13" font-family="sans-serif">{title} '
        f"(peak util {top:.2f}, {overused} overused)</text>"
    ]
    for ix in range(nx):
        for iy in range(ny):
            color = _heat_color(utils[ix][iy] / top)
            over = float(grid.demand[ix, iy]) > float(grid.capacity[ix, iy])
            stroke = "#000" if over else "#ddd"
            width = "1.5" if over else "0.5"
            x = margin + ix * cell_px
            y = size - margin - (iy + 1) * cell_px
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_px:.1f}" '
                f'height="{cell_px:.1f}" fill="{color}" '
                f'stroke="{stroke}" stroke-width="{width}"/>'
            )
    for tree in trees:
        for seg in embed_tree(tree):
            parts.append(
                f'<line x1="{tx(seg.a.x):.1f}" y1="{ty(seg.a.y):.1f}" '
                f'x2="{tx(seg.b.x):.1f}" y2="{ty(seg.b.y):.1f}" '
                f'stroke="#1f77b4" stroke-width="1.2" opacity="0.75"/>'
            )
    parts.append("</svg>")
    return "".join(parts)
