"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a bug. Each runs
in-process (importing the module and calling ``main``) with output
captured; the slowest two are trimmed via their own CLI knobs.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart.py").main()
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "all trees validated" in out

    def test_congestion_aware_routing(self, capsys):
        load_example("congestion_aware_routing.py").main()
        out = capsys.readouterr().out
        assert "congestion" in out
        assert "saved for free" in out

    def test_lut_workflow(self, capsys):
        load_example("lut_workflow.py").main()
        out = capsys.readouterr().out
        assert "verified exact" in out

    def test_global_router_topology_selection(self, capsys):
        load_example("global_router_topology_selection.py").main()
        out = capsys.readouterr().out
        assert "meets every budget" in out

    def test_design_flow_demo(self, capsys, tmp_path):
        load_example("design_flow_demo.py").main(str(tmp_path))
        out = capsys.readouterr().out
        assert "every budget met" in out
        assert (tmp_path / "demand_pareto.svg").exists()

    def test_policy_training_quick(self, capsys):
        load_example("policy_training.py").main(quick=True)
        out = capsys.readouterr().out
        assert "learned weights" in out

    def test_paper_figures(self, capsys, tmp_path):
        load_example("paper_figures.py").main(str(tmp_path))
        out = capsys.readouterr().out
        assert "all figures written" in out
        assert (tmp_path / "fig1_pareto_curves.svg").exists()
        assert (tmp_path / "fig4_gadget_0.svg").exists()

    def test_every_example_has_docstring_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith(
                ("#!/usr/bin/env python3", '"""')
            ), f"{path.name} missing shebang/docstring"
            assert "def main(" in source, f"{path.name} missing main()"
            assert '__name__ == "__main__"' in source, path.name
