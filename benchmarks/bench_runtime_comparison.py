"""Runtime comparison (Fig. 7 timing annotations).

Paper: with lookup tables PatLabor is ~1.35x faster than SALT on small
nets; on large nets PatLabor is ~11.6% slower than SALT (Pareto-set
merging) but far faster than YSD. Absolute Python numbers differ wildly
from the authors' C++, so the regenerated artefact reports the *ratios*;
the asserted shape is that warmed lookup tables make PatLabor's small-net
path competitive with SALT (within 2x either way) while delivering the
exact frontier.

Timed kernel: a warmed LUT lookup.
"""

import random
import time

from repro.baselines.salt import salt_sweep
from repro.baselines.ysd import ysd
from repro.eval.reporting import format_table
from repro.geometry.net import random_net
from repro.lut.table import LookupTable

from conftest import write_artifact

NUM_NETS = 40


def test_runtime_small_nets(benchmark):
    table = LookupTable.build(degrees=(4, 5))
    rng = random.Random(31)
    nets = [random_net(rng.choice((4, 5)), rng=rng) for _ in range(NUM_NETS)]
    for net in nets:
        table.lookup(net)  # warm the on-demand cache (full tables: no-op)

    timings = {}
    t0 = time.perf_counter()
    for net in nets:
        table.lookup(net)
    timings["PatLabor (LUT)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for net in nets:
        salt_sweep(net)
    timings["SALT (eps sweep)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    for net in nets:
        ysd(net)
    timings["YSD (weight sweep)"] = time.perf_counter() - t0

    base = timings["PatLabor (LUT)"]
    rows = [
        [name, f"{secs:.3f}s", f"{secs / base:.2f}x"]
        for name, secs in timings.items()
    ]
    table_txt = format_table(
        ["method", f"time ({NUM_NETS} nets)", "vs PatLabor"],
        rows,
        title="Runtime — small nets (paper: PatLabor 1.35x faster than SALT)",
    )
    write_artifact("runtime_small.txt", table_txt)

    # The LUT path must be faster than both sweeps (it answers exactly
    # from precomputed topologies).
    assert timings["PatLabor (LUT)"] < timings["SALT (eps sweep)"]
    assert timings["PatLabor (LUT)"] < timings["YSD (weight sweep)"]

    net = nets[0]
    benchmark(lambda: table.lookup(net))
