"""Unit tests for the D4 grid symmetries."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.transforms import (
    ALL_TRANSFORMS,
    IDENTITY,
    GridTransform,
    canonical_pattern,
    transform_pattern,
)


class TestGroupStructure:
    def test_eight_distinct_elements(self):
        assert len(ALL_TRANSFORMS) == 8
        assert len(set(ALL_TRANSFORMS)) == 8

    def test_identity(self):
        assert IDENTITY.apply_node((2, 3), 5, 5) == (2, 3)
        assert IDENTITY.name == "I"

    def test_names_unique(self):
        assert len({t.name for t in ALL_TRANSFORMS}) == 8

    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_inverse_roundtrip_square(self, t):
        n = 5
        inv = t.inverse(n, n)
        for node in [(0, 0), (4, 0), (2, 3), (4, 4), (1, 2)]:
            assert inv.apply_node(t.apply_node(node, n, n), n, n) == node

    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_inverse_roundtrip_rectangular(self, t):
        nx, ny = 3, 6
        onx, ony = t.out_shape(nx, ny)
        inv = t.inverse(nx, ny)
        for node in itertools.product(range(nx), range(ny)):
            out = t.apply_node(node, nx, ny)
            assert 0 <= out[0] < onx and 0 <= out[1] < ony
            assert inv.apply_node(out, onx, ony) == node

    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_bijective_on_grid(self, t):
        nx, ny = 4, 4
        images = {
            t.apply_node(node, nx, ny)
            for node in itertools.product(range(nx), range(ny))
        }
        assert len(images) == nx * ny


class TestGapMapping:
    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_gaps_consistent_with_nodes(self, t):
        """Distances computed via transformed gaps match node mapping."""
        rng = random.Random(9)
        nx, ny = 4, 5
        gx = [rng.uniform(1, 10) for _ in range(nx - 1)]
        gy = [rng.uniform(1, 10) for _ in range(ny - 1)]
        ngx, ngy = t.apply_gaps(gx, gy)

        def coord(gaps, i):
            return sum(gaps[:i])

        for a in itertools.product(range(nx), range(ny)):
            for b in itertools.product(range(nx), range(ny)):
                da = abs(coord(gx, a[0]) - coord(gx, b[0])) + abs(
                    coord(gy, a[1]) - coord(gy, b[1])
                )
                ta = t.apply_node(a, nx, ny)
                tb = t.apply_node(b, nx, ny)
                db = abs(coord(ngx, ta[0]) - coord(ngx, tb[0])) + abs(
                    coord(ngy, ta[1]) - coord(ngy, tb[1])
                )
                assert abs(da - db) < 1e-9

    def test_param_vector_form(self):
        t = GridTransform(swap=True, flip_x=False, flip_y=False)
        vec = (1.0, 2.0, 10.0, 20.0, 30.0)  # nx=3 (2 x-gaps), ny=4 (3 y-gaps)
        out = t.apply_param_vector(vec, 3, 4)
        assert out == (10.0, 20.0, 30.0, 1.0, 2.0)


class TestPatterns:
    def test_transform_pattern_identity(self):
        perm, src = (2, 0, 1), 1
        assert transform_pattern(perm, src, IDENTITY) == (perm, src)

    def test_transform_pattern_is_permutation(self):
        for t in ALL_TRANSFORMS:
            perm, src = transform_pattern((2, 0, 3, 1), 2, t)
            assert sorted(perm) == [0, 1, 2, 3]
            assert 0 <= src < 4

    def test_canonical_is_orbit_minimum(self):
        perm, src = (3, 1, 0, 2), 1
        cperm, csrc, t = canonical_pattern(perm, src)
        orbit = [transform_pattern(perm, src, u) for u in ALL_TRANSFORMS]
        assert (cperm, csrc) == min(orbit)
        assert transform_pattern(perm, src, t) == (cperm, csrc)

    def test_canonical_is_idempotent(self):
        perm, src = (3, 1, 0, 2), 1
        cperm, csrc, _ = canonical_pattern(perm, src)
        c2perm, c2src, _ = canonical_pattern(cperm, csrc)
        assert (cperm, csrc) == (c2perm, c2src)

    @settings(max_examples=50, deadline=None)
    @given(st.permutations(range(5)), st.integers(0, 4))
    def test_orbit_members_share_canonical(self, perm, src):
        perm = tuple(perm)
        cano = canonical_pattern(perm, src)[:2]
        for t in ALL_TRANSFORMS:
            tp, ts = transform_pattern(perm, src, t)
            assert canonical_pattern(tp, ts)[:2] == cano


class TestPointAction:
    def test_point_inverse_round_trips_all_eight(self):
        from repro.geometry.transforms import ALL_TRANSFORMS

        for t in ALL_TRANSFORMS:
            inv = t.point_inverse()
            for x, y in ((3.5, -2.0), (0.0, 7.25), (-1.5, -4.0)):
                assert inv.apply_point(*t.apply_point(x, y)) == (x, y)
                assert t.apply_point(*inv.apply_point(x, y)) == (x, y)

    def test_apply_point_preserves_l1_norm(self):
        from repro.geometry.transforms import ALL_TRANSFORMS

        for t in ALL_TRANSFORMS:
            for x, y in ((3.0, 4.0), (-2.5, 1.0)):
                u, v = t.apply_point(x, y)
                assert abs(u) + abs(v) == abs(x) + abs(y)

    def test_apply_point_matches_group_structure(self):
        from repro.geometry.transforms import GridTransform

        t = GridTransform(swap=True, flip_x=True, flip_y=False)
        # swap first, then negate x: (2, 5) -> (5, 2) -> (-5, 2)
        assert t.apply_point(2.0, 5.0) == (-5.0, 2.0)
