"""Docstring lint: every module under ``src/repro/`` must open with one.

Usage::

    python -m tools.check_docstrings [root] [--strict PATH ...]

Walks ``root`` (default ``src/repro``), parses each ``.py`` file, and
exits 1 listing every module whose AST has no module docstring. Each
``--strict`` path — a package directory or a single module file — is
held to a higher bar: every *public* top-level function, class, and
public method there must carry a docstring too (the observability API
in ``src/repro/obs`` and the frontier kernel modules are checked this
way in CI).
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import List, Tuple


def modules_missing_docstrings(root: Path) -> List[Path]:
    """Paths under ``root`` whose modules lack a docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if not ast.get_docstring(tree):
            missing.append(path)
    return missing


def _public_defs(tree: ast.Module):
    """Yield (qualname, node) for public defs: top-level functions,
    classes, and the public methods of public classes."""
    defs = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    for node in tree.body:
        if not isinstance(node, defs) or node.name.startswith("_"):
            continue
        yield node.name, node
        if isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, defs[:2]) and not sub.name.startswith("_"):
                    yield f"{node.name}.{sub.name}", sub


def _py_files(root: Path) -> List[Path]:
    """``root`` itself if it is a module file, else its ``.py`` tree."""
    return [root] if root.is_file() else sorted(root.rglob("*.py"))


def definitions_missing_docstrings(root: Path) -> List[Tuple[Path, int, str]]:
    """Public definitions under ``root`` lacking docstrings, as
    ``(path, lineno, qualified name)`` triples. ``root`` may be a
    package directory or a single ``.py`` file."""
    missing = []
    for path in _py_files(root):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for qualname, node in _public_defs(tree):
            if not ast.get_docstring(node):
                missing.append((path, node.lineno, qualname))
    return missing


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="check_docstrings", description=__doc__.splitlines()[0]
    )
    parser.add_argument("root", nargs="?", default="src/repro",
                        help="tree whose modules must have docstrings")
    parser.add_argument(
        "--strict", action="append", default=[], metavar="PATH",
        help="tree whose public functions/classes/methods must have "
             "docstrings too (repeatable)",
    )
    args = parser.parse_args(argv[1:])

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    failed = False

    missing = modules_missing_docstrings(root)
    if missing:
        failed = True
        print(f"{len(missing)} module(s) missing a module docstring:")
        for path in missing:
            print(f"  {path}")
    else:
        print(f"docstring lint ok: every module under {root} has a docstring")

    for strict in args.strict:
        strict_root = Path(strict)
        if not (strict_root.is_dir()
                or (strict_root.is_file() and strict_root.suffix == ".py")):
            print(f"error: {strict_root} is not a directory or .py module",
                  file=sys.stderr)
            return 2
        undocumented = definitions_missing_docstrings(strict_root)
        if undocumented:
            failed = True
            print(f"{len(undocumented)} public definition(s) under "
                  f"{strict_root} missing docstrings:")
            for path, lineno, qualname in undocumented:
                print(f"  {path}:{lineno}  {qualname}")
        else:
            print(f"strict lint ok: every public definition under "
                  f"{strict_root} is documented")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
