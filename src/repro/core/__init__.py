"""The paper's core: Pareto algebra, exact/approximate algorithms, PatLabor."""

from .batch import BatchResult, route_batch
from .cache import CachedRouter, translation_key
from .frontier import (
    assert_sorted_front,
    cross_merge_sorted,
    cross_sorted,
    is_sorted_front,
    merge_shifted,
    merge_sorted_fronts,
    pareto_filter_sorted,
    shift_sorted,
)
from .pareto import (
    Solution,
    attains_frontier,
    count_on_frontier,
    cross,
    dominates,
    epsilon_indicator,
    hypervolume,
    is_pareto_front,
    merge_fronts,
    objectives,
    pareto_filter,
    shift,
    weakly_dominates,
)
from .pareto_dw import DWStats, pareto_dw, pareto_frontier
from .pareto_ks import pareto_ks
from .patlabor import PatLabor, PatLaborConfig, reassemble
from .policy import (
    DEFAULT_PARAMS,
    PolicyParams,
    SelectionPolicy,
    pin_features,
    train_policy,
)

__all__ = [
    "BatchResult",
    "CachedRouter",
    "DEFAULT_PARAMS",
    "DWStats",
    "PatLabor",
    "PatLaborConfig",
    "PolicyParams",
    "SelectionPolicy",
    "Solution",
    "assert_sorted_front",
    "attains_frontier",
    "count_on_frontier",
    "cross",
    "cross_merge_sorted",
    "cross_sorted",
    "dominates",
    "epsilon_indicator",
    "hypervolume",
    "is_pareto_front",
    "is_sorted_front",
    "merge_fronts",
    "merge_shifted",
    "merge_sorted_fronts",
    "objectives",
    "pareto_dw",
    "pareto_filter",
    "pareto_filter_sorted",
    "pareto_frontier",
    "pareto_ks",
    "pin_features",
    "reassemble",
    "route_batch",
    "shift",
    "shift_sorted",
    "train_policy",
    "translation_key",
    "weakly_dominates",
]
