"""Cross-module integration tests: full pipelines end to end."""

import random

import pytest

from repro.core.pareto import count_on_frontier, dominates, weakly_dominates
from repro.core.pareto_dw import pareto_dw
from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.eval.benchmarks import Iccad15LikeSuite
from repro.eval.metrics import average_curves, table3, table4
from repro.eval.runner import compare_on_nets, default_methods, fig7_normalizers
from repro.geometry.net import random_net
from repro.io.lut_io import load_lut, save_lut
from repro.lut.table import LookupTable


class TestPaperClaimsPipeline:
    """The paper's headline claims, asserted at reduced scale."""

    @pytest.fixture(scope="class")
    def comparison(self):
        suite = Iccad15LikeSuite(seed=11)
        nets = [
            n
            for g in suite.small_nets(degrees=(4, 5, 6), per_degree=6).values()
            for n in g
        ]
        return compare_on_nets(nets)

    def test_patlabor_always_optimal(self, comparison):
        t3 = table3(comparison)
        assert all(r.ratios["PatLabor"] == 0.0 for r in t3)

    def test_patlabor_finds_every_frontier_point(self, comparison):
        t4 = table4(comparison)
        for r in t4:
            assert r.found["PatLabor"] == r.frontier_total

    def test_baselines_become_nonoptimal_with_degree(self, comparison):
        """The paper's trend: YSD/SALT miss more as degree grows."""
        t4 = table4(comparison)
        ratios = [
            (r.degree, r.found["YSD"] / r.frontier_total) for r in t4
        ]
        assert ratios[0][1] >= ratios[-1][1] - 1e-9

    def test_patlabor_curve_tightest(self, comparison):
        nets_by_name = {}
        suite = Iccad15LikeSuite(seed=11)
        nets = [
            n
            for g in suite.small_nets(degrees=(4, 5, 6), per_degree=6).values()
            for n in g
        ]
        norm = fig7_normalizers(nets)
        curves = average_curves(comparison, norm.w_refs, norm.d_refs)
        by_name = {c.method: c for c in curves}
        ours = by_name["PatLabor"]
        for other in ("SALT", "YSD"):
            theirs = by_name[other]
            # PatLabor's averaged curve is never above a baseline's by
            # more than float slack at any budget.
            assert all(
                a <= b + 1e-9
                for a, b in zip(ours.mean_delay, theirs.mean_delay)
            )


class TestLutPipeline:
    def test_build_save_load_route(self, tmp_path, assert_fronts_equal):
        table = LookupTable.build(degrees=(4,))
        path = tmp_path / "t.json"
        save_lut(table, path)
        router = PatLabor(lut=load_lut(path))
        rng = random.Random(13)
        for _ in range(5):
            net = random_net(4, rng=rng)
            assert_fronts_equal(
                router.route(net), pareto_dw(net, with_trees=False)
            )

    def test_lut_speedup_after_warmup(self):
        """Cached pattern lookups must beat recomputation by a wide margin."""
        import time

        table = LookupTable.build(degrees=(4,))
        rng = random.Random(14)
        nets = [random_net(4, rng=rng) for _ in range(20)]
        for net in nets:
            table.lookup(net)  # warm (all patterns already present: full table)
        t0 = time.perf_counter()
        for net in nets:
            table.lookup(net)
        lut_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        for net in nets:
            pareto_dw(net)
        dw_time = time.perf_counter() - t0
        assert lut_time < dw_time


class TestLargeNetPipeline:
    def test_patlabor_vs_all_baselines_on_large_net(self):
        from repro.baselines.salt import salt_sweep
        from repro.baselines.ysd import ysd

        net = random_net(35, rng=random.Random(15))
        ours = PatLabor(config=PatLaborConfig(seed=1)).route(net)
        for sols in (salt_sweep(net), ysd(net, weights=(0.0, 0.5, 1.0))):
            for w, d, _t in sols:
                # No baseline point strictly dominates our whole front.
                assert not all(
                    dominates((w, d), (ow, od)) for ow, od, _ in ours
                )

    def test_mixed_degree_workload(self):
        """Route a realistic mixed workload end to end."""
        suite = Iccad15LikeSuite(seed=16)
        router = PatLabor()
        nets = list(suite.all_small(per_degree=2)) + suite.large_nets(count=3)
        for net in nets:
            front = router.route(net)
            assert front
            for w, d, tree in front:
                tree.validate()
