"""Visualisation: SVG and ASCII rendering of trees and Pareto curves."""

from .ascii_art import front_summary, pareto_ascii, tree_ascii
from .heatmap import congestion_heatmap_svg, overuse_heatmap_svg
from .svg import pareto_curve_svg, save_svg, tree_svg

__all__ = [
    "congestion_heatmap_svg",
    "front_summary",
    "overuse_heatmap_svg",
    "pareto_ascii",
    "pareto_curve_svg",
    "save_svg",
    "tree_ascii",
    "tree_svg",
]
