"""Fig. 6 — maximum Pareto frontier size vs net degree, with linear fit.

Paper result: on 9e5 ICCAD-15 nets the per-degree *maximum* frontier size
grows ≈ 2.85·n − 10.9 (max 16 at n = 9). Reproduced on the synthetic
suite at reduced sample counts — maxima over fewer samples land lower,
but the growth must stay roughly linear (and absurdly far below the 2^n
worst case of Theorem 1).

Timed kernel: exact frontier of one degree-8 suite net.
"""

from repro.analysis.frontier_stats import fig6_experiment
from repro.core.pareto_dw import pareto_frontier
from repro.eval.reporting import render_fig6

from conftest import write_artifact


def test_fig6_frontier_sizes(benchmark, small_nets):
    nets = [n for n in small_nets if n.degree <= 8]
    result = fig6_experiment(nets)
    write_artifact("fig6_frontier_size.txt", render_fig6(result))

    per_degree = {s.degree: s for s in result.per_degree}
    # Shape: max frontier size grows with degree overall...
    assert per_degree[8].max_size >= per_degree[4].max_size
    # ...at a linear-ish rate: far below the exponential worst case.
    for n, s in per_degree.items():
        assert s.max_size <= 4 * n
    # The fitted slope is positive (paper: 2.85).
    assert result.slope > 0

    net8 = next(n for n in nets if n.degree == 8)
    benchmark(lambda: pareto_frontier(net8))
