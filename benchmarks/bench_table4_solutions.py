"""Table IV — total Pareto-frontier solutions found per method, n <= 9.

Paper: PatLabor finds all 1,126,519 frontier solutions (ratio 1.000);
YSD reaches 0.898, SALT 0.893, with the gap widening as degree grows
(58.5% more solutions than baselines at n = 9). Required shape here:
PatLabor ratio exactly 1.0, baselines strictly below, gap growing.

Timed kernel: counting frontier matches for one comparison row.
"""

from repro.eval.metrics import table4
from repro.eval.reporting import render_table4

from conftest import write_artifact


def test_table4_solutions_found(benchmark, small_comparisons):
    rows = table4(small_comparisons)
    write_artifact("table4_solutions.txt", render_table4(rows))

    total_frontier = sum(r.frontier_total for r in rows)
    total = {
        m: sum(r.found[m] for r in rows) for m in rows[0].found
    }
    # PatLabor attains every frontier point.
    assert total["PatLabor"] == total_frontier
    # Baselines miss a meaningful share.
    assert total["SALT"] < total_frontier
    assert total["YSD"] < total_frontier

    # The relative advantage grows with degree (compare small vs large).
    def found_ratio(r, m):
        return r.found[m] / r.frontier_total

    low = [r for r in rows if r.degree <= 5]
    high = [r for r in rows if r.degree >= 7]
    for m in ("SALT", "YSD"):
        ratio_low = sum(found_ratio(r, m) for r in low) / len(low)
        ratio_high = sum(found_ratio(r, m) for r in high) / len(high)
        assert ratio_high <= ratio_low + 0.05

    row = small_comparisons[0]
    benchmark(lambda: row.found_count("SALT"))
