"""Lookup tables for small-degree nets: symbolic generation, storage, lookup."""

from .cluster import TopologyPool
from .default import default_router, default_table
from .generator import (
    PatternSolutions,
    count_canonical_patterns,
    enumerate_canonical_patterns,
    generate_degree,
    generate_degree_parallel,
    solve_pattern,
)
from .symbolic import (
    SymbolicSolution,
    merge_solutions,
    prune_front,
    shift_solution,
    symbolic_dominates,
)
from .table import DegreeStats, LookupTable, net_pattern

__all__ = [
    "DegreeStats",
    "LookupTable",
    "PatternSolutions",
    "SymbolicSolution",
    "TopologyPool",
    "count_canonical_patterns",
    "default_router",
    "default_table",
    "enumerate_canonical_patterns",
    "generate_degree",
    "generate_degree_parallel",
    "merge_solutions",
    "net_pattern",
    "prune_front",
    "shift_solution",
    "solve_pattern",
    "symbolic_dominates",
]
