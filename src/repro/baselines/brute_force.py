"""Brute-force Pareto oracle for tiny nets (test reference, degree <= 4).

Enumerates *every* candidate routing tree on the Hanan grid:

* choose up to ``n - 2`` extra Steiner nodes among the non-pin grid nodes
  (a rectilinear tree over ``n`` terminals never needs more branch points),
* enumerate every labelled spanning tree of the chosen node set via
  Prüfer sequences,
* evaluate ``(w, d)`` of each and Pareto-filter.

This is exponential twice over and only intended as an independent ground
truth against which Pareto-DW is verified; it shares no code with the DP.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import List, Tuple

from ..exceptions import DegreeTooLargeError
from ..geometry.hanan import HananGrid
from ..geometry.net import Net
from ..geometry.point import Point, l1
from ..core.frontier import merge_sorted_fronts, pareto_filter_sorted

MAX_ORACLE_DEGREE = 4


def _prufer_trees(k: int):
    """Yield parent-edge lists of all labelled trees on ``k`` nodes."""
    if k == 1:
        yield []
        return
    if k == 2:
        yield [(0, 1)]
        return
    for seq in product(range(k), repeat=k - 2):
        degree = [1] * k
        for s in seq:
            degree[s] += 1
        edges: List[Tuple[int, int]] = []
        ptr = 0
        leaf = -1
        # Standard linear-time Prüfer decode.
        deg = list(degree)
        import heapq

        leaves = [i for i in range(k) if deg[i] == 1]
        heapq.heapify(leaves)
        for s in seq:
            lf = heapq.heappop(leaves)
            edges.append((lf, s))
            deg[s] -= 1
            if deg[s] == 1:
                heapq.heappush(leaves, s)
        u = heapq.heappop(leaves)
        v = heapq.heappop(leaves)
        edges.append((u, v))
        yield edges


def brute_force_frontier(net: Net) -> List[Tuple[float, float]]:
    """The exact ``(w, d)`` Pareto frontier by exhaustive enumeration."""
    n = net.degree
    if n > MAX_ORACLE_DEGREE:
        raise DegreeTooLargeError(n, MAX_ORACLE_DEGREE)
    grid = HananGrid.of_net(net)
    pins = list(net.pins)
    pin_set = {(p.x, p.y) for p in pins}
    candidates = [
        grid.point(node)
        for node in grid.nodes()
        if (grid.point(node).x, grid.point(node).y) not in pin_set
    ]
    max_extra = max(0, n - 2)
    front: List[Tuple[float, float, None]] = []
    for extra_count in range(max_extra + 1):
        batch: List[Tuple[float, float, None]] = []
        for extras in combinations(candidates, extra_count):
            nodes: List[Point] = pins + list(extras)
            k = len(nodes)
            # Precompute the distance matrix once per node set.
            dmat = [[l1(a, b) for b in nodes] for a in nodes]
            for edges in _prufer_trees(k):
                w = 0.0
                adj: List[List[int]] = [[] for _ in range(k)]
                for a, b in edges:
                    w += dmat[a][b]
                    adj[a].append(b)
                    adj[b].append(a)
                # BFS path lengths from the source (node 0).
                dist = [-1.0] * k
                dist[0] = 0.0
                stack = [0]
                while stack:
                    u = stack.pop()
                    for v2 in adj[u]:
                        if dist[v2] < 0:
                            dist[v2] = dist[u] + dmat[u][v2]
                            stack.append(v2)
                d = max(dist[1:n])
                batch.append((w, d, None))
        # The running front stays sorted; each Steiner-count batch is
        # filtered once and unioned linearly instead of re-sorting the
        # whole accumulation.
        front = merge_sorted_fronts(front, pareto_filter_sorted(batch))
    return [(w, d) for w, d, _ in front]
