"""Incremental ECO re-routing vs cold full re-routes.

Not a paper artefact: this benchmark quantifies what the PR-10
incremental engine (:mod:`repro.incremental`) buys on delta traffic —
the placer-iteration pattern where a design of N nets absorbs a stream
of one-pin edits and each edit invalidates exactly one net.

The same 200-edit stream is costed two ways:

* **warm** — one :class:`~repro.incremental.engine.IncrementalRouter`
  holds per-net sessions (cache short-circuits, retained Dreyfus–Wagner
  subset fronts, warm local-search seeds) and re-routes only the edited
  net per delta.
* **cold** — the full re-route model: a fresh engine (empty caches)
  routes the *entire* design again, which is what a non-incremental
  flow pays per edit. Cold runs are timed on a sample of the stream
  (:data:`COLD_SAMPLES` of :data:`DELTAS`) and extrapolated; on every
  sampled edit the warm front is asserted **bit-identical** (trees
  included) to the cold front whenever the edit landed on an exact tier
  — equal quality is checked, not assumed.

Emits

* ``results/eco.txt`` — the warm/cold table, reuse and speedup,
* ``results/BENCH_eco.json`` — obs counters plus the workload config,
* ``results/ledger.jsonl`` — one appended ``eco`` run record carrying
  ``eco.speedup_rate`` / ``eco.reuse_rate`` / ``eco.warm_mean_ms`` for
  ``repro obs check`` against the committed baseline.

Asserted shape: warm-path speedup **>= 10x** over the full re-route
model, positive DW mask reuse, and bit-identical sampled fronts.
"""

import json
import random
import time

from repro import obs
from repro.engine import EngineSpec, build_engine
from repro.geometry.net import Net
from repro.incremental import EXACT_TIERS, apply_delta, perturb_nets

from conftest import RESULTS_DIR, write_artifact

NETS = 30           # design size (the cold model re-routes all of them)
DELTAS = 200        # one-pin edits in the stream
COLD_SAMPLES = 10   # edits whose cold re-route is actually timed
MIN_SPEEDUP = 10.0  # gate: warm path must beat full re-routes by this
SPAN = 1000.0

#: Shared coordinate lattice the design's pins are drawn from. Pins that
#: share grid lines make signature-preserving moves common, so the DW
#: warm path has retained subset fronts to reuse (random off-grid pins
#: almost always drop a Hanan line and force a full recompute).
LATTICE = [SPAN * i / 7.0 for i in range(8)]


def _design():
    """30 uniquely-named degree-7..9 nets on the shared lattice (DW tier)."""
    rng = random.Random(2028)
    nets = []
    for i in range(NETS):
        degree = 7 + i % 3
        pts = set()
        while len(pts) < degree:
            pts.add((rng.choice(LATTICE), rng.choice(LATTICE)))
        ordered = sorted(pts)
        rng.shuffle(ordered)
        nets.append(Net.from_points(ordered[0], ordered[1:], name=f"d{i:03d}"))
    return nets


def _cold_engine():
    """A fresh engine with empty caches (the full re-route model)."""
    return build_engine(EngineSpec(router="patlabor", cache="symmetry"))


def test_eco_speedup_vs_full_reroute():
    obs.reset()
    obs.enable()
    try:
        nets = _design()
        deltas = perturb_nets(nets, seed=2029, kind="move", count=DELTAS)
        sampled = set(random.Random(2030).sample(range(DELTAS), COLD_SAMPLES))

        engine = build_engine(
            EngineSpec(router="patlabor", cache="symmetry", incremental=True)
        )
        for net in nets:
            engine.route(net)

        current = {net.name: net for net in nets}
        warm_seconds = 0.0
        reused = 0
        total_masks = 0
        tiers = {}
        cold_samples = []
        exact_checked = 0
        for index, delta in enumerate(deltas):
            result = engine.apply_delta(delta)
            warm_seconds += result.wall_s
            reused += result.reused_masks
            total_masks += result.total_masks
            tiers[result.tier] = tiers.get(result.tier, 0) + 1
            current[delta.net] = apply_delta(current[delta.net], delta)
            if index not in sampled:
                continue
            # Cold model: route the whole edited design from scratch.
            cold = _cold_engine()
            t0 = time.perf_counter()
            cold_fronts = {
                name: cold.route(net) for name, net in current.items()
            }
            cold_samples.append(time.perf_counter() - t0)
            if result.tier in EXACT_TIERS:
                exact_checked += 1
                assert result.front == cold_fronts[delta.net], (
                    f"edit #{index} ({delta!r}) via tier {result.tier} "
                    f"diverged from the cold re-route"
                )

        cold_mean = sum(cold_samples) / len(cold_samples)
        cold_seconds = cold_mean * DELTAS  # extrapolated full-stream cost
        speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
        reuse_rate = reused / total_masks if total_masks else 0.0
        warm_mean_ms = warm_seconds / DELTAS * 1e3

        assert exact_checked > 0, "no sampled edit landed on an exact tier"
        assert reuse_rate > 0.0, "DW warm path never reused a subset front"
        assert speedup >= MIN_SPEEDUP, (
            f"eco speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x gate "
            f"(cold {cold_seconds:.2f}s vs warm {warm_seconds:.2f}s)"
        )

        rows = [
            f"{'model':<26}{'seconds':>10}{'per edit':>12}",
            "-" * 48,
            f"{'full re-route (est.)':<26}{cold_seconds:>10.2f}"
            f"{cold_mean * 1e3:>10.1f}ms",
            f"{'incremental (warm)':<26}{warm_seconds:>10.2f}"
            f"{warm_mean_ms:>10.2f}ms",
            f"\nspeedup: {speedup:.1f}x over {DELTAS} one-pin edits on "
            f"{NETS} nets ({COLD_SAMPLES} cold runs sampled)",
            f"dw mask reuse: {reused}/{total_masks} ({reuse_rate:.1%})  "
            f"tiers: {dict(sorted(tiers.items()))}",
            f"bit-identical sampled fronts: {exact_checked}/{exact_checked}",
        ]
        write_artifact("eco.txt", "\n".join(rows))

        path = obs.write_bench_json(
            "eco",
            directory=RESULTS_DIR,
            extra={
                "workload": {
                    "nets": NETS,
                    "deltas": DELTAS,
                    "cold_samples": COLD_SAMPLES,
                },
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "speedup": speedup,
                "reuse_rate": reuse_rate,
                "tiers": tiers,
            },
        )
        payload = json.loads(path.read_text())
        assert payload["speedup"] >= MIN_SPEEDUP
        print(f"\n[metrics written to {path}]")

        record = obs.make_record(
            {
                "eco.speedup_rate": speedup,
                "eco.reuse_rate": reuse_rate,
                "eco.warm_mean_ms": warm_mean_ms,
                "eco.deltas": float(DELTAS),
            },
            name="eco",
            config={
                "nets": NETS,
                "deltas": DELTAS,
                "cold_samples": COLD_SAMPLES,
            },
        )
        ledger_path = obs.append_record(record, RESULTS_DIR / "ledger.jsonl")
        print(f"[run {record['run_id']} appended to {ledger_path}]")
    finally:
        obs.disable()
        obs.reset()
