"""Tests for the statistics toolkit."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.stats import Summary, bootstrap_ci, mean_with_ci, summarize

values = st.lists(
    st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=50
)


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_sample(self):
        s = summarize([5.0] * 10)
        assert s.std == 0.0
        assert s.mean == s.median == 5.0

    @given(values)
    def test_bounds_hold(self, xs):
        s = summarize(xs)
        tol = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
        assert s.minimum <= s.median <= s.maximum
        assert s.minimum - tol <= s.mean <= s.maximum + tol
        assert s.std >= 0


class TestBootstrap:
    def test_interval_contains_mean_for_stable_sample(self):
        rng = random.Random(1)
        xs = [rng.gauss(10.0, 1.0) for _ in range(100)]
        lo, hi = bootstrap_ci(xs, seed=2)
        mean = sum(xs) / len(xs)
        assert lo <= mean <= hi
        assert hi - lo < 1.0  # tight for n=100, sigma=1

    def test_deterministic_for_seed(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(xs, seed=7) == bootstrap_ci(xs, seed=7)

    def test_constant_sample_degenerate_interval(self):
        lo, hi = bootstrap_ci([4.0] * 20)
        assert lo == hi == 4.0

    def test_custom_statistic(self):
        xs = [1.0, 2.0, 100.0]
        lo, hi = bootstrap_ci(xs, statistic=lambda s: max(s), seed=1)
        assert hi == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_wider_confidence_wider_interval(self):
        rng = random.Random(3)
        xs = [rng.uniform(0, 10) for _ in range(30)]
        lo95, hi95 = bootstrap_ci(xs, confidence=0.95, seed=4)
        lo50, hi50 = bootstrap_ci(xs, confidence=0.50, seed=4)
        assert (hi95 - lo95) >= (hi50 - lo50) - 1e-12


class TestMeanWithCi:
    def test_format(self):
        out = mean_with_ci([1.0, 2.0, 3.0])
        assert out.startswith("2 [") or out.startswith("2.0 [")
        assert "]" in out
