"""Unit tests for the net model."""

import math
import random

import pytest

from repro.exceptions import InvalidNetError
from repro.geometry.net import Net, random_net
from repro.geometry.point import Point, l1


class TestConstruction:
    def test_basic(self, square_net):
        assert square_net.degree == 4
        assert square_net.source == Point(0, 0)
        assert len(square_net.sinks) == 3

    def test_from_points_coerces_floats(self):
        net = Net.from_points((0, 0), [(1, 2)])
        assert isinstance(net.source.x, float)

    def test_rejects_single_pin(self):
        with pytest.raises(InvalidNetError):
            Net.from_points((0, 0), [])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidNetError):
            Net.from_points((0, 0), [(1, 1), (1, 1)])

    def test_rejects_duplicate_of_source(self):
        with pytest.raises(InvalidNetError):
            Net.from_points((0, 0), [(0, 0)])

    def test_drop_duplicates_flag(self):
        net = Net.from_points((0, 0), [(1, 1), (1, 1), (0, 0)], drop_duplicates=True)
        assert net.degree == 2

    def test_rejects_nan(self):
        with pytest.raises(InvalidNetError):
            Net.from_points((0, 0), [(math.nan, 1)])

    def test_immutability(self, square_net):
        with pytest.raises(Exception):
            square_net.pins = ()


class TestDerived:
    def test_bbox(self, square_net):
        box = square_net.bbox()
        assert (box.xlo, box.ylo, box.xhi, box.yhi) == (0, 0, 10, 10)

    def test_star_wirelength(self, square_net):
        assert square_net.star_wirelength() == 10 + 20 + 10

    def test_delay_lower_bound(self, square_net):
        assert square_net.delay_lower_bound() == 20

    def test_key_is_hashable_and_name_free(self):
        a = Net.from_points((0, 0), [(1, 1)], name="a")
        b = Net.from_points((0, 0), [(1, 1)], name="b")
        assert a.key() == b.key()
        assert hash(a.key())

    def test_iter(self, square_net):
        assert list(square_net) == list(square_net.pins)


class TestTransformations:
    def test_translated(self, square_net):
        t = square_net.translated(5, -3)
        assert t.source == Point(5, -3)
        assert t.degree == square_net.degree
        # relative geometry preserved
        assert t.delay_lower_bound() == square_net.delay_lower_bound()

    def test_scaled(self, square_net):
        s = square_net.scaled(2.0)
        assert s.delay_lower_bound() == 2 * square_net.delay_lower_bound()

    def test_scaled_rejects_nonpositive(self, square_net):
        with pytest.raises(InvalidNetError):
            square_net.scaled(0.0)

    def test_with_source(self, square_net):
        r = square_net.with_source(2)
        assert r.source == square_net.pins[2]
        assert set(r.pins) == set(square_net.pins)

    def test_with_source_out_of_range(self, square_net):
        with pytest.raises(InvalidNetError):
            square_net.with_source(99)


class TestRandomNet:
    def test_degree_and_distinctness(self):
        rng = random.Random(1)
        net = random_net(15, rng=rng)
        assert net.degree == 15
        assert len(set(net.pins)) == 15

    def test_deterministic_for_seed(self):
        a = random_net(8, rng=random.Random(7))
        b = random_net(8, rng=random.Random(7))
        assert a.key() == b.key()

    def test_grid_snapping(self):
        net = random_net(10, rng=random.Random(3), grid=5, span=100)
        allowed = {round(k * 100 / 4, 6) for k in range(5)}
        for p in net.pins:
            assert p.x in allowed and p.y in allowed

    def test_rejects_degree_below_two(self):
        with pytest.raises(InvalidNetError):
            random_net(1)

    def test_span_respected(self):
        net = random_net(20, rng=random.Random(5), span=50.0)
        for p in net.pins:
            assert 0 <= p.x <= 50 and 0 <= p.y <= 50
