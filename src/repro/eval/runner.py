"""Experiment runner: route nets with every method and collect comparisons.

The single entry point :func:`compare_on_nets` runs a configurable set of
methods (PatLabor, SALT, the YSD substitute, PD-II, Pareto-KS) on a net
collection, times them, computes the exact frontier where feasible, and
returns :class:`~repro.eval.metrics.NetComparison` rows that the table /
figure builders consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..baselines.rsma import rsma
from ..baselines.rsmt import rsmt
from ..core.pareto import Solution
from ..core.pareto_dw import pareto_dw
from ..core.patlabor import PatLabor
from ..engine import create_router, router_entry
from ..geometry.net import Net
from ..obs import (
    emit_event,
    enabled as _obs_enabled,
    events_enabled as _events_enabled,
    peak_rss_kb,
    span,
    timer_observe,
)
from .metrics import NetComparison

MethodFn = Callable[[Net], List[Solution]]


def default_methods(
    patlabor: Optional[PatLabor] = None,
    include: Sequence[str] = ("PatLabor", "SALT", "YSD"),
) -> Dict[str, MethodFn]:
    """The paper's method lineup (Fig. 7 compares the default three; PD
    and Pareto-KS are available for the extended comparisons).

    Every name in ``include`` is resolved through the
    :mod:`repro.engine` registry (case/separator-insensitively), so any
    registered router — not just the paper's lineup — can join a
    comparison. The returned dict is keyed by each router's canonical
    display name. A pre-configured ``patlabor`` instance, when given,
    replaces the registry-built one.
    """
    methods: Dict[str, MethodFn] = {}
    for name in include:
        entry = router_entry(name)
        if entry.name == "patlabor" and patlabor is not None:
            methods[entry.display_name] = patlabor.route
        else:
            methods[entry.display_name] = create_router(name).route
    return methods


def compare_on_net(
    net: Net,
    methods: Dict[str, MethodFn],
    exact_frontier: Optional[List[Solution]] = None,
    compute_exact: bool = True,
) -> NetComparison:
    """Run every method on one net (plus the exact frontier if wanted).

    While profiling, per-net wall times land in the ``eval.net_seconds``
    timer (percentiles in the exported snapshot) and each method gets its
    own ``eval.method_seconds.<name>`` timer. With event logging on, one
    ``eval_net`` event records the net, degree, per-method runtimes, and
    peak RSS.
    """
    results: Dict[str, List[Solution]] = {}
    runtimes: Dict[str, float] = {}
    profiling = _obs_enabled()
    with span("eval.compare_on_net"):
        net_t0 = time.perf_counter()
        for name, fn in methods.items():
            t0 = time.perf_counter()
            results[name] = fn(net)
            runtimes[name] = time.perf_counter() - t0
            if profiling:
                timer_observe(f"eval.method_seconds.{name}", runtimes[name])
        if exact_frontier is None and compute_exact:
            with span("eval.exact_frontier"):
                exact_frontier = pareto_dw(net, with_trees=False)
        if profiling:
            timer_observe("eval.net_seconds", time.perf_counter() - net_t0)
        if _events_enabled():
            emit_event(
                "eval_net",
                net=net.name or f"net_{id(net):x}",
                degree=net.degree,
                runtimes=dict(runtimes),
                wall_s=time.perf_counter() - net_t0,
                peak_rss_kb=peak_rss_kb(),
            )
    return NetComparison(
        net_name=net.name or f"net_{id(net):x}",
        degree=net.degree,
        frontier=list(exact_frontier or []),
        methods=results,
        runtimes=runtimes,
    )


def compare_on_nets(
    nets: Iterable[Net],
    methods: Optional[Dict[str, MethodFn]] = None,
    compute_exact: bool = True,
) -> List[NetComparison]:
    """Run the lineup on many nets."""
    methods = methods or default_methods()
    return [
        compare_on_net(net, methods, compute_exact=compute_exact)
        for net in nets
    ]


@dataclass
class Normalizers:
    """Per-net Fig. 7 normalisation references."""

    w_refs: Dict[str, float]
    d_refs: Dict[str, float]


def fig7_normalizers(nets: Sequence[Net]) -> Normalizers:
    """``w(FLUTE)`` and ``d(CL)`` per net (the green / purple circles)."""
    w_refs: Dict[str, float] = {}
    d_refs: Dict[str, float] = {}
    for net in nets:
        name = net.name or f"net_{id(net):x}"
        w_refs[name] = rsmt(net).wirelength()
        d_refs[name] = rsma(net).delay()
    return Normalizers(w_refs=w_refs, d_refs=d_refs)
