"""Tests for the evaluation harness: suite, metrics, runner, reporting."""

import random

import pytest

from repro.core.pareto_dw import pareto_dw
from repro.eval.benchmarks import (
    DESIGN_NAMES,
    ICCAD15_DEGREE_COUNTS,
    Iccad15LikeSuite,
    SyntheticDesign,
    synth_net,
)
from repro.eval.metrics import (
    NetComparison,
    average_curves,
    curve_dominates,
    table3,
    table4,
)
from repro.eval.reporting import (
    format_table,
    render_curves,
    render_fig6,
    render_markdown_table,
    render_table3,
    render_table4,
)
from repro.eval.runner import (
    compare_on_net,
    compare_on_nets,
    default_methods,
    fig7_normalizers,
)


class TestSuite:
    def test_eight_designs(self, suite):
        assert len(suite.designs) == 8
        assert {d.name for d in suite.designs} == set(DESIGN_NAMES)

    def test_counts_proportional(self, suite):
        assert suite.counts_for(4) == round(ICCAD15_DEGREE_COUNTS[4] * suite.scale)
        assert suite.counts_for(99) == 0

    def test_small_nets_degrees(self, suite):
        by_deg = suite.small_nets(degrees=(4, 6), per_degree=8)
        assert set(by_deg) == {4, 6}
        assert all(n.degree == 4 for n in by_deg[4])
        assert len(by_deg[4]) == 8

    def test_deterministic(self):
        a = Iccad15LikeSuite(seed=1).small_nets(degrees=(5,), per_degree=4)[5]
        b = Iccad15LikeSuite(seed=1).small_nets(degrees=(5,), per_degree=4)[5]
        assert [n.key() for n in a] == [n.key() for n in b]

    def test_seed_changes_nets(self):
        a = Iccad15LikeSuite(seed=1).small_nets(degrees=(5,), per_degree=4)[5]
        b = Iccad15LikeSuite(seed=2).small_nets(degrees=(5,), per_degree=4)[5]
        assert [n.key() for n in a] != [n.key() for n in b]

    def test_large_nets_degree_range(self, suite):
        nets = suite.large_nets(count=10, min_degree=10, max_degree=30)
        assert len(nets) == 10
        assert all(10 <= n.degree <= 30 for n in nets)

    def test_degree100(self, suite):
        nets = suite.degree100_nets(count=3)
        assert all(n.degree == 100 for n in nets)

    def test_synth_net_styles(self):
        rng = random.Random(0)
        for style in ("clustered2", "clustered3", "smoothed", "uniform"):
            net = synth_net(7, rng, style=style)
            assert net.degree == 7


class TestMetrics:
    def _rows(self):
        frontier = [(10.0, 30.0, None), (20.0, 20.0, None)]
        return [
            NetComparison(
                net_name="a",
                degree=5,
                frontier=frontier,
                methods={
                    "good": [(10.0, 30.0, None)],
                    "bad": [(15.0, 40.0, None)],
                },
                runtimes={"good": 0.1, "bad": 0.2},
            ),
            NetComparison(
                net_name="b",
                degree=5,
                frontier=[(5.0, 5.0, None)],
                methods={
                    "good": [(5.0, 5.0, None)],
                    "bad": [(5.0, 5.0, None)],
                },
                runtimes={"good": 0.1, "bad": 0.2},
            ),
        ]

    def test_optimal_and_found(self):
        rows = self._rows()
        assert rows[0].optimal("good") and not rows[0].optimal("bad")
        assert rows[0].found_count("good") == 1

    def test_table3(self):
        t3 = table3(self._rows())
        assert len(t3) == 1
        assert t3[0].ratios["good"] == 0.0
        assert t3[0].ratios["bad"] == 0.5

    def test_table4(self):
        t4 = table4(self._rows())
        assert t4[0].frontier_total == 3
        assert t4[0].found == {"good": 2, "bad": 1}

    def test_average_curves(self):
        rows = self._rows()
        curves = average_curves(
            rows,
            w_refs={"a": 10.0, "b": 5.0},
            d_refs={"a": 10.0, "b": 5.0},
            budgets=[1.0, 2.0, 3.0],
        )
        assert {c.method for c in curves} == {"good", "bad"}
        good = next(c for c in curves if c.method == "good")
        assert len(good.mean_delay) == 3
        # Mean delay decreases (or stays) as the budget loosens.
        assert good.mean_delay[0] >= good.mean_delay[-1] - 1e-9

    def test_curve_dominates(self):
        from repro.eval.metrics import AveragedCurve

        a = AveragedCurve("a", [1, 2], [1.0, 0.9])
        b = AveragedCurve("b", [1, 2], [1.1, 0.9])
        assert curve_dominates(a, b)
        assert not curve_dominates(b, a)


class TestRunner:
    def test_compare_on_net(self):
        net = synth_net(5, random.Random(1))
        row = compare_on_net(net, default_methods())
        assert set(row.methods) == {"PatLabor", "SALT", "YSD"}
        assert row.frontier
        assert row.optimal("PatLabor")

    def test_method_selection(self):
        methods = default_methods(include=("SALT", "PD"))
        assert set(methods) == {"SALT", "PD"}

    def test_compare_without_exact(self):
        net = synth_net(12, random.Random(2))
        row = compare_on_net(net, default_methods(include=("SALT",)), compute_exact=False)
        assert row.frontier == []

    def test_normalizers(self):
        nets = [synth_net(6, random.Random(3), style="uniform")]
        norm = fig7_normalizers(nets)
        name = nets[0].name
        assert norm.w_refs[name] > 0
        assert abs(norm.d_refs[name] - nets[0].delay_lower_bound()) < 1e-6


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["33", "44"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_render_tables_smoke(self):
        rows = TestMetrics()._rows()
        assert "bad" in render_table3(table3(rows))
        assert "Total" in render_table4(table4(rows))

    def test_render_markdown(self):
        md = render_markdown_table(["x", "y"], [["1", "2"]])
        assert md.startswith("| x | y |")
        assert "---" in md

    def test_render_fig6(self):
        from repro.analysis.frontier_stats import fig6_experiment
        from repro.analysis.smoothed import smoothed_net

        rng = random.Random(7)
        nets = [smoothed_net(n, 8.0, rng) for n in (4, 4, 5, 5)]
        out = render_fig6(fig6_experiment(nets))
        assert "paper: y = 2.85x - 10.9" in out

    def test_render_curves(self):
        rows = TestMetrics()._rows()
        curves = average_curves(
            rows,
            w_refs={"a": 10.0, "b": 5.0},
            d_refs={"a": 10.0, "b": 5.0},
            budgets=[1.0, 1.5],
        )
        out = render_curves(curves)
        assert "total runtimes" in out
