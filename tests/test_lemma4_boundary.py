"""Dedicated tests for Lemma 4 (boundary-separator split pruning).

Random continuous nets rarely place *every* sink on the Hanan-grid
boundary, so the generic pruning-equivalence tests exercise Lemma 4 only
occasionally. These instances are built so the lemma always fires.
"""

import random

import pytest

from repro.core.pareto_dw import DWStats, pareto_frontier
from repro.geometry.net import Net


def ring_net(seed: int, n_side: int = 2) -> Net:
    """All pins on the boundary of their own bounding box (a 'ring')."""
    rng = random.Random(seed)
    span = 100.0
    pts = set()
    # Pins on each side of the square — every pin is on the Hanan
    # boundary because it carries an extreme coordinate.
    for _ in range(n_side):
        pts.add((rng.uniform(10, 90), 0.0))      # bottom
        pts.add((rng.uniform(10, 90), span))     # top
        pts.add((0.0, rng.uniform(10, 90)))      # left
        pts.add((span, rng.uniform(10, 90)))     # right
    pts = sorted(pts)
    return Net.from_points(pts[0], pts[1:], name=f"ring{seed}")


class TestLemma4:
    @pytest.mark.parametrize("seed", range(4))
    def test_boundary_instance_frontier_unchanged(self, seed, assert_fronts_equal):
        net = ring_net(seed)
        with_l4 = pareto_frontier(net, lemma4=True)
        without = pareto_frontier(net, lemma4=False)
        assert_fronts_equal(with_l4, without)

    def test_lemma4_actually_fires(self):
        net = ring_net(1)
        on, off = DWStats(), DWStats()
        pareto_frontier(net, lemma4=True, stats=on)
        pareto_frontier(net, lemma4=False, stats=off)
        assert on.splits_saved_lemma4 > 0
        assert on.merge_transitions < off.merge_transitions

    def test_collinear_all_boundary(self, assert_fronts_equal):
        pins = [(float(i * 3), 0.0) for i in range(9)]
        net = Net.from_points(pins[4], [p for p in pins if p != pins[4]])
        assert_fronts_equal(
            pareto_frontier(net, lemma4=True),
            pareto_frontier(net, lemma4=False),
        )

    def test_rectangle_corners(self, assert_fronts_equal):
        net = Net.from_points((0, 0), [(100, 0), (100, 80), (0, 80)])
        assert_fronts_equal(
            pareto_frontier(net, lemma4=True),
            pareto_frontier(net, lemma4=False),
        )

    def test_mixed_interior_disables_lemma(self):
        """One interior sink must disable the consecutive-split shortcut
        (boundary_rank returns None), falling back to full enumeration —
        and still be correct."""
        net = Net.from_points(
            (0, 0), [(100, 0), (100, 100), (0, 100), (37, 61)]
        )
        on = pareto_frontier(net, lemma4=True)
        off = pareto_frontier(net, lemma4=False)
        assert on == off


class TestLemma4LutGeneration:
    def test_symbolic_solver_boundary_pattern(self):
        """The identity permutation puts every pin on the pattern-grid
        diagonal — only the two extreme pins are on the boundary, so the
        lemma must not fire; a 'staircase around the edge' pattern places
        all pins on the boundary and must still be exact."""
        from repro.lut.generator import solve_pattern

        rng = random.Random(2)
        # Pattern with all pins on the pattern-grid boundary: rows/cols at
        # extremes: perm (0, 3, 1, 2)? Rows {0,3} are boundary; rows 1, 2
        # are interior unless the column is 0/3. Build one explicitly:
        # columns 0..3, rows (1, 0, 3, 2): pins (0,1),(1,0),(2,3),(3,2):
        # (0,1) col 0 -> boundary; (1,0) row 0 -> boundary;
        # (2,3) row 3 -> boundary; (3,2) col 3 -> boundary.
        perm = (1, 0, 3, 2)
        fast = solve_pattern(perm, 0, lemma4=True)
        full = solve_pattern(perm, 0, lemma4=False)
        for _ in range(10):
            gaps = [rng.uniform(0.5, 5.0) for _ in range(6)]
            def front(ps):
                vals = sorted(s.evaluate(gaps) for s in ps.solutions)
                out, bd = [], float("inf")
                for w, d in vals:
                    if d < bd - 1e-9:
                        out.append((round(w, 6), round(d, 6)))
                        bd = d
                return out
            assert front(fast) == front(full)
