"""Tests for the shipped default lookup table."""

import random

import pytest

from repro.core.pareto_dw import pareto_frontier
from repro.lut.default import DATA_FILE, default_router, default_table


class TestDefaultTable:
    def test_data_file_ships(self):
        assert DATA_FILE.exists(), "shipped LUT data missing from the package"

    def test_covers_degrees_4_to_6(self):
        table = default_table()
        assert table.degrees == [4, 5, 6]
        for n in (2, 3, 4, 5, 6):
            assert table.covers(n)

    def test_full_enumeration(self):
        table = default_table()
        assert table.stats[4].num_index == 16
        assert table.stats[5].num_index == 89
        assert table.stats[6].num_index == 579
        assert not table.stats[6].sampled

    def test_degree6_topo_count_near_paper(self):
        """Paper Table II: avg #Topo = 10.67 at degree 6."""
        table = default_table()
        assert 7.0 <= table.stats[6].avg_topologies <= 14.0

    def test_cached_singleton(self):
        assert default_table() is default_table()

    @pytest.mark.parametrize("degree", [4, 5, 6])
    def test_exact_against_dw(self, degree, assert_fronts_equal):
        router = default_router()
        rng = random.Random(degree * 7)
        for _ in range(4):
            from repro.geometry.net import random_net

            net = random_net(degree, rng=rng)
            assert_fronts_equal(router.route(net), pareto_frontier(net))

    def test_default_router_config_kwargs(self):
        router = default_router(iterations=2, seed=5)
        assert router.config.iterations == 2
        assert router.config.seed == 5
