"""Docstring lint: every module under ``src/repro/`` must open with one.

Usage::

    python -m tools.check_docstrings [root]

Walks ``root`` (default ``src/repro``), parses each ``.py`` file, and
exits 1 listing every module whose AST has no module docstring. CI runs
this so the API docs never drift toward undocumented modules.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List


def modules_missing_docstrings(root: Path) -> List[Path]:
    """Paths under ``root`` whose modules lack a docstring."""
    missing = []
    for path in sorted(root.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        if not ast.get_docstring(tree):
            missing.append(path)
    return missing


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    missing = modules_missing_docstrings(root)
    if missing:
        print(f"{len(missing)} module(s) missing a module docstring:")
        for path in missing:
            print(f"  {path}")
        return 1
    print(f"docstring lint ok: every module under {root} has a docstring")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
