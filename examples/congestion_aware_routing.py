#!/usr/bin/env python3
"""Congestion-aware Pareto routing (the paper's future-work metric).

Run:  python examples/congestion_aware_routing.py

Walks the congestion extension end to end:

1. build a congestion map with a hot region (an over-demanded g-cell area),
2. compute the exact tri-objective (wirelength, delay, congestion)
   frontier of a small net crossing the hot region,
3. show the free win on any tree: per-edge L-shape selection that dodges
   hot cells without touching wirelength or delay,
4. annotate a large net's PatLabor front with optimised congestion.
"""

import random

from repro import Net, PatLabor, random_net
from repro.baselines.rsmt import rsmt
from repro.congestion import (
    CongestionMap,
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)


def main() -> None:
    # A 10x10 g-cell map over [0,100]^2 with a hot center (weight 12).
    cmap = CongestionMap.uniform(0, 0, 100, 100, 10, 10)
    for ix in range(3, 7):
        for iy in range(3, 7):
            cmap.weights[ix][iy] = 12.0

    # ---- exact tri-objective frontier -----------------------------------
    net = Net.from_points(
        (5, 50), [(95, 55), (55, 95), (90, 10)], name="hot_crossing"
    )
    front3 = pareto_dw3(net, cmap)
    print(f"exact (w, d, congestion) frontier of {net.name!r}:")
    for w, d, c, _tree in front3:
        print(f"  w = {w:6.1f}   d = {d:6.1f}   congestion = {c:7.1f}")
    print(
        "note the third axis: some trees pay wire or delay to route around "
        "the hot center.\n"
    )

    # ---- free congestion win from embedding choice ----------------------
    big = random_net(20, rng=random.Random(3), span=100.0)
    tree = rsmt(big)
    fixed_cost = sum(
        cmap.edge_cost(tree.points[p], tree.points[c])
        for c, p in tree.edges()
    )
    _, best_cost = embed_min_congestion(tree, cmap)
    print(
        f"degree-20 RSMT: fixed lower-L embedding congestion = {fixed_cost:.1f}, "
        f"per-edge optimised = {best_cost:.1f} "
        f"({(1 - best_cost / fixed_cost) * 100:.1f}% saved for free)"
    )

    # ---- practical path for any degree -----------------------------------
    front = congestion_annotated_front(big, cmap, router=PatLabor())
    print(f"\nPatLabor front of the degree-20 net, congestion-annotated:")
    for w, d, c, _tree in front:
        print(f"  w = {w:7.1f}   d = {d:7.1f}   congestion = {c:8.1f}")
    print(
        "\na global router can now trade all three objectives per net — the "
        "integration the paper's conclusion sketches."
    )


if __name__ == "__main__":
    main()
