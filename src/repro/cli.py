"""Command-line interface: ``patlabor <command>``.

Commands
--------
route       Route nets from a ``.nets`` file (or a generated random net)
            with any registered router (``--method``, default PatLabor,
            optionally behind a ``--cache``) and print each Pareto set.
routers     List the routers registered with ``repro.engine`` and their
            capabilities.
gen-lut     Generate lookup tables for given degrees and save to JSON.
gen-nets    Generate a synthetic ICCAD-15-like workload into a ``.nets`` file.
compare     Run PatLabor vs SALT vs YSD on a net file and print
            Table III / Table IV style summaries.
draw        Render a net's Pareto-optimal trees to SVG files.
eco         Replay a ``.deltas`` edit stream (pin moves/adds/removes,
            blockages — see ``repro.incremental``) through the
            incremental engine; ``--compare-cold`` verifies exact-tier
            fronts stay bit-identical to cold re-routes.
serve       Run the routing daemon: a Unix-socket/TCP JSON service over a
            shared-LUT worker pool with an optional persistent cache store
            (see ``repro.serve``). ``--metrics-port`` binds the HTTP
            telemetry sidecar (``/metrics``, ``/healthz``, ``/readyz``).
top         Poll a daemon's ``/metrics`` endpoint and render a live
            terminal view: qps, per-tier latency percentiles, cache hit
            rates, worker utilization.
warm        Pre-populate a persistent cache store from a ``.nets`` file so
            later runs (and the daemon) start with a warm disk tier.
cache       Cache-store maintenance: ``cache stats --store FILE`` prints
            entry counts, file size (bytes), row count, and lifetime
            hit/miss counters; ``--daemon-socket``/``--daemon-host`` also
            query a live daemon for its hit rates since start, and
            ``--json`` emits the whole report as one JSON object.
negotiate   Run PathFinder negotiated-congestion routing over a net file
            (or a generated contention scenario): nets swap between
            precomputed Pareto frontier points until no grid cell is over
            capacity. ``--baseline`` also runs the min-delay-pinned
            single-tree rip-up loop for comparison; ``--heatmap-svg``
            renders the final demand/overuse grid.
obs         Performance-tracking surface over the run ledger:
            ``obs diff <run-a> <run-b>`` (per-metric deltas),
            ``obs check --baseline FILE`` (exit non-zero on regression),
            ``obs ledger`` (list recorded runs).

``route``, ``gen-lut``, ``compare``, and ``negotiate`` accept ``--profile`` (print a
span-tree report and metric summary after the command, via
:mod:`repro.obs`) and ``--profile-json PATH`` (also dump the metrics
snapshot as JSON — e.g. ``BENCH_route.json``), plus ``--trace PATH``
(Chrome-trace / Perfetto JSON of the span tree), ``--events PATH``
(structured JSONL event log), and ``--ledger PATH`` (append a run record
to the performance ledger).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .core.patlabor import PatLabor, PatLaborConfig
from .geometry.net import Net, random_net


def _cmd_route(args: argparse.Namespace) -> int:
    from .engine import EngineSpec, build_engine
    from .io.nets_format import load_nets
    from .viz.ascii_art import front_summary

    if args.nets:
        nets = load_nets(args.nets)
    else:
        rng = random.Random(args.seed)
        nets = [random_net(args.degree, rng=rng, name="random")]
    options = {}
    if args.method == "patlabor":
        lut = None
        if args.lut:
            from .io.lut_io import load_lut

            lut = load_lut(args.lut)
        options = {"lut": lut, "config": PatLaborConfig(lam=args.lam)}
    router = build_engine(
        EngineSpec(
            router=args.method,
            router_options=options,
            cache=None if args.cache == "off" else args.cache,
        )
    )
    for net in nets:
        front = router.route(net)
        print(f"{net.name or 'net'} (degree {net.degree}): "
              f"{len(front)} Pareto solution(s)")
        print(front_summary(front))
    return 0


def _cmd_gen_lut(args: argparse.Namespace) -> int:
    from .io.lut_io import save_lut
    from .lut.table import LookupTable

    degrees = [int(d) for d in args.degrees.split(",")]
    if args.jobs and args.jobs > 1:
        from .lut.generator import generate_degree_parallel

        table = LookupTable()
        table.prune_mode = args.prune
        for n in degrees:
            import time as _time

            t0 = _time.perf_counter()
            raw = generate_degree_parallel(
                n, jobs=args.jobs, prune_mode=args.prune, limit=args.limit
            )
            table._ingest(n, raw)
            table.stats[n].build_seconds = _time.perf_counter() - t0
            table.stats[n].sampled = args.limit is not None
    else:
        table = LookupTable.build(
            degrees=degrees,
            prune_mode=args.prune,
            limit_per_degree=args.limit,
        )
    save_lut(table, args.output)
    for n, st in sorted(table.stats.items()):
        print(
            f"degree {n}: #Index={st.num_index} "
            f"avg #Topo={st.avg_topologies:.2f} "
            f"({st.build_seconds:.1f}s{', sampled' if st.sampled else ''})"
        )
    print(f"saved to {args.output}")
    return 0


def _cmd_gen_nets(args: argparse.Namespace) -> int:
    from .eval.benchmarks import Iccad15LikeSuite
    from .io.nets_format import save_nets

    suite = Iccad15LikeSuite(seed=args.seed)
    nets: List[Net] = []
    if args.large:
        nets.extend(suite.large_nets(count=args.count))
    else:
        by_degree = suite.small_nets(per_degree=max(1, args.count // 6))
        for group in by_degree.values():
            nets.extend(group)
        nets = nets[: args.count]
    written = save_nets(nets, args.output)
    print(f"wrote {written} nets to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .eval.metrics import table3, table4
    from .eval.reporting import render_table3, render_table4
    from .eval.runner import compare_on_nets
    from .io.nets_format import load_nets

    nets = load_nets(args.nets)
    small = [n for n in nets if n.degree <= args.exact_limit]
    if not small:
        print("no nets small enough for exact comparison", file=sys.stderr)
        return 1
    rows = compare_on_nets(small)
    print(render_table3(table3(rows)))
    print()
    print(render_table4(table4(rows)))
    return 0


def _cmd_routers(args: argparse.Namespace) -> int:
    from .engine import available_routers, create_router, router_entry

    for name in available_routers():
        entry = router_entry(name)
        caps = create_router(name).capabilities
        notes = []
        if caps.exact_up_to is not None:
            notes.append(f"exact<={caps.exact_up_to}")
        if caps.max_degree is not None:
            notes.append(f"max_degree={caps.max_degree}")
        if not caps.pareto:
            notes.append("single-tree")
        suffix = f" [{', '.join(notes)}]" if notes else ""
        print(f"{name:<11} {entry.display_name:<9} {entry.summary}{suffix}")
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    from .io.nets_format import load_nets
    from .viz.svg import pareto_curve_svg, save_svg, tree_svg

    from .engine import build_engine

    nets = load_nets(args.nets)
    router = build_engine("patlabor")
    net = nets[args.index]
    front = router.route(net)
    save_svg(
        pareto_curve_svg([("PatLabor", front)], title=f"{net.name} Pareto"),
        f"{args.prefix}_curve.svg",
    )
    for i, (w, d, tree) in enumerate(front):
        save_svg(
            tree_svg(tree, title=f"w={w:.0f} d={d:.0f}"),
            f"{args.prefix}_tree{i}.svg",
        )
    print(f"wrote {len(front) + 1} SVG file(s) with prefix {args.prefix!r}")
    return 0


def _cmd_negotiate(args: argparse.Namespace) -> int:
    import json as _json

    from .congestion.model import HAVE_NUMPY, CapacityGrid
    from .congestion.negotiate import (
        NegotiatedRouter,
        NegotiatorConfig,
        Scenario,
    )

    if not HAVE_NUMPY:
        print("error: `negotiate` needs NumPy installed", file=sys.stderr)
        return 2
    if args.nets:
        from .io.nets_format import load_nets

        nets = load_nets(args.nets)
        grid = CapacityGrid.uniform(
            0,
            0,
            args.span,
            args.span,
            args.cells,
            args.cells,
            capacity=args.capacity if args.capacity else float("inf"),
        )
        scenario = Scenario(nets=nets, grid=grid)
    else:
        scenario = Scenario.random(
            nets=args.count,
            cells=args.cells,
            span=args.span,
            capacity=args.capacity,
            utilization=args.utilization,
            seed=args.seed,
        )
    config = NegotiatorConfig(
        pres_fac_first=args.pres_fac,
        pres_fac_mult=args.pres_fac_mult,
        hist_fac=args.hist_fac,
        max_iterations=args.max_iterations,
        delay_slack=args.slack,
        point_policy=args.policy,
    )
    result = NegotiatedRouter(scenario, config).run()
    report = {
        "nets": len(scenario.nets),
        "grid": f"{scenario.grid.nx}x{scenario.grid.ny}",
        "capacity": float(scenario.grid.capacity.max()),
        **result.metrics(),
    }
    if args.baseline:
        base_config = NegotiatorConfig(
            pres_fac_first=args.pres_fac,
            pres_fac_mult=args.pres_fac_mult,
            hist_fac=args.hist_fac,
            max_iterations=args.max_iterations,
            delay_slack=args.slack,
            point_policy="min_delay",
        )
        base = NegotiatedRouter(scenario, base_config).run()
        for key, value in base.metrics(prefix="baseline").items():
            report[key] = value
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        verdict = "converged" if result.converged else "NOT converged"
        print(
            f"{report['nets']} nets on {report['grid']} grid "
            f"(capacity {report['capacity']:.1f}/cell): {verdict} after "
            f"{result.iteration_count} iteration(s)"
        )
        print(
            f"  overuse={result.final_overuse:.1f} "
            f"worst_delay={result.worst_delay:.3f} "
            f"wirelength={result.total_wirelength:.1f} "
            f"swaps={result.total_swaps}"
        )
        if args.baseline:
            print(
                f"  baseline (min_delay pin): "
                f"iterations={report['baseline.iterations']} "
                f"overuse={report['baseline.final_overuse']:.1f} "
                f"wirelength={report['baseline.total_wirelength']:.1f}"
            )
    if args.heatmap_svg:
        from .viz.heatmap import overuse_heatmap_svg
        from .viz.svg import save_svg

        save_svg(
            overuse_heatmap_svg(
                result.grid, title="negotiated demand/capacity"
            ),
            args.heatmap_svg,
        )
        print(f"[overuse heatmap written to {args.heatmap_svg}]")
    return 0 if result.converged else 1


def _cmd_eco(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from .engine import EngineSpec, build_engine
    from .incremental.delta import apply_delta, load_deltas
    from .incremental.engine import EXACT_TIERS
    from .io.nets_format import load_nets
    from .lut.default import default_table

    nets = load_nets(args.nets)
    deltas = load_deltas(args.deltas)
    options = {"lut": default_table()}
    if args.lut:
        from .io.lut_io import load_lut

        options = {"lut": load_lut(args.lut)}
    spec = EngineSpec(
        router="patlabor", router_options=options, cache="symmetry"
    )
    engine = build_engine(
        EngineSpec(
            router="patlabor",
            router_options=dict(options),
            cache="symmetry",
            incremental=True,
        )
    )
    t0 = _time.perf_counter()
    for net in nets:
        engine.route(net)
    seed_s = _time.perf_counter() - t0
    current = {net.name: net for net in nets}
    tiers: dict = {}
    eco_s = 0.0
    reused = 0
    total = 0
    identical = 0
    compared = 0
    for index, delta in enumerate(deltas):
        result = engine.apply_delta(delta)
        tiers[result.tier] = tiers.get(result.tier, 0) + 1
        eco_s += result.wall_s
        reused += result.reused_masks
        total += result.total_masks
        line = (
            f"#{index} {delta.kind} {delta.net or '-'}: tier={result.tier} "
            f"reuse={result.reused_masks}/{result.total_masks} "
            f"{result.wall_s:.6f}s"
        )
        if delta.kind != "blockage":
            current[delta.net] = apply_delta(current[delta.net], delta)
        if args.compare_cold and result.tier in EXACT_TIERS:
            cold_front = build_engine(spec).route(current[delta.net])
            warm = [(w, d) for w, d, _t in result.front or []]
            cold = [(w, d) for w, d, _t in cold_front]
            compared += 1
            if warm == cold:
                identical += 1
                line += " bit-identical"
            else:
                line += " MISMATCH"
        if not args.json:
            print(line)
    report = {
        "nets": len(nets),
        "deltas": len(deltas),
        "seed_seconds": seed_s,
        "eco_seconds": eco_s,
        "mean_eco_seconds": eco_s / len(deltas) if deltas else 0.0,
        "reuse_rate": reused / total if total else 0.0,
        "tiers": dict(sorted(tiers.items())),
    }
    if args.compare_cold:
        report["compared"] = compared
        report["bit_identical"] = identical
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"{report['deltas']} delta(s) over {report['nets']} net(s): "
            f"seed {seed_s:.3f}s, eco {eco_s:.3f}s "
            f"(mean {report['mean_eco_seconds']:.6f}s), "
            f"mask reuse {report['reuse_rate']:.1%}"
        )
        if args.compare_cold:
            print(
                f"  exact-tier fronts bit-identical to cold: "
                f"{identical}/{compared}"
            )
    if args.compare_cold and identical != compared:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import RouteServer, ServeConfig

    if not args.socket and not args.host:
        print("error: pass --socket PATH and/or --host ADDR", file=sys.stderr)
        return 2
    config = ServeConfig(
        socket_path=args.socket or None,
        host=args.host or None,
        port=args.port,
        workers=args.workers,
        method=args.method,
        cache_mode=None if args.cache == "off" else args.cache,
        cache_entries=args.cache_entries,
        store_path=args.store or None,
        use_default_lut=not args.no_lut,
        telemetry=args.telemetry,
        metrics_host=args.metrics_host,
        metrics_port=args.metrics_port,
        slow_request_seconds=args.slow_ms / 1000.0,
    )
    server = RouteServer(config)

    async def run() -> None:
        await server.start()
        endpoints = []
        if config.socket_path:
            endpoints.append(f"unix:{config.socket_path}")
        if config.host is not None:
            endpoints.append(f"tcp:{config.host}:{server.tcp_port}")
        if config.metrics_port is not None:
            endpoints.append(
                f"http://{config.metrics_host}:{server.metrics_port}/metrics"
            )
        print(
            f"serving on {' and '.join(endpoints)} "
            f"({config.workers} worker(s), cache={args.cache}, "
            f"store={config.store_path or 'off'})",
            flush=True,
        )
        await server.serve_until_stopped()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    stats = server.stats()
    print(
        f"served {stats['nets']} net(s) over {stats['requests']} request(s); "
        f"warm_hit_rate={stats['warm_hit_rate']:.3f}"
    )
    return 0


def _cmd_warm(args: argparse.Namespace) -> int:
    from .core.batch import route_batch
    from .core.patlabor import PatLaborConfig
    from .io.nets_format import load_nets

    nets = load_nets(args.nets)
    result = route_batch(
        nets,
        config=PatLaborConfig(),
        jobs=args.jobs,
        use_cache=True,
        method=args.method,
        cache_mode=args.cache,
        cache_store=args.store,
    )
    from .core.cache_store import PersistentStore

    store = PersistentStore(args.store, readonly=True)
    print(
        f"warmed {args.store} from {len(nets)} net(s) in "
        f"{result.seconds:.2f}s: {len(store)} entr(y/ies) on disk, "
        f"cache_hit_rate={result.cache_hit_rate:.3f}"
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_top

    url = args.url or f"http://{args.host}:{args.metrics_port}/metrics"
    return run_top(
        url,
        interval=args.interval,
        iterations=1 if args.once else args.iterations,
    )


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .core.cache_store import PersistentStore

    store = PersistentStore(args.store, readonly=True)
    if not store.path.exists():
        print(f"error: no store at {args.store}", file=sys.stderr)
        return 1
    stats = store.stats()
    if not stats["entries"] and not stats["healthy"]:
        print(f"error: {args.store} is unreadable (corrupt store?)",
              file=sys.stderr)
        return 1
    total = int(stats["total_hits"]) + int(stats["total_misses"])
    stats["lifetime_hit_rate"] = (
        int(stats["total_hits"]) / total if total else 0.0
    )
    daemon: dict = {}
    if args.daemon_socket or args.daemon_host:
        from .serve import ServeClient, ServeError

        try:
            with ServeClient(
                socket_path=args.daemon_socket or None,
                host=args.daemon_host or None,
                port=args.daemon_port if args.daemon_host else None,
            ) as client:
                live = client.stats()
        except (OSError, ServeError, ValueError) as exc:
            print(f"error: cannot query daemon: {exc}", file=sys.stderr)
            return 1
        # Hit rates *since daemon start* — the session-scoped complement
        # to the store's flushed lifetime counters.
        daemon = {
            "uptime_seconds": live.get("uptime_seconds"),
            "nets": live.get("nets"),
            "warm_hit_rate": live.get("warm_hit_rate"),
            "store_hit_rate": live.get("store_hit_rate"),
            "served_memory": live.get("served_memory"),
            "served_store": live.get("served_store"),
            "served_routed": live.get("served_routed"),
        }
        stats["daemon"] = daemon
    if args.json:
        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"store     {stats['path']}")
    print(f"healthy   {stats['healthy']}")
    print(f"entries   {stats['entries']}")
    print(f"size      {stats['size_bytes']} bytes")
    print(
        f"lifetime  hits={stats['total_hits']} misses={stats['total_misses']} "
        f"puts={stats['total_puts']}"
    )
    print(
        f"hit rate  {stats['lifetime_hit_rate']:.3f} "
        f"(over {total} flushed lookup(s))"
    )
    if daemon:
        print(
            f"daemon    up {float(daemon['uptime_seconds'] or 0.0):.0f}s  "
            f"nets={daemon['nets']}  "
            f"warm_hit_rate={float(daemon['warm_hit_rate'] or 0.0):.3f}  "
            f"store_hit_rate={float(daemon['store_hit_rate'] or 0.0):.3f} "
            f"(since daemon start)"
        )
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from .obs import ledger

    try:
        base = ledger.resolve_record(args.run_a, ledger_path=args.ledger)
        new = ledger.resolve_record(args.run_b, ledger_path=args.ledger)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = ledger.diff_records(
        base, new, rel_threshold=args.threshold / 100.0
    )
    print(
        f"baseline: {base.get('run_id')} ({base.get('name')})\n"
        f"current:  {new.get('run_id')} ({new.get('name')})\n"
    )
    print(ledger.render_diff(deltas, only_changed=args.only_changed))
    worse = ledger.regressions(deltas)
    if worse:
        print(f"\n{len(worse)} metric(s) regressed beyond "
              f"{args.threshold:.0f}% threshold")
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from .obs import ledger

    try:
        base = ledger.resolve_record(args.baseline, ledger_path=args.ledger)
        new = ledger.resolve_record(args.run, ledger_path=args.ledger)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    deltas = ledger.diff_records(
        base, new, rel_threshold=args.threshold / 100.0
    )
    worse = ledger.regressions(deltas)
    print(
        f"perf check: run {new.get('run_id')} vs baseline "
        f"{base.get('run_id')} ({len(deltas)} comparable metrics, "
        f"threshold {args.threshold:.0f}%)"
    )
    if worse:
        print(ledger.render_diff(worse))
        print(f"\nFAIL: {len(worse)} metric(s) regressed")
        return 1
    print("OK: no metric regressed beyond threshold")
    return 0


def _cmd_obs_ledger(args: argparse.Namespace) -> int:
    from .obs import ledger

    records = ledger.read_ledger(args.ledger)
    if not records:
        print(f"(ledger {args.ledger} is empty or missing)")
        return 0
    for rec in records[-args.count:]:
        metrics = rec.get("metrics", {})
        headline = ", ".join(
            f"{k}={metrics[k]:.4g}"
            for k in ("nets_per_second", "seconds", "cache_hit_rate")
            if k in metrics
        )
        print(
            f"{rec.get('run_id')}  {rec.get('name', '?'):<12} "
            f"sha={str(rec.get('git', {}).get('sha', '?'))[:10]}  {headline}"
        )
    return 0


def _add_profile_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile",
        action="store_true",
        help="print a span-tree report and metric summary after the command",
    )
    p.add_argument(
        "--profile-json",
        metavar="PATH",
        help="write the metrics snapshot as JSON to PATH (implies --profile)",
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome-trace (Perfetto) JSON of the span tree to PATH",
    )
    p.add_argument(
        "--events",
        metavar="PATH",
        help="append a structured JSONL event log of the run to PATH",
    )
    p.add_argument(
        "--ledger",
        metavar="PATH",
        help="append a run record (git SHA, config, metrics) to the "
        "performance ledger at PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="patlabor",
        description="Pareto optimization of timing-driven routing trees",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("route", help="route nets and print Pareto sets")
    p.add_argument("--nets", help=".nets input file")
    p.add_argument("--degree", type=int, default=12, help="random net degree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--method", default="patlabor",
        help="router name from the repro.engine registry "
        "(see `patlabor routers`)",
    )
    p.add_argument(
        "--cache", default="off",
        choices=["off", "translation", "symmetry"],
        help="result cache in front of the router (default: off)",
    )
    p.add_argument("--lam", type=int, default=9, help="PatLabor lambda")
    p.add_argument("--lut", help="lookup-table JSON file")
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser(
        "routers", help="list the routers registered with repro.engine"
    )
    p.set_defaults(func=_cmd_routers)

    p = sub.add_parser("gen-lut", help="generate lookup tables")
    p.add_argument("--degrees", default="4,5", help="comma-separated degrees")
    p.add_argument("--prune", default="componentwise", choices=["componentwise", "lp"])
    p.add_argument("--limit", type=int, default=None, help="patterns per degree")
    p.add_argument("--jobs", type=int, default=1, help="parallel workers")
    p.add_argument("--output", "-o", default="patlabor_lut.json")
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_gen_lut)

    p = sub.add_parser("gen-nets", help="generate a synthetic workload")
    p.add_argument("--count", type=int, default=60)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--large", action="store_true", help="degree 10-50 nets")
    p.add_argument("--output", "-o", default="workload.nets")
    p.set_defaults(func=_cmd_gen_nets)

    p = sub.add_parser("compare", help="compare PatLabor / SALT / YSD")
    p.add_argument("nets", help=".nets input file")
    p.add_argument("--exact-limit", type=int, default=9)
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("draw", help="render Pareto trees to SVG")
    p.add_argument("nets", help=".nets input file")
    p.add_argument("--index", type=int, default=0, help="net index in the file")
    p.add_argument("--prefix", default="patlabor")
    p.set_defaults(func=_cmd_draw)

    p = sub.add_parser("obs", help="performance ledger: diff / check / list")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    default_ledger = "benchmarks/results/ledger.jsonl"
    d = obs_sub.add_parser(
        "diff", help="per-metric deltas between two ledger runs"
    )
    d.add_argument("run_a", help="baseline run: run-id prefix, 'latest', "
                   "-N, or a record .json file")
    d.add_argument("run_b", help="current run (same forms)")
    d.add_argument("--ledger", default=default_ledger)
    d.add_argument(
        "--threshold", type=float, default=10.0,
        help="noise threshold in percent (default 10)",
    )
    d.add_argument(
        "--only-changed", action="store_true",
        help="hide metrics with a zero delta",
    )
    d.set_defaults(func=_cmd_obs_diff)

    c = obs_sub.add_parser(
        "check", help="exit non-zero if a metric regressed vs the baseline"
    )
    c.add_argument(
        "--baseline", required=True,
        help="baseline record: a .json file (committed baseline), a run-id "
        "prefix, or -N",
    )
    c.add_argument(
        "--run", default="latest",
        help="run to check (default: latest ledger record)",
    )
    c.add_argument("--ledger", default=default_ledger)
    c.add_argument(
        "--threshold", type=float, default=10.0,
        help="noise threshold in percent (default 10)",
    )
    c.set_defaults(func=_cmd_obs_check)

    l = obs_sub.add_parser("ledger", help="list recorded runs")
    l.add_argument("--ledger", default=default_ledger)
    l.add_argument("-n", "--count", type=int, default=20)
    l.set_defaults(func=_cmd_obs_ledger)

    p = sub.add_parser(
        "negotiate",
        help="PathFinder negotiated-congestion routing over Pareto frontiers",
    )
    p.add_argument("--nets", help=".nets input file (default: random scenario)")
    p.add_argument(
        "--count", type=int, default=200,
        help="random-scenario net count (ignored with --nets)",
    )
    p.add_argument("--cells", type=int, default=16, help="grid resolution")
    p.add_argument(
        "--span", type=float, default=1000.0, help="routing region [0, span]^2"
    )
    p.add_argument(
        "--capacity", type=float, default=None,
        help="routable wirelength per cell (default: auto from demand for "
        "random scenarios, unlimited for --nets)",
    )
    p.add_argument(
        "--utilization", type=float, default=0.45,
        help="target utilisation for auto-capacity (default: 0.45)",
    )
    p.add_argument("--seed", type=int, default=2029)
    p.add_argument(
        "--max-iterations", type=int, default=40,
        help="negotiation iteration cap (default: 40)",
    )
    p.add_argument(
        "--pres-fac", type=float, default=0.5,
        help="first-iteration present-congestion factor (default: 0.5)",
    )
    p.add_argument(
        "--pres-fac-mult", type=float, default=1.6,
        help="per-iteration escalation multiplier (default: 1.6)",
    )
    p.add_argument(
        "--hist-fac", type=float, default=0.3,
        help="history-cost factor (default: 0.3)",
    )
    p.add_argument(
        "--slack", type=float, default=0.25,
        help="per-net delay budget slack (default: 0.25)",
    )
    p.add_argument(
        "--policy", default=None,
        help="pin every net to one frontier point policy (min_wirelength / "
        "min_delay / knee / budget:<slack>) instead of negotiating freely",
    )
    p.add_argument(
        "--baseline", action="store_true",
        help="also run the min-delay-pinned single-tree baseline and report "
        "both",
    )
    p.add_argument(
        "--heatmap-svg", metavar="PATH",
        help="write the final demand/overuse grid as an SVG heatmap",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_negotiate)

    p = sub.add_parser(
        "eco",
        help="replay a .deltas edit stream through the incremental engine",
    )
    p.add_argument(
        "--nets", required=True, help=".nets workload to seed sessions from"
    )
    p.add_argument(
        "--deltas", required=True, help=".deltas edit stream to replay"
    )
    p.add_argument(
        "--lut", help="lookup table JSON (default: the bundled table)"
    )
    p.add_argument(
        "--compare-cold", action="store_true",
        help="cold re-route each edited net and check exact-tier fronts "
        "match bit-identically (exit 1 on any mismatch)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p.set_defaults(func=_cmd_eco)

    p = sub.add_parser(
        "serve", help="run the routing daemon (Unix socket / TCP JSON service)"
    )
    p.add_argument("--socket", help="Unix socket path to listen on")
    p.add_argument("--host", help="TCP address to listen on (e.g. 127.0.0.1)")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port)",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="routing worker processes"
    )
    p.add_argument(
        "--method", default="patlabor",
        help="router name from the repro.engine registry",
    )
    p.add_argument(
        "--cache", default="symmetry",
        choices=["off", "translation", "symmetry"],
        help="per-worker in-memory cache mode (default: symmetry)",
    )
    p.add_argument(
        "--cache-entries", type=int, default=100_000,
        help="per-worker in-memory LRU capacity",
    )
    p.add_argument(
        "--store", help="persistent SQLite cache store shared by all workers"
    )
    p.add_argument(
        "--no-lut", action="store_true",
        help="do not preload the bundled lookup table",
    )
    p.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="bind the HTTP telemetry sidecar (/metrics, /healthz, "
        "/readyz) on this port (0: pick a free port; default: off)",
    )
    p.add_argument(
        "--metrics-host", default="127.0.0.1",
        help="address for the telemetry sidecar (default: 127.0.0.1)",
    )
    p.add_argument(
        "--telemetry", action="store_true",
        help="enable obs registries inside pool workers and merge their "
        "metrics into the daemon's at shutdown",
    )
    p.add_argument(
        "--slow-ms", type=float, default=1000.0, metavar="MS",
        help="log a structured slow_request record for requests over "
        "this many milliseconds (default: 1000)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "top", help="live terminal view over a daemon's /metrics endpoint"
    )
    p.add_argument(
        "--url", help="full metrics URL (overrides --host/--metrics-port)"
    )
    p.add_argument("--host", default="127.0.0.1", help="daemon metrics host")
    p.add_argument(
        "--metrics-port", type=int, default=9100, metavar="PORT",
        help="daemon metrics port (default: 9100)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between scrapes (default: 2)",
    )
    p.add_argument(
        "--iterations", type=int, default=None,
        help="stop after N frames (default: run until interrupted)",
    )
    p.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "warm", help="pre-populate a persistent cache store from a .nets file"
    )
    p.add_argument("nets", help=".nets input file")
    p.add_argument("--store", required=True, help="SQLite store to populate")
    p.add_argument("--jobs", type=int, default=1, help="parallel workers")
    p.add_argument(
        "--method", default="patlabor",
        help="router name from the repro.engine registry",
    )
    p.add_argument(
        "--cache", default="symmetry", choices=["translation", "symmetry"],
        help="cache mode used while warming (default: symmetry)",
    )
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_warm)

    p = sub.add_parser("cache", help="cache-store maintenance")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    s = cache_sub.add_parser(
        "stats", help="print entry counts, size, and lifetime hit/miss totals"
    )
    s.add_argument("--store", required=True, help="SQLite store to inspect")
    s.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    s.add_argument(
        "--daemon-socket", metavar="PATH",
        help="also query the daemon on this Unix socket for hit rates "
        "since daemon start",
    )
    s.add_argument(
        "--daemon-host", metavar="ADDR",
        help="also query the daemon at this TCP address",
    )
    s.add_argument(
        "--daemon-port", type=int, default=None, metavar="PORT",
        help="TCP port for --daemon-host",
    )
    s.set_defaults(func=_cmd_cache_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``patlabor`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    events_path = getattr(args, "events", None)
    ledger_path = getattr(args, "ledger", None) if hasattr(args, "profile") else None
    profiling = (
        getattr(args, "profile", False)
        or getattr(args, "profile_json", None)
        or ledger_path
    )
    if not (profiling or trace_path or events_path):
        return args.func(args)

    from . import obs

    if profiling:
        obs.enable()
    if trace_path:
        obs.trace_enable()
    if events_path:
        obs.events_enable()
    try:
        rc = args.func(args)
    finally:
        obs.disable()
        obs.trace_disable()
        obs.events_disable()
    if profiling:
        print()
        print(obs.span_tree_report())
        summary = obs.metrics_summary()
        if summary:
            print()
            print(summary)
    if getattr(args, "profile_json", None):
        path = obs.dump_json(args.profile_json)
        print(f"\n[metrics written to {path}]")
    if trace_path:
        path = obs.write_chrome_trace(trace_path)
        print(f"[chrome trace written to {path} — load in ui.perfetto.dev]")
    if events_path:
        path = obs.flush_events(events_path)
        print(f"[event log appended to {path}]")
    if ledger_path:
        record = obs.make_record(
            obs.flatten_snapshot(obs.snapshot()),
            name=args.command,
            config={
                k: v
                for k, v in vars(args).items()
                if k not in ("func",) and isinstance(v, (str, int, float, bool, type(None)))
            },
        )
        path = obs.append_record(record, ledger_path)
        print(f"[run {record['run_id']} appended to {path}]")
    return rc


if __name__ == "__main__":
    sys.exit(main())
