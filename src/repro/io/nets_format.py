"""Plain-text net file format (``.nets``).

A portable, diff-friendly exchange format for net collections:

    # comment
    net <name> <degree>
    source <x> <y>
    sink <x> <y>
    sink <x> <y>
    ...

Blank lines separate nets. The CLI and the benchmark suite use this to
persist generated workloads so experiments are replayable byte-for-byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

from ..exceptions import SerializationError
from ..geometry.net import Net

PathLike = Union[str, Path]


def dump_nets(nets: Iterable[Net], fp: TextIO) -> int:
    """Write nets to an open text file; returns how many were written."""
    count = 0
    for net in nets:
        fp.write(f"net {net.name or f'net{count}'} {net.degree}\n")
        fp.write(f"source {net.source.x!r} {net.source.y!r}\n")
        for s in net.sinks:
            fp.write(f"sink {s.x!r} {s.y!r}\n")
        fp.write("\n")
        count += 1
    return count


def save_nets(nets: Iterable[Net], path: PathLike) -> int:
    """Write nets to ``path``; returns how many were written."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_nets(nets, fp)


def parse_nets(fp: TextIO) -> Iterator[Net]:
    """Yield nets from an open ``.nets`` text stream."""
    name = ""
    source = None
    sinks: List[tuple] = []
    lineno = 0

    def flush() -> Iterator[Net]:
        nonlocal source, sinks, name
        if source is None and not sinks:
            return
        if source is None:
            raise SerializationError(f"net {name!r} has sinks but no source")
        yield Net.from_points(source, sinks, name=name)
        source, sinks, name = None, [], ""

    for raw in fp:
        lineno += 1
        line = raw.strip()
        if not line or line.startswith("#"):
            if not line:
                yield from flush()
            continue
        parts = line.split()
        try:
            if parts[0] == "net":
                yield from flush()
                name = parts[1] if len(parts) > 1 else ""
            elif parts[0] == "source":
                source = (float(parts[1]), float(parts[2]))
            elif parts[0] == "sink":
                sinks.append((float(parts[1]), float(parts[2])))
            else:
                raise SerializationError(
                    f"line {lineno}: unknown directive {parts[0]!r}"
                )
        except (IndexError, ValueError) as exc:
            raise SerializationError(f"line {lineno}: malformed: {line!r}") from exc
    yield from flush()


def load_nets(path: PathLike) -> List[Net]:
    """Read every net in a ``.nets`` file."""
    with open(path, "r", encoding="utf-8") as fp:
        return list(parse_nets(fp))
