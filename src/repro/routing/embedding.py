"""Concrete rectilinear embedding of abstract tree edges.

Tree edges connect two points and stand for any monotone rectilinear path;
objectives never depend on which path is chosen. Drawing and DRC-style
consumers need actual horizontal/vertical segments, which this module
produces via the standard lower-L convention (horizontal first, then
vertical), with the corner choice overridable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..geometry.point import Point, PointLike, l1
from .tree import RoutingTree


@dataclass(frozen=True)
class Segment:
    """An axis-parallel wire segment from ``a`` to ``b``."""

    a: Point
    b: Point

    @property
    def length(self) -> float:
        return l1(self.a, self.b)

    @property
    def is_horizontal(self) -> bool:
        return self.a.y == self.b.y

    @property
    def is_vertical(self) -> bool:
        return self.a.x == self.b.x


def embed_edge(
    a: PointLike, b: PointLike, lower_l: bool = True
) -> List[Segment]:
    """Rectilinear segments realising edge ``a``–``b``.

    ``lower_l=True`` routes horizontal-first through corner ``(b.x, a.y)``;
    ``False`` routes vertical-first through ``(a.x, b.y)``. Degenerate
    (already axis-parallel or zero-length) edges yield at most one segment.
    """
    pa = Point(float(a[0]), float(a[1]))
    pb = Point(float(b[0]), float(b[1]))
    if pa == pb:
        return []
    if pa.x == pb.x or pa.y == pb.y:
        return [Segment(pa, pb)]
    corner = Point(pb.x, pa.y) if lower_l else Point(pa.x, pb.y)
    return [Segment(pa, corner), Segment(corner, pb)]


def embed_tree(tree: RoutingTree, lower_l: bool = True) -> List[Segment]:
    """All wire segments of a tree under a uniform L-shape convention."""
    segments: List[Segment] = []
    for child, parent in tree.edges():
        segments.extend(
            embed_edge(tree.points[parent], tree.points[child], lower_l=lower_l)
        )
    return segments


def embedded_wirelength(segments: List[Segment]) -> float:
    """Total segment length; equals the tree wirelength for any embedding."""
    return sum(s.length for s in segments)


def segments_bbox(
    segments: List[Segment],
) -> Tuple[float, float, float, float]:
    """``(xlo, ylo, xhi, yhi)`` of an embedded tree (for viewport sizing)."""
    if not segments:
        return (0.0, 0.0, 0.0, 0.0)
    xs = [s.a.x for s in segments] + [s.b.x for s in segments]
    ys = [s.a.y for s in segments] + [s.b.y for s in segments]
    return (min(xs), min(ys), max(xs), max(ys))
