"""Unit tests for bounding boxes and the Lemma-3 projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.bbox import BBox, clamp, project_onto
from repro.geometry.point import l1

coords = st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestBBox:
    def test_of_points(self):
        box = BBox.of([(1, 5), (4, 2), (3, 3)])
        assert box == BBox(1, 2, 4, 5)

    def test_of_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.of([])

    def test_dimensions(self):
        box = BBox(0, 0, 4, 3)
        assert box.width == 4
        assert box.height == 3
        assert box.half_perimeter == 7

    def test_contains_boundary_and_interior(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains((0, 0))
        assert box.contains((5, 5))
        assert box.contains((10, 10))
        assert not box.contains((10.01, 5))

    def test_on_boundary(self):
        box = BBox(0, 0, 10, 10)
        assert box.on_boundary((0, 5))
        assert box.on_boundary((10, 10))
        assert not box.on_boundary((5, 5))
        assert not box.on_boundary((11, 5))

    def test_expanded(self):
        assert BBox(0, 0, 2, 2).expanded(1) == BBox(-1, -1, 3, 3)

    def test_degenerate_box(self):
        box = BBox.of([(3, 3)])
        assert box.width == 0 and box.height == 0
        assert box.contains((3, 3))
        assert box.on_boundary((3, 3))


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below_above(self):
        assert clamp(-2, 0, 10) == 0
        assert clamp(15, 0, 10) == 10


class TestProjection:
    def test_identity_inside(self):
        box = BBox(0, 0, 10, 10)
        assert project_onto((4, 7), box) == (4, 7)

    def test_corner(self):
        box = BBox(0, 0, 10, 10)
        assert project_onto((-3, -4), box) == (0, 0)

    def test_edge(self):
        box = BBox(0, 0, 10, 10)
        assert project_onto((5, 20), box) == (5, 10)

    @given(points, st.lists(points, min_size=1, max_size=8))
    def test_projection_is_l1_nearest(self, p, pts):
        """The clamp is the L1-nearest point of the box — the property
        Lemma 3 rests on."""
        box = BBox.of(pts)
        q = project_onto(p, box)
        assert box.contains(q)
        d = l1(p, q)
        # No box corner or the box's own points are closer.
        corners = [
            (box.xlo, box.ylo),
            (box.xlo, box.yhi),
            (box.xhi, box.ylo),
            (box.xhi, box.yhi),
        ]
        for c in corners + pts:
            assert d <= l1(p, c) + 1e-9
