"""Observability profile of the batch-routing pipeline.

Not a paper artefact: this benchmark exercises the ``repro.obs``
instrumentation end to end and emits the structured baseline that later
perf PRs diff against. It routes an ICCAD-15-like mixed workload (with
translated duplicates, so the translation cache sees realistic hits)
through :func:`repro.core.batch.route_batch`, then writes

* ``results/obs_profile.txt`` — the human-readable span-tree report, and
* ``results/BENCH_profile.json`` — cache hit-rate, nets/sec, per-stage
  span timings, counters, and per-net latency percentiles.

Asserted shape: the cache hits on every duplicate, every routed net is
accounted for, and the span tree covers the dispatch tiers that ran.
"""

import json

from repro import Net, obs
from repro.core.batch import route_batch

from conftest import RESULTS_DIR, write_artifact

DUPLICATES_PER_NET = 2  # rigid translates appended per base net


def _translated_copy(net, dx, dy, name):
    moved = net.translated(dx, dy)
    return Net.from_points(moved.source, list(moved.sinks), name=name)


def test_obs_profile(small_nets):
    nets = list(small_nets)
    for net in small_nets:
        for k in range(1, DUPLICATES_PER_NET + 1):
            nets.append(
                _translated_copy(
                    net, 1000.0 * k, 500.0 * k, f"{net.name}/dup{k}"
                )
            )

    obs.reset()
    obs.enable()
    try:
        result = route_batch(nets, use_cache=True)
    finally:
        obs.disable()

    # Every translate after the first visit of a base net must hit.
    assert result.cache_hits >= len(small_nets) * DUPLICATES_PER_NET
    assert result.metrics is not None
    assert result.metrics["cache_hit_rate"] > 0.5

    report = obs.span_tree_report() + "\n\n" + obs.metrics_summary()
    write_artifact("obs_profile.txt", report)

    path = obs.write_bench_json(
        "profile",
        directory=RESULTS_DIR,
        extra={
            "workload": {
                "nets": len(nets),
                "base_nets": len(small_nets),
                "duplicates_per_net": DUPLICATES_PER_NET,
            },
            "nets_per_second": result.nets_per_second,
            "cache_hit_rate": result.metrics["cache_hit_rate"],
            "seconds": result.seconds,
        },
    )
    payload = json.loads(path.read_text())
    assert payload["nets_per_second"] > 0
    assert 0.0 < payload["cache_hit_rate"] <= 1.0
    assert payload["metrics"]["counters"]["cache.hits"] == result.cache_hits
    assert "batch.route_batch" in payload["metrics"]["spans"]
    # Per-stage timings: the DW engine must appear under the batch span.
    assert any("dw.solve" in p for p in payload["metrics"]["spans"])
    # Per-net latency percentiles for the throughput yardstick.
    net_seconds = payload["metrics"]["timers"]["batch.net_seconds"]
    assert net_seconds["count"] == len(nets)
    assert net_seconds["p50_s"] <= net_seconds["p99_s"]
    print(f"\n[metrics written to {path}]")
    obs.reset()
