"""Tests for the RSMT engine and single-objective Dreyfus–Wagner."""

import random

import pytest

from repro.baselines.dreyfus_wagner import rsmt_cost, steiner_min_tree
from repro.baselines.rsmt import reattach_leaf, refine_wirelength, rsmt
from repro.exceptions import DegreeTooLargeError
from repro.geometry.net import Net, random_net
from repro.geometry.point import hpwl
from repro.routing.validate import check_tree


class TestExactDW:
    def test_two_pins(self):
        net = Net.from_points((0, 0), [(3, 4)])
        assert steiner_min_tree(net).wirelength() == 7

    def test_three_pins_is_hpwl(self):
        # RSMT of <= 3 pins equals the bounding-box half-perimeter.
        rng = random.Random(1)
        for _ in range(10):
            net = random_net(3, rng=rng)
            assert abs(rsmt_cost(net) - hpwl(net.pins)) < 1e-9

    def test_square_needs_steiner_free_30(self, square_net):
        assert steiner_min_tree(square_net).wirelength() == 30

    def test_cross_needs_steiner_point(self):
        # Four pins in a plus: RSMT uses the center.
        net = Net.from_points((0, 5), [(10, 5), (5, 0), (5, 10)])
        t = steiner_min_tree(net)
        assert t.wirelength() == 20
        assert any(p == (5, 5) for p in t.points)

    def test_lower_bound_hpwl(self):
        rng = random.Random(2)
        for _ in range(10):
            net = random_net(6, rng=rng)
            assert rsmt_cost(net) >= hpwl(net.pins) - 1e-9

    def test_matches_pareto_dw_min_w(self):
        from repro.core.pareto_dw import pareto_frontier

        rng = random.Random(3)
        for _ in range(5):
            net = random_net(7, rng=rng)
            assert abs(rsmt_cost(net) - pareto_frontier(net)[0][0]) < 1e-6

    def test_degree_limit(self):
        with pytest.raises(DegreeTooLargeError):
            steiner_min_tree(random_net(11, rng=random.Random(0)))

    def test_result_is_valid_tree(self):
        net = random_net(8, rng=random.Random(4))
        check_tree(steiner_min_tree(net), hanan=True)


class TestRsmtEngine:
    def test_small_is_exact(self):
        rng = random.Random(5)
        for _ in range(5):
            net = random_net(7, rng=rng)
            assert abs(rsmt(net).wirelength() - rsmt_cost(net)) < 1e-9

    def test_large_net_valid(self):
        net = random_net(30, rng=random.Random(6))
        t = rsmt(net)
        check_tree(t)

    def test_large_net_quality(self):
        """D&C + refinement should beat the plain star comfortably and
        stay within a modest factor of the HPWL lower bound."""
        rng = random.Random(7)
        for _ in range(3):
            net = random_net(25, rng=rng)
            w = rsmt(net).wirelength()
            assert w < net.star_wirelength()
            assert w <= 3.0 * hpwl(net.pins)

    def test_refine_never_worse(self):
        net = random_net(20, rng=random.Random(8))
        t = rsmt(net, refine_passes=0)
        improved, t2 = refine_wirelength(t)
        assert t2.wirelength() <= t.wirelength() + 1e-9

    def test_reattach_leaf_improves_or_none(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        from repro.routing.tree import RoutingTree

        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        out = reattach_leaf(t, 2)
        assert out is not None
        assert out.wirelength() < t.wirelength()

    def test_deterministic(self):
        net = random_net(18, rng=random.Random(9))
        assert rsmt(net).wirelength() == rsmt(net).wirelength()
