"""Unit tests for incremental attachment and the refinement passes."""

import random

import pytest

from repro.geometry.net import Net, random_net
from repro.geometry.point import Point, l1
from repro.routing.attach import TreeBuilder, grow_from_source
from repro.routing.refine import (
    apply_reattachment,
    best_reattachment,
    per_sink_shallow_refine,
    subtree_nodes,
    wirelength_refine,
)
from repro.routing.tree import RoutingTree


class TestTreeBuilder:
    def test_attach_direct(self):
        b = TreeBuilder((0, 0))
        idx = b.attach((5, 0))
        assert b.points[idx] == Point(5, 0)
        assert b.parent[idx] == 0

    def test_attach_via_edge_projection(self):
        b = TreeBuilder((0, 0))
        b.attach((10, 0))
        # (5, 3) projects onto the edge at (5, 0): cheaper than either end.
        idx = b.attach((5, 3))
        assert b.points[idx] == Point(5, 3)
        steiner = b.parent[idx]
        assert b.points[steiner] == Point(5, 0)

    def test_edge_split_preserves_connectivity(self):
        b = TreeBuilder((0, 0))
        b.attach((10, 0))
        b.attach((5, 3))
        net = Net.from_points((0, 0), [(10, 0), (5, 3)])
        tree = b.finish(net)
        assert tree.wirelength() == 13  # 10 + 3

    def test_attach_coincident_point_fuses(self):
        b = TreeBuilder((0, 0))
        i1 = b.attach((5, 5))
        i2 = b.attach((5, 5))
        assert i1 == i2

    def test_attach_to_node_explicit(self):
        b = TreeBuilder((0, 0))
        a = b.attach((10, 0))
        i = b.attach_to_node((10, 10), a)
        assert b.parent[i] == a

    def test_best_connection_prefers_projection(self):
        b = TreeBuilder((0, 0))
        b.attach((10, 0))
        cost, node, split_child, at = b.best_connection((5, 2))
        assert cost == 2
        assert split_child is not None
        assert at == Point(5, 0)


class TestGrowFromSource:
    def test_spans_all_pins(self):
        net = random_net(12, rng=random.Random(1))
        tree = grow_from_source(net)
        tree.validate()

    def test_respects_explicit_order(self):
        net = Net.from_points((0, 0), [(10, 0), (20, 0)])
        tree = grow_from_source(net, order=[1, 0])
        tree.validate()
        assert tree.wirelength() == 20

    def test_greedy_no_worse_than_star(self):
        for seed in range(5):
            net = random_net(9, rng=random.Random(seed))
            tree = grow_from_source(net)
            assert tree.wirelength() <= net.star_wirelength() + 1e-9


class TestSubtreeNodes:
    def test_includes_descendants(self, square_net):
        t = RoutingTree.star(square_net)
        assert subtree_nodes(t, 0) == {0, 1, 2, 3}
        assert subtree_nodes(t, 2) == {2}


class TestBestReattachment:
    def test_finds_cheaper_edge(self):
        # Sink wired to the source the long way; a parallel edge offers a
        # cheap projection.
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        pls = t.path_lengths()
        cand = best_reattachment(t, 2, pls)
        assert cand is not None
        cost, _, _, split_child, at = cand
        assert cost == 4
        assert at == Point(10, 0)

    def test_respects_max_arrival(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        pls = t.path_lengths()
        # Arrival via the projection is 14; a budget of 14 allows it, 13
        # does not.
        assert best_reattachment(t, 2, pls, max_arrival=14.0) is not None
        assert best_reattachment(t, 2, pls, max_arrival=13.0) is None

    def test_never_attaches_into_own_subtree(self):
        net = Net.from_points((0, 0), [(5, 0), (10, 0)])
        t = RoutingTree.from_edges(net, [((0, 0), (5, 0)), ((5, 0), (10, 0))])
        pls = t.path_lengths()
        cand = best_reattachment(t, 1, pls, require_cheaper=False)
        if cand is not None:
            _, _, node, split_child, _ = cand
            assert node not in subtree_nodes(t, 1)


class TestWirelengthRefine:
    def test_reduces_bad_tree(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        out = wirelength_refine(t)
        assert out.wirelength() < t.wirelength()
        out.validate()

    def test_honours_delay_cap(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        d0 = t.delay()
        out = wirelength_refine(t, delay_cap=d0)
        assert out.delay() <= d0 + 1e-9

    def test_input_not_mutated(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        )
        w0 = t.wirelength()
        wirelength_refine(t)
        assert t.wirelength() == w0

    def test_random_nets_never_worse(self):
        rng = random.Random(4)
        for _ in range(5):
            net = random_net(10, rng=rng)
            t = RoutingTree.star(net)
            out = wirelength_refine(t, delay_cap=t.delay())
            assert out.wirelength() <= t.wirelength() + 1e-9
            out.validate()


class TestShallowRefine:
    def test_keeps_every_sink_within_budget(self):
        rng = random.Random(9)
        for _ in range(5):
            net = random_net(9, rng=rng)
            t = RoutingTree.star(net)
            eps = 0.25
            out = per_sink_shallow_refine(t, eps)
            src = net.source
            for sink, pl in zip(net.sinks, out.sink_delays()):
                assert pl <= (1 + eps) * l1(src, sink) + 1e-6

    def test_apply_reattachment_splits_edge(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 4)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((0, 0), (10, 4))]
        ).copy()
        pls = t.path_lengths()
        cand = best_reattachment(t, 2, pls)
        _, _, node, split_child, at = cand
        n_before = len(t.points)
        apply_reattachment(t, 2, node, split_child, at)
        assert len(t.points) == n_before + (1 if split_child is not None else 0)
        t.validate()
