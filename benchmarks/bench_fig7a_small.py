"""Fig. 7(a) — averaged Pareto curves on small-degree nets.

Paper: curves averaged over the nets where SALT or YSD is non-optimal;
PatLabor's curve is the tightest and PatLabor is ~1.35x faster than SALT
(lookup tables). Here: same averaging rule on the shared pool; required
shape is PatLabor's curve at or below both baselines at every wirelength
budget. Wirelength is normalised by w(FLUTE-substitute), delay by d(CL).

Timed kernel: averaging the curves (the analysis step itself).
"""

from repro.eval.metrics import average_curves, curve_dominates
from repro.eval.reporting import render_curves

from conftest import write_artifact


def test_fig7a_small_nets(benchmark, small_comparisons, small_normalizers):
    # The paper averages over nets where some baseline is non-optimal.
    interesting = [
        r
        for r in small_comparisons
        if not (r.optimal("SALT") and r.optimal("YSD"))
    ]
    assert interesting, "no non-optimal nets — baselines too strong?"

    curves = benchmark(
        lambda: average_curves(
            interesting,
            small_normalizers.w_refs,
            small_normalizers.d_refs,
        )
    )
    rendered = render_curves(
        curves,
        title=(
            f"Fig. 7(a) — small nets, averaged over {len(interesting)} "
            f"non-optimal nets"
        ),
    )
    write_artifact("fig7a_small.txt", rendered)

    by_name = {c.method: c for c in curves}
    ours = by_name["PatLabor"]
    for other in ("SALT", "YSD"):
        assert curve_dominates(ours, by_name[other], slack=1e-9), (
            f"PatLabor's averaged curve is not tightest vs {other}"
        )
