"""Tests for the observability subsystem (``repro.obs``).

Covers the registry primitives, span nesting, exporters, snapshot
merging, and the two contracts the instrumentation must honour:

* **transparency** — routing results are bit-identical with
  instrumentation enabled vs disabled;
* **no-op cheapness** — the disabled path costs well under 5% of a
  degree-15 net's routing time.
"""

import json
import random
import time

import pytest

from repro import obs
from repro.core.batch import route_batch
from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.geometry.net import random_net


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts and ends with a disabled, empty registry."""
    obs.disable()
    obs.trace_disable()
    obs.events_disable()
    obs.reset()
    yield
    obs.disable()
    obs.trace_disable()
    obs.events_disable()
    obs.reset()


class TestRegistry:
    def test_disabled_primitives_record_nothing(self):
        obs.counter_add("c", 5)
        obs.gauge_set("g", 1.0)
        obs.timer_observe("t", 0.5)
        with obs.span("s"):
            pass
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["timers"] == {}
        assert snap["spans"] == {}

    def test_counters_gauges_timers(self):
        obs.enable()
        obs.counter_add("c", 2)
        obs.counter_add("c")
        obs.gauge_set("g", 3.0)
        obs.gauge_max("m", 5.0)
        obs.gauge_max("m", 4.0)
        for v in (0.1, 0.2, 0.3):
            obs.timer_observe("t", v)
        snap = obs.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"] == {"g": 3.0, "m": 5.0}
        t = snap["timers"]["t"]
        assert t["count"] == 3
        assert t["min_s"] == pytest.approx(0.1)
        assert t["max_s"] == pytest.approx(0.3)
        assert t["p50_s"] == pytest.approx(0.2)

    def test_span_nesting_builds_paths(self):
        obs.enable()
        with obs.span("outer"):
            assert obs.current_span_path() == "outer"
            with obs.span("inner"):
                assert obs.current_span_path() == "outer/inner"
        spans = obs.snapshot()["spans"]
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"]["total_s"] >= spans["outer/inner"]["total_s"]

    def test_snapshot_merge_accumulates(self):
        obs.enable()
        obs.counter_add("c", 1)
        obs.timer_observe("t", 0.25)
        obs.gauge_max("g", 2.0)
        snap = obs.get_registry().snapshot(with_samples=True)
        other = obs.Registry()
        other.merge_snapshot(snap)
        other.merge_snapshot(snap)
        merged = other.snapshot()
        assert merged["counters"]["c"] == 2
        assert merged["timers"]["t"]["count"] == 2
        assert merged["gauges"]["g"] == 2.0

    def test_reset_clears_everything(self):
        obs.enable()
        obs.counter_add("c")
        with obs.span("s"):
            pass
        obs.reset()
        snap = obs.snapshot()
        assert snap["counters"] == {} and snap["spans"] == {}


class TestSpanExceptions:
    def test_raising_span_still_closed_and_flagged(self):
        """A span whose body raises must close (stack unwound) and be
        flagged errored, so the tree and trace stay well-formed."""
        obs.enable()
        obs.trace_enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError("boom")
        # Stack fully unwound: a fresh span is a root again.
        assert obs.current_span_path() == ""
        spans = obs.snapshot()["spans"]
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"]["errors"] == 1
        assert spans["outer/inner"]["errors"] == 1
        # The Chrome-trace events carry the error flag too.
        traced = {
            e["args"]["path"]: e
            for e in obs.get_trace_collector().events()
        }
        assert traced["outer/inner"]["args"]["error"] is True
        assert traced["outer"]["args"]["error"] is True

    def test_non_raising_span_not_flagged(self):
        obs.enable()
        with obs.span("ok"):
            pass
        assert obs.snapshot()["spans"]["ok"]["errors"] == 0


class TestExporters:
    def test_prometheus_text_format(self):
        obs.enable()
        obs.counter_add("cache.hits", 7)
        obs.gauge_set("dw.max_front_size", 4)
        obs.timer_observe("eval.net_seconds", 0.5)
        text = obs.to_prometheus()
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "repro_cache_hits_total 7" in text
        assert "# TYPE repro_dw_max_front_size gauge" in text
        assert 'repro_eval_net_seconds_seconds{quantile="0.5"} 0.5' in text
        assert "repro_eval_net_seconds_seconds_count 1" in text

    def test_prometheus_counters_carry_total_suffix(self):
        obs.enable()
        obs.counter_add("dw.solves", 2)
        obs.counter_add("batch.nets", 9)
        for line in obs.to_prometheus().splitlines():
            if "counter" in line and line.startswith("# TYPE"):
                assert line.split()[2].endswith("_total")

    def test_prometheus_label_escaping(self):
        """Span paths with quotes/backslashes/newlines must be escaped per
        the exposition format, not emitted raw inside label="..."."""
        obs.enable()
        obs.get_registry().span_observe('a"b\\c\nd', 0.1)
        text = obs.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text
        assert '{path="a"b' not in text

    def test_prometheus_deterministic_ordering(self):
        obs.enable()
        for name in ("z.last", "a.first", "m.mid"):
            obs.counter_add(name, 1)
            obs.timer_observe(f"t.{name}", 0.1)
        first = obs.to_prometheus()
        assert first == obs.to_prometheus()
        counters = [
            line.split()[0]
            for line in first.splitlines()
            if line.endswith(" 1") and line.startswith("repro_") and "_total" in line
        ]
        assert counters == sorted(counters)

    def test_write_bench_json(self, tmp_path):
        obs.enable()
        obs.counter_add("cache.hits", 3)
        path = obs.write_bench_json(
            "unit", directory=tmp_path, extra={"nets_per_second": 12.5}
        )
        assert path.name == "BENCH_unit.json"
        payload = json.loads(path.read_text())
        assert payload["nets_per_second"] == 12.5
        assert payload["metrics"]["counters"]["cache.hits"] == 3

    def test_span_tree_report_renders_hierarchy(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
        report = obs.span_tree_report()
        lines = report.splitlines()
        assert any(line.lstrip().startswith("a ") for line in lines)
        assert any(line.startswith("  b") for line in lines)


def _fronts_key(front):
    """Everything that defines a solution, bit-exact."""
    return [
        (w, d, tuple((p.x, p.y) for p in tree.points), tuple(tree.parent))
        for w, d, tree in front
    ]


class TestEmptyBatchRatios:
    """Ratio metrics must read 0.0 — not raise — on empty inputs."""

    def test_empty_batch_result_ratios(self):
        from repro.core.batch import BatchResult

        empty = BatchResult(fronts={}, seconds=0.0)
        assert empty.cache_hit_rate == 0.0
        assert empty.nets_per_second == 0.0
        assert empty.total_solutions == 0

    def test_route_batch_empty_nets(self):
        result = route_batch([], use_cache=True)
        assert result.fronts == {}
        assert result.cache_hit_rate == 0.0
        assert result.nets_per_second == 0.0

    def test_route_batch_empty_nets_profiled_and_parallel(self):
        obs.enable()
        result = route_batch([], jobs=4, use_cache=True)
        obs.disable()
        assert result.metrics is not None
        assert result.metrics["cache_hit_rate"] == 0.0
        assert result.metrics["nets_per_second"] == 0.0
        assert result.metrics["workers"] == []

    def test_cached_router_hit_rate_before_any_route(self):
        from repro.core.cache import CachedRouter

        assert CachedRouter(PatLabor()).hit_rate == 0.0


class TestTransparency:
    def test_results_bit_identical_enabled_vs_disabled(self):
        net = random_net(15, rng=random.Random(7), name="deg15")
        baseline = PatLabor(config=PatLaborConfig(seed=0)).route(net)
        obs.enable()
        profiled = PatLabor(config=PatLaborConfig(seed=0)).route(net)
        obs.disable()
        assert _fronts_key(baseline) == _fronts_key(profiled)
        # And the profiled run actually recorded the pipeline.
        snap = obs.snapshot()
        assert snap["counters"]["patlabor.dispatch.local_search"] == 1
        assert "patlabor.route" in snap["spans"]

    def test_results_bit_identical_with_event_log_and_trace(self):
        """Event logging and trace capture observe, never steer.

        ``net_routed`` events are emitted by the engine's observability
        middleware, so the instrumented run routes through build_engine.
        """
        from repro.engine import EngineSpec, build_engine

        net = random_net(15, rng=random.Random(7), name="deg15")
        baseline = PatLabor(config=PatLaborConfig(seed=0)).route(net)
        obs.enable()
        obs.events_enable()
        obs.trace_enable()
        engine = build_engine(
            EngineSpec(
                router="patlabor",
                router_options={"config": PatLaborConfig(seed=0)},
            )
        )
        logged = engine.route(net)
        obs.disable()
        obs.events_disable()
        obs.trace_disable()
        assert _fronts_key(baseline) == _fronts_key(logged)
        events = obs.get_event_log().events()
        assert any(e["kind"] == "net_routed" for e in events)
        assert any(e.get("ph") == "X" for e in obs.get_trace_collector().events())

    def test_batch_results_identical_and_metrics_attached(self):
        rng = random.Random(8)
        nets = [random_net(5, rng=rng, name=f"n{i}") for i in range(6)]
        plain = route_batch(nets, use_cache=True)
        assert plain.metrics is None
        obs.enable()
        profiled = route_batch(nets, use_cache=True)
        obs.disable()
        assert profiled.metrics is not None
        assert profiled.metrics["nets"] == len(nets)
        for name in plain.fronts:
            assert [(w, d) for w, d, _ in plain.fronts[name]] == [
                (w, d) for w, d, _ in profiled.fronts[name]
            ]


class TestNoOpOverhead:
    def test_disabled_overhead_under_5_percent_degree15(self):
        """Bound the no-op path's cost on a degree-15 route.

        Control flow is identical enabled vs disabled (asserted above), so
        the number of primitive calls recorded by an enabled run equals
        the number of no-op calls a disabled run makes. Multiplying that
        count by a measured per-call no-op cost bounds the disabled-path
        overhead without flaky wall-clock A/B timing.
        """
        net = random_net(15, rng=random.Random(9), name="deg15")

        # Count instrumentation call sites executed per route.
        obs.enable()
        PatLabor(config=PatLaborConfig(seed=0)).route(net)
        events = obs.get_registry().events
        spans = sum(s["count"] for s in obs.snapshot()["spans"].values())
        obs.disable()
        obs.reset()
        assert events > 0

        # Per-call cost of the disabled primitives (span is the priciest:
        # a call plus a with-block on the shared no-op).
        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with obs.span("x"):
                pass
            obs.counter_add("c")
        per_call = (time.perf_counter() - t0) / (2 * reps)

        # Disabled route time (best of 3 to shed scheduler noise).
        best = min(
            _timed_route(net) for _ in range(3)
        )
        overhead = events * per_call
        assert spans <= events
        assert overhead < 0.05 * best, (
            f"no-op overhead {overhead:.6f}s vs route {best:.3f}s "
            f"({events} instrumentation calls)"
        )


def _timed_route(net):
    router = PatLabor(config=PatLaborConfig(seed=0))
    t0 = time.perf_counter()
    router.route(net)
    return time.perf_counter() - t0
