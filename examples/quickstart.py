#!/usr/bin/env python3
"""Quickstart: route one net and walk its Pareto frontier.

Run:  python examples/quickstart.py

Covers the 90% use case of the library:
1. build a :class:`repro.Net` from pin coordinates,
2. route it with :class:`repro.PatLabor`,
3. iterate the returned Pareto set of ``(wirelength, delay, tree)``,
4. inspect / draw one of the trees.
"""

from repro import Net, PatLabor
from repro.viz.ascii_art import pareto_ascii, tree_ascii


def main() -> None:
    # A degree-8 net: the first pin is the source (the driver), the rest
    # are sinks. Units are arbitrary (nm, tracks, ...).
    net = Net.from_points(
        source=(120, 40),
        sinks=[
            (20, 30),
            (35, 160),
            (90, 150),
            (160, 170),
            (185, 120),
            (60, 95),
            (180, 20),
        ],
        name="quickstart",
    )

    router = PatLabor()
    frontier = router.route(net)

    print(f"net {net.name!r}: degree {net.degree}")
    print(f"Pareto frontier has {len(frontier)} solution(s):\n")
    for i, (wirelength, delay, tree) in enumerate(frontier):
        print(
            f"  [{i}] wirelength = {wirelength:7.1f}   "
            f"delay = {delay:7.1f}   "
            f"steiner points = {tree.num_steiner}"
        )

    # The frontier is sorted by wirelength: [0] is the lightest tree,
    # [-1] is the fastest one. A router integrating this library picks
    # whichever matches its timing budget — no parameter tuning.
    print("\nPareto curve (wirelength ->, delay ^):")
    print(pareto_ascii(frontier))

    lightest = frontier[0][2]
    fastest = frontier[-1][2]
    print("\nlightest tree:")
    print(tree_ascii(lightest, width=56, height=16))
    print("\nfastest tree:")
    print(tree_ascii(fastest, width=56, height=16))

    # Every returned tree is a fully validated rectilinear Steiner tree.
    for _, _, tree in frontier:
        tree.validate()
    print("\nall trees validated ✔")


if __name__ == "__main__":
    main()
