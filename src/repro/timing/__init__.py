"""Delay models: the paper's path-length metric plus the Elmore extension."""

from .elmore import ElmoreDelay, RCParameters
from .pathlength import PathLengthDelay

__all__ = ["ElmoreDelay", "PathLengthDelay", "RCParameters"]
