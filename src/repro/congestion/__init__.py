"""Congestion extension: the paper's future-work metric, implemented.

Tri-objective (wirelength, delay, congestion) Pareto optimisation —
exact for small nets, embedding-optimised annotation for any net — plus
the chip-scale PathFinder negotiation subsystem
(:mod:`repro.congestion.negotiate`): thousands of nets on one
:class:`CapacityGrid`, each swapping between its precomputed frontier
points as congestion prices move.
"""

from .model import CapacityGrid, CongestionMap, scan_cells
from .negotiate import (
    IterationStats,
    NegotiatedRouter,
    NegotiationResult,
    NegotiatorConfig,
    Scenario,
)
from .pareto3 import (
    Solution3,
    dominates3,
    is_pareto_front3,
    pareto_filter3,
    project_wd,
    weakly_dominates3,
)
from .router import (
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)

__all__ = [
    "CapacityGrid",
    "CongestionMap",
    "IterationStats",
    "NegotiatedRouter",
    "NegotiationResult",
    "NegotiatorConfig",
    "Scenario",
    "Solution3",
    "congestion_annotated_front",
    "dominates3",
    "embed_min_congestion",
    "is_pareto_front3",
    "pareto_dw3",
    "pareto_filter3",
    "project_wd",
    "scan_cells",
    "weakly_dominates3",
]
