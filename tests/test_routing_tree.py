"""Unit tests for the routing tree data structure."""

import random

import pytest

from repro.exceptions import InvalidTreeError
from repro.geometry.net import Net, random_net
from repro.geometry.point import Point
from repro.routing.tree import RoutingTree


class TestConstruction:
    def test_star(self, square_net):
        t = RoutingTree.star(square_net)
        assert t.wirelength() == square_net.star_wirelength()
        assert t.delay() == square_net.delay_lower_bound()

    def test_from_edges_with_steiner(self, square_net):
        s = Point(10, 0)  # coincides with a pin here; use a true Steiner:
        net = Net.from_points((0, 0), [(10, 2), (10, 8)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 2)), ((10, 2), (10, 8))]
        )
        assert t.wirelength() == 12 + 6
        assert t.delay() == 18

    def test_from_edges_disconnected_raises(self):
        net = Net.from_points((0, 0), [(5, 5), (9, 9)])
        with pytest.raises(InvalidTreeError):
            RoutingTree.from_edges(net, [((0, 0), (5, 5))])

    def test_from_parent_validates(self, square_net):
        with pytest.raises(InvalidTreeError):
            RoutingTree.from_parent(
                square_net, list(square_net.pins), [0, 0, 1, 2]
            )  # root must have parent -1

    def test_cycle_detection(self, square_net):
        tree = RoutingTree.star(square_net)
        tree.parent[1] = 2
        tree.parent[2] = 1
        with pytest.raises(InvalidTreeError):
            tree.topological_order()

    def test_pin_mismatch_raises(self, square_net):
        pts = list(square_net.pins)
        pts[1] = Point(99, 99)
        with pytest.raises(InvalidTreeError):
            RoutingTree.from_parent(square_net, pts, [-1, 0, 0, 0])


class TestObjectives:
    def test_wirelength_is_edge_sum(self, square_net):
        t = RoutingTree.star(square_net)
        assert t.wirelength() == sum(t.edge_length(i) for i, _ in t.edges())

    def test_delay_is_max_sink_path(self, square_net):
        t = RoutingTree.star(square_net)
        assert t.delay() == max(t.sink_delays())

    def test_delay_le_wirelength(self):
        for seed in range(10):
            net = random_net(8, rng=random.Random(seed))
            t = RoutingTree.star(net)
            assert t.delay() <= t.wirelength() + 1e-9

    def test_chain_delay(self):
        net = Net.from_points((0, 0), [(5, 0), (10, 0)])
        t = RoutingTree.from_edges(net, [((0, 0), (5, 0)), ((5, 0), (10, 0))])
        assert t.delay() == 10
        assert t.sink_delays() == [5, 10]

    def test_objective_tuple(self, square_net):
        t = RoutingTree.star(square_net)
        assert t.objective() == (t.wirelength(), t.delay())

    def test_stretch_of_star_is_one(self, square_net):
        assert RoutingTree.star(square_net).stretch() == 1.0

    def test_cache_invalidation(self, square_net):
        t = RoutingTree.star(square_net)
        w0 = t.wirelength()
        t.points.append(Point(20, 20))
        t.parent.append(0)
        t._invalidate()
        assert t.wirelength() > w0


class TestStructure:
    def test_children(self, square_net):
        t = RoutingTree.star(square_net)
        ch = t.children()
        assert ch[0] == [1, 2, 3]
        assert ch[1] == []

    def test_topological_order_root_first(self, square_net):
        t = RoutingTree.star(square_net)
        order = t.topological_order()
        assert order[0] == 0
        pos = {u: i for i, u in enumerate(order)}
        for child, parent in t.edges():
            assert pos[parent] < pos[child]

    def test_num_steiner(self):
        net = Net.from_points((0, 0), [(10, 10)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((10, 0), (10, 10))]
        )
        assert t.num_steiner == 1

    def test_copy_is_independent(self, square_net):
        t = RoutingTree.star(square_net)
        c = t.copy()
        c.parent[1] = 2
        assert t.parent[1] == 0


class TestCompaction:
    def test_removes_pass_through_steiner(self):
        net = Net.from_points((0, 0), [(10, 0)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (4, 0)), ((4, 0), (10, 0))]
        )
        c = t.compacted()
        assert c.num_steiner == 0
        assert c.objective() == t.objective()

    def test_removes_dangling_steiner(self):
        net = Net.from_points((0, 0), [(10, 0)])
        t = RoutingTree.from_edges(
            net,
            [((0, 0), (10, 0)), ((10, 0), (10, 5))],  # dangling stub
        )
        c = t.compacted()
        assert c.num_steiner == 0
        assert c.wirelength() == 10  # the stub is dropped

    def test_keeps_branching_steiner(self):
        net = Net.from_points((0, 0), [(10, 5), (10, -5)])
        t = RoutingTree.from_edges(
            net,
            [((0, 0), (10, 0)), ((10, 0), (10, 5)), ((10, 0), (10, -5))],
        )
        c = t.compacted()
        assert c.num_steiner == 1

    def test_keeps_non_monotone_bend(self):
        # A degree-2 Steiner NOT between its neighbours changes lengths;
        # it must not be contracted.
        net = Net.from_points((0, 0), [(10, 0)])
        t = RoutingTree.from_edges(
            net, [((0, 0), (5, 5)), ((5, 5), (10, 0))]
        )
        c = t.compacted()
        assert c.num_steiner == 1
        assert c.wirelength() == t.wirelength() == 20

    def test_chain_of_redundant_steiners(self):
        net = Net.from_points((0, 0), [(10, 0)])
        t = RoutingTree.from_edges(
            net,
            [((0, 0), (2, 0)), ((2, 0), (5, 0)), ((5, 0), (8, 0)), ((8, 0), (10, 0))],
        )
        c = t.compacted()
        assert c.num_steiner == 0
        assert c.objective() == (10, 10)

    def test_objectives_never_change(self):
        rng = random.Random(5)
        from repro.baselines.rsmt import rsmt

        for _ in range(5):
            net = random_net(7, rng=rng)
            t = rsmt(net)
            c = t.compacted()
            assert abs(c.wirelength() - t.wirelength()) < 1e-9
            assert abs(c.delay() - t.delay()) < 1e-9

    def test_canonical_edge_set_ignores_representation(self):
        net = Net.from_points((0, 0), [(10, 0)])
        a = RoutingTree.from_edges(net, [((0, 0), (10, 0))])
        b = RoutingTree.from_edges(net, [((0, 0), (5, 0)), ((5, 0), (10, 0))])
        assert a.canonical_edge_set() == b.canonical_edge_set()
