"""Old-vs-new benchmark of the sorted-front and array Pareto kernels.

Not a paper artefact: this measures the engineering win of
:mod:`repro.core.frontier` over the enumerate-and-sort reference path,
and of the array-native engine (:mod:`repro.core.frontier_array`) over
both. Every net of an ICCAD-15-like degree sweep is solved three times
by :func:`repro.core.pareto_dw.pareto_dw` — with ``kernels=False`` (the
reference), ``kernels=True`` (the PR-5 tuple kernels), and
``representation="array"`` — asserting bit-identical ``(w, d)``
frontiers across all three and comparing

* wall time per degree,
* ``merge_candidates`` — merge-product solution tuples materialized
  (reference: ``a * b`` per transition; kernels: at most ``a + b - 1``),
* ``closure_allocations`` — closure-bucket tuples materialized
  (reference: every shifted candidate; kernels: dominance survivors).

Two acceptance bars are asserted on the highest degree, so the benchmark
itself fails when either optimization stops paying for itself:

* >= 3x allocation reduction (tuple kernels vs reference, PR 5),
* >= 5x wall-time speedup (array engine vs tuple kernels, this PR) —
  measured best-of-``TIMING_PASSES`` on warmed caches so one scheduler
  hiccup cannot flip the verdict.

Outputs:

* ``results/pareto_kernels.txt`` — the per-degree comparison table,
* ``results/BENCH_pareto_kernels.json`` — raw per-degree numbers,
* ``results/ledger.jsonl`` — one appended ``pareto_kernels`` run record
  (ratios use the ``_rate`` suffix so the perf gate reads them as
  higher-is-better; see ``repro.obs.ledger.metric_direction``).

Run directly (CI uses ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_pareto_kernels.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro import obs
from repro.core.pareto_dw import DWStats, pareto_dw
from repro.eval.benchmarks import Iccad15LikeSuite

RESULTS_DIR = Path(__file__).parent / "results"

#: Nets per degree. The highest degree is the headline workload; the
#: quick profile is what the CI perf-gate job runs.
FULL_PER_DEGREE = {4: 12, 5: 12, 6: 10, 7: 8, 8: 6, 9: 6}
#: The quick profile keeps the full degree-9 workload so its headline
#: array-speedup measurement is the same sweep the acceptance bar names.
QUICK_PER_DEGREE = {6: 3, 9: 6}

#: Acceptance bar (PR 5: ">= 3x fewer allocated candidate tuples in the
#: DW merge+closure path on the degree-9 workload").
MIN_HEADLINE_REDUCTION = 3.0

#: Acceptance bar (this PR: ">= 5x wall-time speedup of the array engine
#: over the PR-5 tuple kernels on the degree-9 sweep").
MIN_ARRAY_SPEEDUP = 5.0

#: Timed passes per path for the headline wall-time comparison; the best
#: pass counts, which makes the ratio robust to scheduler noise (the
#: array path's short wall time makes it disproportionately sensitive).
TIMING_PASSES = 5


def _allocated(stats: DWStats) -> int:
    """Candidate solution tuples materialized by merge + closure."""
    return stats.merge_candidates + stats.closure_allocations


def _run_path(
    nets, kernels: bool = True, representation: str = "tuple"
) -> Tuple[float, DWStats, List[List[Tuple[float, float]]]]:
    """Solve every net on one path; returns (seconds, stats, frontiers)."""
    stats = DWStats()
    fronts: List[List[Tuple[float, float]]] = []
    t0 = time.perf_counter()
    for net in nets:
        front = pareto_dw(
            net,
            with_trees=False,
            stats=stats,
            kernels=kernels,
            representation=representation,
        )
        fronts.append([(w, d) for w, d, _ in front])
    return time.perf_counter() - t0, stats, fronts


def _best_of(nets, passes: int, representation: str) -> float:
    """Best wall time of ``passes`` repeat solves (caches warmed)."""
    best = float("inf")
    for _ in range(passes):
        t0 = time.perf_counter()
        for net in nets:
            pareto_dw(net, with_trees=False, representation=representation)
        best = min(best, time.perf_counter() - t0)
    return best


def bench(per_degree: Dict[int, int], seed: int = 2015) -> Dict[str, object]:
    """The degree sweep; returns the per-degree and headline numbers."""
    suite = Iccad15LikeSuite(seed=seed)
    rows: List[Dict[str, float]] = []
    for degree in sorted(per_degree):
        nets = suite.small_nets(
            degrees=(degree,), per_degree=per_degree[degree]
        )[degree]
        ref_s, ref_stats, ref_fronts = _run_path(nets, kernels=False)
        ker_s, ker_stats, ker_fronts = _run_path(nets, kernels=True)
        arr_s, arr_stats, arr_fronts = _run_path(nets, representation="array")
        assert ker_fronts == ref_fronts, (
            f"kernel/reference frontier mismatch at degree {degree}"
        )
        assert arr_fronts == ref_fronts, (
            f"array/reference frontier mismatch at degree {degree}"
        )
        assert ker_stats.closure_extensions == ref_stats.closure_extensions
        assert ker_stats.merge_transitions == ref_stats.merge_transitions
        assert arr_stats.closure_extensions == ref_stats.closure_extensions
        assert arr_stats.merge_transitions == ref_stats.merge_transitions
        rows.append(
            {
                "degree": degree,
                "nets": len(nets),
                "ref_seconds": ref_s,
                "kernel_seconds": ker_s,
                "array_seconds": arr_s,
                "ref_merge_candidates": ref_stats.merge_candidates,
                "kernel_merge_candidates": ker_stats.merge_candidates,
                "ref_closure_allocations": ref_stats.closure_allocations,
                "kernel_closure_allocations": ker_stats.closure_allocations,
                "ref_allocated": _allocated(ref_stats),
                "kernel_allocated": _allocated(ker_stats),
                "array_allocated": _allocated(arr_stats),
            }
        )
    head = rows[-1]  # highest degree = headline workload
    # Headline wall-time comparison: dedicated best-of-N passes on the
    # already-solved (warm) highest-degree nets, so the recorded speedup
    # is not hostage to a single noisy pass.
    head_nets = suite.small_nets(
        degrees=(head["degree"],), per_degree=per_degree[head["degree"]]
    )[head["degree"]]
    tuple_best = _best_of(head_nets, TIMING_PASSES, "tuple")
    array_best = _best_of(head_nets, TIMING_PASSES, "array")
    return {
        "rows": rows,
        "headline_degree": head["degree"],
        "alloc_reduction": head["ref_allocated"] / head["kernel_allocated"],
        "merge_reduction": (
            head["ref_merge_candidates"] / head["kernel_merge_candidates"]
        ),
        "closure_reduction": (
            head["ref_closure_allocations"]
            / head["kernel_closure_allocations"]
        ),
        "speedup": head["ref_seconds"] / head["kernel_seconds"],
        "tuple_best_seconds": tuple_best,
        "array_best_seconds": array_best,
        "array_speedup": tuple_best / array_best,
    }


def render(result: Dict[str, object]) -> str:
    lines = [
        "Pareto kernels: reference vs tuple kernels vs array engine "
        "(pareto_dw)",
        "",
        f"{'deg':>4} {'nets':>5} {'ref_s':>8} {'kern_s':>8} {'arr_s':>8} "
        f"{'ref_alloc':>12} {'kern_alloc':>12} {'reduction':>10} {'speedup':>8}",
    ]
    for r in result["rows"]:
        lines.append(
            f"{r['degree']:>4} {r['nets']:>5} {r['ref_seconds']:>8.3f} "
            f"{r['kernel_seconds']:>8.3f} {r['array_seconds']:>8.3f} "
            f"{r['ref_allocated']:>12} "
            f"{r['kernel_allocated']:>12} "
            f"{r['ref_allocated'] / r['kernel_allocated']:>9.2f}x "
            f"{r['ref_seconds'] / r['kernel_seconds']:>7.2f}x"
        )
    lines += [
        "",
        f"headline (degree {result['headline_degree']}): "
        f"{result['alloc_reduction']:.2f}x fewer candidate tuples "
        f"(merge {result['merge_reduction']:.2f}x, "
        f"closure {result['closure_reduction']:.2f}x), "
        f"{result['speedup']:.2f}x wall-time speedup",
        f"array engine (best of {TIMING_PASSES}): tuple "
        f"{result['tuple_best_seconds']:.3f}s vs array "
        f"{result['array_best_seconds']:.3f}s = "
        f"{result['array_speedup']:.2f}x",
        f"acceptance bars: >= {MIN_HEADLINE_REDUCTION:.1f}x allocation "
        f"reduction, >= {MIN_ARRAY_SPEEDUP:.1f}x array speedup "
        f"on the headline degree",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI profile: degrees 6 and 9 only, 3 nets each",
    )
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=RESULTS_DIR,
        help="artifact/ledger directory (default: benchmarks/results)",
    )
    args = parser.parse_args(argv)

    per_degree = QUICK_PER_DEGREE if args.quick else FULL_PER_DEGREE
    result = bench(per_degree)

    report = render(result)
    args.results_dir.mkdir(exist_ok=True)
    txt_path = args.results_dir / "pareto_kernels.txt"
    txt_path.write_text(report + "\n", encoding="utf-8")
    print(report)
    print(f"\n[artifact written to {txt_path}]")

    json_path = args.results_dir / "BENCH_pareto_kernels.json"
    json_path.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"[raw numbers written to {json_path}]")

    head = result["rows"][-1]
    metrics = {
        # Deterministic for a fixed workload: what the perf gate watches.
        "kernels.alloc_reduction_rate": result["alloc_reduction"],
        "kernels.merge_reduction_rate": result["merge_reduction"],
        "kernels.closure_reduction_rate": result["closure_reduction"],
        "kernels.headline_allocated": float(head["kernel_allocated"]),
        # Timing (noisy on shared runners; informational + threshold-gated).
        "kernels.speedup_rate": result["speedup"],
        "kernels.headline_kernel_seconds": head["kernel_seconds"],
        "kernels.headline_ref_seconds": head["ref_seconds"],
        # Array engine vs the tuple kernels (best-of-N timing; the
        # headline of this PR's degree sweep).
        "kernels.array_speedup_rate": result["array_speedup"],
        "kernels.headline_array_seconds": result["array_best_seconds"],
        "kernels.headline_tuple_best_seconds": result["tuple_best_seconds"],
        "kernels.array_headline_allocated": float(head["array_allocated"]),
    }
    record = obs.make_record(
        metrics,
        name="pareto_kernels",
        config={
            "quick": args.quick,
            "per_degree": {str(k): v for k, v in sorted(per_degree.items())},
            "headline_degree": result["headline_degree"],
            "seed": 2015,
        },
    )
    ledger_path = obs.append_record(
        record, args.results_dir / "ledger.jsonl"
    )
    print(f"[run {record['run_id']} appended to {ledger_path}]")

    if result["alloc_reduction"] < MIN_HEADLINE_REDUCTION:
        print(
            f"FAIL: allocation reduction {result['alloc_reduction']:.2f}x "
            f"below the {MIN_HEADLINE_REDUCTION:.1f}x bar"
        )
        return 1
    if result["array_speedup"] < MIN_ARRAY_SPEEDUP:
        print(
            f"FAIL: array speedup {result['array_speedup']:.2f}x "
            f"below the {MIN_ARRAY_SPEEDUP:.1f}x bar"
        )
        return 1
    print("OK: allocation reduction and array speedup meet the bars")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
