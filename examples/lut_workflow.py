#!/usr/bin/env python3
"""Offline lookup-table workflow: generate once, serialise, route millions.

Run:  python examples/lut_workflow.py

Demonstrates the production deployment the paper describes in Section V-A:

1. generate lookup tables for small degrees (full enumeration),
2. save them to JSON and inspect the Table-II-style statistics,
3. reload in a fresh router and serve exact frontiers straight from the
   table — with timing that shows the point of doing this.
"""

import random
import tempfile
import time
from pathlib import Path

from repro import LookupTable, PatLabor, random_net
from repro.core.pareto_dw import pareto_dw
from repro.io.lut_io import load_lut, lut_file_size, save_lut


def main() -> None:
    # ---- 1. generate -----------------------------------------------------
    t0 = time.perf_counter()
    table = LookupTable.build(degrees=(4, 5))
    build_s = time.perf_counter() - t0
    print(f"built full tables for degrees 4-5 in {build_s:.1f}s")
    for n, st in sorted(table.stats.items()):
        print(
            f"  degree {n}: #Index = {st.num_index:4d}   "
            f"avg #Topo = {st.avg_topologies:5.2f}   "
            f"distinct topologies = {st.distinct_topologies}"
        )
    print(
        f"  topology pool: {len(table.pool)} stored, "
        f"{table.pool.dedup_ratio:.2f}x sharing from clustering"
    )

    # ---- 2. serialise ------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "patlabor_lut.json"
        save_lut(table, path)
        print(f"\nserialised to {path.name}: {lut_file_size(path) / 1024:.0f} KiB")

        # ---- 3. reload and route ------------------------------------------
        t0 = time.perf_counter()
        loaded = load_lut(path)
        print(f"reloaded in {time.perf_counter() - t0:.2f}s")

        router = PatLabor(lut=loaded)
        rng = random.Random(42)
        nets = [random_net(rng.choice((4, 5)), rng=rng) for _ in range(200)]

        t0 = time.perf_counter()
        fronts = [router.route(net) for net in nets]
        lut_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for net in nets[:20]:  # DW is slow; sample for the comparison
            pareto_dw(net)
        dw_s = (time.perf_counter() - t0) * len(nets) / 20

        print(
            f"\nrouted {len(nets)} nets from the table in {lut_s:.2f}s "
            f"({lut_s / len(nets) * 1000:.1f} ms/net)"
        )
        print(f"direct Pareto-DW would need ~{dw_s:.2f}s ({dw_s / lut_s:.1f}x more)")

        # Spot-check exactness against the DP.
        for net in nets[:10]:
            got = [(round(w, 6), round(d, 6)) for w, d, _ in router.route(net)]
            want = [
                (round(w, 6), round(d, 6))
                for w, d, _ in pareto_dw(net, with_trees=False)
            ]
            assert got == want
        print("table answers verified exact on a sample ✔")
        print(f"\ntotal solutions served: {sum(len(f) for f in fronts)}")


if __name__ == "__main__":
    main()
