"""On-disk formats: net files, lookup tables, experiment results."""

from .lut_io import load_lut, lut_file_size, save_lut
from .nets_format import load_nets, parse_nets, save_nets
from .results_io import append_results, load_results

__all__ = [
    "append_results",
    "load_lut",
    "load_nets",
    "load_results",
    "lut_file_size",
    "parse_nets",
    "save_lut",
    "save_nets",
]
