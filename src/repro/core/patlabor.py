"""PatLabor: the paper's practical Pareto router (Section V).

Dispatch by net degree:

* ``n <= 3`` — closed form (direct edge / median star; trivially a
  singleton frontier, which is why the paper omits these),
* ``4 <= n <= lambda`` — exact frontier from the lookup table (or directly
  from Pareto-DW when no table covers the degree),
* ``n > lambda`` — the local-search loop: seed with the RSMT, repeatedly
  pick the worst-delay tree in the Pareto set, choose ``lambda - 1`` pins
  with policy π, rebuild their topology exactly together with the source,
  reassemble full trees, post-process SALT-style, and keep the Pareto set.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..geometry.net import Net
from ..geometry.point import Point, l1
from ..obs import counter_add, gauge_max, span
from ..routing.attach import TreeBuilder
from ..routing.refine import wirelength_refine
from ..routing.tree import RoutingTree
from .frontier import merge_sorted_fronts, pareto_filter_sorted
from .pareto import Solution, clean_front
from .pareto_dw import pareto_dw
from .policy import SelectionPolicy

#: The paper's λ: nets with at most this many pins are solved exactly.
DEFAULT_LAMBDA = 9


@dataclass
class PatLaborConfig:
    """Tunables of the practical method (paper defaults where known)."""

    lam: int = DEFAULT_LAMBDA           # paper's λ = 9
    iterations: Optional[int] = None    # default: floor(n / λ) as in the paper
    post_refine: bool = True            # SALT-style post-processing
    max_front: int = 64                 # safety cap on |𝒯|
    seed: int = 0
    representation: str = "tuple"       # frontier kernels: "tuple" | "array"


class PatLabor:
    """The practical Pareto optimizer for timing-driven routing trees.

    Parameters
    ----------
    lut:
        Optional :class:`~repro.lut.table.LookupTable`. When provided and
        covering a net's degree, small nets are served from the table
        (missing patterns are solved and cached on demand); otherwise
        Pareto-DW computes the frontier directly — both are exact.
    config:
        :class:`PatLaborConfig`; ``lam`` is clamped to the table's covered
        degrees when a table is supplied.
    policy:
        Pin-selection policy π; defaults to the shipped trained weights.
    """

    #: Registry name under which :mod:`repro.engine` exposes this class.
    name = "patlabor"

    def __init__(
        self,
        lut=None,
        config: Optional[PatLaborConfig] = None,
        policy: Optional[SelectionPolicy] = None,
    ) -> None:
        self.lut = lut
        self.config = config or PatLaborConfig()
        if self.config.representation not in ("tuple", "array"):
            raise ValueError(
                "representation must be 'tuple' or 'array', got "
                f"{self.config.representation!r}"
            )
        self._filter = pareto_filter_sorted
        if self.config.representation == "array":
            from .frontier_array import HAVE_NUMPY, pareto_filter_sorted_array

            if HAVE_NUMPY:
                self._filter = pareto_filter_sorted_array
        self.rng = random.Random(self.config.seed)
        self.policy = policy or SelectionPolicy()

    @property
    def capabilities(self):
        """:class:`~repro.engine.protocol.RouterCapabilities` of this router.

        The frontier is exact up to the configured lambda; larger nets
        get the local-search approximation (no hard degree limit).
        """
        from ..engine.protocol import RouterCapabilities

        return RouterCapabilities(exact_up_to=self.config.lam)

    # ------------------------------------------------------------ dispatch

    def route(self, net: Net) -> List[Solution]:
        """The Pareto set of ``net``: solutions ``(w, d, tree)``.

        Exact (the full Pareto frontier) for ``net.degree <= lam``; a
        tight approximation above.

        Per-net ``net_routed`` events are emitted by the engine's
        observability middleware (:class:`repro.engine.ObservedRouter`),
        not here — route through :func:`repro.engine.build_engine` to get
        them. Instrumentation never influences results (bit-identical
        either way; see ``tests/test_obs.py``).
        """
        with span("patlabor.route"):
            return self._route_dispatch(net)

    def _route_dispatch(self, net: Net) -> List[Solution]:
        """Degree-based dispatch body of :meth:`route`."""
        if net.degree <= self.config.lam:
            return self.small_frontier(net)
        counter_add("patlabor.dispatch.local_search")
        return self.local_search(net)

    def dispatch_tier(self, net: Net) -> str:
        """Which tier :meth:`route` serves ``net`` from.

        Mirrors the dispatch logic without routing anything:
        ``closed_form`` (degree <= 3), ``lut`` (covered by the table),
        ``dw`` (exact DP), or ``local_search`` (degree > lambda).
        """
        n = net.degree
        if n > self.config.lam:
            return "local_search"
        if n <= 3:
            return "closed_form"
        if self.lut is not None and self.lut.covers(n):
            return "lut"
        return "dw"

    def small_frontier(self, net: Net) -> List[Solution]:
        """Exact frontier for a small net (LUT first, Pareto-DW fallback).

        Dispatch-tier counters (``patlabor.dispatch.*``) include the
        sub-nets local search sends back through this method.
        """
        if net.degree <= 3:
            from ..lut.table import _degree2_frontier, _degree3_frontier

            counter_add("patlabor.dispatch.closed_form")
            if net.degree == 2:
                return _degree2_frontier(net)
            return _degree3_frontier(net)
        if self.lut is not None and self.lut.covers(net.degree):
            counter_add("patlabor.dispatch.lut")
            with span("lut.lookup"):
                return self.lut.lookup(net)
        counter_add("patlabor.dispatch.dw")
        return pareto_dw(net, representation=self.config.representation)

    # -------------------------------------------------------- local search

    def local_search(
        self, net: Net, seed_tree: Optional[RoutingTree] = None
    ) -> List[Solution]:
        """The paper's local-search loop for ``n > lambda`` nets.

        ``seed_tree`` warm-starts the loop from an existing tree of
        ``net`` (the ECO path adapts the pre-edit tree); by default the
        search seeds from a fresh RSMT, the paper's configuration.
        """
        from ..baselines.rsmt import rsmt

        with span("patlabor.local_search"):
            if seed_tree is None:
                with span("patlabor.rsmt_seed"):
                    seed_tree = rsmt(net)
            w, d = seed_tree.objective()
            front: List[Solution] = [(w, d, seed_tree)]
            n = net.degree
            iters = self.config.iterations
            if iters is None:
                iters = max(1, n // self.config.lam)

            attempted: Set[AttemptKey] = set()
            for _ in range(iters):
                counter_add("patlabor.local_search.iterations")
                worst = max(front, key=lambda s: s[1])
                tree: RoutingTree = worst[2]
                with span("patlabor.policy_select"):
                    selection = self.policy.select(net, tree, self.config.lam - 1)
                counter_add("patlabor.local_search.policy_picks", len(selection))
                key = _attempt_key(worst, selection)
                if key in attempted:
                    # Same move would repeat: explore a random selection instead.
                    counter_add("patlabor.local_search.random_fallbacks")
                    selection = _shuffled_selection(net, self.config.lam - 1, self.rng)
                    key = _attempt_key(worst, selection)
                attempted.add(key)
                with span("patlabor.expand"):
                    # The maintained front is always sorted; only the new
                    # candidates need filtering before the linear union.
                    additions = self._expand(net, selection)
                    front = merge_sorted_fronts(
                        front, self._filter(additions)
                    )
                if len(front) > self.config.max_front:
                    # Truncate by wirelength but always keep the min-delay
                    # endpoint — dropping it would unanchor the fast end.
                    front = front[: self.config.max_front - 1] + [front[-1]]
            gauge_max("patlabor.front_size", len(front))
            return clean_front(front)

    def _expand(
        self, net: Net, selection: Sequence[int]
    ) -> List[Solution]:
        """One local-search step: rebuild the selected pins exactly and
        reassemble full trees around each sub-frontier topology.

        Returns only the *new* candidate solutions; callers union them
        into their maintained front (sorted fronts merge linearly via
        :func:`~repro.core.frontier.merge_sorted_fronts`)."""
        sub = Net.from_points(
            net.source,
            [net.sinks[i] for i in selection],
            name=f"{net.name}/ls",
        )
        sub_front = self.small_frontier(sub)
        out: List[Solution] = []
        rest = [
            net.sinks[i]
            for i in range(len(net.sinks))
            if i not in set(selection)
        ]
        with span("patlabor.reassemble"):
            for idx, (_, _, sub_tree) in enumerate(sub_front):
                full = reassemble(net, sub_tree, rest)
                if self.config.post_refine:
                    full = wirelength_refine(full, delay_cap=full.delay(), max_passes=2)
                w, d = full.objective()
                out.append((w, d, full))
                if idx == len(sub_front) - 1:
                    # The min-delay sub-topology also gets an arrival-aware
                    # reassembly, anchoring the shallow end of the front (the
                    # remaining pins attach on shortest paths, SALT-style).
                    shallow = reassemble(net, sub_tree, rest, mode="arrival")
                    if self.config.post_refine:
                        shallow = wirelength_refine(
                            shallow, delay_cap=shallow.delay(), max_passes=2
                        )
                    w, d = shallow.objective()
                    out.append((w, d, shallow))
        return out


def reassemble(
    net: Net, sub_tree: RoutingTree, rest: List[Point], mode: str = "wire"
) -> RoutingTree:
    """Grow a full-net tree around an exactly-solved sub-topology.

    Seeds a builder with the sub-tree's edges (rooted at the source) and
    Steiner-attaches the remaining pins:

    * ``mode="wire"`` — cheapest connection first (light trees),
    * ``mode="arrival"`` — smallest source→pin arrival first (shallow
      trees; each pin lands on a near-shortest path over the skeleton).
    """
    builder = TreeBuilder(net.source)
    index_map = {0: 0}
    for u in sub_tree.topological_order():
        p = sub_tree.parent[u]
        if p < 0:
            continue
        index_map[u] = builder.attach_to_node(sub_tree.points[u], index_map[p])
    pending = list(rest)
    if mode == "wire":
        while pending:
            best_i = min(
                range(len(pending)),
                key=lambda i: builder.best_connection(pending[i])[0],
            )
            builder.attach(pending.pop(best_i))
    elif mode == "arrival":
        # SALT-style shallow attachment: process pins farthest-first, and
        # give each the cheapest connection whose arrival stays within a
        # tight budget of its L1 bound (the source always qualifies, so
        # the result's delay matches the sub-tree's optimum / the bound).
        source = Point(float(net.source[0]), float(net.source[1]))
        pending.sort(key=lambda p: -l1(source, p))
        for p in pending:
            arrivals = _builder_arrivals(builder)
            budget = (1.0 + ARRIVAL_SLACK) * l1(source, p)
            node, split_child, at = _cheapest_within_budget(
                builder, arrivals, p, budget
            )
            _apply_builder_attachment(builder, p, node, split_child, at)
    else:
        raise ValueError(f"unknown reassembly mode {mode!r}")
    return builder.finish(net)


#: Per-sink arrival slack of the shallow reassembly variant: 2% over the
#: L1 bound buys substantial wire sharing at negligible delay cost.
ARRIVAL_SLACK = 0.02


def _builder_arrivals(builder: TreeBuilder) -> List[float]:
    """Source→node path length per builder node.

    Traverses root-outward (edge splits make node indices non-topological,
    so index order must not be trusted).
    """
    n = len(builder.points)
    children: List[List[int]] = [[] for _ in range(n)]
    for idx in range(1, n):
        children[builder.parent[idx]].append(idx)
    arrivals = [0.0] * n
    stack = [0]
    while stack:
        u = stack.pop()
        for c in children[u]:
            arrivals[c] = arrivals[u] + l1(builder.points[u], builder.points[c])
            stack.append(c)
    return arrivals


def _cheapest_within_budget(
    builder: TreeBuilder, arrivals: List[float], p: Point, budget: float
) -> Tuple[int, Optional[int], Point]:
    """Cheapest attachment of ``p`` whose arrival meets ``budget``.

    The source (arrival = L1 bound) always qualifies, so a feasible
    candidate is guaranteed. Returns ``(node, split_child, attach_point)``.
    """
    from ..geometry.bbox import BBox, project_onto

    pt = Point(float(p[0]), float(p[1]))
    best = None  # (cost, arrival, node, split_child, at)
    for u, pu in enumerate(builder.points):
        cost = l1(pu, pt)
        arrival = arrivals[u] + cost
        if arrival <= budget + 1e-9:
            if best is None or (cost, arrival) < (best[0], best[1]):
                best = (cost, arrival, u, None, pu)
    for child, parent in builder.edges():
        a, b = builder.points[child], builder.points[parent]
        box = BBox(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))
        q = project_onto(pt, box)
        if q == a or q == b:
            continue
        cost = l1(q, pt)
        arrival = arrivals[parent] + l1(builder.points[parent], q) + cost
        if arrival <= budget + 1e-9 and (
            best is None or (cost, arrival) < (best[0], best[1])
        ):
            best = (cost, arrival, parent, child, q)
    assert best is not None, "source attachment always meets the budget"
    return best[2], best[3], best[4]


def _apply_builder_attachment(
    builder: TreeBuilder,
    p: Point,
    node: int,
    split_child: Optional[int],
    at: Point,
) -> int:
    """Attach ``p`` under the chosen node / split edge of a builder."""
    target = node
    if split_child is not None:
        grand = builder.parent[split_child]
        steiner = len(builder.points)
        builder.points.append(at)
        builder.parent.append(grand)
        builder.parent[split_child] = steiner
        target = steiner
    return builder.attach_to_node(p, target)


#: Dedup key of one local-search move: the expanded tree's objective pair
#: plus the (sorted) pin selection.
AttemptKey = Tuple[Tuple[float, float], Tuple[int, ...]]


def _attempt_key(solution: Solution, selection: Sequence[int]) -> AttemptKey:
    """Stable identity of a local-search move.

    Keyed on the tree's *objective pair*, not ``id(tree)``: CPython
    reuses object ids after garbage collection, so an id-based key could
    silently equate a fresh tree with a dead one and suppress a legal
    move (or, conversely, retry a move already taken). Two trees with
    equal objectives are interchangeable for the search, so the objective
    pair is exactly the right granularity.
    """
    w, d, _tree = solution
    return ((w, d), tuple(sorted(selection)))


def _shuffled_selection(net: Net, k: int, rng: random.Random) -> List[int]:
    idx = list(range(len(net.sinks)))
    rng.shuffle(idx)
    return sorted(idx[:k])


def rollout_improvement(
    net: Net, selection: Sequence[int], lam: int
) -> Tuple[float, List[Tuple[float, float, float, float]]]:
    """Hypervolume gain of one local-search step with a fixed selection.

    Used by the policy trainer: runs a single :meth:`PatLabor._expand`
    against the RSMT seed and reports the hypervolume improvement plus the
    selected pins' features (in selection order, matching how the greedy
    policy would have scored them).
    """
    from ..baselines.rsmt import rsmt
    from .pareto import hypervolume
    from .policy import pin_features

    router = PatLabor(config=PatLaborConfig(lam=lam, post_refine=False))
    seed_tree = rsmt(net)
    w0, d0 = seed_tree.objective()
    base: List[Solution] = [(w0, d0, seed_tree)]
    reference = (2.0 * w0, 2.0 * d0)
    before = hypervolume(base, reference)
    after_front = merge_sorted_fronts(
        base, pareto_filter_sorted(router._expand(net, selection))
    )
    after = hypervolume(after_front, reference)
    delays = seed_tree.sink_delays()
    feats = []
    chosen: List[int] = []
    for i in selection:
        feats.append(pin_features(net, seed_tree, i, chosen, delays))
        chosen.append(i)
    return after - before, feats
