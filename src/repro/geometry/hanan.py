"""Hanan grids for rectilinear Steiner tree construction.

Hanan's theorem says an optimal RSMT exists on the grid induced by the
pins' x- and y-coordinates; the paper observes the same holds for every
Pareto-optimal timing-driven routing tree, so all exact algorithms in this
library search only Hanan-grid nodes.

The grid also defines the *symbolic* coordinate system of the lookup
tables: horizontal gaps ``l_1..l_{nx-1}`` and vertical gaps
``l_nx..l_{nx+ny-2}`` (the paper's ``l_1..l_{2n-2}`` when all pin
coordinates are distinct). Symbolic solutions are integer combinations of
these gaps.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from .net import Net
from .point import Point, PointLike

GridNode = Tuple[int, int]
"""A Hanan-grid node addressed by column and row index ``(ix, iy)``."""


class HananGrid:
    """The Hanan grid of a pin set.

    Parameters
    ----------
    pins:
        The pin positions. Coordinates may repeat; the grid keeps only the
        distinct sorted values.
    """

    def __init__(self, pins: Sequence[PointLike]) -> None:
        if not pins:
            raise ValueError("Hanan grid of an empty pin set")
        self.xs: List[float] = sorted({float(p[0]) for p in pins})
        self.ys: List[float] = sorted({float(p[1]) for p in pins})
        self.nx = len(self.xs)
        self.ny = len(self.ys)
        self._x_index: Dict[float, int] = {x: i for i, x in enumerate(self.xs)}
        self._y_index: Dict[float, int] = {y: i for i, y in enumerate(self.ys)}
        # Gap vectors: the symbolic edge lengths l_1..l_{nx+ny-2}.
        self.x_gaps: List[float] = [
            self.xs[i + 1] - self.xs[i] for i in range(self.nx - 1)
        ]
        self.y_gaps: List[float] = [
            self.ys[i + 1] - self.ys[i] for i in range(self.ny - 1)
        ]
        # Prefix sums so node-to-node L1 distance is O(1).
        self._px: List[float] = [0.0]
        for g in self.x_gaps:
            self._px.append(self._px[-1] + g)
        self._py: List[float] = [0.0]
        for g in self.y_gaps:
            self._py.append(self._py[-1] + g)
        self._pin_nodes: List[GridNode] = [
            (self._x_index[float(p[0])], self._y_index[float(p[1])]) for p in pins
        ]

    @classmethod
    def of_net(cls, net: Net) -> "HananGrid":
        """Hanan grid spanned by every pin of ``net`` (source included)."""
        return cls(net.pins)

    # ------------------------------------------------------------------ nodes

    @property
    def num_nodes(self) -> int:
        """Total node count ``nx * ny``."""
        return self.nx * self.ny

    def nodes(self) -> Iterator[GridNode]:
        """All grid nodes in column-major order."""
        for ix in range(self.nx):
            for iy in range(self.ny):
                yield (ix, iy)

    def point(self, node: GridNode) -> Point:
        """Real coordinates of a grid node."""
        return Point(self.xs[node[0]], self.ys[node[1]])

    def node_of(self, p: PointLike) -> GridNode:
        """Grid node at exactly point ``p`` (which must be on the grid)."""
        try:
            return (self._x_index[float(p[0])], self._y_index[float(p[1])])
        except KeyError:
            raise KeyError(f"point {p} is not a Hanan grid node") from None

    def pin_nodes(self) -> List[GridNode]:
        """Grid node of each pin, in the pin order given at construction."""
        return list(self._pin_nodes)

    def dist(self, a: GridNode, b: GridNode) -> float:
        """L1 distance between two grid nodes."""
        return abs(self._px[a[0]] - self._px[b[0]]) + abs(
            self._py[a[1]] - self._py[b[1]]
        )

    def flat_index(self, node: GridNode) -> int:
        """Row index of a node in :meth:`distance_matrix` (``ix * ny + iy``)."""
        return node[0] * self.ny + node[1]

    def distance_matrix(self) -> List[List[float]]:
        """Dense all-pairs L1 node distances, indexed by :meth:`flat_index`.

        ``distance_matrix()[flat_index(a)][flat_index(b)] == dist(a, b)``
        bit-for-bit: both compute ``|px_a - px_b| + |py_a - py_b|`` over
        the same prefix sums with the same IEEE operations. The matrix is
        built with one NumPy broadcast (pure-Python fallback when NumPy is
        unavailable) and returned as nested Python lists so hot loops pay
        plain ``list`` indexing instead of a per-pair method call —
        Pareto-DW's closure performs ~2M such lookups per profile run.

        Memory is ``(nx · ny)²`` floats — at the exact DP's degree ceiling
        (12 pins) that is at most ``144² ≈ 20k`` entries.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a hard dependency
            n = self.nx * self.ny
            px, py = self._px, self._py
            flat = [(px[i // self.ny], py[i % self.ny]) for i in range(n)]
            return [
                [abs(ax - bx) + abs(ay - by) for bx, by in flat]
                for ax, ay in flat
            ]
        px = np.asarray(self._px)
        py = np.asarray(self._py)
        dx = np.abs(px[:, None] - px[None, :])  # (nx, nx)
        dy = np.abs(py[:, None] - py[None, :])  # (ny, ny)
        full = dx[:, None, :, None] + dy[None, :, None, :]
        n = self.nx * self.ny
        return full.reshape(n, n).tolist()

    def neighbors(self, node: GridNode) -> Iterator[GridNode]:
        """The up-to-four orthogonal neighbours of a node."""
        ix, iy = node
        if ix > 0:
            yield (ix - 1, iy)
        if ix + 1 < self.nx:
            yield (ix + 1, iy)
        if iy > 0:
            yield (ix, iy - 1)
        if iy + 1 < self.ny:
            yield (ix, iy + 1)

    # ------------------------------------------------- symbolic edge lengths

    @property
    def num_params(self) -> int:
        """Number of symbolic edge-length parameters ``(nx-1) + (ny-1)``."""
        return (self.nx - 1) + (self.ny - 1)

    def gap_vector(self) -> List[float]:
        """Concrete values of ``l_1..l_{num_params}`` for this grid."""
        return list(self.x_gaps) + list(self.y_gaps)

    def symbolic_dist(self, a: GridNode, b: GridNode) -> Tuple[int, ...]:
        """Distance between nodes as a usage-count vector over the gaps.

        Entry ``k`` counts how many times gap ``l_{k+1}`` appears on any
        monotone rectilinear path from ``a`` to ``b``.
        """
        counts = [0] * self.num_params
        x0, x1 = sorted((a[0], b[0]))
        for k in range(x0, x1):
            counts[k] = 1
        y0, y1 = sorted((a[1], b[1]))
        off = self.nx - 1
        for k in range(y0, y1):
            counts[off + k] = 1
        return tuple(counts)

    # ------------------------------------------------- pruning support (L2)

    def corner_nodes(self) -> List[GridNode]:
        """Nodes prunable by Lemma 2: empty-quadrant corner nodes.

        A node ``v`` is a lower-left corner node when no pin ``p`` satisfies
        ``p.x <= v.x and p.y <= v.y``; the other three corners are
        symmetric. Such nodes can never be useful Steiner points because
        sliding the node towards the pins shortens every incident path.
        Pins themselves are never corner nodes (each pin witnesses its own
        quadrant).
        """
        pins = [self.point(n) for n in self._pin_nodes]
        out: List[GridNode] = []
        for node in self.nodes():
            x, y = self.point(node)
            ll = lr = ul = ur = True
            for px, py in pins:
                if px <= x and py <= y:
                    ll = False
                if px >= x and py <= y:
                    lr = False
                if px <= x and py >= y:
                    ul = False
                if px >= x and py >= y:
                    ur = False
                if not (ll or lr or ul or ur):
                    break
            if ll or lr or ul or ur:
                out.append(node)
        return out

    def active_nodes(self) -> List[GridNode]:
        """All nodes that survive Lemma 2 pruning (always includes pins)."""
        pruned = set(self.corner_nodes())
        return [n for n in self.nodes() if n not in pruned]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HananGrid({self.nx}x{self.ny})"
