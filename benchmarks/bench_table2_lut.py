"""Table II — lookup-table generation statistics.

Paper (16-core C++): degrees 4–9 fully enumerated, 483,472 index groups,
246 MB, 4.76 h. Pure-Python scaling: degrees 4–5 regenerated here in-
process, degree 6 taken from the *shipped* fully-enumerated table
(579 groups, generated offline in ~2 CPU-minutes — avg #Topo 10.6 vs the
paper's 10.67 at degree 6), degree 7 sampled; #Index extrapolates from
exact orbit counting.

Timed kernel: solving a single degree-5 canonical pattern symbolically.
"""

from repro.eval.reporting import render_table2
from repro.io.lut_io import lut_file_size, save_lut
from repro.lut.default import DATA_FILE, default_table
from repro.lut.generator import count_canonical_patterns, solve_pattern
from repro.lut.table import LookupTable

from conftest import write_artifact

SAMPLED = {7: 8}


def test_table2_lut_generation(benchmark, tmp_path_factory):
    table = LookupTable.build(degrees=(4, 5))
    # Degree 6: shipped full enumeration (counted offline as full).
    shipped = default_table()
    table.entries[6] = shipped.entries[6]
    table.stats[6] = shipped.stats[6]
    for degree, limit in SAMPLED.items():
        sampled = LookupTable.build(
            degrees=(degree,), limit_per_degree=limit, stride=500
        )
        table.entries[degree] = sampled.entries[degree]
        st = sampled.stats[degree]
        st.num_index = count_canonical_patterns(degree)  # full orbit count
        st.sampled = True
        table.stats[degree] = st

    out_dir = tmp_path_factory.mktemp("lut")
    path = out_dir / "table2_lut.json"
    save_lut(table, path)
    size_mb = lut_file_size(path) / 1e6

    stats = [table.stats[n] for n in sorted(table.stats)]
    rendered = render_table2(stats)
    rendered += (
        f"\nserialized size (4-6 full, 7 sampled): {size_mb:.2f} MB"
        f"\nshipped table file: {DATA_FILE.name} "
        f"({lut_file_size(DATA_FILE) / 1e6:.2f} MB)"
        f"\ninterned topology pool (this run): {len(table.pool)} distinct "
        f"(dedup ratio {table.pool.dedup_ratio:.2f}x)"
    )
    write_artifact("table2_lut.txt", rendered)

    # Shape assertions mirroring the paper's table:
    # #Index grows steeply with degree...
    assert table.stats[5].num_index > table.stats[4].num_index
    assert table.stats[6].num_index > table.stats[5].num_index
    assert table.stats[7].num_index > table.stats[6].num_index
    # ...and so does the average number of stored topologies.
    assert table.stats[5].avg_topologies > table.stats[4].avg_topologies
    assert table.stats[6].avg_topologies > table.stats[5].avg_topologies
    # Degree-6 average topology count lands near the paper's 10.67.
    assert 7.0 <= table.stats[6].avg_topologies <= 14.0
    # Clustering pays: topologies are shared across index groups.
    assert table.pool.dedup_ratio > 1.2

    benchmark(lambda: solve_pattern((2, 0, 3, 1, 4), 2))
