"""Incremental tree construction: greedy Steiner attachment onto a partial tree.

Several algorithms (the FLUTE-substitute RSMT engine, SALT refinement, and
PatLabor's local-search reassembly) need the same primitive: connect a new
point to a partial tree as cheaply as possible. The cheapest rectilinear
connection to an existing *edge* ``(a, b)`` is the L1 distance from the
point to the bounding box of ``a`` and ``b`` — any monotone embedding of
the edge can be detoured through the projection ``q`` at zero extra cost,
since ``q`` satisfies ``||a-q|| + ||q-b|| = ||a-b||``.

All created Steiner points combine existing node coordinates with the new
point's coordinates, so finished trees stay on the Hanan grid of their pin
set.

:class:`TreeBuilder` relaxes the :class:`RoutingTree` invariant that pins
occupy the first node slots, which lets pins be attached in any order;
:meth:`TreeBuilder.finish` converts to a validated :class:`RoutingTree`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..geometry.bbox import BBox, project_onto
from ..geometry.net import Net
from ..geometry.point import Point, PointLike, l1
from .tree import RoutingTree


class TreeBuilder:
    """A mutable rooted tree of points, grown by cheapest attachment."""

    def __init__(self, root: PointLike) -> None:
        self.points: List[Point] = [Point(float(root[0]), float(root[1]))]
        self.parent: List[int] = [-1]

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.points)

    def edges(self) -> List[Tuple[int, int]]:
        """(child, parent) index pairs."""
        return [(i, p) for i, p in enumerate(self.parent) if p >= 0]

    def best_connection(
        self, p: PointLike
    ) -> Tuple[float, int, Optional[int], Point]:
        """Cheapest attachment of ``p``.

        Returns ``(cost, node_index, split_child, attach_point)``:
        attach directly to ``node_index`` when ``split_child`` is None,
        otherwise split the edge ``(split_child -> parent)`` at
        ``attach_point`` first.
        """
        pt = Point(float(p[0]), float(p[1]))
        best_cost = float("inf")
        best_node = 0
        best_split: Optional[int] = None
        best_at = self.points[0]
        for i, node in enumerate(self.points):
            c = l1(pt, node)
            if c < best_cost:
                best_cost, best_node, best_split, best_at = c, i, None, node
        for child, parent in self.edges():
            a, b = self.points[child], self.points[parent]
            box = BBox(min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y))
            q = project_onto(pt, box)
            c = l1(pt, q)
            if c < best_cost - 1e-12 and q != a and q != b:
                best_cost, best_node, best_split, best_at = c, -1, child, q
        return best_cost, best_node, best_split, best_at

    # ----------------------------------------------------------- mutation

    def attach(self, p: PointLike) -> int:
        """Attach ``p`` via the cheapest connection; return its node index."""
        pt = Point(float(p[0]), float(p[1]))
        cost, node, split_child, at = self.best_connection(pt)
        if split_child is not None:
            grand = self.parent[split_child]
            steiner = len(self.points)
            self.points.append(at)
            self.parent.append(grand)
            self.parent[split_child] = steiner
            node = steiner
        if cost == 0.0 and self.points[node] == pt:
            return node
        idx = len(self.points)
        self.points.append(pt)
        self.parent.append(node)
        return idx

    def attach_to_node(self, p: PointLike, node: int) -> int:
        """Attach ``p`` directly under an explicit existing node."""
        pt = Point(float(p[0]), float(p[1]))
        if self.points[node] == pt:
            return node
        idx = len(self.points)
        self.points.append(pt)
        self.parent.append(node)
        return idx

    def add_edge_chain(self, a: PointLike, b: PointLike) -> None:
        """Ensure both endpoints exist and are connected (used for seeding
        a builder from an existing tree's edge list). ``a`` must already be
        in the builder; ``b`` is attached directly under it."""
        pa = Point(float(a[0]), float(a[1]))
        try:
            ia = self.points.index(pa)
        except ValueError:
            raise ValueError(f"chain start {pa} not in builder") from None
        self.attach_to_node(b, ia)

    # ------------------------------------------------------------- finish

    def finish(self, net: Net) -> RoutingTree:
        """Convert to a validated :class:`RoutingTree` spanning ``net``."""
        edges = [
            (self.points[i], self.points[p]) for i, p in self.edges()
        ]
        if not edges:
            # Degenerate: a single-node builder (degree-2 net attaches the
            # sink, so this only happens if finish() is called too early).
            edges = [(net.source, net.source)]
        return RoutingTree.from_edges(net, edges, extra_points=self.points)


def grow_from_source(net: Net, order: Optional[List[int]] = None) -> RoutingTree:
    """Greedy Steiner growth: start at the source, repeatedly attach the
    cheapest remaining sink (or follow ``order``, a list of sink indices).

    This is the Prim-with-steinerisation construction used as the fallback
    RSMT heuristic and as PatLabor's reattachment step.
    """
    builder = TreeBuilder(net.source)
    remaining = list(order) if order is not None else None
    pending = {i: s for i, s in enumerate(net.sinks)}
    while pending:
        if remaining is not None:
            i = remaining.pop(0)
        else:
            i = min(
                pending,
                key=lambda j: builder.best_connection(pending[j])[0],
            )
        builder.attach(pending.pop(i))
    return builder.finish(net)
