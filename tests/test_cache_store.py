"""Tests for the persistent cache tier (repro.core.cache_store)."""

import random
import subprocess
import sys
from pathlib import Path

from repro.core.cache import CachedRouter, canonical_key
from repro.core.cache_store import PersistentStore, key_to_text
from repro.core.patlabor import PatLabor
from repro.geometry.net import random_net


def _front_bits(front):
    """A front as exact comparable data: objectives and tree geometry."""
    return [
        (
            w,
            d,
            tuple((p.x, p.y) for p in tree.points),
            tuple(tree.parent),
        )
        for w, d, tree in front
    ]


class TestPersistentStore:
    def test_round_trip_is_bit_identical(self, tmp_path):
        net = random_net(6, rng=random.Random(11))
        front = PatLabor().route(net)
        key, t_query = canonical_key(net)
        store = PersistentStore(tmp_path / "s.sqlite")
        assert store.put(key, net, t_query, list(front))
        entry = store.get(key)
        assert entry is not None
        got_net, got_t, got_front = entry
        assert tuple((p.x, p.y) for p in got_net.pins) == tuple(
            (p.x, p.y) for p in net.pins
        )
        assert got_t == t_query
        assert _front_bits(got_front) == _front_bits(front)
        store.close()

    def test_append_only_first_writer_wins(self, tmp_path):
        net = random_net(5, rng=random.Random(12))
        front = PatLabor().route(net)
        key, t = canonical_key(net)
        store = PersistentStore(tmp_path / "s.sqlite")
        assert store.put(key, net, t, list(front))
        # A second put under the same key is ignored, not an error.
        assert store.put(key, net, t, list(front[:1]))
        entry = store.get(key)
        assert entry is not None and len(entry[2]) == len(front)
        assert len(store) == 1
        store.close()

    def test_objective_only_fronts_are_not_stored(self, tmp_path):
        net = random_net(4, rng=random.Random(13))
        key, t = canonical_key(net)
        store = PersistentStore(tmp_path / "s.sqlite")
        assert not store.put(key, net, t, [(1.0, 2.0, None)])
        assert store.get(key) is None
        store.close()

    def test_cross_process_round_trip(self, tmp_path):
        # Write in a subprocess, hit in the parent: keys and payloads must
        # be byte-identical across interpreter instances.
        db = tmp_path / "s.sqlite"
        script = (
            "import random\n"
            "from repro.core.cache import canonical_key\n"
            "from repro.core.cache_store import PersistentStore\n"
            "from repro.core.patlabor import PatLabor\n"
            "from repro.geometry.net import random_net\n"
            "net = random_net(5, rng=random.Random(14))\n"
            "front = PatLabor().route(net)\n"
            "key, t = canonical_key(net)\n"
            f"store = PersistentStore({str(db)!r})\n"
            "assert store.put(key, net, t, list(front))\n"
            "store.close()\n"
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        net = random_net(5, rng=random.Random(14))
        key, _t = canonical_key(net)
        store = PersistentStore(db, readonly=True)
        entry = store.get(key)
        assert entry is not None
        assert _front_bits(entry[2]) == _front_bits(PatLabor().route(net))
        assert store.hits == 1

    def test_corrupt_file_degrades_to_misses(self, tmp_path):
        db = tmp_path / "s.sqlite"
        db.write_bytes(b"this is not a sqlite database at all\x00\x01")
        store = PersistentStore(db)
        net = random_net(4, rng=random.Random(15))
        key, t = canonical_key(net)
        assert store.get(key) is None
        assert not store.healthy
        assert not store.put(key, net, t, list(PatLabor().route(net)))
        assert store.misses >= 1

    def test_truncated_store_degrades_to_misses(self, tmp_path):
        db = tmp_path / "s.sqlite"
        net = random_net(5, rng=random.Random(16))
        key, t = canonical_key(net)
        store = PersistentStore(db)
        store.put(key, net, t, list(PatLabor().route(net)))
        store.close()
        # Chop the file mid-way: a torn write / partial copy.
        data = db.read_bytes()
        db.write_bytes(data[: len(data) // 2])
        reopened = PersistentStore(db)
        assert reopened.get(key) is None  # miss, never a crash

    def test_torn_payload_is_a_miss(self, tmp_path):
        import sqlite3

        db = tmp_path / "s.sqlite"
        store = PersistentStore(db)
        net = random_net(4, rng=random.Random(17))
        key, t = canonical_key(net)
        store.put(key, net, t, list(PatLabor().route(net)))
        store.close()
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE entries SET payload = ? WHERE key = ?",
            ('{"v": 1, "net":', key_to_text(key)),
        )
        conn.commit()
        conn.close()
        reopened = PersistentStore(db, readonly=True)
        assert reopened.get(key) is None
        assert reopened.healthy  # the file is fine, only the row is torn

    def test_readonly_store_never_writes(self, tmp_path):
        db = tmp_path / "s.sqlite"
        store = PersistentStore(db, readonly=True)
        net = random_net(4, rng=random.Random(18))
        key, t = canonical_key(net)
        assert not store.put(key, net, t, list(PatLabor().route(net)))
        assert not db.exists()
        assert not store.lock_path.exists()

    def test_lifetime_stats_accumulate_across_sessions(self, tmp_path):
        db = tmp_path / "s.sqlite"
        net = random_net(5, rng=random.Random(19))
        key, t = canonical_key(net)
        for _round in range(2):
            store = PersistentStore(db)
            if store.get(key) is None:
                store.put(key, net, t, list(PatLabor().route(net)))
            store.close()  # close() flushes session counters
        stats = PersistentStore(db, readonly=True).stats()
        assert stats["total_misses"] == 1
        assert stats["total_puts"] == 1
        assert stats["total_hits"] == 1
        assert stats["entries"] == 1
        assert stats["healthy"]


class TestCachedRouterStoreTier:
    def test_store_hit_is_bit_identical_to_fresh_solve(self, tmp_path):
        db = tmp_path / "s.sqlite"
        net = random_net(6, rng=random.Random(21))
        warm = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        baseline = warm.route(net)
        warm.close()
        # A fresh process-equivalent: empty LRU, same store file.
        cold = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        served = cold.route(net)
        assert cold.store_hits == 1 and cold.misses == 0
        assert _front_bits(served) == _front_bits(baseline)
        assert _front_bits(served) == _front_bits(PatLabor().route(net))
        cold.close()

    def test_store_hit_serves_dihedral_images(self, tmp_path):
        db = tmp_path / "s.sqlite"
        from repro.geometry.net import Net

        net = random_net(5, rng=random.Random(22))
        mirrored = Net(
            pins=tuple((-p.x, p.y) for p in net.pins),  # type: ignore[arg-type]
            name="mirrored",
        )
        warm = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        base = warm.route(net)
        warm.close()
        cold = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        served = cold.route(mirrored)
        assert cold.store_hits == 1
        assert [(w, d) for w, d, _ in served] == [(w, d) for w, d, _ in base]
        for _w, _d, tree in served:
            tree.validate()
            assert tree.net.key() == mirrored.key()
        cold.close()

    def test_lru_eviction_recovers_from_store(self, tmp_path):
        # Capacity-1 LRU over a store: an evicted entry must come back as
        # a *store* hit (not a re-route), then be resident again.
        db = tmp_path / "s.sqlite"
        rng = random.Random(23)
        a, b = (random_net(4, rng=rng) for _ in range(2))
        router = CachedRouter(
            PatLabor(), max_entries=1, canonicalize="symmetry", store=db
        )
        router.route(a)
        router.route(b)  # evicts a from memory; both are on disk
        assert router.evictions == 1
        router.route(a)
        assert router.store_hits == 1 and router.misses == 2
        router.route(a)  # promoted by the store hit: now a memory hit
        assert router.hits == 1
        assert router.store_hit_rate == 1 / 3
        router.close()

    def test_memory_tier_shields_store(self, tmp_path):
        db = tmp_path / "s.sqlite"
        net = random_net(5, rng=random.Random(24))
        router = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        router.route(net)
        router.route(net)
        router.route(net)
        # Repeats are memory hits; the store saw exactly one get + one put.
        assert router.hits == 2 and router.store_hits == 0
        assert router.store is not None
        assert router.store.misses == 1 and router.store.puts == 1
        router.close()

    def test_degraded_store_keeps_routing(self, tmp_path):
        db = tmp_path / "s.sqlite"
        db.write_bytes(b"garbage")
        router = CachedRouter(PatLabor(), canonicalize="symmetry", store=db)
        net = random_net(4, rng=random.Random(25))
        front = router.route(net)
        assert front and router.misses == 1
        assert router.store is not None and not router.store.healthy
        router.close()

    def test_engine_spec_wires_store(self, tmp_path):
        from repro.engine import EngineSpec, build_engine

        db = tmp_path / "s.sqlite"
        engine = build_engine(
            EngineSpec(router="patlabor", cache="symmetry",
                       cache_store=str(db))
        )
        net = random_net(4, rng=random.Random(26))
        engine.route(net)
        close = getattr(engine, "close", None)
        assert callable(close)
        close()
        assert db.exists()
        again = build_engine(
            EngineSpec(router="patlabor", cache="symmetry",
                       cache_store=str(db))
        )
        again.route(net)
        assert getattr(again, "store_hits") == 1

    def test_engine_spec_rejects_store_without_cache(self):
        import pytest

        from repro.engine import EngineSpec, build_engine

        with pytest.raises(ValueError, match="cache_store"):
            build_engine(EngineSpec(router="patlabor", cache=None,
                                    cache_store="x.sqlite"))


class TestCacheStatsCli:
    """`repro cache stats`: store report, --json, and the daemon section."""

    def _seed_store(self, tmp_path):
        db = tmp_path / "cli.sqlite"
        store = PersistentStore(db)
        net = random_net(4, rng=random.Random(71))
        key, transform = canonical_key(net)
        store.put(key, net, transform, list(PatLabor().route(net)))
        assert store.get(key) is not None               # one hit
        other = random_net(5, rng=random.Random(73))
        assert store.get(canonical_key(other)[0]) is None  # one miss
        store.close()        # flushes lifetime counters
        return db

    def test_json_report_fields(self, tmp_path, capsys):
        import json

        from repro.cli import main

        db = self._seed_store(tmp_path)
        assert main(["cache", "stats", "--store", str(db), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 1
        assert report["size_bytes"] > 0
        assert report["total_hits"] == 1 and report["total_misses"] == 1
        assert report["lifetime_hit_rate"] == 0.5
        assert report["healthy"] is True
        assert "daemon" not in report

    def test_text_report_mentions_size_and_rate(self, tmp_path, capsys):
        from repro.cli import main

        db = self._seed_store(tmp_path)
        assert main(["cache", "stats", "--store", str(db)]) == 0
        out = capsys.readouterr().out
        assert "entries   1" in out
        assert "bytes" in out and "hit rate" in out

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["cache", "stats", "--store", str(tmp_path / "none.sqlite")])
        assert rc == 1
        assert "no store" in capsys.readouterr().err

    def test_daemon_section_reports_since_start_rates(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.serve import ServeClient, ServeConfig, ServerThread

        db = self._seed_store(tmp_path)
        config = ServeConfig(
            host="127.0.0.1", port=0, workers=1, store_path=str(db)
        )
        with ServerThread(config) as handle:
            with ServeClient(
                host="127.0.0.1", port=handle.server.tcp_port
            ) as client:
                client.route([random_net(4, rng=random.Random(72))])
            rc = main([
                "cache", "stats", "--store", str(db), "--json",
                "--daemon-host", "127.0.0.1",
                "--daemon-port", str(handle.server.tcp_port),
            ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        daemon = report["daemon"]
        assert daemon["nets"] == 1
        assert 0.0 <= daemon["warm_hit_rate"] <= 1.0
        assert {"served_memory", "served_store", "served_routed"} <= set(daemon)
