"""Gap-filling tests: module hygiene, cross-checks, and edge cases not
covered by the per-module suites."""

import importlib
import pkgutil
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.congestion.model import CongestionMap
from repro.core.batch import BatchResult
from repro.core.pareto_dw import pareto_frontier
from repro.exceptions import (
    DegreeTooLargeError,
    LookupTableError,
    ReproError,
)
from repro.geometry.net import Net, random_net
from repro.geometry.transforms import ALL_TRANSFORMS
from repro.lut.generator import solve_pattern
from repro.routing.embedding import Segment
from repro.routing.topology import GridTopology
from repro.geometry.point import Point


class TestPackageHygiene:
    def test_every_module_imports(self):
        failures = []
        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            try:
                importlib.import_module(mod.name)
            except Exception as exc:  # pragma: no cover - report aid
                failures.append((mod.name, exc))
        assert not failures

    def test_every_module_has_docstring(self):
        for mod in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            m = importlib.import_module(mod.name)
            assert m.__doc__, f"{mod.name} lacks a module docstring"

    def test_public_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_exception_hierarchy(self):
        assert issubclass(DegreeTooLargeError, LookupTableError)
        assert issubclass(LookupTableError, ReproError)
        err = DegreeTooLargeError(15, 9)
        assert err.degree == 15 and err.limit == 9
        assert "15" in str(err)


class TestSymbolicTopologyCrossCheck:
    """The generator's (W, D) must agree with an independent recomputation
    from the stored topology's edge set."""

    @pytest.mark.parametrize("perm,src", [((0, 1, 2), 0), ((1, 0, 2), 2), ((2, 0, 1), 1)])
    def test_w_vectors_match_topology(self, perm, src):
        ps = solve_pattern(perm, src)
        n = len(perm)
        pins = [(i, perm[i]) for i in range(n)]
        source = pins[src]
        sinks = tuple(p for i, p in enumerate(pins) if i != src)
        for sol in ps.solutions:
            topo = GridTopology(
                nx=n, ny=n, source=source, sinks=sinks,
                edges=tuple(sol.payload),
            )
            w_topo, rows_topo = topo.symbolic_solution()
            # The DP's W may double-count shared gaps (multiset union);
            # the topology recomputation is the canonical value and never
            # exceeds it componentwise.
            assert all(a <= b for a, b in zip(w_topo, sol.w))
            # Delay rows must agree as multisets when no multiset overlap
            # occurred (the common case: equality of the wirelengths).
            if w_topo == sol.w:
                assert sorted(rows_topo) == sorted(sol.rows)

    def test_random_gap_evaluation_consistency(self):
        rng = random.Random(3)
        ps = solve_pattern((2, 0, 3, 1), 1)
        n = 4
        pins = [(i, (2, 0, 3, 1)[i]) for i in range(n)]
        sinks = tuple(p for i, p in enumerate(pins) if i != 1)
        for sol in ps.solutions:
            topo = GridTopology(
                nx=n, ny=n, source=pins[1], sinks=sinks,
                edges=tuple(sol.payload),
            )
            for _ in range(5):
                gaps = [rng.uniform(0.5, 4.0) for _ in range(2 * (n - 1))]
                wt, dt = topo.evaluate(gaps)
                ws, ds = sol.evaluate(gaps)
                assert wt <= ws + 1e-9
                assert abs(dt - ds) < 1e-9 or dt <= ds + 1e-9


class TestTransformGroupClosure:
    def test_composition_stays_in_group(self):
        n = 4
        nodes = [(i, j) for i in range(n) for j in range(n)]
        table = {}
        for t in ALL_TRANSFORMS:
            key = tuple(t.apply_node(v, n, n) for v in nodes)
            table[key] = t
        for a in ALL_TRANSFORMS:
            for b in ALL_TRANSFORMS:
                composed = tuple(
                    b.apply_node(a.apply_node(v, n, n), n, n) for v in nodes
                )
                assert composed in table, "D4 not closed under composition"


class TestCongestionCells:
    def test_segment_cells_partition_length(self):
        cmap = CongestionMap.uniform(0, 0, 100, 100, 10, 10)
        seg = Segment(Point(7, 33), Point(81, 33))
        cells = cmap.segment_cells(seg)
        assert abs(sum(length for _c, length in cells) - seg.length) < 1e-9
        assert all(length > 0 for _c, length in cells)

    def test_deposit_accumulates_in_range_only(self):
        cmap = CongestionMap.uniform(0, 0, 100, 100, 10, 10, weight=0.0)
        cmap.deposit(Segment(Point(-20, 5), Point(20, 5)))
        total = sum(sum(col) for col in cmap.weights)
        assert abs(total - 20) < 1e-9  # only the in-range half lands

    def test_deposit_scale(self):
        cmap = CongestionMap.uniform(0, 0, 100, 100, 10, 10, weight=0.0)
        cmap.deposit(Segment(Point(0, 5), Point(10, 5)), scale=2.0)
        assert abs(cmap.weights[0][0] - 20) < 1e-9


class TestBatchResult:
    def test_properties(self):
        r = BatchResult(
            fronts={"a": [(1.0, 1.0, None)], "b": [(2.0, 2.0, None), (3.0, 1.0, None)]},
            seconds=2.0,
        )
        assert r.nets_per_second == 1.0
        assert r.total_solutions == 3

    def test_zero_seconds(self):
        r = BatchResult(fronts={}, seconds=0.0)
        assert r.nets_per_second == 0.0


grid_coords = st.integers(0, 12)


@st.composite
def tiny_nets(draw):
    pts = set()
    while len(pts) < 4:
        pts.add((draw(grid_coords), draw(grid_coords)))
    pts = sorted(pts)
    return Net.from_points(pts[0], pts[1:])


class TestLutHypothesis:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.large_base_example,
        ],
    )
    @given(tiny_nets())
    def test_shipped_table_exact_on_random_degree4(self, net):
        from repro.lut.default import default_table

        table = default_table()
        got = [(round(w, 9), round(d, 9)) for w, d, _ in table.lookup(net)]
        want = [(round(w, 9), round(d, 9)) for w, d in pareto_frontier(net)]
        assert got == want


class TestMetricsEdgeCases:
    def test_average_curves_method_subset(self):
        from repro.eval.metrics import NetComparison, average_curves

        row = NetComparison(
            net_name="x", degree=4,
            frontier=[(1.0, 1.0, None)],
            methods={"A": [(1.0, 1.0, None)], "B": [(2.0, 2.0, None)]},
        )
        curves = average_curves(
            [row], w_refs={"x": 1.0}, d_refs={"x": 1.0},
            budgets=[1.0], methods=["A"],
        )
        assert len(curves) == 1 and curves[0].method == "A"

    def test_curve_dominates_slack(self):
        from repro.eval.metrics import AveragedCurve, curve_dominates

        a = AveragedCurve("a", [1], [1.05])
        b = AveragedCurve("b", [1], [1.0])
        assert not curve_dominates(a, b)
        assert curve_dominates(a, b, slack=0.1)
