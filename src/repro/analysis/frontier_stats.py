"""Frontier-size statistics over benchmark nets (paper, Fig. 6).

The paper computes, for every net of degree ``n <= 9`` in the ICCAD-15
benchmark, the exact Pareto frontier size, and reports the *maximum* per
degree together with a least-squares fit (``y = 2.85x - 10.9``). This
module reproduces the measurement for any net collection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.pareto_dw import pareto_dw
from ..geometry.net import Net
from .smoothed import linear_fit


@dataclass
class DegreeFrontierStats:
    """Frontier-size summary for one degree."""

    degree: int
    count: int
    mean_size: float
    max_size: int
    histogram: Dict[int, int] = field(default_factory=dict)


@dataclass
class Fig6Result:
    """The full Fig. 6 artefact: per-degree stats plus the fitted line."""

    per_degree: List[DegreeFrontierStats]
    slope: float
    intercept: float

    def max_sizes(self) -> List[Tuple[int, int]]:
        return [(s.degree, s.max_size) for s in self.per_degree]


def frontier_sizes(nets: Iterable[Net]) -> Dict[int, List[int]]:
    """Exact frontier size of every net, grouped by degree."""
    sizes: Dict[int, List[int]] = {}
    for net in nets:
        front = pareto_dw(net, with_trees=False)
        sizes.setdefault(net.degree, []).append(len(front))
    return sizes


def fig6_experiment(nets: Iterable[Net]) -> Fig6Result:
    """Max frontier size per degree and the linear fit of the maxima."""
    grouped = frontier_sizes(nets)
    per_degree: List[DegreeFrontierStats] = []
    for n in sorted(grouped):
        sizes = grouped[n]
        hist: Dict[int, int] = {}
        for s in sizes:
            hist[s] = hist.get(s, 0) + 1
        per_degree.append(
            DegreeFrontierStats(
                degree=n,
                count=len(sizes),
                mean_size=sum(sizes) / len(sizes),
                max_size=max(sizes),
                histogram=hist,
            )
        )
    if len(per_degree) >= 2:
        slope, intercept = linear_fit(
            [float(s.degree) for s in per_degree],
            [float(s.max_size) for s in per_degree],
        )
    else:
        slope, intercept = 0.0, float(per_degree[0].max_size if per_degree else 0)
    return Fig6Result(per_degree=per_degree, slope=slope, intercept=intercept)
