"""Routing-result cache with translation invariance.

VLSI designs repeat cell patterns, so many nets are exact translates of
one another. Both objectives are translation-invariant, so the cache keys
nets on their source-relative pin coordinates and serves cache hits by
rigidly translating the stored trees back to the query position.

Wraps any router exposing ``route(net) -> [(w, d, tree), ...]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.pareto import Solution
from ..geometry.net import Net
from ..geometry.point import Point
from ..obs import counter_add, span
from ..routing.tree import RoutingTree

CacheKey = Tuple[Tuple[float, float], ...]


def translation_key(net: Net) -> CacheKey:
    """Source-relative pin coordinates — equal for rigid translates.

    Relative coordinates are rounded to 1e-6 so that floating-point noise
    from the subtraction does not split keys; nets whose geometries agree
    only to within 1e-6 therefore share an entry (document this if your
    coordinates are finer than micro-units).
    """
    x0, y0 = net.source
    return tuple(
        (round(p.x - x0, 6), round(p.y - y0, 6)) for p in net.pins
    )


def _translate_tree(tree: RoutingTree, net: Net, dx: float, dy: float) -> RoutingTree:
    points = [Point(p.x + dx, p.y + dy) for p in tree.points]
    # Snap pin nodes (always the first ``degree`` points) onto the query
    # net's exact coordinates: the rigid shift can be an ulp off after
    # float addition — or up to the 1e-6 key rounding when the query is a
    # near-translate — and validation requires exact pin equality.
    points[: net.degree] = list(net.pins)
    return RoutingTree.from_parent(net, points, list(tree.parent))


@dataclass
class CachedRouter:
    """Memoising wrapper around a Pareto router.

    Attributes
    ----------
    router:
        Any object with ``route(net)`` returning Pareto solutions.
    max_entries:
        Cache capacity; oldest entries are evicted FIFO beyond it.
    """

    router: object
    max_entries: int = 100_000
    _cache: Dict[CacheKey, Tuple[Net, List[Solution]]] = field(
        default_factory=dict, repr=False
    )
    hits: int = 0
    misses: int = 0

    def route(self, net: Net) -> List[Solution]:
        """Pareto set of ``net``, served from cache for exact translates."""
        with span("cache.key"):
            key = translation_key(net)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            counter_add("cache.hits")
            base_net, solutions = cached
            dx = net.source.x - base_net.source.x
            dy = net.source.y - base_net.source.y
            if dx == 0.0 and dy == 0.0 and base_net.key() == net.key():
                return list(solutions)
            with span("cache.translate"):
                return [
                    (w, d, _translate_tree(tree, net, dx, dy))
                    for w, d, tree in solutions
                ]
        self.misses += 1
        counter_add("cache.misses")
        solutions = self.router.route(net)
        if len(self._cache) >= self.max_entries:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = (net, list(solutions))
        return solutions

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
