"""Prim–Dijkstra timing-driven spanning trees and the PD-II refinement.

Alpert et al.'s PD algorithm grows a tree from the source with the blended
key ``alpha * pathlen(u) + ||u - v||``: ``alpha = 0`` reproduces Prim
(minimum spanning tree, light), ``alpha = 1`` reproduces Dijkstra
(shortest-path tree, shallow). PD-II adds post-processing; we use the
shared detour-capped Steinerising refinement, which captures PD-II's
intent (shed wirelength without hurting the achieved delay).

Sweeping ``alpha`` produces PD's one-solution-per-parameter "curve" — the
tuning burden the PatLabor paper contrasts against.
"""

from __future__ import annotations

from typing import List, Sequence

from ..geometry.net import Net
from ..geometry.point import l1
from ..routing.refine import wirelength_refine
from ..routing.tree import RoutingTree

DEFAULT_ALPHAS: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0)


def prim_dijkstra(net: Net, alpha: float) -> RoutingTree:
    """The PD spanning tree over the pins for trade-off parameter ``alpha``."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    pins = list(net.pins)
    n = len(pins)
    in_tree = [False] * n
    in_tree[0] = True
    pathlen = [0.0] * n
    parent = [-1] * n
    # key[v]: best blended cost of attaching v; via[v]: the tree node used.
    key = [alpha * 0.0 + l1(pins[0], pins[v]) for v in range(n)]
    via = [0] * n
    arrival = [l1(pins[0], pins[v]) for v in range(n)]
    for _ in range(n - 1):
        v = min(
            (i for i in range(n) if not in_tree[i]),
            key=lambda i: (key[i], arrival[i]),
        )
        in_tree[v] = True
        parent[v] = via[v]
        pathlen[v] = arrival[v]
        for u in range(n):
            if in_tree[u]:
                continue
            cand = alpha * pathlen[v] + l1(pins[v], pins[u])
            if cand < key[u] - 1e-12:
                key[u] = cand
                via[u] = v
                arrival[u] = pathlen[v] + l1(pins[v], pins[u])
    return RoutingTree.from_parent(net, pins, parent)


def pd2(net: Net, alpha: float) -> RoutingTree:
    """PD followed by the delay-capped Steinerising refinement (PD-II)."""
    tree = prim_dijkstra(net, alpha)
    return wirelength_refine(tree, delay_cap=tree.delay())


def pd_sweep(
    net: Net, alphas: Sequence[float] = DEFAULT_ALPHAS, refine: bool = True
) -> List:
    """Pareto-filtered PD(-II) solutions over an alpha sweep."""
    from ..core.pareto import clean_front

    solutions = []
    for a in alphas:
        t = pd2(net, a) if refine else prim_dijkstra(net, a)
        w, d = t.objective()
        solutions.append((w, d, t))
    return clean_front(solutions)
