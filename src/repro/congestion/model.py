"""Congestion model: a weighted grid over the routing region.

The paper's conclusion names congestion as the first future-work metric.
This extension models it the way global routers do: the region is divided
into uniform g-cells, each carrying a congestion weight (demand/capacity
ratio, hot-spot penalty, ...). The congestion cost of a wire is the
weight-integrated length of its embedding:

    cost(segment) = sum over crossed cells of (length inside cell * weight)

Unlike wirelength and delay, congestion depends on *which* L-shape embeds
an edge — that freedom is exploited by
:func:`repro.congestion.router.embed_min_congestion`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geometry.point import PointLike
from ..routing.embedding import Segment, embed_edge


@dataclass
class CongestionMap:
    """Per-cell congestion weights on a uniform grid.

    Attributes
    ----------
    xlo, ylo:
        Lower-left corner of the covered region.
    cell:
        Cell edge length (> 0).
    weights:
        ``weights[ix][iy]`` — the congestion weight of cell ``(ix, iy)``.
        Points outside the covered region use ``outside_weight``.
    """

    xlo: float
    ylo: float
    cell: float
    weights: List[List[float]]
    outside_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.cell <= 0:
            raise ValueError(f"cell size must be positive, got {self.cell}")
        if not self.weights or not self.weights[0]:
            raise ValueError("congestion map needs at least one cell")

    @property
    def nx(self) -> int:
        return len(self.weights)

    @property
    def ny(self) -> int:
        return len(self.weights[0])

    @classmethod
    def uniform(
        cls, xlo: float, ylo: float, xhi: float, yhi: float,
        nx: int, ny: int, weight: float = 1.0,
    ) -> "CongestionMap":
        """A constant-weight map covering ``[xlo, xhi] x [ylo, yhi]``.

        The cell size derives from the x-extent; the grid is ``nx x ny``.
        """
        cell = (xhi - xlo) / nx
        if abs((yhi - ylo) / ny - cell) > 1e-9:
            raise ValueError("uniform map requires square cells")
        return cls(
            xlo=xlo, ylo=ylo, cell=cell,
            weights=[[weight] * ny for _ in range(nx)],
        )

    @classmethod
    def random_hotspots(
        cls, xlo: float, ylo: float, span: float, cells: int,
        hotspots: int = 3, hot_weight: float = 8.0,
        rng: Optional[random.Random] = None,
    ) -> "CongestionMap":
        """A base-weight-1 map with a few square hot regions."""
        rng = rng or random.Random()
        cmap = cls.uniform(xlo, ylo, xlo + span, ylo + span, cells, cells)
        for _ in range(hotspots):
            cx = rng.randrange(cells)
            cy = rng.randrange(cells)
            radius = rng.randint(0, max(1, cells // 6))
            for ix in range(max(0, cx - radius), min(cells, cx + radius + 1)):
                for iy in range(max(0, cy - radius), min(cells, cy + radius + 1)):
                    cmap.weights[ix][iy] = hot_weight
        return cmap

    # --------------------------------------------------------------- costs

    def weight_at(self, ix: int, iy: int) -> float:
        if 0 <= ix < self.nx and 0 <= iy < self.ny:
            return self.weights[ix][iy]
        return self.outside_weight

    def _axis_cost(self, fixed: float, lo: float, hi: float, horizontal: bool) -> float:
        """Weight-integrated length of an axis-parallel run."""
        if hi <= lo:
            return 0.0
        cost = 0.0
        if horizontal:
            iy = int((fixed - self.ylo) // self.cell)
            start = lo
            while start < hi - 1e-12:
                ix = int((start - self.xlo) // self.cell)
                cell_end = self.xlo + (ix + 1) * self.cell
                end = min(hi, cell_end)
                if end <= start:  # numeric guard at cell boundaries
                    end = min(hi, start + self.cell)
                cost += (end - start) * self.weight_at(ix, iy)
                start = end
        else:
            ix = int((fixed - self.xlo) // self.cell)
            start = lo
            while start < hi - 1e-12:
                iy = int((start - self.ylo) // self.cell)
                cell_end = self.ylo + (iy + 1) * self.cell
                end = min(hi, cell_end)
                if end <= start:
                    end = min(hi, start + self.cell)
                cost += (end - start) * self.weight_at(ix, iy)
                start = end
        return cost

    def segment_cells(self, seg: Segment) -> List[Tuple[Tuple[int, int], float]]:
        """Cells a segment crosses, with the length inside each.

        Cells outside the covered region are reported with clamped indices
        ``(-1, -1)``-style coordinates produced by floor division; callers
        accumulating demand should ignore out-of-range indices.
        """
        out: List[Tuple[Tuple[int, int], float]] = []
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            iy = int((seg.a.y - self.ylo) // self.cell)
            start = lo
            while start < hi - 1e-12:
                ix = int((start - self.xlo) // self.cell)
                end = min(hi, self.xlo + (ix + 1) * self.cell)
                if end <= start:
                    end = min(hi, start + self.cell)
                out.append(((ix, iy), end - start))
                start = end
        else:
            lo, hi = sorted((seg.a.y, seg.b.y))
            ix = int((seg.a.x - self.xlo) // self.cell)
            start = lo
            while start < hi - 1e-12:
                iy = int((start - self.ylo) // self.cell)
                end = min(hi, self.ylo + (iy + 1) * self.cell)
                if end <= start:
                    end = min(hi, start + self.cell)
                out.append(((ix, iy), end - start))
                start = end
        return out

    def deposit(self, seg: Segment, scale: float = 1.0) -> None:
        """Accumulate ``length * scale`` into every crossed in-range cell
        (demand tracking for sequential routing flows)."""
        for (ix, iy), length in self.segment_cells(seg):
            if 0 <= ix < self.nx and 0 <= iy < self.ny:
                self.weights[ix][iy] += length * scale

    def segment_cost(self, seg: Segment) -> float:
        """Weight-integrated length of one axis-parallel segment."""
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            return self._axis_cost(seg.a.y, lo, hi, horizontal=True)
        lo, hi = sorted((seg.a.y, seg.b.y))
        return self._axis_cost(seg.a.x, lo, hi, horizontal=False)

    def edge_cost(self, a: PointLike, b: PointLike, lower_l: bool = True) -> float:
        """Cost of one tree edge under a fixed L-shape convention."""
        return sum(self.segment_cost(s) for s in embed_edge(a, b, lower_l))

    def best_edge_cost(self, a: PointLike, b: PointLike) -> Tuple[float, bool]:
        """Cheaper of the two L embeddings: ``(cost, lower_l_flag)``."""
        lo = self.edge_cost(a, b, lower_l=True)
        hi = self.edge_cost(a, b, lower_l=False)
        return (lo, True) if lo <= hi else (hi, False)

    def tree_cost(self, tree, per_edge_choice: bool = True) -> float:
        """Congestion cost of a whole tree.

        With ``per_edge_choice`` each edge independently takes its cheaper
        L embedding (legal: the objectives w/d are embedding-invariant).
        """
        total = 0.0
        for child, parent in tree.edges():
            a, b = tree.points[parent], tree.points[child]
            if per_edge_choice:
                total += self.best_edge_cost(a, b)[0]
            else:
                total += self.edge_cost(a, b)
        return total
