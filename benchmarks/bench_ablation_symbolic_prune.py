"""Ablation A3 — symbolic pruning strength: componentwise vs exact LP.

The paper prunes lookup-table entries with an SMT solver (Lemma 1); this
reproduction decides the same condition exactly with LP, or soundly with
a cheap componentwise test. Trade-off measured here: the LP mode stores
fewer topologies per pattern but takes longer to generate. Lookup results
must be identical (both modes are sound).

Timed kernel: solving one degree-5 pattern with componentwise pruning.
"""

import random
import time

from repro.eval.reporting import format_table
from repro.geometry.net import random_net
from repro.lut.generator import enumerate_canonical_patterns, solve_pattern
from repro.lut.table import LookupTable

from conftest import write_artifact

NUM_PATTERNS = 20


def test_ablation_symbolic_pruning(benchmark):
    patterns = []
    for i, p in enumerate(enumerate_canonical_patterns(5)):
        if i >= NUM_PATTERNS:
            break
        patterns.append(p)

    rows = []
    counts = {}
    for mode in ("componentwise", "lp"):
        t0 = time.perf_counter()
        sizes = [
            len(solve_pattern(perm, src, prune_mode=mode).solutions)
            for perm, src in patterns
        ]
        elapsed = time.perf_counter() - t0
        counts[mode] = sum(sizes)
        rows.append(
            [
                mode,
                f"{sum(sizes) / len(sizes):.2f}",
                max(sizes),
                f"{elapsed:.2f}s",
            ]
        )
    table = format_table(
        ["prune mode", "avg #topologies", "max", f"time ({NUM_PATTERNS} patterns)"],
        rows,
        title="Ablation — Lemma 1 pruning: componentwise vs exact LP",
    )
    write_artifact("ablation_symbolic_prune.txt", table)

    # LP never stores more...
    assert counts["lp"] <= counts["componentwise"]

    # ...and both modes answer lookups identically.
    cw = LookupTable.build(degrees=(4,), prune_mode="componentwise")
    lp = LookupTable.build(degrees=(4,), prune_mode="lp")
    rng = random.Random(5)
    for _ in range(10):
        net = random_net(4, rng=rng)
        a = [(round(w, 6), round(d, 6)) for w, d in cw.frontier(net)]
        b = [(round(w, 6), round(d, 6)) for w, d in lp.frontier(net)]
        assert a == b

    perm, src = patterns[0]
    benchmark(lambda: solve_pattern(perm, src))
