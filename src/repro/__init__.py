"""PatLabor: Pareto optimization of timing-driven routing trees.

A from-scratch Python reproduction of the DAC 2025 paper. The public API
centres on four things:

* :class:`~repro.geometry.net.Net` — a net (source pin + sinks),
* :class:`~repro.core.patlabor.PatLabor` — the practical Pareto router
  (``router.route(net)`` returns the Pareto set of ``(w, d, tree)``),
* :func:`~repro.core.pareto_dw.pareto_dw` — the exact frontier for small
  nets,
* :class:`~repro.lut.table.LookupTable` — offline tables that make exact
  small-net routing fast.

Quickstart::

    from repro import Net, PatLabor

    net = Net.from_points((0, 0), [(10, 2), (7, 9), (3, 8), (11, 11)])
    for w, d, tree in PatLabor().route(net):
        print(w, d, tree)

See ``examples/`` for full workflows and ``benchmarks/`` for the scripts
regenerating every table and figure of the paper.
"""

from .exceptions import (
    DegreeTooLargeError,
    InvalidNetError,
    InvalidTreeError,
    LookupTableError,
    PolicyError,
    ReproError,
    SerializationError,
)
from .geometry import BBox, HananGrid, Net, Point, hpwl, l1, random_net
from .routing import RoutingTree
from .core import (
    PatLabor,
    PatLaborConfig,
    SelectionPolicy,
    dominates,
    epsilon_indicator,
    hypervolume,
    pareto_dw,
    pareto_filter,
    pareto_frontier,
    pareto_ks,
)
from .lut import LookupTable

__version__ = "1.0.0"

__all__ = [
    "BBox",
    "DegreeTooLargeError",
    "HananGrid",
    "InvalidNetError",
    "InvalidTreeError",
    "LookupTable",
    "LookupTableError",
    "Net",
    "PatLabor",
    "PatLaborConfig",
    "Point",
    "PolicyError",
    "ReproError",
    "RoutingTree",
    "SelectionPolicy",
    "SerializationError",
    "__version__",
    "dominates",
    "epsilon_indicator",
    "hpwl",
    "hypervolume",
    "l1",
    "pareto_dw",
    "pareto_filter",
    "pareto_frontier",
    "pareto_ks",
    "random_net",
]
