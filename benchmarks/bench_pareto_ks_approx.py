"""Theorem 4 — Pareto-KS approximation quality and runtime.

The paper proves an O(sqrt(n / log n)) Pareto-approximation factor but
notes KS "is not good enough in practice" — the reason PatLabor exists.
Regenerated evidence: the multiplicative epsilon of KS vs the exact
frontier stays bounded but is clearly worse than PatLabor's.

Timed kernel: Pareto-KS on a degree-12 net.
"""

import random

from repro.core.pareto import epsilon_indicator
from repro.core.pareto_dw import pareto_dw
from repro.core.pareto_ks import pareto_ks
from repro.core.patlabor import PatLabor
from repro.eval.reporting import format_table
from repro.geometry.net import random_net

from conftest import write_artifact

DEGREES = (8, 10, 12)
SAMPLES = 4


def test_theorem4_ks_approximation(benchmark):
    rng = random.Random(4)
    rows = []
    worst_ks = 1.0
    worst_pl = 1.0
    for n in DEGREES:
        eps_ks, eps_pl = [], []
        for _ in range(SAMPLES):
            net = random_net(n, rng=rng)
            exact = pareto_dw(net, with_trees=False)
            ks = pareto_ks(net, base_size=6)
            pl = PatLabor().route(net)
            eps_ks.append(epsilon_indicator(ks, exact))
            eps_pl.append(epsilon_indicator(pl, exact))
        worst_ks = max(worst_ks, max(eps_ks))
        worst_pl = max(worst_pl, max(eps_pl))
        rows.append(
            [
                n,
                f"{sum(eps_ks) / len(eps_ks):.3f}",
                f"{max(eps_ks):.3f}",
                f"{sum(eps_pl) / len(eps_pl):.3f}",
                f"{max(eps_pl):.3f}",
            ]
        )
    table = format_table(
        ["n", "KS eps (mean)", "KS eps (max)", "PatLabor eps (mean)", "PatLabor eps (max)"],
        rows,
        title="Theorem 4 — Pareto-approximation factors vs the exact frontier",
    )
    write_artifact("theorem4_ks.txt", table)

    # The theorem's bound holds with slack; PatLabor is far tighter
    # (exact for n <= lambda, near-exact via local search above).
    assert worst_ks < 6.0
    assert worst_pl < 1.5
    assert worst_pl <= worst_ks + 1e-9

    net = random_net(12, rng=random.Random(99))
    benchmark(lambda: pareto_ks(net, base_size=6))
