"""Routing-as-a-service vs per-invocation cold starts.

Not a paper artefact: this benchmark quantifies what the ``repro serve``
daemon (persistent engine + shared-LUT worker pool + disk-backed cache
tier) buys over the one-shot CLI model on repeated workloads — the
deployment pattern PatLabor targets, where a placer iterates and most
nets recur between calls.

The same request stream is timed two ways:

* **cold** — every request pays a fresh "invocation": the lookup-table
  cache is dropped and the engine stack rebuilt (LUT JSON re-parsed from
  disk, caches empty) before routing, exactly what ``repro route`` costs
  per process, minus interpreter start-up (so the measured speedup is a
  *lower bound* on the real one).
* **warm** — one resident daemon (:class:`repro.serve.ServerThread`)
  with a pre-warmed persistent store serves the identical stream over a
  Unix socket through :class:`repro.serve.ServeClient`.

Emits

* ``results/serve.txt`` — the cold/warm table and speedup,
* ``results/BENCH_serve.json`` — counters plus daemon statistics,
* ``results/ledger.jsonl`` — one appended ``serve`` run record carrying
  ``serve.requests_per_second``, ``cache.store_hit_rate``, and the
  daemon's latency-histogram percentiles (``serve.p50_ms`` /
  ``serve.p99_ms``, plus per-tier ``serve.<tier>.p50_ms`` variants) for
  ``repro obs check`` against the committed baseline.

Asserted shape: the daemon answers the stream **>= 5x** faster than the
cold-start model, its store hit rate is positive (disk tier serving),
and every warm front is objective-identical to its cold counterpart.
"""

import json
import random
import tempfile
import time
from pathlib import Path

from repro import obs
from repro.engine import EngineSpec, build_engine
from repro.geometry.net import random_net
from repro.lut.default import default_table
from repro.serve import ServeClient, ServeConfig, ServerThread

from conftest import RESULTS_DIR, write_artifact

UNIQUE_NETS = 8     # distinct patterns in the pool (degrees 4-6: LUT-served)
REQUESTS = 12       # requests in the stream
NETS_PER_REQUEST = 5
MIN_SPEEDUP = 5.0   # gate: daemon must beat cold starts by this factor


def _workload():
    """A request stream drawing (with repeats) from a small net pool."""
    rng = random.Random(2027)
    pool = [
        random_net(4 + i % 3, rng=rng, name=f"u{i}")
        for i in range(UNIQUE_NETS)
    ]
    stream = [
        [rng.choice(pool) for _ in range(NETS_PER_REQUEST)]
        for _ in range(REQUESTS)
    ]
    return pool, stream


def _route_stream_cold(stream):
    """The per-invocation model: rebuild the world for every request."""
    fronts = {}
    t0 = time.perf_counter()
    for request in stream:
        default_table.cache_clear()  # a new process has no parsed LUT
        engine = build_engine(
            EngineSpec(
                router="patlabor",
                router_options={"lut": default_table()},
                cache="symmetry",
            )
        )
        for net in request:
            fronts[net.name] = [
                (w, d) for w, d, _t in engine.route(net)
            ]
    return time.perf_counter() - t0, fronts


def _route_stream_warm(stream, socket_path, store_path):
    """The service model: one daemon, one socket, the same stream."""
    config = ServeConfig(
        socket_path=socket_path, workers=2, store_path=store_path
    )
    with ServerThread(config) as handle:
        with ServeClient(socket_path=socket_path) as client:
            client.ping()  # connection + pool are up before the clock starts
            fronts = {}
            t0 = time.perf_counter()
            for request in stream:
                for name, front in client.route(request):
                    fronts[name] = [(w, d) for w, d, _t in front]
            elapsed = time.perf_counter() - t0
            stats = client.stats()
    return elapsed, fronts, stats


def test_serve_throughput_vs_cold_starts():
    pool, stream = _workload()
    cold_seconds, cold_fronts = _route_stream_cold(stream)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        socket_path = str(Path(tmp) / "serve.sock")
        store_path = str(Path(tmp) / "store.sqlite")
        # Pre-warm the disk tier: a prior run's daemon already solved the
        # pool (the cross-run scenario the store exists for).
        warm_config = ServeConfig(
            socket_path=socket_path, workers=2, store_path=store_path
        )
        with ServerThread(warm_config) as handle:
            with ServeClient(socket_path=socket_path) as client:
                client.route(pool)
        elapsed, warm_fronts, stats = _route_stream_warm(
            stream, socket_path, store_path
        )

    speedup = cold_seconds / elapsed if elapsed > 0 else float("inf")
    requests_per_second = REQUESTS / elapsed if elapsed > 0 else 0.0
    total_nets = REQUESTS * NETS_PER_REQUEST

    # Transparency: the daemon's fronts match the cold model's exactly.
    assert set(warm_fronts) == set(cold_fronts)
    for name, front in warm_fronts.items():
        assert front == cold_fronts[name], name

    # The disk tier actually served: memory misses (fresh workers) were
    # answered from the pre-warmed store, not re-routed.
    assert stats["store_hit_rate"] > 0.0
    assert stats["warm_hit_rate"] > 0.0

    assert speedup >= MIN_SPEEDUP, (
        f"daemon speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x gate "
        f"(cold {cold_seconds:.2f}s vs warm {elapsed:.2f}s)"
    )

    rows = [
        f"{'model':<22}{'seconds':>10}{'req/s':>10}",
        "-" * 42,
        f"{'cold starts':<22}{cold_seconds:>10.3f}"
        f"{REQUESTS / cold_seconds:>10.1f}",
        f"{'daemon (warm store)':<22}{elapsed:>10.3f}"
        f"{requests_per_second:>10.1f}",
        f"\nspeedup: {speedup:.1f}x on {REQUESTS} requests x "
        f"{NETS_PER_REQUEST} nets ({UNIQUE_NETS} unique patterns)",
        f"served: memory={stats['served_memory']} "
        f"store={stats['served_store']} routed={stats['served_routed']} "
        f"(store hit rate {stats['store_hit_rate']:.3f})",
    ]
    write_artifact("serve.txt", "\n".join(rows))

    path = obs.write_bench_json(
        "serve",
        directory=RESULTS_DIR,
        extra={
            "workload": {
                "unique_nets": UNIQUE_NETS,
                "requests": REQUESTS,
                "nets_per_request": NETS_PER_REQUEST,
            },
            "cold_seconds": cold_seconds,
            "warm_seconds": elapsed,
            "speedup": speedup,
            "daemon_stats": stats,
        },
    )
    payload = json.loads(path.read_text())
    assert payload["speedup"] >= MIN_SPEEDUP
    print(f"\n[metrics written to {path}]")

    # Latency percentiles out of the daemon's exact histogram buckets:
    # one pair for the whole request path, one per serving tier.
    latency = stats["latency_ms"]
    latency_metrics = {
        "serve.p50_ms": latency["request"]["p50_ms"],
        "serve.p99_ms": latency["request"]["p99_ms"],
    }
    for tier in ("memory", "store", "routed"):
        if latency[tier]["count"]:
            latency_metrics[f"serve.{tier}.p50_ms"] = latency[tier]["p50_ms"]
            latency_metrics[f"serve.{tier}.p99_ms"] = latency[tier]["p99_ms"]

    record = obs.make_record(
        {
            "serve.requests_per_second": requests_per_second,
            "serve.speedup_rate": speedup,
            "serve.warm_hit_rate": stats["warm_hit_rate"],
            "cache.store_hit_rate": stats["store_hit_rate"],
            "serve.nets": float(total_nets),
            **latency_metrics,
        },
        name="serve",
        config={
            "unique_nets": UNIQUE_NETS,
            "requests": REQUESTS,
            "nets_per_request": NETS_PER_REQUEST,
            "workers": 2,
        },
    )
    ledger_path = obs.append_record(record, RESULTS_DIR / "ledger.jsonl")
    print(f"[run {record['run_id']} appended to {ledger_path}]")
