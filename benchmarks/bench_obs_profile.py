"""Observability profile of the batch-routing pipeline.

Not a paper artefact: this benchmark exercises the ``repro.obs``
instrumentation end to end and emits the structured baseline that later
perf PRs diff against. It routes an ICCAD-15-like mixed workload (with
translated duplicates, so the translation cache sees realistic hits)
through :func:`repro.core.batch.route_batch`, then writes

* ``results/obs_profile.txt`` — the human-readable span-tree report,
* ``results/BENCH_profile.json`` — cache hit-rate, nets/sec, per-stage
  span timings, counters, and per-net latency percentiles,
* ``results/trace_profile.json`` — the same run as a Chrome-trace /
  Perfetto JSON (structurally validated here),
* ``results/events_profile.jsonl`` — the structured per-net event log,
* ``results/ledger.jsonl`` — one appended run record (git SHA, config,
  headline metrics, environment) per execution: the longitudinal input
  of ``repro obs diff`` / ``repro obs check``.

Asserted shape: the cache hits on every duplicate, every routed net is
accounted for, the span tree covers the dispatch tiers that ran, the
trace validates, and every net produced a ``net_routed`` event.
"""

import json

from repro import Net, obs
from repro.core.batch import route_batch

from conftest import RESULTS_DIR, write_artifact

DUPLICATES_PER_NET = 2  # rigid translates appended per base net

#: The curated, comparatively stable metric set recorded to the ledger.
#: Work counters are deterministic for a fixed workload; the throughput
#: numbers are what the perf gate watches (with its noise threshold).
LEDGER_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "batch.nets",
    "dw.solves",
    "dw.subsets",
    "dw.merge_transitions",
    "dw.closure_extensions",
    "dw.merge_candidates",
    "dw.closure_allocations",
    "patlabor.dispatch.lut",
    "patlabor.dispatch.dw",
    "patlabor.dispatch.closed_form",
)


def _translated_copy(net, dx, dy, name):
    moved = net.translated(dx, dy)
    return Net.from_points(moved.source, list(moved.sinks), name=name)


def test_obs_profile(small_nets):
    nets = list(small_nets)
    for net in small_nets:
        for k in range(1, DUPLICATES_PER_NET + 1):
            nets.append(
                _translated_copy(
                    net, 1000.0 * k, 500.0 * k, f"{net.name}/dup{k}"
                )
            )

    obs.reset()
    obs.enable()
    obs.trace_enable()
    obs.events_enable()
    try:
        result = route_batch(nets, use_cache=True)
    finally:
        obs.disable()
        obs.trace_disable()
        obs.events_disable()

    # Every translate after the first visit of a base net must hit.
    assert result.cache_hits >= len(small_nets) * DUPLICATES_PER_NET
    assert result.metrics is not None
    assert result.metrics["cache_hit_rate"] > 0.5

    report = obs.span_tree_report() + "\n\n" + obs.metrics_summary()
    write_artifact("obs_profile.txt", report)

    path = obs.write_bench_json(
        "profile",
        directory=RESULTS_DIR,
        extra={
            "workload": {
                "nets": len(nets),
                "base_nets": len(small_nets),
                "duplicates_per_net": DUPLICATES_PER_NET,
            },
            "nets_per_second": result.nets_per_second,
            "cache_hit_rate": result.metrics["cache_hit_rate"],
            "seconds": result.seconds,
        },
    )
    payload = json.loads(path.read_text())
    assert payload["nets_per_second"] > 0
    assert 0.0 < payload["cache_hit_rate"] <= 1.0
    assert payload["metrics"]["counters"]["cache.hits"] == result.cache_hits
    assert "batch.route_batch" in payload["metrics"]["spans"]
    # Per-stage timings: the DW engine must appear under the batch span.
    assert any("dw.solve" in p for p in payload["metrics"]["spans"])
    # Per-net latency percentiles for the throughput yardstick.
    net_seconds = payload["metrics"]["timers"]["batch.net_seconds"]
    assert net_seconds["count"] == len(nets)
    assert net_seconds["p50_s"] <= net_seconds["p99_s"]
    print(f"\n[metrics written to {path}]")

    # Chrome trace: write the artefact and validate it structurally.
    trace_path = obs.write_chrome_trace(RESULTS_DIR / "trace_profile.json")
    trace = json.loads(trace_path.read_text())
    assert obs.validate_chrome_trace(trace) == []
    assert any(e.get("ph") == "X" for e in trace["traceEvents"])
    print(f"[chrome trace written to {trace_path}]")

    # Structured event log: one net_routed event per cache miss (hits are
    # served without routing), plus the batch summary.
    events = obs.get_event_log().events()
    routed = [e for e in events if e["kind"] == "net_routed"]
    assert len(routed) == result.cache_misses
    assert all({"net", "degree", "tier", "front_size", "wall_s"} <= set(e)
               for e in routed)
    batch_events = [e for e in events if e["kind"] == "batch_done"]
    assert len(batch_events) == 1 and batch_events[0]["nets"] == len(nets)
    obs.flush_events(RESULTS_DIR / "events_profile.jsonl")

    # Append this run to the performance ledger — the longitudinal record
    # `repro obs diff` / `repro obs check` consume.
    metrics = {
        "nets_per_second": result.nets_per_second,
        "seconds": result.seconds,
        "cache_hit_rate": result.metrics["cache_hit_rate"],
        "batch.net_seconds.mean_s": net_seconds["mean_s"],
        "batch.net_seconds.p99_s": net_seconds["p99_s"],
    }
    counters = payload["metrics"]["counters"]
    for name in LEDGER_COUNTERS:
        if name in counters:
            metrics[name] = counters[name]
    record = obs.make_record(
        metrics,
        name="profile",
        config={
            "nets": len(nets),
            "duplicates_per_net": DUPLICATES_PER_NET,
            "use_cache": True,
            "jobs": 1,
        },
    )
    ledger_path = obs.append_record(record, RESULTS_DIR / "ledger.jsonl")
    print(f"[run {record['run_id']} appended to {ledger_path}]")
    obs.reset()
