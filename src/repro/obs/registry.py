"""Zero-dependency metrics registry: counters, gauges, timers.

One process-global :class:`Registry` (module singleton, accessed through
:func:`get_registry`) holds three metric families:

* **counters** — monotone event counts (``cache.hits``),
* **gauges** — last-written / max-tracked values (``dw.max_front_size``),
* **timers** — duration accumulators with bounded raw samples, so the
  exporters can report percentiles (``eval.net_seconds``).

Span durations (see :mod:`repro.obs.spans`) land in a fourth family keyed
by the full ``parent/child`` path.

The registry starts **disabled**. Every primitive checks a single flag and
returns immediately when disabled, so instrumented hot paths pay one
attribute load + branch per call site — the no-op path the tests in
``tests/test_obs.py`` hold under 5% of routing time. When enabled, updates
take a :class:`threading.Lock` (thread safety) and worker processes merge
their numbers back via :meth:`Registry.snapshot` /
:meth:`Registry.merge_snapshot` (process safety).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional

from .live import LatencyHistogram

#: Raw samples kept per timer for percentile estimation; older samples are
#: overwritten ring-buffer style once the cap is reached.
SAMPLE_CAP = 8192


class TimerStat:
    """Accumulated durations of one timer (or one span path)."""

    __slots__ = ("count", "total", "min", "max", "samples", "errors", "_next")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self.samples: List[float] = []
        #: Observations whose timed body raised (spans flag these so the
        #: tree and Chrome trace stay well-formed across failures).
        self.errors = 0
        self._next = 0  # ring-buffer cursor once samples hit SAMPLE_CAP

    def observe(self, seconds: float) -> None:
        """Record one duration (updates count/total/min/max + sample ring)."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        if len(self.samples) < SAMPLE_CAP:
            self.samples.append(seconds)
        else:
            self.samples[self._next] = seconds
            self._next = (self._next + 1) % SAMPLE_CAP

    def percentile(self, q: float) -> float:
        """Sample percentile ``q`` in [0, 1] (nearest-rank)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def mean(self) -> float:
        """Arithmetic mean duration (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Serialize to plain floats (count, totals, percentiles, errors)."""
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
            "p50_s": self.percentile(0.50),
            "p90_s": self.percentile(0.90),
            "p99_s": self.percentile(0.99),
            "errors": self.errors,
        }

    def merge(self, other: Dict[str, float], samples: Optional[List[float]] = None) -> None:
        """Fold a serialized :meth:`as_dict` (plus raw samples) into this stat."""
        self.count += int(other.get("count", 0))
        self.total += float(other.get("total_s", 0.0))
        self.errors += int(other.get("errors", 0))
        if other.get("count", 0):
            self.min = min(self.min, float(other.get("min_s", math.inf)))
            self.max = max(self.max, float(other.get("max_s", 0.0)))
        for s in samples or []:
            if len(self.samples) < SAMPLE_CAP:
                self.samples.append(s)


class Registry:
    """Thread-safe metric store; disabled (all no-ops) until enabled."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.spans: Dict[str, TimerStat] = {}
        #: One fixed-bucket histogram per timer name, maintained alongside
        #: the sample ring by :meth:`timer_observe`. Unlike samples, bucket
        #: counts are exact and merge associatively across workers, so a
        #: live daemon can serve stable percentiles (see repro.obs.live).
        self.histograms: Dict[str, LatencyHistogram] = {}
        #: Number of primitive calls recorded while enabled. The overhead
        #: test uses this as an exact count of instrumentation call sites
        #: executed per operation (control flow is identical disabled).
        self.events = 0

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Turn recording on (every primitive stops being a no-op)."""
        self.enabled = True

    def disable(self) -> None:
        """Turn recording off; already-recorded metrics are kept."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every recorded metric (the enabled flag is untouched)."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.timers.clear()
            self.spans.clear()
            self.histograms.clear()
            self.events = 0

    # ----------------------------------------------------------- primitives

    def counter_add(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at 0 on first use)."""
        if not self.enabled:
            return
        with self._lock:
            self.events += 1
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self.events += 1
            self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` if larger than the current value."""
        if not self.enabled:
            return
        with self._lock:
            self.events += 1
            cur = self.gauges.get(name)
            if cur is None or value > cur:
                self.gauges[name] = value

    def timer_observe(self, name: str, seconds: float) -> None:
        """Record one duration under timer ``name`` (samples + histogram)."""
        if not self.enabled:
            return
        with self._lock:
            self.events += 1
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.observe(seconds)
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = LatencyHistogram()
            hist.observe(seconds)

    def span_observe(self, path: str, seconds: float, error: bool = False) -> None:
        """Record one span duration at tree ``path``; ``error`` marks a
        span whose body raised."""
        if not self.enabled:
            return
        with self._lock:
            self.events += 1
            stat = self.spans.get(path)
            if stat is None:
                stat = self.spans[path] = TimerStat()
            stat.observe(seconds)
            if error:
                stat.errors += 1

    # -------------------------------------------------- snapshot / merging

    def snapshot(self, with_samples: bool = False) -> Dict[str, object]:
        """Plain-dict view of every metric — JSON-ready, process-portable.

        ``with_samples=True`` includes raw timer samples so a parent
        process can merge percentile data from workers.
        """
        with self._lock:
            snap: Dict[str, object] = {
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "timers": {k: v.as_dict() for k, v in self.timers.items()},
                "spans": {k: v.as_dict() for k, v in self.spans.items()},
                "histograms": {
                    k: v.as_dict() for k, v in self.histograms.items()
                },
            }
            if with_samples:
                snap["timer_samples"] = {
                    k: list(v.samples) for k, v in self.timers.items()
                }
        return snap

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges take the max (every shipped gauge is a
        high-water mark or a size, where max is the useful aggregate);
        timers and spans merge their distributions; histograms merge
        bucket counts exactly (associative — fold order never matters).
        """
        with self._lock:
            for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
                self.counters[name] = self.counters.get(name, 0) + value
            for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
                cur = self.gauges.get(name)
                if cur is None or value > cur:
                    self.gauges[name] = value
            samples = snap.get("timer_samples", {})
            for family, store in (("timers", self.timers), ("spans", self.spans)):
                for name, stat_dict in snap.get(family, {}).items():  # type: ignore[union-attr]
                    stat = store.get(name)
                    if stat is None:
                        stat = store[name] = TimerStat()
                    stat.merge(
                        stat_dict,
                        samples.get(name) if family == "timers" else None,  # type: ignore[union-attr]
                    )
            for name, hist_dict in snap.get("histograms", {}).items():  # type: ignore[union-attr]
                incoming = LatencyHistogram.from_dict(hist_dict)
                hist = self.histograms.get(name)
                if hist is None or hist.bounds != incoming.bounds:
                    # Unknown name (or a layout change): adopt the incoming
                    # histogram wholesale rather than guessing a re-binning.
                    self.histograms[name] = incoming
                else:
                    hist.merge(incoming)


#: The process-global registry every instrumented module reports into.
_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global :class:`Registry` singleton."""
    return _REGISTRY
