"""Repository maintenance scripts (run with ``python -m tools.<name>``)."""
