"""Batch routing: route whole net lists with caching and multiprocessing.

The paper's use case is "route millions of nets"; this module provides the
throughput layer a production deployment needs:

* :func:`route_batch` — route a net list, optionally across worker
  processes (nets are independent), with a translation cache in front.
* :class:`BatchResult` — per-net Pareto sets plus throughput statistics.

Worker processes rebuild their own :class:`~repro.core.patlabor.PatLabor`
(routers hold lookup tables and RNG state that should not be shared), so
only nets and plain objective results cross process boundaries; trees are
reconstructed lazily on demand when ``with_trees`` is set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.net import Net
from .cache import CachedRouter
from .pareto import Solution
from .patlabor import PatLabor, PatLaborConfig


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    fronts: Dict[str, List[Solution]]
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def nets_per_second(self) -> float:
        return len(self.fronts) / self.seconds if self.seconds > 0 else 0.0

    @property
    def total_solutions(self) -> int:
        return sum(len(f) for f in self.fronts.values())


def _route_serial(
    nets: Sequence[Net], config: PatLaborConfig, use_cache: bool
) -> Tuple[Dict[str, List[Solution]], int, int]:
    router: object = PatLabor(config=config)
    if use_cache:
        router = CachedRouter(router)
    fronts: Dict[str, List[Solution]] = {}
    for i, net in enumerate(nets):
        name = net.name or f"net_{i}"
        fronts[name] = router.route(net)
    hits = getattr(router, "hits", 0)
    misses = getattr(router, "misses", 0)
    return fronts, hits, misses


def _worker(args) -> Tuple[Dict[str, List[Tuple[float, float, None]]], int, int]:
    """Process-pool worker: returns payload-free fronts (trees don't cross
    process boundaries cheaply; objectives are what batch callers need)."""
    nets, config_dict, use_cache = args
    config = PatLaborConfig(**config_dict)
    fronts, hits, misses = _route_serial(nets, config, use_cache)
    slim = {
        name: [(w, d, None) for w, d, _t in front]
        for name, front in fronts.items()
    }
    return slim, hits, misses


def route_batch(
    nets: Sequence[Net],
    *,
    config: Optional[PatLaborConfig] = None,
    jobs: int = 1,
    use_cache: bool = True,
) -> BatchResult:
    """Route every net; returns per-net Pareto sets keyed by net name.

    With ``jobs > 1`` the nets are sharded across processes and the
    returned solutions carry ``None`` payloads (objectives only); run
    serially when the trees themselves are needed.
    """
    config = config or PatLaborConfig()
    t0 = time.perf_counter()
    if jobs <= 1:
        fronts, hits, misses = _route_serial(nets, config, use_cache)
        return BatchResult(
            fronts=fronts,
            seconds=time.perf_counter() - t0,
            cache_hits=hits,
            cache_misses=misses,
        )

    import multiprocessing
    from dataclasses import asdict

    shards: List[List[Net]] = [[] for _ in range(jobs)]
    for i, net in enumerate(nets):
        shards[i % jobs].append(net)
    payload = [
        (shard, asdict(config), use_cache) for shard in shards if shard
    ]
    fronts: Dict[str, List[Solution]] = {}
    hits = misses = 0
    with multiprocessing.Pool(processes=jobs) as pool:
        for slim, h, m in pool.map(_worker, payload):
            fronts.update(slim)
            hits += h
            misses += m
    return BatchResult(
        fronts=fronts,
        seconds=time.perf_counter() - t0,
        cache_hits=hits,
        cache_misses=misses,
    )
