"""Tri-objective Pareto machinery for (wirelength, delay, congestion).

Generalises the planar sweep of :mod:`repro.core.pareto` to three
minimisation objectives. Fronts stay small for routing instances, so the
filter is a simple O(k²) scan (the 2-D sort trick does not carry over).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

Objective3 = Tuple[float, float, float]
Solution3 = Tuple[float, float, float, Any]


def dominates3(a: Objective3, b: Objective3) -> bool:
    """True when ``a`` Pareto-dominates ``b`` in all three objectives."""
    return (
        a[0] <= b[0]
        and a[1] <= b[1]
        and a[2] <= b[2]
        and (a[0] < b[0] or a[1] < b[1] or a[2] < b[2])
    )


def weakly_dominates3(a: Objective3, b: Objective3) -> bool:
    """True when ``a`` is no worse than ``b`` in every component."""
    return a[0] <= b[0] and a[1] <= b[1] and a[2] <= b[2]


def pareto_filter3(solutions: Iterable[Solution3]) -> List[Solution3]:
    """Non-dominated subset (first-seen kept among exact duplicates),
    sorted lexicographically."""
    items = sorted(set_free(solutions), key=lambda s: (s[0], s[1], s[2]))
    kept: List[Solution3] = []
    for s in items:
        obj = (s[0], s[1], s[2])
        if any(weakly_dominates3((k[0], k[1], k[2]), obj) for k in kept):
            continue
        kept = [
            k for k in kept if not weakly_dominates3(obj, (k[0], k[1], k[2]))
        ]
        kept.append(s)
    kept.sort(key=lambda s: (s[0], s[1], s[2]))
    return kept


def set_free(solutions: Iterable[Solution3]) -> List[Solution3]:
    """Drop exact objective duplicates, keeping the first payload."""
    seen = {}
    for s in solutions:
        seen.setdefault((s[0], s[1], s[2]), s)
    return list(seen.values())


def is_pareto_front3(solutions: Sequence[Solution3]) -> bool:
    """True when no solution weakly dominates another (a strict front)."""
    objs = [(s[0], s[1], s[2]) for s in solutions]
    for i, a in enumerate(objs):
        for j, b in enumerate(objs):
            if i != j and weakly_dominates3(a, b):
                return False
    return True


def project_wd(solutions: Sequence[Solution3]) -> List[Tuple[float, float, Any]]:
    """Project a 3-D front onto (w, d) and 2-D-filter it.

    Uses the tolerance-aware filter: distinct 3-D solutions may share
    mathematically equal (w, d) up to summation noise.
    """
    from ..core.pareto import clean_front

    return clean_front([(w, d, p) for (w, d, _c, p) in solutions])
