"""Extension experiment — congestion as a third objective (paper §VII).

Quantifies what the tri-objective extension buys on hot-spot maps:

* the exact 3-D frontier is at least as large as the 2-D one (extra
  congestion-driven trade-off trees appear),
* per-edge embedding choice alone cuts congestion measurably at zero
  wirelength/delay cost,
* the 2-D Pareto set's best congestion (after embedding optimisation)
  is within a bounded factor of the true 3-D optimum on small nets.

Timed kernel: one exact tri-objective DW solve (degree 5).
"""

import random

from repro.congestion import (
    CongestionMap,
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)
from repro.core.pareto_dw import pareto_dw
from repro.baselines.rsmt import rsmt
from repro.eval.reporting import format_table
from repro.geometry.net import random_net

from conftest import write_artifact

NUM_NETS = 5


def test_ext_congestion(benchmark):
    rng = random.Random(17)
    rows = []
    extra_trees_total = 0
    emb_savings = []
    gap_ratios = []
    for i in range(NUM_NETS):
        net = random_net(5, rng=rng, span=100.0)
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, hotspots=3, hot_weight=10.0,
            rng=random.Random(100 + i),
        )
        front2 = pareto_dw(net)
        front3 = pareto_dw3(net, cmap)
        extra = len(front3) - len(front2)
        extra_trees_total += max(0, extra)

        # Embedding-only savings on the RSMT.
        tree = rsmt(net)
        fixed = sum(
            cmap.edge_cost(tree.points[p], tree.points[c])
            for c, p in tree.edges()
        )
        _, best = embed_min_congestion(tree, cmap)
        saving = 1.0 - best / fixed if fixed > 0 else 0.0
        emb_savings.append(saving)

        # How close the annotated 2-D set gets to the 3-D optimum.
        annotated = congestion_annotated_front(net, cmap)
        best_2d = min(c for _w, _d, c, _t in annotated)
        best_3d = min(c for _w, _d, c, _t in front3)
        ratio = best_2d / best_3d if best_3d > 0 else 1.0
        gap_ratios.append(ratio)

        rows.append(
            [
                i,
                len(front2),
                len(front3),
                f"{saving * 100:.1f}%",
                f"{ratio:.3f}",
            ]
        )

    table = format_table(
        ["net", "|front 2D|", "|front 3D|", "embed saving", "2D/3D best-congestion"],
        rows,
        title=(
            "Extension — congestion objective on hot-spot maps "
            f"({NUM_NETS} degree-5 nets)"
        ),
    )
    write_artifact("ext_congestion.txt", table)

    # Shape: the third objective exposes new trade-off trees somewhere...
    assert extra_trees_total >= 1
    # ...embedding choice never hurts...
    assert all(s >= -1e-9 for s in emb_savings)
    # ...and the 2-D set is a decent but not perfect congestion proxy.
    assert all(r >= 1.0 - 1e-9 for r in gap_ratios)

    net = random_net(5, rng=random.Random(999), span=100.0)
    cmap = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(1))
    benchmark(lambda: pareto_dw3(net, cmap))
