"""Fig. 7(b) — averaged Pareto curves on large-degree nets (10-50 pins).

Paper: PatLabor tightest; ~11.6% slower than SALT (Pareto-set merging
cost) but much faster than YSD. No exact frontier exists at these sizes,
so curves are compared directly. Required shape: PatLabor's averaged
curve at or below both baselines for most of the budget range, with the
wirelength endpoint anchored by its RSMT seed.

Timed kernel: PatLabor on one degree-~20 net.
"""

from repro.core.patlabor import PatLabor
from repro.eval.metrics import average_curves
from repro.eval.reporting import render_curves
from repro.eval.runner import compare_on_nets, default_methods, fig7_normalizers

from conftest import write_artifact

NUM_NETS = 16  # paper: every 10 <= n <= 50 net of 8 designs


def test_fig7b_large_nets(benchmark, suite):
    nets = suite.large_nets(count=NUM_NETS, min_degree=10, max_degree=50)
    comparisons = compare_on_nets(
        nets, default_methods(), compute_exact=False
    )
    norm = fig7_normalizers(nets)
    curves = average_curves(comparisons, norm.w_refs, norm.d_refs)
    rendered = render_curves(
        curves,
        title=f"Fig. 7(b) — large nets (degrees 10-50, {NUM_NETS} nets)",
    )
    write_artifact("fig7b_large.txt", rendered)

    by_name = {c.method: c for c in curves}
    ours, salt, ysd = by_name["PatLabor"], by_name["SALT"], by_name["YSD"]
    # PatLabor at least as tight as each baseline on average across the
    # budget grid (pointwise domination is not guaranteed at this scale,
    # matching the paper's Fig. 7(b) where curves cross near the ends).
    mean = lambda c: sum(c.mean_delay) / len(c.mean_delay)  # noqa: E731
    assert mean(ours) <= mean(salt) + 1e-9
    assert mean(ours) <= mean(ysd) + 1e-9
    # Wirelength endpoint: PatLabor's lightest tree ~ the RSMT reference.
    first_budget_delay = ours.mean_delay[0]
    assert first_budget_delay < 10  # sane normalised values

    router = PatLabor()
    net = nets[0]
    benchmark(lambda: router.route(net))
