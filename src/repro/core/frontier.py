"""Sorted-front Pareto kernels: linear-time algebra over maintained-sorted fronts.

The DP inner loops of this library (Pareto-DW closures and merges, the
PatLabor local search, the KS combine) all operate on Pareto fronts. The
generic :func:`repro.core.pareto.pareto_filter` re-derives sortedness on
every call — enumerate candidates, sort, sweep — which costs
``O(k log k)`` per bucket and allocates every candidate tuple even when
it is immediately dominated.

This module instead treats sortedness as an *invariant*: a **sorted
front** is a sequence of ``(w, d, payload)`` solutions with ``w``
strictly ascending and ``d`` strictly descending — exactly the shape
``pareto_filter`` outputs. Every kernel here consumes sorted fronts and
produces sorted fronts, so a DP that starts from singleton fronts never
needs to sort again:

* :func:`cross_sorted` — the paper's ``S ⊕ S'`` merge product in
  ``O(a + b)`` by a synchronized two-pointer sweep. The product of two
  fronts of sizes ``a`` and ``b`` has at most ``a + b - 1`` non-dominated
  points (paper, Section IV-A), and the sweep emits exactly those without
  materializing the ``a · b`` candidate list.
* :func:`cross_merge_sorted` — the same product stream fused with a
  Pareto union into an accumulated front, so product points that are
  dominated by earlier splits are never allocated at all.
* :func:`merge_sorted_fronts` — Pareto union of several sorted fronts by
  a fold of two-pointer union merges.
* :func:`merge_shifted` — union of *shifted* sorted fronts (the closure
  bucket of Pareto-DW), materializing a solution tuple only when it
  survives dominance, with a whole-run skip for runs the accumulated
  front already dominates.
* :func:`shift_sorted` — the paper's ``S + x``; adding a constant to both
  objectives preserves the invariant, so shifted runs feed straight into
  the merges with no re-filtering.
* :func:`pareto_filter_sorted` — drop-in ``pareto_filter`` that detects
  already-sorted input with one linear scan and skips the sort.
* :func:`assert_sorted_front` — debug-only invariant check (compiled out
  under ``python -O``).

Everything is a plain two-pointer loop over tuples — no ``heapq``, no
generators, no per-candidate key objects. Profiling the Pareto-DW hot
path showed heap/generator machinery costing more than the naive
enumerate-and-sort it replaced; fold-of-two-way-merges is both the
asymptotic and the constant-factor winner because final fronts stay
small (the paper's ``a + b - 1`` bound caps growth per merge).

All kernels are exact: they return bit-identical ``(w, d)`` frontiers to
the enumerate-and-sort reference implementations (like the paper's
Lemmas 2–4, they change the work done, never the result). That includes
floating-point tie collapse: IEEE addition is monotone but not
*strictly* monotone, so two distinct ``w`` values can round to the same
sum after ``w1 + w2`` or ``w + offset`` — sort-and-sweep collapses such
collisions to the smaller-delay point, and the kernels replicate that by
replacing the last emitted point when a new point lands on the same
``w`` (equal-``d`` collisions fall out of the strict dominance sweep). Tie handling —
which payload survives among solutions with identical objectives —
matches the reference's first-encountered rule for the union merges;
``cross_sorted``/``cross_merge_sorted`` may pick a different
(objective-equal) payload when two index pairs produce the exact same
product point. See ``tests/test_frontier_kernels.py`` for the
equivalence property tests and ``docs/performance.md`` for the
complexity arguments.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

Objective = Tuple[float, float]
Solution = Tuple[float, float, Any]

#: One input run of :func:`merge_shifted`: ``(offset, front, tag)``.
#: The run contributes ``(w + offset, d + offset, payload)`` for every
#: solution of ``front``. ``tag`` is opaque context handed to the
#: caller's ``rewrap(tag, solution)`` to build the surviving payload;
#: ``tag=None`` keeps the original payload, and the combination
#: ``offset == 0.0 and tag is None`` reuses the original tuples without
#: allocating.
ShiftedRun = Tuple[float, Sequence[Solution], Any]

__all__ = [
    "Objective",
    "ShiftedRun",
    "Solution",
    "assert_sorted_front",
    "cross_merge_sorted",
    "cross_sorted",
    "is_sorted_front",
    "merge_shifted",
    "merge_sorted_fronts",
    "pareto_filter_sorted",
    "shift_sorted",
]

_INF = float("inf")


def is_sorted_front(solutions: Sequence[Solution]) -> bool:
    """True when ``solutions`` holds the sorted-front invariant.

    The invariant is *strict* on both objectives — ``w`` strictly
    ascending and ``d`` strictly descending — which is exactly the shape
    of a minimal Pareto front sorted by wirelength (two solutions sharing
    either objective would dominate one another).
    """
    prev_w, prev_d = -_INF, _INF
    for s in solutions:
        if s[0] <= prev_w or s[1] >= prev_d:
            return False
        prev_w, prev_d = s[0], s[1]
    return True


def assert_sorted_front(
    solutions: Sequence[Solution], label: str = "front"
) -> Sequence[Solution]:
    """Debug-only invariant check; returns ``solutions`` unchanged.

    Raises :class:`AssertionError` naming ``label`` when the sorted-front
    invariant is violated. The check is compiled out under ``python -O``,
    so it can guard kernel entry points in tests without taxing
    production runs.
    """
    assert is_sorted_front(solutions), (
        f"{label} violates the sorted-front invariant "
        f"(w strictly ascending, d strictly descending): "
        f"{[(s[0], s[1]) for s in solutions]!r}"
    )
    return solutions


def shift_sorted(
    solutions: Sequence[Solution],
    x: float,
    rewrap: Optional[Callable[[Solution], Any]] = None,
) -> List[Solution]:
    """The paper's ``S + x`` over a sorted front, preserving the invariant.

    Adding the same constant to both objectives of every solution keeps
    ``w`` strictly ascending and ``d`` strictly descending, so the result
    feeds directly into :func:`merge_sorted_fronts` / :func:`cross_sorted`
    with no re-filtering. ``rewrap`` optionally rebuilds the payload from
    the original solution (e.g. to record a DP extension edge).

    Exactness caveat: rounding can collapse two distinct shifted values
    onto the same float, so the output is the *Pareto front* of the
    shifted set — identical to shift-then-``pareto_filter`` — which on
    collision drops the dominated point instead of emitting both.
    """
    out: List[Solution] = []
    for s in solutions:
        w = s[0] + x
        d = s[1] + x
        if out:
            last = out[-1]
            if d >= last[1]:
                # d collided on rounding; the earlier (smaller-w) point
                # weakly dominates, exactly as sort + sweep would keep it.
                continue
            if w == last[0]:
                # w collided: same w, strictly smaller d — replace.
                out.pop()
        out.append((w, d, rewrap(s) if rewrap is not None else s[2]))
    return out


def cross_sorted(
    s1: Sequence[Solution],
    s2: Sequence[Solution],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> List[Solution]:
    """The paper's ``S ⊕ S'`` merge product of two sorted fronts in O(a+b).

    Walks both fronts with synchronized pointers over the
    ``(w1 + w2, max(d1, d2))`` structure: the pair ``(0, 0)`` is the
    minimum-wirelength product point; from any emitted point, the only way
    to strictly lower the combined delay is to advance the *binding* side
    (the one contributing the max — both on a tie), which yields the next
    non-dominated point directly. Every advance strictly increases ``w``
    and strictly decreases ``d``, so the output is a sorted front of at
    most ``a + b - 1`` points and the ``a · b`` candidate list is never
    materialized.

    ``combine`` merges the two payloads (default: the pair ``(p1, p2)``).
    Exactly the non-dominated subset of the full product is returned; when
    several index pairs hit the same ``(w, d)`` point the surviving
    payload may differ from the enumerate-and-sort reference (which keeps
    the first in enumeration order) — objectives never do.
    """
    if not s1 or not s2:
        return []
    a, b = len(s1), len(s2)
    i = j = 0
    w1, d1, p1 = s1[0]
    w2, d2, p2 = s2[0]
    out: List[Solution] = []
    while True:
        payload = combine(p1, p2) if combine is not None else (p1, p2)
        w = w1 + w2
        if out and out[-1][0] == w:
            # Rounding collapsed two sums onto one w; the later stream
            # point has strictly smaller d and dominates — replace.
            out[-1] = (w, d1 if d1 >= d2 else d2, payload)
        else:
            out.append((w, d1 if d1 >= d2 else d2, payload))
        if d1 > d2:
            i += 1
            if i == a:
                break
            w1, d1, p1 = s1[i]
        elif d2 > d1:
            j += 1
            if j == b:
                break
            w2, d2, p2 = s2[j]
        else:
            i += 1
            j += 1
            if i == a or j == b:
                break
            w1, d1, p1 = s1[i]
            w2, d2, p2 = s2[j]
    return out


def cross_merge_sorted(
    acc: Sequence[Solution],
    s1: Sequence[Solution],
    s2: Sequence[Solution],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> Tuple[List[Solution], int]:
    """Pareto union of ``acc`` with the ``s1 ⊕ s2`` product, fused.

    The DP merge loop of Pareto-DW folds one product per split into a
    running front. Doing that as ``cross_sorted`` + union would first
    materialize every product point and then drop the dominated ones;
    this kernel instead advances the :func:`cross_sorted` two-pointer
    stream *inside* the union merge, so a product point dominated by
    ``acc`` (an earlier split, preferred on ties like ``pareto_filter``'s
    first-encountered rule) is discarded before its tuple or payload is
    ever built.

    Returns ``(front, allocated)`` where ``allocated`` counts the product
    solution tuples actually materialized — the currency of the
    ``dw.merge_candidates`` counter. ``acc`` must be a sorted front; its
    surviving tuples are reused, never copied.
    """
    if not s1 or not s2:
        return list(acc), 0
    a, b = len(s1), len(s2)
    la = len(acc)
    i = j = k = 0
    w1, d1, p1 = s1[0]
    w2, d2, p2 = s2[0]
    wp = w1 + w2
    dp = d1 if d1 >= d2 else d2
    live = True
    out: List[Solution] = []
    best_d = _INF
    allocated = 0
    while live and k < la:
        sa = acc[k]
        wa = sa[0]
        if wa < wp or (wa == wp and sa[1] <= dp):
            if sa[1] < best_d:
                out.append(sa)
                best_d = sa[1]
            k += 1
            continue
        if dp < best_d:
            payload = combine(p1, p2) if combine is not None else (p1, p2)
            if out and out[-1][0] == wp:
                # w collided on rounding: same w, strictly smaller d.
                out[-1] = (wp, dp, payload)
            else:
                out.append((wp, dp, payload))
            allocated += 1
            best_d = dp
        if d1 > d2:
            i += 1
            if i == a:
                live = False
            else:
                w1, d1, p1 = s1[i]
        elif d2 > d1:
            j += 1
            if j == b:
                live = False
            else:
                w2, d2, p2 = s2[j]
        else:
            i += 1
            j += 1
            if i == a or j == b:
                live = False
            else:
                w1, d1, p1 = s1[i]
                w2, d2, p2 = s2[j]
        if live:
            wp = w1 + w2
            dp = d1 if d1 >= d2 else d2
    while live:
        # acc is exhausted: drain the remaining product stream.
        if dp < best_d:
            payload = combine(p1, p2) if combine is not None else (p1, p2)
            if out and out[-1][0] == wp:
                # w collided on rounding: same w, strictly smaller d.
                out[-1] = (wp, dp, payload)
            else:
                out.append((wp, dp, payload))
            allocated += 1
            best_d = dp
        if d1 > d2:
            i += 1
            if i == a:
                break
            w1, d1, p1 = s1[i]
        elif d2 > d1:
            j += 1
            if j == b:
                break
            w2, d2, p2 = s2[j]
        else:
            i += 1
            j += 1
            if i == a or j == b:
                break
            w1, d1, p1 = s1[i]
            w2, d2, p2 = s2[j]
        wp = w1 + w2
        dp = d1 if d1 >= d2 else d2
    while k < la:
        # The product stream is exhausted: the tail of acc has strictly
        # descending d, so everything after the first survivor survives.
        sa = acc[k]
        k += 1
        if sa[1] < best_d:
            out.append(sa)
            out.extend(acc[k:])
            break
    return out, allocated


def _union2(a: Sequence[Solution], b: Sequence[Solution]) -> List[Solution]:
    """Pareto union of two non-empty sorted fronts, preferring ``a`` on ties."""
    la, lb = len(a), len(b)
    i = j = 0
    sa = a[0]
    sb = b[0]
    out: List[Solution] = []
    best_d = _INF
    while True:
        if sa[0] < sb[0] or (sa[0] == sb[0] and sa[1] <= sb[1]):
            if sa[1] < best_d:
                out.append(sa)
                best_d = sa[1]
            i += 1
            if i == la:
                while j < lb:
                    sb = b[j]
                    j += 1
                    if sb[1] < best_d:
                        out.append(sb)
                        out.extend(b[j:])
                        break
                return out
            sa = a[i]
        else:
            if sb[1] < best_d:
                out.append(sb)
                best_d = sb[1]
            j += 1
            if j == lb:
                while i < la:
                    sa = a[i]
                    i += 1
                    if sa[1] < best_d:
                        out.append(sa)
                        out.extend(a[i:])
                        break
                return out
            sb = b[j]


def merge_sorted_fronts(*fronts: Sequence[Solution]) -> List[Solution]:
    """Pareto union of several sorted fronts: fold of two-pointer merges.

    Each step unions the accumulated front with the next input in
    ``O(|acc| + |front|)``; ties resolve to the earlier front, matching
    ``pareto_filter``'s first-encountered rule over the concatenated
    input. Because a Pareto union never grows past the paper's
    ``a + b - 1`` bound, the fold stays linear in the total input size
    for the small fronts of the routing DPs — with none of the
    per-element generator or heap overhead of a k-way ``heapq.merge``.
    """
    acc: Optional[List[Solution]] = None
    for f in fronts:
        if not f:
            continue
        if acc is None:
            acc = list(f)
        else:
            acc = _union2(acc, f)
    return acc if acc is not None else []


def _wd_key(s: Solution) -> Objective:
    """Sort key of a solution: the bare objective pair."""
    return (s[0], s[1])


def merge_shifted(
    runs: Sequence[ShiftedRun],
    rewrap: Optional[Callable[[Any, Solution], Any]] = None,
) -> Tuple[List[Solution], int]:
    """Pareto union of shifted sorted fronts, allocating only survivors.

    This is the closure-bucket kernel of Pareto-DW: each run is a source
    front shifted by an extension distance (see :data:`ShiftedRun`).
    Runs fold into the accumulated front through a two-pointer union
    that computes shifted keys on the fly, so a dominated candidate is
    rejected *before* its solution tuple (or payload, built by
    ``rewrap(tag, solution)``) ever exists. A run whose best corner
    ``(w_min, d_min)`` is already weakly dominated by the accumulated
    front's last point is skipped wholesale without touching its
    elements. The enumerate-and-sort reference materializes every
    shifted candidate first; this kernel materializes at most the
    candidates that survive *some* prefix union.

    Returns ``(front, allocated)`` where ``allocated`` counts solution
    tuples materialized from the runs (reused identity-run tuples are
    free) — the currency of the ``dw.closure_allocations`` counter.
    Ties resolve to the earlier run — identical to ``pareto_filter``
    over the concatenated materialized bucket.
    """
    acc: Optional[List[Solution]] = None
    allocated = 0
    for off, cands, tag in runs:
        if not cands:
            continue
        if acc is None:
            if tag is None and off == 0.0:
                acc = list(cands)
            else:
                wrap = rewrap if tag is not None else None
                acc = []
                for s in cands:
                    w = s[0] + off
                    d = s[1] + off
                    if acc:
                        last = acc[-1]
                        if d >= last[1]:
                            # d collided on rounding: weakly dominated.
                            continue
                        if w == last[0]:
                            # w collided: strictly smaller d — replace.
                            acc.pop()
                    if wrap is not None:
                        acc.append((w, d, wrap(tag, s)))
                    else:
                        acc.append((w, d, s[2]))
                    allocated += 1
            continue
        last = acc[-1]
        if last[0] <= cands[0][0] + off and last[1] <= cands[-1][1] + off:
            # acc's last point (max w, min d on acc) weakly dominates the
            # run's best corner, hence every point of the run.
            continue
        acc, n = _union_shifted(acc, off, cands, tag, rewrap)
        allocated += n
    return (acc if acc is not None else []), allocated


def _union_shifted(
    a: List[Solution],
    off: float,
    b: Sequence[Solution],
    tag: Any,
    rewrap: Optional[Callable[[Any, Solution], Any]],
) -> Tuple[List[Solution], int]:
    """Union of sorted front ``a`` with run ``b`` shifted by ``off``."""
    la, lb = len(a), len(b)
    wrap = rewrap if tag is not None else None
    zero = off == 0.0
    i = j = 0
    sa = a[0]
    sb = b[0]
    wb = sb[0] + off
    db = sb[1] + off
    out: List[Solution] = []
    best_d = _INF
    allocated = 0
    while True:
        if sa[0] < wb or (sa[0] == wb and sa[1] <= db):
            if sa[1] < best_d:
                out.append(sa)
                best_d = sa[1]
            i += 1
            if i == la:
                while True:
                    if db < best_d:
                        if wrap is not None:
                            new = (wb, db, wrap(tag, sb))
                        elif zero:
                            new = sb
                        else:
                            new = (wb, db, sb[2])
                        if out and out[-1][0] == wb:
                            out[-1] = new
                        else:
                            out.append(new)
                        allocated += 1
                        best_d = db
                    j += 1
                    if j == lb:
                        return out, allocated
                    sb = b[j]
                    wb = sb[0] + off
                    db = sb[1] + off
            sa = a[i]
        else:
            if db < best_d:
                if wrap is not None:
                    new = (wb, db, wrap(tag, sb))
                elif zero:
                    new = sb
                else:
                    new = (wb, db, sb[2])
                if out and out[-1][0] == wb:
                    # w collided on rounding: same w, strictly smaller d.
                    out[-1] = new
                else:
                    out.append(new)
                allocated += 1
                best_d = db
            j += 1
            if j == lb:
                while i < la:
                    sa = a[i]
                    i += 1
                    if sa[1] < best_d:
                        out.append(sa)
                        out.extend(a[i:])
                        break
                return out, allocated
            sb = b[j]
            wb = sb[0] + off
            db = sb[1] + off


def pareto_filter_sorted(solutions: Iterable[Solution]) -> List[Solution]:
    """``Pareto(S)`` with a sorted-input fast path; always exact.

    One linear scan checks whether the input is already in ``(w, d)``
    lexicographic order — true for every front maintained by the kernels
    above, and for any subsequence of one. Sorted input goes straight to
    the dominance sweep (``O(k)``); anything else falls back to the
    stable sort + sweep of ``pareto_filter`` (``O(k log k)``). Output and
    tie handling are identical to ``pareto_filter`` in both cases.

    Edge cases: an empty input returns a new empty list, and a single
    solution is returned as-is in a singleton list (a lone point is
    always a valid sorted front) — neither touches the sweep.

    >>> pareto_filter_sorted([])
    []
    >>> pareto_filter_sorted([(1.0, 2.0, "only")])
    [(1.0, 2.0, 'only')]
    >>> pareto_filter_sorted([(2.0, 1.0, "b"), (1.0, 5.0, "a")])
    [(1.0, 5.0, 'a'), (2.0, 1.0, 'b')]
    >>> pareto_filter_sorted([(1.0, 5.0, "a"), (2.0, 5.0, "dominated")])
    [(1.0, 5.0, 'a')]
    """
    items = list(solutions)
    if len(items) <= 1:
        return items
    prev = items[0]
    for s in items[1:]:
        if s[0] < prev[0] or (s[0] == prev[0] and s[1] < prev[1]):
            items.sort(key=_wd_key)
            break
        prev = s
    out: List[Solution] = []
    best_d = _INF
    for s in items:
        if s[1] < best_d:
            out.append(s)
            best_d = s[1]
    return out
