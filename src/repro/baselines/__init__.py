"""Baseline routing-tree algorithms the paper compares against."""

from .brute_force import brute_force_frontier
from .dreyfus_wagner import rsmt_cost, steiner_min_tree
from .prim_dijkstra import pd2, pd_sweep, prim_dijkstra
from .rsma import rsma, rsma_delay
from .rsmt import rsmt, rsmt_wirelength
from .salt import salt, salt_sweep
from .ysd import ysd, ysd_single

__all__ = [
    "brute_force_frontier",
    "pd2",
    "pd_sweep",
    "prim_dijkstra",
    "rsma",
    "rsma_delay",
    "rsmt",
    "rsmt_cost",
    "rsmt_wirelength",
    "salt",
    "salt_sweep",
    "steiner_min_tree",
    "ysd",
    "ysd_single",
]
