"""``repro.serve`` — routing as a service.

A persistent daemon in front of the :mod:`repro.engine` stack: an asyncio
JSON-line front-end (Unix socket and/or TCP), a process pool whose
workers build their engine — lookup table included — exactly once, and
the shared persistent cache tier (:mod:`repro.core.cache_store`) that
makes hit rates compound across runs. Start one with ``repro serve``,
talk to it with :class:`~repro.serve.client.ServeClient`, smoke-test an
installation with ``python -m repro.serve.smoke``.

Live telemetry rides alongside the wire protocol: ``--metrics-port``
binds the HTTP sidecar (:class:`~repro.serve.http.TelemetryEndpoint`)
answering ``/metrics`` (Prometheus exposition with per-tier latency
histograms), ``/healthz``, and ``/readyz``; ``repro top`` renders the
scrape as a live terminal view. See ``docs/observability.md``.
"""

from __future__ import annotations

from .client import RoutedNet, SelectedNet, ServeClient, ServeError
from .http import METRICS_CONTENT_TYPE, TelemetryEndpoint
from .pool import WorkerSpec
from .server import RouteServer, ServeConfig, ServerThread

__all__ = [
    "METRICS_CONTENT_TYPE",
    "RoutedNet",
    "RouteServer",
    "SelectedNet",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "TelemetryEndpoint",
    "WorkerSpec",
]
