"""Incremental / ECO rerouting: delta-aware reuse of retained solver state.

Production routing traffic is a stream of small edits — a pin moves, a
blockage appears, a net gains a sink — not batches of fresh nets. This
package makes those edits cheap without giving up exactness:

* :class:`~repro.incremental.delta.NetDelta` — one typed edit, with a
  diff-friendly ``.deltas`` replay format and deterministic
  perturbation generators.
* :class:`~repro.incremental.engine.IncrementalRouter` — engine
  middleware holding per-net sessions: cache short-circuits, retained
  Dreyfus–Wagner solver state
  (:func:`~repro.core.pareto_dw.pareto_dw_with_state`), and
  warm-started local search. Exact tiers stay bit-identical to cold
  re-routes.
* :func:`~repro.congestion.negotiate.NegotiatedRouter.run_incremental`
  (in :mod:`repro.congestion`) — connection-based rip-up: only nets
  overlapping dirty cells renegotiate, history prices preserved.

The daemon speaks this as the ``eco`` request type (protocol v2), the
CLI as ``repro eco``; ``benchmarks/bench_eco.py`` gates the ≥10x
warm-path speedup.
"""

from __future__ import annotations

from .delta import (
    DELTA_KINDS,
    NetDelta,
    apply_delta,
    delta_from_payload,
    delta_to_payload,
    dump_deltas,
    format_delta,
    grid_preserving_move,
    load_deltas,
    parse_deltas,
    perturb_nets,
    save_deltas,
)
from .engine import EXACT_TIERS, EcoResult, IncrementalRouter, adapt_tree

__all__ = [
    "DELTA_KINDS",
    "EXACT_TIERS",
    "NetDelta",
    "EcoResult",
    "IncrementalRouter",
    "adapt_tree",
    "apply_delta",
    "delta_from_payload",
    "delta_to_payload",
    "dump_deltas",
    "format_delta",
    "grid_preserving_move",
    "load_deltas",
    "parse_deltas",
    "perturb_nets",
    "save_deltas",
]
