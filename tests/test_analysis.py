"""Tests for the theory-verification package (Theorems 1, 2, 5; Fig. 6)."""

import random

import pytest

from repro.analysis.frontier_stats import fig6_experiment, frontier_sizes
from repro.analysis.generalization import GeneralizationRow
from repro.analysis.smoothed import (
    clustered_net,
    frontier_size_experiment,
    linear_fit,
    smoothed_net,
)
from repro.analysis.theorem1 import (
    all_combination_objectives,
    combination_tree,
    exponential_instance,
    verify_antichain,
)
from repro.core.pareto_dw import pareto_frontier
from repro.routing.validate import check_tree


class TestTheorem1:
    def test_instance_shape(self):
        net = exponential_instance(2)
        assert net.degree == 11  # 5 per gadget + source

    def test_combination_trees_valid(self):
        net = exponential_instance(2)
        for mask in range(4):
            choices = [bool(mask >> i & 1) for i in range(2)]
            check_tree(combination_tree(net, choices))

    def test_antichain_of_2m_witnesses(self):
        """The proof-sketch witness set: all 2^m combinations mutually
        incomparable, for m up to 5 (explicit trees, no DW needed)."""
        for m in (1, 2, 3, 5):
            objs = all_combination_objectives(m)
            assert len(objs) == 2**m
            assert verify_antichain(objs)

    def test_exact_frontier_contains_all_combinations_m1(self):
        net = exponential_instance(1)
        frontier = set(pareto_frontier(net))
        objs = set(all_combination_objectives(1))
        assert objs <= frontier

    def test_exact_frontier_contains_all_combinations_m2(self):
        net = exponential_instance(2)
        frontier = {(round(w, 6), round(d, 6)) for w, d in pareto_frontier(net)}
        objs = {
            (round(w, 6), round(d, 6))
            for w, d in all_combination_objectives(2)
        }
        assert objs <= frontier
        assert len(frontier) >= 4  # 2^2

    def test_choice_vector_length_checked(self):
        net = exponential_instance(2)
        with pytest.raises(ValueError):
            combination_tree(net, [True])

    def test_zero_gadgets_rejected(self):
        with pytest.raises(ValueError):
            exponential_instance(0)


class TestSmoothedModel:
    def test_smoothed_net_in_bounds(self):
        rng = random.Random(1)
        net = smoothed_net(8, kappa=4.0, rng=rng, span=100.0)
        for p in net.pins:
            assert 0 <= p.x <= 100 and 0 <= p.y <= 100

    def test_kappa_one_is_uniform(self):
        rng = random.Random(2)
        net = smoothed_net(6, kappa=1.0, rng=rng)
        assert net.degree == 6

    def test_kappa_below_one_rejected(self):
        with pytest.raises(ValueError):
            smoothed_net(5, kappa=0.5)

    def test_high_kappa_concentrates(self):
        rng = random.Random(3)
        spans = []
        for kappa in (1.0, 64.0):
            widths = []
            for _ in range(10):
                net = smoothed_net(6, kappa=kappa, rng=rng, span=100.0)
                widths.append(net.bbox().half_perimeter)
            spans.append(sum(widths) / len(widths))
        assert spans[1] < spans[0]

    def test_clustered_net(self):
        rng = random.Random(4)
        net = clustered_net(10, num_clusters=2, rng=rng)
        assert net.degree == 10

    def test_frontier_size_experiment_rows(self):
        rows = frontier_size_experiment(
            degrees=(4, 5), kappas=(1.0, 8.0), samples=4, seed=1
        )
        assert len(rows) == 4
        for r in rows:
            assert r.mean_size >= 1
            assert r.max_size >= r.mean_size


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([1, 2, 3], [2, 4, 6])
        assert abs(slope - 2) < 1e-9
        assert abs(intercept) < 1e-9

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            linear_fit([1], [1])

    def test_degenerate_x(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1], [1, 2])


class TestFig6:
    def test_frontier_sizes_grouping(self):
        rng = random.Random(5)
        nets = [smoothed_net(4, 8.0, rng) for _ in range(3)] + [
            smoothed_net(5, 8.0, rng) for _ in range(3)
        ]
        sizes = frontier_sizes(nets)
        assert set(sizes) == {4, 5}
        assert all(len(v) == 3 for v in sizes.values())

    def test_fig6_experiment(self):
        rng = random.Random(6)
        nets = [
            smoothed_net(n, 8.0, rng) for n in (4, 4, 5, 5, 6, 6)
        ]
        result = fig6_experiment(nets)
        assert [s.degree for s in result.per_degree] == [4, 5, 6]
        assert all(s.max_size >= 1 for s in result.per_degree)
        # Fitted line exists.
        assert isinstance(result.slope, float)


class TestGeneralizationRow:
    def test_gap(self):
        row = GeneralizationRow(m=4, train_perf=0.5, test_perf=0.4)
        assert abs(row.gap - 0.1) < 1e-12
