"""``repro top`` — a live terminal view over the daemon's ``/metrics``.

Polls the serve daemon's Prometheus endpoint
(:mod:`repro.serve.http`) on an interval and renders a compact,
``top``-style dashboard: queries per second, per-tier latency
percentiles (p50/p95/p99 out of the exact histogram buckets), cache hit
rates, queue depth, and worker utilization. Rates are **deltas between
consecutive scrapes** — the counters themselves are monotone — so the
view shows what the daemon is doing *now*, not since boot.

The module is a pure exposition *consumer*: it talks HTTP via
``urllib`` and understands only the text format, so it works against
any daemon incarnation (or, in principle, any Prometheus endpoint
exporting the ``repro_serve_*`` families). One-shot mode
(``iterations=1``) prints a single frame and exits — what the CI smoke
job and the tests drive.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Tuple

from .live import Exposition, parse_prometheus_text, percentile_from_buckets

#: The serve tiers rendered as latency rows, warmest first.
TIERS = ("memory", "store", "routed")


def fetch_metrics(url: str, timeout: float = 5.0) -> Exposition:
    """Scrape and parse one exposition document from ``url``.

    Raises :class:`OSError` (connection refused, timeout) or
    :class:`ValueError` (malformed exposition) — callers decide whether
    to retry or die loudly.
    """
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    return parse_prometheus_text(text)


class TopState:
    """Delta tracker between consecutive scrapes (qps, utilization)."""

    def __init__(self) -> None:
        self._last_ts: Optional[float] = None
        self._last: Dict[str, float] = {}

    def rates(self, expo: Exposition, now: float) -> Dict[str, float]:
        """Per-second deltas of the monotone counters since the last call.

        The first call has no baseline and reports zeros; a counter that
        *decreased* (daemon restart) resets the baseline rather than
        reporting a negative rate.
        """
        names = (
            "repro_serve_requests_total",
            "repro_serve_nets_total",
            "repro_serve_errors_total",
        )
        current = {n: expo.value(n) or 0.0 for n in names}
        rates = {n: 0.0 for n in names}
        if self._last_ts is not None:
            dt = max(now - self._last_ts, 1e-9)
            for n in names:
                delta = current[n] - self._last.get(n, 0.0)
                rates[n] = delta / dt if delta >= 0 else 0.0
        self._last_ts = now
        self._last = current
        return rates


def _tier_row(expo: Exposition, name: str, label: str) -> Optional[str]:
    """One latency table row from a histogram family (None when absent)."""
    rows = [
        (float("inf") if le == "+Inf" else float(le), count)
        for le, _labels, count in expo.buckets(name)
    ]
    if not rows:
        return None
    count = expo.value(name + "_count") or 0.0
    p50 = percentile_from_buckets(rows, 0.50) * 1e3
    p95 = percentile_from_buckets(rows, 0.95) * 1e3
    p99 = percentile_from_buckets(rows, 0.99) * 1e3
    return (
        f"  {label:<8} {int(count):>10} {p50:>10.3f} {p95:>10.3f} {p99:>10.3f}"
    )


def render_frame(expo: Exposition, rates: Dict[str, float]) -> str:
    """One dashboard frame as plain text (no terminal control codes).

    Layout: a throughput header, the per-tier latency table, then cache
    and pool health lines. Everything comes from the exposition, so the
    frame renders identically against a live scrape or a recorded one
    (how the tests pin this function down).
    """
    lines: List[str] = []
    ready = expo.value("repro_serve_ready")
    uptime = expo.value("repro_serve_uptime_seconds") or 0.0
    workers = expo.value("repro_serve_workers") or 0.0
    lines.append(
        f"repro serve — up {uptime:8.1f}s   workers {int(workers)}   "
        f"ready {'yes' if ready else 'NO'}"
    )
    lines.append(
        f"  qps {rates.get('repro_serve_requests_total', 0.0):8.1f}   "
        f"nets/s {rates.get('repro_serve_nets_total', 0.0):8.1f}   "
        f"errors/s {rates.get('repro_serve_errors_total', 0.0):6.2f}   "
        f"slow {int(expo.value('repro_serve_slow_requests_total') or 0)}"
    )
    lines.append(
        f"  {'tier':<8} {'count':>10} {'p50 ms':>10} {'p95 ms':>10} "
        f"{'p99 ms':>10}"
    )
    request_row = _tier_row(expo, "repro_serve_request_seconds", "request")
    if request_row:
        lines.append(request_row)
    for tier in TIERS:
        row = _tier_row(expo, f"repro_serve_net_seconds_{tier}", tier)
        if row:
            lines.append(row)
    warm = expo.value("repro_serve_warm_hit_rate")
    depth = expo.value("repro_serve_queue_depth") or 0.0
    depth_max = expo.value("repro_serve_queue_depth_max") or 0.0
    # Utilization: how full the worker pool's high-water mark ran.
    util = min(1.0, depth_max / workers) if workers else 0.0
    lines.append(
        f"  warm hit rate {100.0 * (warm or 0.0):5.1f}%   "
        f"queue {int(depth)} (max {int(depth_max)})   "
        f"worker utilization {100.0 * util:5.1f}%"
    )
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out: Callable[[str], None] = print,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``url`` and render frames until interrupted (or N iterations).

    Returns a process exit code: 0 after a clean run, 1 when the very
    first scrape fails (daemon absent — die loudly instead of spinning).
    Later scrape failures print a warning frame and keep polling, since
    a daemon mid-restart is exactly when an operator watches hardest.
    """
    state = TopState()
    done = 0
    while iterations is None or done < iterations:
        if done:
            sleep(interval)
        try:
            expo = fetch_metrics(url)
        except (OSError, ValueError) as exc:
            if done == 0:
                out(f"repro top: cannot scrape {url}: {exc}")
                return 1
            out(f"repro top: scrape failed ({exc}); retrying")
            done += 1
            continue
        out(render_frame(expo, state.rates(expo, clock())))
        done += 1
    return 0


__all__: Tuple[str, ...] = (
    "TopState",
    "fetch_metrics",
    "render_frame",
    "run_top",
)
