"""Axis-aligned bounding boxes and projections used by the DW pruning lemmas.

Lemma 3 of the paper replaces DP states for grid nodes outside the bounding
box of the active sink subset by the state at the node's projection onto the
box, shifted by the projection distance. :func:`project_onto` implements that
projection.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from .point import Point, PointLike


class BBox(NamedTuple):
    """Closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    @classmethod
    def of(cls, points: Iterable[PointLike]) -> "BBox":
        """Bounding box of a non-empty point collection."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of an empty point set")
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return cls(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height

    def contains(self, p: PointLike) -> bool:
        """True when ``p`` lies inside or on the boundary of the box."""
        return self.xlo <= p[0] <= self.xhi and self.ylo <= p[1] <= self.yhi

    def on_boundary(self, p: PointLike) -> bool:
        """True when ``p`` lies exactly on the rectangle's boundary."""
        if not self.contains(p):
            return False
        return (
            p[0] == self.xlo
            or p[0] == self.xhi
            or p[1] == self.ylo
            or p[1] == self.yhi
        )

    def expanded(self, margin: float) -> "BBox":
        """Box grown by ``margin`` on every side."""
        return BBox(self.xlo - margin, self.ylo - margin,
                    self.xhi + margin, self.yhi + margin)


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    return lo if value < lo else hi if value > hi else value


def project_onto(p: PointLike, box: BBox) -> Point:
    """L1-nearest point of ``box`` to ``p`` (identity when ``p`` is inside).

    The clamped point minimises L1 distance because the coordinates are
    independent under the L1 norm.
    """
    return Point(clamp(p[0], box.xlo, box.xhi), clamp(p[1], box.ylo, box.yhi))
