"""Routing tree data structures, topologies, embeddings, and validation."""

from .embedding import Segment, embed_edge, embed_tree, embedded_wirelength
from .topology import GridEdge, GridTopology
from .tree import RoutingTree
from .validate import check_all, check_on_hanan_grid, check_tree

__all__ = [
    "GridEdge",
    "GridTopology",
    "RoutingTree",
    "Segment",
    "check_all",
    "check_on_hanan_grid",
    "check_tree",
    "embed_edge",
    "embed_tree",
    "embedded_wirelength",
]
