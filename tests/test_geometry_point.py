"""Unit tests for the L1 point primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import (
    Point,
    dedupe_points,
    hpwl,
    is_finite,
    l1,
    manhattan_nearest,
    median_point,
)

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
points = st.tuples(coords, coords)


class TestL1:
    def test_axis_aligned(self):
        assert l1((0, 0), (5, 0)) == 5
        assert l1((0, 0), (0, 7)) == 7

    def test_diagonal(self):
        assert l1((1, 2), (4, 6)) == 3 + 4

    def test_symmetric(self):
        assert l1((3, -2), (-1, 5)) == l1((-1, 5), (3, -2))

    def test_zero_for_same_point(self):
        assert l1((2.5, 3.5), (2.5, 3.5)) == 0.0

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert l1(a, c) <= l1(a, b) + l1(b, c) + 1e-6

    @given(points, points)
    def test_nonnegative(self, a, b):
        assert l1(a, b) >= 0


class TestPoint:
    def test_is_a_tuple(self):
        p = Point(3, 4)
        assert p == (3, 4)
        assert p[0] == 3 and p.y == 4

    def test_dist_matches_l1(self):
        assert Point(0, 0).dist((3, 4)) == 7

    def test_translated(self):
        assert Point(1, 2).translated(10, -2) == Point(11, 0)


class TestHpwl:
    def test_empty_and_singleton(self):
        assert hpwl([]) == 0.0
        assert hpwl([(5, 5)]) == 0.0

    def test_two_points(self):
        assert hpwl([(0, 0), (3, 4)]) == 7

    def test_inner_points_ignored(self):
        assert hpwl([(0, 0), (10, 10), (5, 5)]) == 20

    @given(st.lists(points, min_size=2, max_size=10))
    def test_lower_bounds_any_spanning_wire(self, pts):
        # HPWL is the bounding-box half-perimeter: adding points can only
        # grow it.
        assert hpwl(pts) <= hpwl(pts + [(2e6, 2e6)])


class TestMedianPoint:
    def test_three_points(self):
        m = median_point([(0, 0), (10, 2), (4, 8)])
        assert m == Point(4, 2)

    def test_median_is_between_every_pair_of_three(self):
        pts = [(0, 0), (10, 2), (4, 8)]
        m = median_point(pts)
        for i in range(3):
            for j in range(i + 1, 3):
                a, b = pts[i], pts[j]
                assert min(a[0], b[0]) <= m.x <= max(a[0], b[0])
                assert min(a[1], b[1]) <= m.y <= max(a[1], b[1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median_point([])

    @given(st.lists(points, min_size=3, max_size=3))
    def test_star_through_median_is_shortest_for_three(self, pts):
        # Star wirelength through the median equals the RSMT of 3 points:
        # the Hanan median construction.
        m = median_point(pts)
        star = sum(l1(m, p) for p in pts)
        hp = hpwl(pts)
        assert star <= hp + 1e-6  # never exceeds the bounding half-perimeter
        # and every pairwise path through m is monotone:
        for i in range(3):
            for j in range(i + 1, 3):
                assert (
                    abs(l1(pts[i], m) + l1(m, pts[j]) - l1(pts[i], pts[j]))
                    <= 1e-6
                )


class TestHelpers:
    def test_is_finite(self):
        assert is_finite((1.0, 2.0))
        assert not is_finite((math.nan, 0.0))
        assert not is_finite((0.0, math.inf))

    def test_dedupe_keeps_order(self):
        out = dedupe_points([(1, 1), (2, 2), (1, 1), (3, 3), (2, 2)])
        assert out == [Point(1, 1), Point(2, 2), Point(3, 3)]

    def test_manhattan_nearest(self):
        cands = [(10, 10), (1, 1), (5, 5)]
        assert manhattan_nearest((0, 0), cands) == 1

    def test_manhattan_nearest_tie_lowest_index(self):
        cands = [(1, 0), (0, 1)]
        assert manhattan_nearest((0, 0), cands) == 0

    def test_manhattan_nearest_empty_raises(self):
        with pytest.raises(ValueError):
            manhattan_nearest((0, 0), [])
