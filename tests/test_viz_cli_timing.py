"""Tests for visualisation, CLI, and the delay models."""

import random

import pytest

from repro.baselines.rsmt import rsmt
from repro.baselines.salt import salt
from repro.cli import main
from repro.core.pareto_dw import pareto_dw
from repro.geometry.net import Net, random_net
from repro.io.nets_format import save_nets
from repro.routing.tree import RoutingTree
from repro.timing.elmore import ElmoreDelay, RCParameters
from repro.timing.pathlength import PathLengthDelay
from repro.viz.ascii_art import front_summary, pareto_ascii, tree_ascii
from repro.viz.svg import pareto_curve_svg, save_svg, tree_svg


class TestSvg:
    def test_tree_svg_well_formed(self):
        net = random_net(6, rng=random.Random(1))
        svg = tree_svg(rsmt(net), title="t")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<line" in svg
        assert "t</text>" in svg

    def test_source_is_filled_square(self):
        net = random_net(5, rng=random.Random(2))
        svg = tree_svg(rsmt(net))
        assert 'fill="black"' in svg

    def test_pareto_curve_svg(self):
        net = random_net(6, rng=random.Random(3))
        front = pareto_dw(net)
        svg = pareto_curve_svg([("exact", front)])
        assert "wirelength" in svg and "delay" in svg
        assert svg.count("<circle") >= len(front)

    def test_pareto_curve_empty(self):
        svg = pareto_curve_svg([])
        assert svg.startswith("<svg")

    def test_save_svg(self, tmp_path):
        path = tmp_path / "x.svg"
        save_svg("<svg></svg>", str(path))
        assert path.read_text() == "<svg></svg>"


class TestAscii:
    def test_tree_ascii_markers(self):
        net = Net.from_points((0, 0), [(10, 0), (10, 10)])
        art = tree_ascii(rsmt(net))
        assert "S" in art
        assert art.count("#") == 2

    def test_pareto_ascii(self):
        net = random_net(6, rng=random.Random(4))
        art = pareto_ascii(pareto_dw(net))
        assert "*" in art
        assert "solutions" in art

    def test_pareto_ascii_empty(self):
        assert pareto_ascii([]) == "(empty front)"

    def test_front_summary_lines(self):
        out = front_summary([(1.0, 2.0, None), (3.0, 4.0, None)])
        assert out.count("\n") == 1
        assert "w =" in out


class TestDelayModels:
    def test_pathlength_matches_tree(self):
        net = random_net(8, rng=random.Random(5))
        t = rsmt(net)
        model = PathLengthDelay()
        assert model.max_delay(t) == t.delay()
        assert model.sink_delays(t) == t.sink_delays()

    def test_critical_sink(self):
        net = Net.from_points((0, 0), [(1, 0), (100, 0)])
        t = RoutingTree.star(net)
        assert PathLengthDelay().critical_sink(t) == 1

    def test_elmore_positive_and_ordered(self):
        net = random_net(8, rng=random.Random(6))
        t = rsmt(net)
        delays = ElmoreDelay().sink_delays(t)
        assert len(delays) == 7
        assert all(d > 0 for d in delays)

    def test_elmore_prefers_shorter_paths(self):
        """A shallow tree must have lower worst Elmore delay than a very
        deep chain over the same pins."""
        net = Net.from_points((0, 0), [(10, 0), (20, 0), (30, 0)])
        chain = RoutingTree.from_edges(
            net, [((0, 0), (10, 0)), ((10, 0), (20, 0)), ((20, 0), (30, 0))]
        )
        star = RoutingTree.star(net)
        e = ElmoreDelay()
        # The chain loads the first segment with everything downstream.
        assert e.sink_delays(chain)[2] >= e.sink_delays(star)[2] * 0.99

    def test_elmore_scales_with_rc(self):
        net = random_net(6, rng=random.Random(7))
        t = rsmt(net)
        slow = ElmoreDelay(RCParameters(unit_resistance=1.0))
        fast = ElmoreDelay(RCParameters(unit_resistance=1e-6))
        assert slow.max_delay(t) > fast.max_delay(t)

    def test_shallow_light_tradeoff_visible_in_elmore(self):
        """SALT's eps=0 tree should not be worse in Elmore delay than the
        RSMT on delay-stressed nets (sanity of the extension)."""
        rng = random.Random(8)
        e = ElmoreDelay()
        wins = 0
        for _ in range(5):
            net = random_net(12, rng=rng)
            if e.max_delay(salt(net, 0.0)) <= e.max_delay(rsmt(net)):
                wins += 1
        assert wins >= 3


class TestCli:
    def test_route_random(self, capsys):
        assert main(["route", "--degree", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Pareto solution" in out

    def test_route_from_file(self, tmp_path, capsys):
        nets = [random_net(5, rng=random.Random(2), name="file_net")]
        path = tmp_path / "in.nets"
        save_nets(nets, path)
        assert main(["route", "--nets", str(path)]) == 0
        assert "file_net" in capsys.readouterr().out

    def test_gen_lut_and_route_with_it(self, tmp_path, capsys):
        lut_path = tmp_path / "lut.json"
        assert main(
            ["gen-lut", "--degrees", "4", "--limit", "4", "-o", str(lut_path)]
        ) == 0
        assert lut_path.exists()
        assert main(
            ["route", "--degree", "4", "--lut", str(lut_path)]
        ) == 0

    def test_gen_nets_and_compare(self, tmp_path, capsys):
        nets_path = tmp_path / "w.nets"
        assert main(
            ["gen-nets", "--count", "8", "--seed", "3", "-o", str(nets_path)]
        ) == 0
        assert main([str(x) for x in ["compare", nets_path]]) == 0
        out = capsys.readouterr().out
        assert "PatLabor" in out

    def test_draw(self, tmp_path, capsys):
        nets = [random_net(5, rng=random.Random(4), name="draw_net")]
        path = tmp_path / "in.nets"
        save_nets(nets, path)
        prefix = str(tmp_path / "fig")
        assert main(["draw", str(path), "--prefix", prefix]) == 0
        assert (tmp_path / "fig_curve.svg").exists()

    def test_negotiate_random_scenario(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        svg_path = tmp_path / "overuse.svg"
        assert main([
            "negotiate", "--count", "30", "--cells", "6", "--seed", "7",
            "--baseline", "--heatmap-svg", str(svg_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "converged" in out and "baseline" in out
        assert svg_path.exists()
        assert svg_path.read_text().startswith("<svg")

    def test_negotiate_json_report(self, capsys):
        pytest.importorskip("numpy")
        assert main([
            "negotiate", "--count", "20", "--cells", "5", "--seed", "7",
            "--json",
        ]) == 0
        import json as _json

        report = _json.loads(capsys.readouterr().out)
        assert report["nets"] == 20
        assert report["negotiate.converged"] == 1.0
        assert report["negotiate.final_overuse"] == 0.0
