"""Tests for the routing service (repro.serve): protocol and daemon."""

import random
import tempfile
from pathlib import Path

import pytest

from repro.exceptions import SerializationError
from repro.geometry.net import Net, random_net
from repro.serve import ServeClient, ServeConfig, ServeError, ServerThread
from repro.serve.protocol import (
    decode_message,
    encode_message,
    net_from_payload,
    net_to_payload,
    result_front,
    result_to_payload,
)


class TestProtocol:
    def test_message_round_trip(self):
        msg = {"id": 7, "op": "route", "nets": [], "with_trees": True}
        assert decode_message(encode_message(msg)) == msg

    def test_decode_rejects_garbage(self):
        with pytest.raises(SerializationError):
            decode_message(b"not json\n")
        with pytest.raises(SerializationError):
            decode_message(b"[1, 2, 3]\n")

    def test_net_round_trip_is_exact(self):
        net = random_net(6, rng=random.Random(41), name="exact")
        back = net_from_payload(net_to_payload(net))
        assert back.name == net.name
        assert tuple((p.x, p.y) for p in back.pins) == tuple(
            (p.x, p.y) for p in net.pins
        )

    def test_net_payload_validation(self):
        with pytest.raises(SerializationError):
            net_from_payload({"name": "no-pins"})
        with pytest.raises(SerializationError):
            net_from_payload({"pins": []})
        with pytest.raises(SerializationError):
            net_from_payload({"pins": [["x", "y"]]})

    def test_result_round_trip_with_trees(self):
        from repro.core.patlabor import PatLabor

        net = random_net(5, rng=random.Random(42))
        front = PatLabor().route(net)
        payload = result_to_payload(net.name, front, "routed", with_trees=True)
        back = result_front(payload, net)
        assert [(w, d) for w, d, _ in back] == [(w, d) for w, d, _ in front]
        for (_w, _d, tree), (_w2, _d2, orig) in zip(back, front):
            tree.validate()
            assert tuple((p.x, p.y) for p in tree.points) == tuple(
                (p.x, p.y) for p in orig.points
            )

    def test_result_front_without_net_drops_trees(self):
        payload = {"front": [[1.0, 2.0]], "trees": [{"points": [], "parent": []}]}
        assert result_front(payload) == [(1.0, 2.0, None)]


@pytest.fixture(scope="module")
def serve_dir():
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        yield Path(tmp)


@pytest.fixture(scope="module")
def daemon(serve_dir):
    """One shared daemon on TCP + Unix socket with a persistent store."""
    config = ServeConfig(
        socket_path=str(serve_dir / "serve.sock"),
        host="127.0.0.1",
        port=0,
        workers=2,
        store_path=str(serve_dir / "store.sqlite"),
    )
    with ServerThread(config) as handle:
        yield handle.server


def _client(daemon):
    return ServeClient(host="127.0.0.1", port=daemon.tcp_port)


class TestDaemon:
    def test_ping_over_tcp_and_unix(self, daemon):
        with _client(daemon) as tcp:
            assert tcp.ping()
        with ServeClient(socket_path=daemon.config.socket_path) as unix:
            assert unix.ping()

    def test_route_batch_in_order(self, daemon):
        nets = [
            random_net(4 + i % 3, rng=random.Random(50 + i), name=f"n{i}")
            for i in range(6)
        ]
        with _client(daemon) as client:
            results = client.route(nets)
        assert [name for name, _ in results] == [n.name for n in nets]
        for _name, front in results:
            assert front
            # Fronts arrive sorted by wirelength (engine contract).
            assert [w for w, _d, _t in front] == sorted(
                w for w, _d, _t in front
            )

    def test_repeats_are_served_warm_and_bit_identical(self, daemon):
        net = random_net(5, rng=random.Random(60), name="warmme")
        with _client(daemon) as client:
            first = client.route([net], with_trees=True)
            second = client.route([net], with_trees=True)
            tiers = list(client.route_tiers([net]))
        assert tiers == ["memory"] or tiers == ["store"]
        (name1, front1), (name2, front2) = first[0], second[0]
        assert name1 == name2 == "warmme"
        for (w1, d1, t1), (w2, d2, t2) in zip(front1, front2):
            assert (w1, d1) == (w2, d2)
            t1.validate()
            t2.validate()
            assert tuple((p.x, p.y) for p in t1.points) == tuple(
                (p.x, p.y) for p in t2.points
            )
            assert tuple(t1.parent) == tuple(t2.parent)

    def test_dihedral_image_is_warm(self, daemon):
        net = random_net(5, rng=random.Random(61), name="base")
        mirrored = Net(
            pins=tuple((-p.x, p.y) for p in net.pins),  # type: ignore[arg-type]
            name="mirrored",
        )
        with _client(daemon) as client:
            client.route([net])
            base = dict(client.route([net]))["base"]
            served = dict(client.route([mirrored]))["mirrored"]
        assert [(w, d) for w, d, _ in served] == [(w, d) for w, d, _ in base]

    def test_stats_shape_and_rates(self, daemon):
        with _client(daemon) as client:
            client.route([random_net(4, rng=random.Random(62), name="s0")])
            stats = client.stats()
        for field in (
            "requests", "nets", "requests_per_second", "nets_per_second",
            "served_memory", "served_store", "served_routed",
            "warm_hit_rate", "store_hit_rate", "queue_depth_max",
        ):
            assert field in stats
        assert stats["nets"] >= 1 and stats["requests"] >= 2
        assert stats["queue_depth"] == 0
        assert 0.0 <= stats["warm_hit_rate"] <= 1.0

    def test_unknown_op_is_an_error_response(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError, match="unknown op"):
                client.request("frobnicate")
            assert client.ping()  # connection survives the error

    def test_malformed_route_requests(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError, match="nets"):
                client.request("route")
            with pytest.raises(ServeError, match="nets"):
                client.request("route", nets=[])
            with pytest.raises(ServeError, match="pins"):
                client.request("route", nets=[{"name": "pinless"}])
            with pytest.raises(ServeError):
                # One pin: geometrically invalid, rejected by validation.
                client.request("route", nets=[{"pins": [[0, 0]]}])
            assert client.ping()

    def test_errors_do_not_poison_later_requests(self, daemon):
        with _client(daemon) as client:
            with pytest.raises(ServeError):
                client.request("route", nets=[{"pins": [[0, 0]]}])
            results = client.route(
                [random_net(4, rng=random.Random(63), name="after")]
            )
        assert results[0][1]


class TestDaemonLifecycle:
    def test_shutdown_op_stops_the_server(self, serve_dir):
        config = ServeConfig(host="127.0.0.1", port=0, workers=1)
        handle = ServerThread(config).start()
        with ServeClient(host="127.0.0.1", port=handle.server.tcp_port) as c:
            c.shutdown()
        handle._thread.join(30)
        assert not handle._thread.is_alive()

    def test_config_requires_an_endpoint(self):
        from repro.serve import RouteServer

        with pytest.raises(ValueError, match="socket_path"):
            RouteServer(ServeConfig())

    def test_client_requires_exactly_one_endpoint(self):
        with pytest.raises(ValueError):
            ServeClient()
        with pytest.raises(ValueError):
            ServeClient(socket_path="/tmp/x.sock", host="127.0.0.1", port=1)

    def test_store_survives_daemon_restart(self, serve_dir):
        store = serve_dir / "restart.sqlite"
        net = random_net(5, rng=random.Random(64), name="persist")
        config = ServeConfig(
            host="127.0.0.1", port=0, workers=1, store_path=str(store)
        )
        with ServerThread(config) as first:
            with ServeClient(host="127.0.0.1", port=first.server.tcp_port) as c:
                c.route([net])
        assert store.exists()
        with ServerThread(config) as second:
            with ServeClient(host="127.0.0.1", port=second.server.tcp_port) as c:
                tiers = list(c.route_tiers([net]))
        assert tiers == ["store"]
