"""Tests for symbolic solutions and Lemma 1 pruning (both decision modes)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lut.symbolic import (
    SymbolicSolution,
    merge_solutions,
    prune_front,
    row_covered_componentwise,
    row_covered_lp,
    shift_solution,
    symbolic_dominates,
)

M = 4  # parameter count used across these tests
vec = st.tuples(*[st.integers(0, 4) for _ in range(M)])
rows = st.lists(vec, min_size=1, max_size=3).map(tuple)


def sol(w, rws):
    return SymbolicSolution(tuple(w), tuple(tuple(r) for r in rws), None)


class TestAlgebra:
    def test_shift_adds_everywhere(self):
        s = sol([1, 0, 0, 0], [[0, 1, 0, 0]])
        out = shift_solution(s, (0, 0, 1, 1), "p")
        assert out.w == (1, 0, 1, 1)
        assert out.rows == ((0, 1, 1, 1),)
        assert out.payload == "p"

    def test_merge_adds_w_concats_rows(self):
        a = sol([1, 0, 0, 0], [[1, 0, 0, 0]])
        b = sol([0, 1, 0, 0], [[0, 1, 0, 0]])
        out = merge_solutions(a, b, "m")
        assert out.w == (1, 1, 0, 0)
        assert out.rows == ((1, 0, 0, 0), (0, 1, 0, 0))

    def test_evaluate(self):
        s = sol([1, 1, 0, 0], [[1, 0, 0, 0], [0, 1, 0, 0]])
        w, d = s.evaluate([2.0, 5.0, 0.0, 0.0])
        assert w == 7 and d == 5

    def test_canonical_sorts_rows(self):
        a = sol([1, 0, 0, 0], [[1, 0, 0, 0], [0, 1, 0, 0]])
        b = sol([1, 0, 0, 0], [[0, 1, 0, 0], [1, 0, 0, 0]])
        assert a.canonical() == b.canonical()


class TestRowCoverage:
    def test_componentwise_positive(self):
        assert row_covered_componentwise((1, 0, 1, 0), [(1, 1, 1, 0)])

    def test_componentwise_negative(self):
        assert not row_covered_componentwise((2, 0, 0, 0), [(1, 1, 1, 1)])

    def test_lp_agrees_on_componentwise_cases(self):
        assert row_covered_lp((1, 0, 1, 0), [(1, 1, 1, 0)])

    def test_lp_detects_max_coverage(self):
        """Row (1,1,0,0) is NOT under any single row of
        {(2,0,0,0),(0,2,0,0)} but IS under their max: for any l >= 0,
        l1+l2 <= max(2*l1, 2*l2)."""
        row = (1, 1, 0, 0)
        others = [(2, 0, 0, 0), (0, 2, 0, 0)]
        assert not row_covered_componentwise(row, others)
        assert row_covered_lp(row, others)

    def test_lp_negative(self):
        # (3,3,0,0) at l=(1,1): 6 > max(2,2)=2: not covered.
        assert not row_covered_lp((3, 3, 0, 0), [(2, 0, 0, 0), (0, 2, 0, 0)])

    def test_lp_empty_rows(self):
        assert row_covered_lp((0, 0, 0, 0), [])
        assert not row_covered_lp((1, 0, 0, 0), [])

    @settings(max_examples=40, deadline=None)
    @given(vec, rows)
    def test_lp_never_stricter_than_componentwise(self, row, others):
        if row_covered_componentwise(row, list(others)):
            assert row_covered_lp(row, list(others))

    @settings(max_examples=30, deadline=None)
    @given(vec, rows)
    def test_lp_decision_matches_sampling(self, row, others):
        """Randomised soundness: if the LP says covered, no sampled
        nonnegative l disproves it."""
        if row_covered_lp(row, list(others)):
            rng = random.Random(0)
            for _ in range(50):
                l = [rng.uniform(0, 1) for _ in range(M)]
                lhs = sum(c * x for c, x in zip(row, l))
                rhs = max(
                    (sum(c * x for c, x in zip(r, l)) for r in others),
                    default=0.0,
                )
                assert lhs <= rhs + 1e-7


class TestDominance:
    def test_identical_dominates(self):
        a = sol([1, 1, 0, 0], [[1, 0, 0, 0]])
        b = sol([1, 1, 0, 0], [[1, 0, 0, 0]])
        assert symbolic_dominates(a, b)

    def test_w_blocks_dominance(self):
        a = sol([2, 0, 0, 0], [[0, 0, 0, 0]])
        b = sol([1, 1, 0, 0], [[1, 1, 1, 1]])
        assert not symbolic_dominates(a, b)  # w not componentwise <=

    def test_lp_mode_prunes_more(self):
        a = sol([0, 0, 0, 0], [[1, 1, 0, 0]])
        b = sol([1, 0, 0, 0], [[2, 0, 0, 0], [0, 2, 0, 0]])
        assert not symbolic_dominates(a, b, mode="componentwise")
        assert symbolic_dominates(a, b, mode="lp")

    def test_unknown_mode_raises(self):
        a = sol([0] * 4, [[0] * 4])
        with pytest.raises(ValueError):
            symbolic_dominates(a, a, mode="magic")


class TestPruneFront:
    def test_removes_duplicates(self):
        a = sol([1, 0, 0, 0], [[1, 0, 0, 0]])
        b = sol([1, 0, 0, 0], [[1, 0, 0, 0]])
        assert len(prune_front([a, b])) == 1

    def test_removes_dominated(self):
        good = sol([1, 0, 0, 0], [[1, 0, 0, 0]])
        bad = sol([2, 1, 0, 0], [[2, 1, 0, 0]])
        out = prune_front([good, bad])
        assert out == [good]

    def test_keeps_incomparable(self):
        a = sol([2, 0, 0, 0], [[1, 0, 0, 0]])
        b = sol([0, 2, 0, 0], [[0, 1, 0, 0]])
        assert len(prune_front([a, b])) == 2

    def test_lp_mode_never_keeps_more(self):
        rng = random.Random(3)
        sols = []
        for _ in range(12):
            w = tuple(rng.randint(0, 3) for _ in range(M))
            rws = tuple(
                tuple(rng.randint(0, 3) for _ in range(M))
                for _ in range(rng.randint(1, 2))
            )
            sols.append(SymbolicSolution(w, rws, None))
        cw = prune_front(sols, mode="componentwise")
        lp = prune_front(sols, mode="lp")
        assert len(lp) <= len(cw)

    def test_pruning_is_safe_under_sampling(self):
        """Anything pruned is weakly dominated at every sampled gap vector
        by some survivor — the soundness property the LUT relies on."""
        rng = random.Random(4)
        sols = []
        for _ in range(10):
            w = tuple(rng.randint(0, 3) for _ in range(M))
            rws = (tuple(rng.randint(0, 3) for _ in range(M)),)
            sols.append(SymbolicSolution(w, rws, None))
        kept = prune_front(sols, mode="lp")
        for s in sols:
            for _ in range(30):
                gaps = [rng.uniform(0, 5) for _ in range(M)]
                sw, sd = s.evaluate(gaps)
                assert any(
                    k.evaluate(gaps)[0] <= sw + 1e-7
                    and k.evaluate(gaps)[1] <= sd + 1e-7
                    for k in kept
                )
