"""Wire format of the routing service: newline-delimited JSON messages.

One request or response per line, UTF-8 JSON — trivially debuggable with
``socat`` / ``nc`` and language-agnostic. Floats ride JSON's
``repr``-round-tripping encoder, so objectives and tree coordinates cross
the wire bit-identically (the same exactness contract as the persistent
cache tier; see ``docs/numerics.md``).

Requests (client → server)::

    {"id": 1, "op": "ping", "v": 2}
    {"id": 2, "op": "route", "v": 2, "nets": [NET, ...],
     "with_trees": false, "select": "min_delay"?}
    {"id": 3, "op": "stats", "v": 2}
    {"id": 4, "op": "shutdown", "v": 2}
    {"id": 5, "op": "eco", "v": 2, "session": "s1", "nets": [NET, ...]}
    {"id": 6, "op": "eco", "v": 2, "session": "s1", "delta": DELTA,
     "with_trees": false}

``"v"`` is the client's wire-protocol version (:data:`PROTOCOL_VERSION`
when emitted by :class:`~repro.serve.client.ServeClient`). Absent means
version 1 — every v1 op still works unversioned, but ops introduced
later (``eco`` needs :data:`MIN_VERSIONS`\\ ``["eco"]`` = 2) are
rejected with a typed
:class:`~repro.exceptions.ProtocolVersionError` so old clients get a
clear upgrade message instead of a field-shape crash.

The ``eco`` op speaks to a server-held incremental session: the
``nets`` form routes and *tracks* the nets (creating the session), the
``delta`` form applies one ``DELTA``
(:func:`repro.incremental.delta.delta_to_payload` wire shape) and
returns the re-routed result plus reuse accounting.

where ``NET`` is ``{"name": str, "pins": [[x, y], ...]}`` with the source
at index 0 — exactly :class:`~repro.geometry.net.Net`'s pin convention.
``select`` (optional) is a frontier point-policy spec resolved by
:func:`repro.engine.resolve_point_policy` (``min_wirelength`` /
``min_delay`` / ``knee`` / ``budget:<slack>``); the policy runs inside
the worker — the same selection hook the congestion negotiator uses —
and the chosen index rides each result back as ``"chosen"``.

Responses (server → client) echo the ``id`` and carry ``"ok"``::

    {"id": 2, "ok": true, "request_id": "ab12cd34-7",
     "results": [RESULT, ...]}
    {"id": 3, "ok": true, "stats": {...}}
    {"id": 9, "ok": false, "error": "why"}

``RESULT`` is ``{"name", "front": [[w, d], ...], "served", "seconds",
"request_id"?, "chosen"?, "trees"?}``: ``served`` tags the tier that produced the
front (``"memory"`` / ``"store"`` / ``"routed"``), ``seconds`` is the
worker-measured wall time the daemon folds into its per-tier latency
histograms, and ``trees`` (only when requested) holds ``{"points":
[[x, y], ...], "parent": [...]}`` per solution. ``request_id`` — both at
the response top level and per result — is the **daemon-assigned** trace
identity (instance token + sequence, so ids stay disjoint across daemon
restarts); it is distinct from the client-chosen ``id`` echo and joins
the response to the request's spans, ``net_routed`` events, and
``slow_request`` log records. The ``stats`` payload includes ``ready``
(the ``/readyz`` verdict) and ``latency_ms`` per-tier histogram
summaries.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..core.pareto import Solution
from ..exceptions import ProtocolVersionError, SerializationError
from ..geometry.net import Net
from ..routing.tree import RoutingTree

#: Operations a server understands; anything else is rejected politely.
KNOWN_OPS = ("ping", "route", "stats", "shutdown", "eco")

#: Wire-protocol version this build speaks. History: 1 — ping / route /
#: stats / shutdown; 2 — adds the ``eco`` op and the ``error_type``
#: field on failure responses.
PROTOCOL_VERSION = 2

#: Minimum protocol version a request must declare per gated op.
#: Ops absent here work at any version (including unversioned v1).
MIN_VERSIONS: Dict[str, int] = {"eco": 2}

#: Hard cap on nets per single route request (a DoS guard, not a batching
#: hint — clients may send many requests back to back on one connection).
MAX_NETS_PER_REQUEST = 10_000


def check_version(message: Dict[str, Any], op: str) -> None:
    """Reject ``message`` when ``op`` needs a newer declared version.

    The declared version is the integer ``"v"`` field, defaulting to 1
    (pre-versioning clients). Raises
    :class:`~repro.exceptions.ProtocolVersionError` with an upgrade
    message when the op's :data:`MIN_VERSIONS` entry is not met.
    """
    needed = MIN_VERSIONS.get(op)
    if needed is None:
        return
    raw = message.get("v", 1)
    try:
        declared = int(raw)
    except (TypeError, ValueError):
        raise ProtocolVersionError(
            f"request field 'v' must be an integer, got {raw!r}"
        ) from None
    if declared < needed:
        raise ProtocolVersionError(
            f"op {op!r} requires protocol version >= {needed}, but the "
            f"request declared {declared}; upgrade the client (this "
            f"daemon speaks version {PROTOCOL_VERSION})"
        )


def encode_message(obj: Dict[str, Any]) -> bytes:
    """Serialise one message to its wire form (JSON line, UTF-8)."""
    return (json.dumps(obj) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a message dict.

    Raises :class:`~repro.exceptions.SerializationError` on anything that
    is not a single JSON object — the server turns that into an ``ok:
    false`` response instead of dying.
    """
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"undecodable message: {exc}") from exc
    if not isinstance(obj, dict):
        raise SerializationError(
            f"message must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def net_to_payload(net: Net) -> Dict[str, Any]:
    """One net as its wire payload (source first, like ``Net.pins``)."""
    return {"name": net.name, "pins": [[p.x, p.y] for p in net.pins]}


def net_from_payload(payload: Dict[str, Any]) -> Net:
    """Rebuild a :class:`~repro.geometry.net.Net` from its wire payload.

    Raises :class:`~repro.exceptions.SerializationError` on malformed
    payloads (missing pins, non-numeric coordinates); geometric
    validation (degree, duplicates, finiteness) is Net's own and
    surfaces as :class:`~repro.exceptions.InvalidNetError`.
    """
    if not isinstance(payload, dict) or "pins" not in payload:
        raise SerializationError(f"net payload needs 'pins': {payload!r}")
    pins = payload["pins"]
    if not isinstance(pins, list) or not pins:
        raise SerializationError("net payload 'pins' must be a non-empty list")
    try:
        points = tuple((float(x), float(y)) for x, y in pins)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"malformed pin in {pins!r}") from exc
    return Net(pins=points, name=str(payload.get("name", "")))  # type: ignore[arg-type]


def tree_to_payload(tree: RoutingTree) -> Dict[str, Any]:
    """One routing tree as its wire payload (points + parent array)."""
    return {
        "points": [[p.x, p.y] for p in tree.points],
        "parent": list(tree.parent),
    }


def tree_from_payload(net: Net, payload: Dict[str, Any]) -> RoutingTree:
    """Rebuild (and validate) a tree for ``net`` from its wire payload."""
    return RoutingTree.from_parent(net, payload["points"], payload["parent"])


def result_to_payload(
    name: str,
    front: Sequence[Solution],
    served: str,
    *,
    with_trees: bool = False,
) -> Dict[str, Any]:
    """One routed net's response entry (objectives, tier, optional trees)."""
    out: Dict[str, Any] = {
        "name": name,
        "served": served,
        "front": [[w, d] for w, d, _tree in front],
    }
    if with_trees:
        out["trees"] = [
            tree_to_payload(tree) if tree is not None else None
            for _w, _d, tree in front
        ]
    return out


def result_front(
    payload: Dict[str, Any], net: Optional[Net] = None
) -> List[Solution]:
    """Decode a response entry back into ``(w, d, tree_or_None)`` triples.

    Trees are only rebuilt when the payload carries them *and* the
    matching ``net`` is supplied (tree validation needs the pin frame).
    """
    objectives = [(float(w), float(d)) for w, d in payload["front"]]
    trees: List[Optional[RoutingTree]] = [None] * len(objectives)
    if net is not None and payload.get("trees"):
        trees = [
            tree_from_payload(net, t) if t is not None else None
            for t in payload["trees"]
        ]
    return [(w, d, tree) for (w, d), tree in zip(objectives, trees)]
