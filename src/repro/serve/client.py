"""A small synchronous client for the routing daemon.

Speaks the JSON-line protocol of :mod:`repro.serve.server` over a Unix
socket or TCP. One connection, blocking request/response — the shape CLI
tools, tests, and the benchmark harness want; high-fan-out callers can
open several clients (the daemon multiplexes connections).

Usage::

    from repro.serve.client import ServeClient

    with ServeClient(socket_path="/tmp/patlabor.sock") as client:
        client.ping()
        results = client.route(nets)           # [(name, [(w, d, None)...])]
        print(client.stats()["requests_per_second"])
"""

from __future__ import annotations

import socket
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.pareto import Solution
from ..exceptions import ProtocolVersionError, ReproError, SerializationError
from ..geometry.net import Net
from .protocol import (
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
    net_to_payload,
    result_front,
)

if TYPE_CHECKING:
    from ..incremental.delta import NetDelta

#: One routed net as returned by :meth:`ServeClient.route`.
RoutedNet = Tuple[str, List[Solution]]

#: One routed net plus its policy-chosen frontier index
#: (:meth:`ServeClient.route_select`).
SelectedNet = Tuple[str, List[Solution], int]


class ServeError(ReproError):
    """An ``ok: false`` response (or a broken connection) from the daemon."""


class ServeClient:
    """Blocking JSON-line client for one :class:`~repro.serve.server.RouteServer`.

    Parameters
    ----------
    socket_path:
        Unix socket endpoint (mutually exclusive with ``host``).
    host / port:
        TCP endpoint.
    timeout:
        Per-response socket timeout in seconds.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 120.0,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise ValueError("pass exactly one of socket_path or host/port")
        self._sock: socket.socket
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            if port is None:
                raise ValueError("TCP endpoint needs a port")
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._fp = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------ transport

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request; block for (and validate) its response.

        Every request declares this build's :data:`PROTOCOL_VERSION` as
        its ``"v"`` field. Failure responses whose ``error_type`` is
        ``ProtocolVersionError`` re-raise as the typed
        :class:`~repro.exceptions.ProtocolVersionError` (a
        client/daemon version skew the caller can act on); everything
        else raises :class:`ServeError`.
        """
        self._next_id += 1
        message: Dict[str, Any] = {
            "id": self._next_id,
            "op": op,
            "v": PROTOCOL_VERSION,
        }
        message.update(fields)
        self._fp.write(encode_message(message))
        self._fp.flush()
        line = self._fp.readline()
        if not line:
            raise ServeError("connection closed by server")
        try:
            response = decode_message(line)
        except SerializationError as exc:
            raise ServeError(f"undecodable response: {exc}") from exc
        if response.get("id") != message["id"]:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {message['id']}"
            )
        if not response.get("ok"):
            error = str(response.get("error", "unknown server error"))
            if response.get("error_type") == "ProtocolVersionError":
                raise ProtocolVersionError(error)
            raise ServeError(error)
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._fp.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ ops

    def ping(self) -> bool:
        """True when the daemon answers."""
        return bool(self.request("ping").get("pong"))

    def route(
        self, nets: Sequence[Net], *, with_trees: bool = False
    ) -> List[RoutedNet]:
        """Route ``nets`` in one batched request; results in input order.

        Each result is ``(name, [(w, d, tree_or_None), ...])``; trees are
        materialised only when ``with_trees`` is set (they ride the wire
        as point/parent arrays and validate against the query net).
        """
        response = self.request(
            "route",
            nets=[net_to_payload(n) for n in nets],
            with_trees=with_trees,
        )
        results = response.get("results", [])
        if len(results) != len(nets):
            raise ServeError(
                f"server answered {len(results)} results for {len(nets)} nets"
            )
        out: List[RoutedNet] = []
        for net, payload in zip(nets, results):
            front = result_front(payload, net if with_trees else None)
            out.append((str(payload.get("name", net.name)), front))
        return out

    def route_select(
        self,
        nets: Sequence[Net],
        policy: str,
        *,
        with_trees: bool = False,
    ) -> List[SelectedNet]:
        """Route ``nets`` and let the daemon pick one frontier point each.

        ``policy`` is a point-policy spec (``min_wirelength`` /
        ``min_delay`` / ``knee`` / ``budget:<slack>`` — see
        :func:`repro.engine.resolve_point_policy`); selection runs inside
        the worker, so callers that only want one tree per net get its
        index without shipping the whole front through any extra hop.
        Each result is ``(name, front, chosen_index)``.
        """
        response = self.request(
            "route",
            nets=[net_to_payload(n) for n in nets],
            with_trees=with_trees,
            select=policy,
        )
        results = response.get("results", [])
        if len(results) != len(nets):
            raise ServeError(
                f"server answered {len(results)} results for {len(nets)} nets"
            )
        out: List[SelectedNet] = []
        for net, payload in zip(nets, results):
            front = result_front(payload, net if with_trees else None)
            chosen = payload.get("chosen")
            if not isinstance(chosen, int):
                raise ServeError(
                    f"server result for {net.name!r} carries no chosen index"
                )
            out.append((str(payload.get("name", net.name)), front, chosen))
        return out

    def route_tiers(self, nets: Sequence[Net]) -> Iterator[str]:
        """The serving tier (``memory``/``store``/``routed``) per net."""
        response = self.request(
            "route", nets=[net_to_payload(n) for n in nets]
        )
        for payload in response.get("results", []):
            yield str(payload.get("served", "routed"))

    def eco_seed(
        self,
        session: str,
        nets: Sequence[Net],
        *,
        with_trees: bool = False,
    ) -> List[RoutedNet]:
        """Route and *track* ``nets`` in a daemon-held ECO session.

        Creates the session on first touch (the daemon caps concurrent
        sessions) and registers every named net for later
        :meth:`eco_apply` edits. Requires protocol v2 — older daemons
        answer with :class:`~repro.exceptions.ProtocolVersionError`.
        Results follow :meth:`route`'s shape.
        """
        response = self.request(
            "eco",
            session=session,
            nets=[net_to_payload(n) for n in nets],
            with_trees=with_trees,
        )
        results = response.get("results", [])
        if len(results) != len(nets):
            raise ServeError(
                f"server answered {len(results)} results for {len(nets)} nets"
            )
        out: List[RoutedNet] = []
        for net, payload in zip(nets, results):
            front = result_front(payload, net if with_trees else None)
            out.append((str(payload.get("name", net.name)), front))
        return out

    def eco_apply(
        self,
        session: str,
        delta: "NetDelta",
        *,
        with_trees: bool = False,
        net: Optional[Net] = None,
    ) -> Dict[str, Any]:
        """Apply one :class:`~repro.incremental.delta.NetDelta` to a session.

        Returns the daemon's reuse accounting — ``kind``, ``tier``,
        ``cache_hit``, ``reused_masks``, ``total_masks``,
        ``reuse_rate``, ``seconds`` — plus, for net edits, ``name`` and
        the decoded ``front``. Trees are materialised only when
        ``with_trees`` is set *and* the post-edit ``net`` is supplied
        (tree validation needs the pin frame; compute it client-side
        with :func:`repro.incremental.delta.apply_delta`).
        """
        from ..incremental.delta import delta_to_payload

        response = self.request(
            "eco",
            session=session,
            delta=delta_to_payload(delta),
            with_trees=with_trees,
        )
        out = {
            key: response.get(key)
            for key in (
                "kind",
                "tier",
                "cache_hit",
                "reused_masks",
                "total_masks",
                "reuse_rate",
                "seconds",
            )
        }
        result = response.get("result")
        if result is not None:
            out["name"] = str(result.get("name", ""))
            out["front"] = result_front(result, net if with_trees else None)
        return out

    def stats(self) -> Dict[str, Any]:
        """The daemon's live throughput/cache statistics.

        Includes ``ready`` (the ``/readyz`` verdict), ``slow_requests``,
        and ``latency_ms`` — per-request and per-tier latency-histogram
        summaries (count, mean, p50/p95/p99 in milliseconds).
        """
        return dict(self.request("stats").get("stats", {}))

    def shutdown(self) -> None:
        """Ask the daemon to stop (the response confirms it is stopping)."""
        self.request("shutdown")
