"""The eight plane symmetries (dihedral group D4) acting on Hanan grids.

Lookup-table generation (paper, Section V-A) stores only one pattern per
symmetry class: two pin patterns equivalent under mirror / rotation share a
table entry. A :class:`GridTransform` maps grid node indices and symbolic
gap parameters between the query frame and the canonical frame, so a
solution stored canonically can be evaluated for (and mapped back onto) any
symmetric query.

Each element is encoded as *(swap, flip_x, flip_y)* applied in that order:
optionally transpose the axes, then mirror horizontally, then vertically.
All eight combinations enumerate D4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

GridNode = Tuple[int, int]


@dataclass(frozen=True)
class GridTransform:
    """One symmetry of the grid: transpose, then mirror x, then mirror y."""

    swap: bool
    flip_x: bool
    flip_y: bool

    @property
    def name(self) -> str:
        parts = []
        if self.swap:
            parts.append("T")
        if self.flip_x:
            parts.append("X")
        if self.flip_y:
            parts.append("Y")
        return "".join(parts) or "I"

    def out_shape(self, nx: int, ny: int) -> Tuple[int, int]:
        """Grid dimensions after applying the transform."""
        return (ny, nx) if self.swap else (nx, ny)

    def apply_node(self, node: GridNode, nx: int, ny: int) -> GridNode:
        """Map a node of an ``nx x ny`` grid into the transformed frame."""
        i, j = node
        if self.swap:
            i, j = j, i
            nx, ny = ny, nx
        if self.flip_x:
            i = nx - 1 - i
        if self.flip_y:
            j = ny - 1 - j
        return (i, j)

    def apply_point(self, x: float, y: float) -> Tuple[float, float]:
        """Act on a continuous point about the origin.

        The same group element as the grid action, but for raw
        coordinates: optionally transpose the axes, then negate x, then
        negate y. Swap and negation are exact float operations, so exact
        mirror images map onto each other bit-for-bit — the property the
        symmetry-canonicalizing cache relies on.
        """
        if self.swap:
            x, y = y, x
        if self.flip_x:
            x = -x
        if self.flip_y:
            y = -y
        return x, y

    def point_inverse(self) -> "GridTransform":
        """The group element undoing :meth:`apply_point`.

        Without a transpose the element is an involution; with one, the
        two flips trade places (undoing the flips first, then the swap).
        """
        if not self.swap:
            return self
        return GridTransform(swap=True, flip_x=self.flip_y, flip_y=self.flip_x)

    def apply_gaps(
        self, x_gaps: Sequence[float], y_gaps: Sequence[float]
    ) -> Tuple[List[float], List[float]]:
        """Map the gap vectors (symbolic edge lengths) into the new frame."""
        gx, gy = list(x_gaps), list(y_gaps)
        if self.swap:
            gx, gy = gy, gx
        if self.flip_x:
            gx.reverse()
        if self.flip_y:
            gy.reverse()
        return gx, gy

    def apply_param_vector(
        self, vec: Sequence[float], nx: int, ny: int
    ) -> Tuple[float, ...]:
        """Map a concatenated ``(x_gaps | y_gaps)`` vector of an ``nx x ny`` grid."""
        a = nx - 1
        gx, gy = self.apply_gaps(vec[:a], vec[a:])
        return tuple(gx) + tuple(gy)

    def inverse(self, nx: int, ny: int) -> "GridTransform":
        """The group element undoing this transform on an ``nx x ny`` grid.

        The inverse does not depend on the grid size, but the size is needed
        to verify it; we search the eight members, which is cheap and
        immune to sign errors in hand-derived composition rules.
        """
        onx, ony = self.out_shape(nx, ny)
        probes = [(0, 0), (min(1, nx - 1), 0), (0, min(1, ny - 1))]
        for cand in ALL_TRANSFORMS:
            if cand.out_shape(onx, ony) != (nx, ny):
                continue
            if all(
                cand.apply_node(self.apply_node(p, nx, ny), onx, ony) == p
                for p in probes
            ):
                return cand
        raise AssertionError("D4 element without inverse — unreachable")


ALL_TRANSFORMS: Tuple[GridTransform, ...] = tuple(
    GridTransform(swap=s, flip_x=fx, flip_y=fy)
    for s in (False, True)
    for fx in (False, True)
    for fy in (False, True)
)

IDENTITY = ALL_TRANSFORMS[0]


def transform_pattern(
    perm: Sequence[int], source_col: int, transform: GridTransform
) -> Tuple[Tuple[int, ...], int]:
    """Apply a transform to a pin *pattern*.

    A pattern places ``n`` pins on an ``n x n`` grid, one per column and
    row: pin in column ``i`` sits at row ``perm[i]``; the source occupies
    column ``source_col``. Returns the transformed ``(perm, source_col)``.
    """
    n = len(perm)
    nodes = [(i, perm[i]) for i in range(n)]
    mapped = [transform.apply_node(node, n, n) for node in nodes]
    new_perm = [0] * n
    for col, row in mapped:
        new_perm[col] = row
    new_source_col = mapped[source_col][0]
    return tuple(new_perm), new_source_col


def canonical_pattern(
    perm: Sequence[int], source_col: int
) -> Tuple[Tuple[int, ...], int, GridTransform]:
    """Lexicographically smallest symmetric image of a pattern.

    Returns ``(canonical_perm, canonical_source_col, transform)`` where
    ``transform`` maps the *input* pattern onto the canonical one.
    """
    best = None
    best_t = IDENTITY
    for t in ALL_TRANSFORMS:
        cand = transform_pattern(perm, source_col, t)
        if best is None or cand < best:
            best = cand
            best_t = t
    assert best is not None
    return best[0], best[1], best_t
