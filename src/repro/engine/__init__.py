"""``repro.engine`` — the uniform routing-service layer.

The architectural seam between callers and algorithms (see
``docs/architecture.md``): every tree constructor is a
:class:`~repro.engine.protocol.Router` resolved by name from one
registry, and everything cross-cutting — caching, input validation,
observability — is middleware composed around that protocol by
:func:`~repro.engine.build.build_engine`. Quickstart::

    from repro.engine import EngineSpec, build_engine

    engine = build_engine(EngineSpec(router="patlabor", cache="symmetry"))
    front = engine.route(net)          # validated, cached, instrumented

Resolution by name (what ``eval.runner``, ``core.batch``, and the CLI
use instead of hand-built method dicts)::

    from repro.engine import available_routers, create_router

    salt = create_router("salt")       # case/separator-insensitive
    print(available_routers())
"""

from __future__ import annotations

from .protocol import (
    DelayBudgetPolicy,
    KneePolicy,
    MinDelayPolicy,
    MinWirelengthPolicy,
    POINT_POLICIES,
    PointPolicy,
    Router,
    RouterCapabilities,
    resolve_point_policy,
    route_select,
)
from .registry import (
    RouterEntry,
    available_routers,
    create_router,
    display_names,
    register_router,
    router_entry,
)
from .middleware import ObservedRouter, RouterMiddleware, ValidatingRouter
from .build import CACHE_MODES, EngineSpec, build_engine
from . import adapters as _adapters  # noqa: F401  (populates the registry)
from .adapters import FunctionRouter, single_tree_router

__all__ = [
    "CACHE_MODES",
    "DelayBudgetPolicy",
    "EngineSpec",
    "FunctionRouter",
    "KneePolicy",
    "MinDelayPolicy",
    "MinWirelengthPolicy",
    "ObservedRouter",
    "POINT_POLICIES",
    "PointPolicy",
    "Router",
    "RouterCapabilities",
    "RouterEntry",
    "RouterMiddleware",
    "ValidatingRouter",
    "available_routers",
    "build_engine",
    "create_router",
    "display_names",
    "register_router",
    "resolve_point_policy",
    "route_select",
    "router_entry",
    "single_tree_router",
]
