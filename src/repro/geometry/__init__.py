"""Geometric substrate: L1 points, bounding boxes, Hanan grids, nets, symmetries."""

from .bbox import BBox, project_onto
from .hanan import GridNode, HananGrid
from .net import Net, random_net
from .point import Point, dedupe_points, hpwl, l1, median_point
from .transforms import (
    ALL_TRANSFORMS,
    IDENTITY,
    GridTransform,
    canonical_pattern,
    transform_pattern,
)

__all__ = [
    "ALL_TRANSFORMS",
    "BBox",
    "GridNode",
    "GridTransform",
    "HananGrid",
    "IDENTITY",
    "Net",
    "Point",
    "canonical_pattern",
    "dedupe_points",
    "hpwl",
    "l1",
    "median_point",
    "project_onto",
    "random_net",
    "transform_pattern",
]
