"""Chrome-trace (``chrome://tracing`` / Perfetto) export of the span tree.

The registry stores spans *aggregated* by path; a trace viewer needs the
individual timed regions. When tracing is enabled
(:func:`repro.obs.trace_enable`), every span records one **complete
event** — Trace Event Format phase ``"X"`` — at close::

    {"name": "dw.solve", "cat": "span", "ph": "X",
     "ts": <wall-clock µs>, "dur": <µs>,
     "pid": <process>, "tid": <thread>,
     "args": {"path": "patlabor.route/.../dw.solve"}}

Timestamps are wall-clock (``time.time``) so events from batch worker
processes land on the same axis as the parent's; each worker keeps its own
``pid`` lane (:func:`repro.core.batch.route_batch` ships the workers'
buffers back and merges them with :meth:`TraceCollector.extend`).
:func:`chrome_trace` assembles the JSON object Perfetto loads directly —
metadata (``"M"``) naming events first, then the complete events sorted by
timestamp. Spans whose body raised carry ``args.error = true`` so failed
regions are visible in the viewer.

:func:`validate_chrome_trace` is the structural checker the tests (and any
pipeline consumer) use: phases known, timestamps monotonic, durations
non-negative, B/E events balanced per thread lane.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

TraceEvent = Dict[str, object]


class TraceCollector:
    """Thread-safe buffer of Trace Event Format dicts; off until enabled."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._events: List[TraceEvent] = []

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Start recording span events (process-local)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; collected events are kept until cleared."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every collected trace event."""
        with self._lock:
            self._events.clear()

    # ------------------------------------------------------------ recording

    def record(
        self,
        name: str,
        path: str,
        wall_t0: float,
        duration: float,
        *,
        pid: int,
        tid: int,
        error: bool = False,
        request_id: Optional[str] = None,
    ) -> None:
        """Record one completed span as an ``"X"`` event (µs units).

        ``request_id`` (when the caller runs inside
        :func:`repro.obs.live.request_context`) lands in ``args`` and is
        what :func:`chrome_trace` uses to stitch one flow lane per request
        across daemon and worker pids.
        """
        if not self.enabled:
            return
        args: Dict[str, object] = {"path": path}
        if error:
            args["error"] = True
        if request_id is not None:
            args["request_id"] = request_id
        event: TraceEvent = {
            "name": name,
            "cat": "span",
            "ph": "X",
            "ts": wall_t0 * 1e6,
            "dur": max(0.0, duration) * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        with self._lock:
            self._events.append(event)

    def extend(self, events: List[TraceEvent]) -> None:
        """Fold another process's drained events into this buffer."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)

    # ------------------------------------------------------------ consuming

    def events(self) -> List[TraceEvent]:
        """A snapshot copy of the collected events."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[TraceEvent]:
        """Return the collected events and clear the buffer."""
        with self._lock:
            out = list(self._events)
            self._events.clear()
        return out


#: The process-global trace collector spans record into.
_TRACE = TraceCollector()


def get_trace_collector() -> TraceCollector:
    """The process-global :class:`TraceCollector` singleton."""
    return _TRACE


def trace_enable() -> None:
    """Turn Chrome-trace span capture on (process-global)."""
    _TRACE.enable()


def trace_disable() -> None:
    """Turn Chrome-trace span capture off; collected events are kept."""
    _TRACE.disable()


def trace_enabled() -> bool:
    """Whether the global trace collector is currently recording."""
    return _TRACE.enabled


def _flow_events(spans: List[TraceEvent]) -> List[TraceEvent]:
    """Flow events (``"s"``/``"t"``/``"f"``) connecting each request's spans.

    Spans sharing an ``args.request_id`` form one flow: a start arrow at
    the first span, step points at intermediates, and a finish (with
    ``bp: "e"`` so the arrow binds to the enclosing slice) at the last.
    Requests whose spans all sit in one event — nothing to connect — emit
    no flow. This is what draws one connected lane per request across the
    daemon and worker pids in ``chrome://tracing``.
    """
    by_request: Dict[str, List[TraceEvent]] = {}
    for event in spans:
        if event.get("ph") != "X":
            continue
        args = event.get("args")
        rid = args.get("request_id") if isinstance(args, dict) else None
        if isinstance(rid, str):
            by_request.setdefault(rid, []).append(event)
    flows: List[TraceEvent] = []
    for rid, chain in sorted(by_request.items()):
        if len(chain) < 2:
            continue
        for i, event in enumerate(chain):
            ph = "s" if i == 0 else ("f" if i == len(chain) - 1 else "t")
            flow: TraceEvent = {
                "name": "request",
                "cat": "request",
                "ph": ph,
                "id": rid,
                "ts": event["ts"],
                "pid": event["pid"],
                "tid": event["tid"],
            }
            if ph == "f":
                flow["bp"] = "e"
            flows.append(flow)
    return flows


def chrome_trace(collector: Optional[TraceCollector] = None) -> Dict[str, object]:
    """The collected spans as a Trace Event Format JSON object.

    Process/thread naming metadata comes first, then every complete and
    flow event sorted by timestamp (Perfetto accepts unsorted input, but
    sorted output lets consumers assert monotonicity). Spans carrying an
    ``args.request_id`` additionally get flow arrows (see
    :func:`_flow_events`) so one request renders as a connected lane even
    when its spans ran in different worker processes. Load the result
    directly in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = (collector or _TRACE).events()
    recorded = [e for e in events if e.get("ph") != "M"]
    spans = sorted(
        recorded + _flow_events(recorded),
        key=lambda e: (e.get("ts", 0.0), e.get("pid", 0), e.get("tid", 0)),
    )
    lanes = sorted({(e["pid"], e["tid"]) for e in spans})  # type: ignore[index]
    meta: List[TraceEvent] = []
    for pid in sorted({p for p, _ in lanes}):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for pid, tid in lanes:
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"thread {tid}"},
            }
        )
    return {"traceEvents": meta + spans, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], collector: Optional[TraceCollector] = None
) -> Path:
    """Write :func:`chrome_trace` as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(collector)) + "\n", encoding="utf-8")
    return path


def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Structural problems in a Trace Event Format payload ([] when valid).

    Checks: ``traceEvents`` is a list; every event has a known phase and
    ``pid``/``tid``; ``X`` events carry non-negative ``ts`` and ``dur``
    with timestamps non-decreasing in file order; ``B``/``E`` events
    balance within each ``(pid, tid)`` lane; flow events (``s``/``t``/
    ``f``) carry the ``id`` that names their flow.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts = None
    open_stacks: Dict[tuple, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "B", "E", "M", "i", "C", "s", "t", "f"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph in ("s", "t", "f") and "id" not in event:
            problems.append(f"event {i}: flow event missing id")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {i}: missing pid/tid")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"event {i}: ts {ts} < previous {last_ts}")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        elif ph in ("B", "E"):
            lane = (event["pid"], event["tid"])
            depth = open_stacks.get(lane, 0) + (1 if ph == "B" else -1)
            if depth < 0:
                problems.append(f"event {i}: E without matching B on {lane}")
                depth = 0
            open_stacks[lane] = depth
    for lane, depth in sorted(open_stacks.items()):
        if depth:
            problems.append(f"lane {lane}: {depth} unclosed B event(s)")
    return problems
