"""Direct unit tests of Pareto-DW's internal helpers and the reassembly
invariants of PatLabor's local search."""

import random

import pytest

from repro.core.pareto_dw import _boundary_order, _consecutive_splits
from repro.core.patlabor import (
    ARRIVAL_SLACK,
    reassemble,
)
from repro.core.pareto_dw import pareto_dw
from repro.geometry.hanan import HananGrid
from repro.geometry.net import Net, random_net
from repro.geometry.point import l1


class TestBoundaryOrder:
    def grid(self):
        # 3x3 grid from pins at the corners and center.
        return HananGrid([(0, 0), (5, 5), (10, 10)])

    def test_interior_returns_none(self):
        assert _boundary_order(self.grid(), [(1, 1)]) is None

    def test_corners_have_distinct_ranks(self):
        g = self.grid()
        corners = [(0, 0), (2, 0), (0, 2), (2, 2)]
        ranks = _boundary_order(g, corners)
        assert ranks is not None
        assert len(set(ranks)) == 4

    def test_clockwise_consistency(self):
        """Walking the boundary clockwise from the top-left gives strictly
        increasing ranks."""
        g = self.grid()
        walk = [
            (0, 2), (1, 2), (2, 2),        # top, left -> right
            (2, 1), (2, 0),                # right, top -> bottom
            (1, 0), (0, 0),                # bottom, right -> left
            (0, 1),                        # left, bottom -> top
        ]
        ranks = _boundary_order(g, walk)
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(walk)


class TestConsecutiveSplits:
    def test_all_runs_of_a_triangle(self):
        bits = [0, 1, 2]
        order = [0, 1, 2]
        masks = set(_consecutive_splits(bits, order))
        # Proper, non-empty circular runs over 3 elements: all singletons
        # and all pairs (every pair is consecutive on a 3-ring).
        assert masks == {0b001, 0b010, 0b100, 0b011, 0b110, 0b101}

    def test_four_ring_excludes_diagonals(self):
        bits = [0, 1, 2, 3]
        order = [0, 1, 2, 3]
        masks = set(_consecutive_splits(bits, order))
        assert 0b0101 not in masks  # {0, 2}: not consecutive
        assert 0b1010 not in masks  # {1, 3}: not consecutive
        assert 0b0011 in masks and 0b1100 in masks

    def test_complement_closure(self):
        """The complement of every run is itself a run (or the full set)."""
        bits = [0, 1, 2, 3]
        order = [0, 1, 2, 3]
        full = 0b1111
        masks = set(_consecutive_splits(bits, order))
        for m in masks:
            comp = full ^ m
            if comp:
                assert comp in masks

    def test_respects_rank_order_not_index_order(self):
        bits = [0, 1, 2]
        order = [0, 2, 1]  # sink 1 sits between 0 and 2 on the ring? no:
        # ring order by rank: 0 (rank 0), 2 (rank 1), 1 (rank 2).
        masks = set(_consecutive_splits(bits, order))
        # {0, 2} is consecutive in rank order.
        assert 0b101 in masks


class TestReassemblyInvariants:
    def _setup(self, seed=3, degree=16, k=6):
        net = random_net(degree, rng=random.Random(seed))
        sel = list(range(k))
        sub = Net.from_points(net.source, [net.sinks[i] for i in sel])
        sub_front = pareto_dw(sub)
        rest = [net.sinks[i] for i in range(degree - 1) if i >= k]
        return net, sub_front, rest

    def test_wire_mode_spans_and_validates(self):
        net, sub_front, rest = self._setup()
        for _w, _d, sub_tree in sub_front:
            tree = reassemble(net, sub_tree, rest, mode="wire")
            tree.validate()

    def test_arrival_mode_budget_holds_for_attached_pins(self):
        """Every pin attached by the shallow completion arrives within
        (1 + slack) of its L1 bound."""
        net, sub_front, rest = self._setup()
        sub_tree = sub_front[-1][2]  # min-delay sub-topology
        tree = reassemble(net, sub_tree, rest, mode="arrival")
        rest_set = {(p.x, p.y) for p in rest}
        src = net.source
        for sink, arrival in zip(net.sinks, tree.sink_delays()):
            if (sink.x, sink.y) in rest_set:
                assert arrival <= (1 + ARRIVAL_SLACK) * l1(src, sink) + 1e-6

    def test_arrival_mode_delay_near_lower_bound(self):
        net, sub_front, rest = self._setup(seed=9, degree=20, k=8)
        sub_tree = sub_front[-1][2]
        tree = reassemble(net, sub_tree, rest, mode="arrival")
        lb = net.delay_lower_bound()
        # The sub-tree's sinks are delay-optimal; the attached rest meet
        # the slack budget — so the whole tree is within slack of the
        # bound (up to the sub-tree's own optimum).
        sub_lb = max(l1(net.source, s) for s in sub_tree.net.sinks)
        assert tree.delay() <= max((1 + ARRIVAL_SLACK) * lb, sub_lb) + 1e-6

    def test_unknown_mode_raises(self):
        net, sub_front, rest = self._setup()
        with pytest.raises(ValueError):
            reassemble(net, sub_front[0][2], rest, mode="bogus")

    def test_wire_mode_lighter_than_arrival_mode(self):
        net, sub_front, rest = self._setup(seed=11)
        sub_tree = sub_front[0][2]
        light = reassemble(net, sub_tree, rest, mode="wire")
        shallow = reassemble(net, sub_tree, rest, mode="arrival")
        assert light.wirelength() <= shallow.wirelength() + 1e-9
