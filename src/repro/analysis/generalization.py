"""Theorem 5: generalisation of learned policy parameters.

The theorem bounds the gap between a policy's empirical performance on the
``m`` training instances and its expected performance on the instance
distribution by ``Õ(sqrt(n / m))``. The experiment here estimates both
sides directly: train the selection policy on ``m`` sampled nets, then
evaluate the same performance metric on a fresh test sample, and report
the gap as ``m`` grows — it should shrink roughly like ``1 / sqrt(m)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from ..core.pareto import hypervolume
from ..core.patlabor import PatLabor, PatLaborConfig
from ..core.policy import SelectionPolicy, train_policy
from ..geometry.net import Net, random_net


def policy_performance(
    policy: SelectionPolicy,
    nets: Sequence[Net],
    lam: int = 8,
) -> float:
    """Mean normalised hypervolume PatLabor reaches with this policy."""
    total = 0.0
    for net in nets:
        router = PatLabor(
            config=PatLaborConfig(lam=lam, iterations=1, post_refine=False),
            policy=policy,
        )
        front = router.route(net)
        w0 = max(s[0] for s in front)
        d0 = max(s[1] for s in front)
        ref = (2.0 * w0, 2.0 * d0)
        total += hypervolume(front, ref) / (ref[0] * ref[1])
    return total / len(nets)


@dataclass
class GeneralizationRow:
    """One training-set-size point of the Theorem-5 curve."""

    m: int
    train_perf: float
    test_perf: float

    @property
    def gap(self) -> float:
        return abs(self.train_perf - self.test_perf)


def generalization_experiment(
    degree: int = 12,
    training_sizes: Sequence[int] = (2, 4, 8),
    test_nets: int = 12,
    lam: int = 8,
    seed: int = 0,
) -> List[GeneralizationRow]:
    """Train on m nets, evaluate train/test performance, report the gap."""
    rng = random.Random(seed)
    test = [random_net(degree, rng=rng) for _ in range(test_nets)]
    rows: List[GeneralizationRow] = []
    for m in training_sizes:
        params = train_policy(
            degrees=(degree,),
            nets_per_degree=m,
            rollouts=6,
            lam=lam,
            seed=seed + m,
        )
        policy = SelectionPolicy(params)
        train = [random_net(degree, rng=random.Random(seed + m)) for _ in range(m)]
        rows.append(
            GeneralizationRow(
                m=m,
                train_perf=policy_performance(policy, train, lam=lam),
                test_perf=policy_performance(policy, test, lam=lam),
            )
        )
    return rows
