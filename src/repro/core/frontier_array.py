"""Array-native sorted-front Pareto kernels (NumPy twins of ``frontier``).

The pure-Python kernels of :mod:`repro.core.frontier` spend most of their
time in CPython tuple/loop overhead: profiling the Pareto-DW hot path at
degree 9 shows ~200k two-pointer kernel calls per net over fronts of at
most six points. This module re-expresses the same algebra over
contiguous NumPy arrays — each front is a pair ``(w[], d[])`` of float64
arrays plus a parallel payload sequence — so whole *batches* of fronts
are filtered with one stable ``lexsort`` and one cumulative-minimum
sweep instead of hundreds of thousands of interpreter iterations.

The design follows the :meth:`repro.geometry.hanan.HananGrid.distance_matrix`
precedent: broadcast NumPy with the pure-Python kernels kept as the
bit-identical oracle. Every function here is **exact**, not approximately
equal — see ``docs/numerics.md`` for the contract. The three properties
that make bit-identity possible:

* float64 elementwise adds, maxima and comparisons in NumPy are the same
  IEEE-754 operations CPython performs on ``float`` — no reassociation,
  no extended precision;
* ``np.lexsort`` is a sequence of stable sorts, so it reproduces
  ``list.sort(key=(w, d))`` including the order of exact duplicates —
  which is what decides payload survival under ``pareto_filter``'s
  first-encountered tie rule;
* reductions that *would* reassociate (``np.sum``/``np.dot`` use pairwise
  summation) are never used on objective values.

Two layers live here:

* **Kernel twins** — ``pareto_filter_sorted_arrays``,
  ``shift_sorted_arrays``, ``cross_sorted_arrays``,
  ``merge_sorted_fronts_arrays``, ``merge_shifted_arrays`` — one call per
  front, mirroring the :mod:`repro.core.frontier` API. They return index
  arrays into their inputs so callers gather payloads only for
  survivors.
* **Segmented batch machinery** — :func:`segmented_pareto_keep`,
  :func:`segment_strict_prune`, :func:`ragged_product_indices` — filters
  *many* fronts (one per segment) in a single vectorized pass. This is
  what the ``representation="array"`` path of
  :func:`repro.core.pareto_dw.pareto_dw` builds on: it batches every
  merge and closure bucket of one subset cardinality into one segmented
  filter.

Empty and single-point fronts follow the same conventions as the tuple
kernels: an empty front is a length-0 array pair (returned unchanged by
every filter), and a single-point front trivially satisfies the
sorted-front invariant and always survives filtering alone.

Doctests double as minimal usage examples:

>>> import numpy as np
>>> w = np.array([1.0, 3.0, 2.0]); d = np.array([5.0, 4.0, 1.0])
>>> w2, d2, idx = pareto_filter_sorted_arrays(w, d)
>>> w2.tolist(), d2.tolist(), idx.tolist()
([1.0, 2.0], [5.0, 1.0], [0, 2])
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from .frontier import Solution

try:  # pragma: no cover - import guard mirrors HananGrid.distance_matrix
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "arrays_to_front",
    "cross_sorted_arrays",
    "front_to_arrays",
    "merge_shifted_arrays",
    "merge_sorted_fronts_arrays",
    "pack_objectives",
    "pareto_filter_sorted_array",
    "pareto_filter_sorted_arrays",
    "ragged_product_indices",
    "segment_strict_prune",
    "segmented_pareto_filter",
    "segmented_pareto_filter_packed",
    "segmented_pareto_keep",
    "shift_sorted_arrays",
]

#: Type alias for the ubiquitous float64/int64 arrays; kept loose because
#: the project supports NumPy back to 1.21 where the generic aliases vary.
Array = Any


def _require_numpy() -> None:
    """Raise a clear error when NumPy is unavailable (see module docstring)."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "repro.core.frontier_array requires NumPy; use the pure-Python "
            "kernels in repro.core.frontier instead"
        )


# --------------------------------------------------------------- conversion


def front_to_arrays(front: Sequence[Solution]) -> Tuple[Array, Array, List[Any]]:
    """Split a tuple front into ``(w, d, payloads)`` arrays.

    The conversion is bit-identical in both directions: values are copied
    verbatim into float64 arrays (every Python ``float`` *is* a float64),
    never re-parsed or rounded.

    >>> front_to_arrays([(1.0, 2.0, "a")])[0].tolist()
    [1.0]
    >>> front_to_arrays([])[0].shape
    (0,)
    """
    _require_numpy()
    n = len(front)
    w = np.empty(n, dtype=np.float64)
    d = np.empty(n, dtype=np.float64)
    payloads: List[Any] = [None] * n
    for i, s in enumerate(front):
        w[i] = s[0]
        d[i] = s[1]
        payloads[i] = s[2]
    return w, d, payloads


def arrays_to_front(w: Array, d: Array, payloads: Sequence[Any]) -> List[Solution]:
    """Rebuild a tuple front from ``(w, d, payloads)`` arrays.

    Inverse of :func:`front_to_arrays`; the round trip
    ``arrays_to_front(*front_to_arrays(f)) == f`` holds bit-for-bit.

    >>> arrays_to_front(*front_to_arrays([(1.0, 2.0, "a")]))
    [(1.0, 2.0, 'a')]
    """
    _require_numpy()
    return [
        (float(wi), float(di), p)
        for wi, di, p in zip(w.tolist(), d.tolist(), payloads)
    ]


# ------------------------------------------------------------ kernel twins


def pareto_filter_sorted_arrays(w: Array, d: Array) -> Tuple[Array, Array, Array]:
    """Array twin of :func:`repro.core.frontier.pareto_filter_sorted`.

    Returns ``(w', d', idx)`` where ``idx`` maps surviving positions back
    into the input (gather payloads with it). Implements exactly the
    reference semantics: a stable sort by ``(w, d)`` followed by the
    strict dominance sweep, so exact-duplicate ties keep the
    first-encountered input element. An empty input returns three empty
    arrays; a single point always survives.

    >>> import numpy as np
    >>> _, _, idx = pareto_filter_sorted_arrays(
    ...     np.array([1.0, 1.0]), np.array([2.0, 2.0]))
    >>> idx.tolist()  # duplicate collapses to the first occurrence
    [0]
    """
    _require_numpy()
    n = w.shape[0]
    if n <= 1:
        idx = np.arange(n, dtype=np.int64)
        return w[idx], d[idx], idx
    # Stable sort by (w, d): identical order to list.sort(key=(w, d)).
    order = np.lexsort((d, w))
    ds = d[order]
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    # Sweep: keep when d is strictly below every previous d (the running
    # minimum over *all* previous equals the minimum over kept ones).
    np.less(ds[1:], np.minimum.accumulate(ds)[:-1], out=keep[1:])
    idx = order[keep]
    return w[idx], d[idx], idx


def pareto_filter_sorted_array(solutions: Sequence[Solution]) -> List[Solution]:
    """Tuple-API drop-in for ``pareto_filter_sorted`` running on arrays.

    Used by the ``representation="array"`` wiring of Pareto-KS, the
    PatLabor local search and the lookup table: same inputs, same
    outputs (bit-identical, payload ties included), array math inside.
    Small inputs (< 2 points) short-circuit without touching NumPy.

    >>> pareto_filter_sorted_array([(2.0, 1.0, "b"), (1.0, 5.0, "a")])
    [(1.0, 5.0, 'a'), (2.0, 1.0, 'b')]
    """
    items = list(solutions)
    if len(items) <= 1:
        return items
    _require_numpy()
    w, d, payloads = front_to_arrays(items)
    _, _, idx = pareto_filter_sorted_arrays(w, d)
    return [items[i] for i in idx.tolist()]


def shift_sorted_arrays(w: Array, d: Array, x: float) -> Tuple[Array, Array, Array]:
    """Array twin of :func:`repro.core.frontier.shift_sorted`.

    Shifts both objectives by ``x`` and collapses rounding collisions
    exactly like the reference single pass: a candidate whose shifted
    ``d`` did not strictly drop below the previous kept ``d`` is skipped
    (the earlier, smaller-``w`` point weakly dominates), and a candidate
    landing on the previous kept ``w`` replaces it (same ``w``, strictly
    smaller ``d``). Returns ``(w', d', idx)`` with ``idx`` into the input.

    >>> import numpy as np
    >>> w2, d2, idx = shift_sorted_arrays(
    ...     np.array([1.0, 2.0]), np.array([4.0, 3.0]), 1.0)
    >>> w2.tolist(), idx.tolist()
    ([2.0, 3.0], [0, 1])
    """
    _require_numpy()
    n = w.shape[0]
    if n == 0:
        idx = np.arange(0, dtype=np.int64)
        return w + x, d + x, idx
    ws = w + x
    ds = d + x
    # Phase 1 (d collisions, keep first): the input d is strictly
    # descending, so the shifted ds is non-increasing and the reference's
    # "d >= last kept d" test reduces to comparing adjacent elements.
    keep1 = np.empty(n, dtype=bool)
    keep1[0] = True
    np.less(ds[1:], ds[:-1], out=keep1[1:])
    idx = np.nonzero(keep1)[0]
    # Phase 2 (w collisions, keep last): among survivors w is
    # non-decreasing with strictly decreasing d, so of each equal-w run
    # the reference keeps the last (each newcomer pops its predecessor).
    wk = ws[idx]
    m = idx.shape[0]
    keep2 = np.empty(m, dtype=bool)
    keep2[m - 1] = True
    np.not_equal(wk[:-1], wk[1:], out=keep2[:-1])
    idx = idx[keep2]
    return ws[idx], ds[idx], idx


def cross_sorted_arrays(
    w1: Array, d1: Array, w2: Array, d2: Array
) -> Tuple[Array, Array, Array, Array]:
    """Array twin of :func:`repro.core.frontier.cross_sorted`.

    Enumerates the non-dominated subset of the merge product
    ``(w1[i] + w2[j], max(d1[i], d2[j]))`` without materializing the
    ``a * b`` candidate grid. The two-pointer stream of the reference
    visits, for each distinct delay value ``v`` of ``d1`` and ``d2`` in
    descending order, the state ``i = |{d1 > v}|, j = |{d2 > v}|`` — both
    counts computed here with one ``searchsorted`` each — and collapses
    equal-``w`` rounding collisions by keeping the last (smallest-``d``)
    state, exactly the reference's replace-on-collision rule.

    Returns ``(w, d, i_idx, j_idx)``; build payloads by combining
    ``p1[i_idx[k]]`` with ``p2[j_idx[k]]``. Either input empty yields
    four empty arrays.

    >>> import numpy as np
    >>> w, d, i, j = cross_sorted_arrays(
    ...     np.array([1.0, 2.0]), np.array([4.0, 1.0]),
    ...     np.array([1.0]), np.array([0.0]))
    >>> list(zip(w.tolist(), d.tolist()))
    [(2.0, 4.0), (3.0, 1.0)]
    """
    _require_numpy()
    a, b = w1.shape[0], w2.shape[0]
    if a == 0 or b == 0:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_f.copy(), empty_i, empty_i.copy()
    # Distinct delay values of both fronts, descending.
    vals = np.union1d(d1, d2)[::-1]
    # i(v) = |{d1 > v}|: with -d1 strictly ascending this is a left
    # searchsorted of -v; same for j(v).
    i_idx = np.searchsorted(-d1, -vals, side="left")
    j_idx = np.searchsorted(-d2, -vals, side="left")
    valid = (i_idx < a) & (j_idx < b)
    i_idx = i_idx[valid]
    j_idx = j_idx[valid]
    w = w1[i_idx] + w2[j_idx]
    d = vals[valid]
    # Equal-w rounding collisions: keep the last (d is strictly
    # descending along the stream, so the last has the smallest d).
    m = w.shape[0]
    keep = np.empty(m, dtype=bool)
    keep[m - 1] = True
    np.not_equal(w[:-1], w[1:], out=keep[:-1])
    return w[keep], d[keep], i_idx[keep], j_idx[keep]


def merge_sorted_fronts_arrays(
    ws: Sequence[Array], ds: Sequence[Array]
) -> Tuple[Array, Array, Array, Array]:
    """Array twin of :func:`repro.core.frontier.merge_sorted_fronts`.

    Pareto union of several sorted fronts: concatenate in argument order
    and run the exact stable filter, which resolves ties to the earlier
    front — the same first-encountered rule the reference fold
    implements. Returns ``(w, d, front_idx, elem_idx)`` identifying each
    survivor's source front and position.

    >>> import numpy as np
    >>> w, d, f, e = merge_sorted_fronts_arrays(
    ...     [np.array([1.0]), np.array([1.0])],
    ...     [np.array([2.0]), np.array([1.0])])
    >>> f.tolist(), e.tolist()
    ([1], [0])
    """
    _require_numpy()
    if not ws:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_f.copy(), empty_i, empty_i.copy()
    w = np.concatenate(ws)
    d = np.concatenate(ds)
    sizes = np.array([x.shape[0] for x in ws], dtype=np.int64)
    front_of = np.repeat(np.arange(len(ws), dtype=np.int64), sizes)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    w2, d2, idx = pareto_filter_sorted_arrays(w, d)
    f_idx = front_of[idx]
    return w2, d2, f_idx, idx - starts[f_idx]


def merge_shifted_arrays(
    offsets: Array, ws: Sequence[Array], ds: Sequence[Array]
) -> Tuple[Array, Array, Array, Array]:
    """Array twin of :func:`repro.core.frontier.merge_shifted`.

    Union of several sorted fronts, each shifted by its run offset — the
    Pareto-DW closure bucket. Matches the reference's documented
    semantics: identical to ``pareto_filter`` over the concatenated
    shifted bucket in run order, ties to the earlier run. Returns
    ``(w, d, run_idx, elem_idx)``; the caller decides payload reuse vs
    rewrap per surviving run (the reference's allocation accounting is a
    kernel-strategy detail, not part of the numeric contract).

    >>> import numpy as np
    >>> w, d, r, e = merge_shifted_arrays(
    ...     np.array([0.0, 1.0]),
    ...     [np.array([2.0]), np.array([0.0])],
    ...     [np.array([0.0]), np.array([3.0])])
    >>> list(zip(w.tolist(), d.tolist()))
    [(1.0, 4.0), (2.0, 0.0)]
    """
    _require_numpy()
    if not ws:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        return empty_f, empty_f.copy(), empty_i, empty_i.copy()
    sizes = np.array([x.shape[0] for x in ws], dtype=np.int64)
    off = np.repeat(np.asarray(offsets, dtype=np.float64), sizes)
    w = np.concatenate(ws) + off
    d = np.concatenate(ds) + off
    run_of = np.repeat(np.arange(len(ws), dtype=np.int64), sizes)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    w2, d2, idx = pareto_filter_sorted_arrays(w, d)
    r_idx = run_of[idx]
    return w2, d2, r_idx, idx - starts[r_idx]


# ------------------------------------------------- segmented batch kernels


def segmented_pareto_keep(seg: Array, w: Array, d: Array) -> Array:
    """Keep-mask of the exact Pareto sweep run independently per segment.

    Input arrays must already be ordered by ``(seg, w, d)`` with a stable
    sort (``seg`` non-decreasing). Returns a boolean mask marking, within
    every segment, the elements ``pareto_filter`` would keep: those whose
    ``d`` is strictly below every earlier ``d`` of the same segment.

    The sweep is vectorized without a per-segment loop via an integer
    key trick: ``d`` values are replaced by dense ranks (equal values
    share a rank, preserving strict comparisons), each segment adds a
    *descending* band offset — later segments sit in strictly lower
    bands — and one global ``minimum.accumulate`` then computes every
    per-segment prefix minimum, because elements of earlier segments
    always carry larger keys than the whole current band and can never
    masquerade as its minimum.

    >>> import numpy as np
    >>> seg = np.array([0, 0, 1]); w = np.array([1.0, 2.0, 1.0])
    >>> segmented_pareto_keep(seg, w, np.array([5.0, 6.0, 9.0])).tolist()
    [True, False, True]
    """
    _require_numpy()
    n = d.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    # Dense ascending ranks of d; exact duplicates share a rank so the
    # strict "<" on values is the strict "<" on ranks.
    order = np.argsort(d, kind="stable")
    d_sorted = d[order]
    new_val = np.empty(n, dtype=bool)
    new_val[0] = False
    np.not_equal(d_sorted[1:], d_sorted[:-1], out=new_val[1:])
    ranks_sorted = np.cumsum(new_val)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = ranks_sorted
    # Descending segment bands (earlier segment -> larger band).
    seg_new = np.empty(n, dtype=bool)
    seg_new[0] = True
    np.not_equal(seg[1:], seg[:-1], out=seg_new[1:])
    seg_ord = np.cumsum(seg_new)
    band = (np.int64(seg_ord[-1]) - seg_ord) * np.int64(n + 1)
    key = ranks + band
    prev_min = np.minimum.accumulate(key)
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.less(key[1:], prev_min[:-1], out=keep[1:])
    return keep


def segmented_pareto_filter(seg: Array, w: Array, d: Array) -> Array:
    """Indices of the exact per-segment Pareto sweep, in filter order.

    Equivalent to ``order = np.lexsort((d, w, seg))`` followed by
    :func:`segmented_pareto_keep` on the reordered arrays, returning
    ``order[keep]`` — but implemented with two stable sorts instead of
    three by packing ``(w, d)`` into one complex128 key (NumPy orders
    complex values lexicographically, real part first), and with the
    keep sweep as a single segment-resetting prefix minimum instead of
    a rank computation. ``seg`` may be in any order; the returned
    indices are grouped by segment, ``(w, d)``-sorted inside each,
    exact duplicates in original order.

    >>> import numpy as np
    >>> seg = np.array([0, 0, 1]); w = np.array([2.0, 1.0, 1.0])
    >>> segmented_pareto_filter(seg, w, np.array([6.0, 5.0, 9.0])).tolist()
    [1, 2]
    """
    _require_numpy()
    return segmented_pareto_filter_packed(seg, pack_objectives(w, d))


def pack_objectives(w: Array, d: Array) -> Array:
    """Pack ``(w, d)`` into one complex128 array (real = w, imag = d).

    NumPy orders complex values lexicographically — real part first, then
    imaginary — in ``sort``/``argsort``, the comparison ufuncs and the
    ``minimum``/``maximum`` families. A packed objective pair therefore
    sorts and compares exactly like the tuple ``(w, d)``, which lets the
    segmented kernels replace pairs of float passes with single complex
    ones. Packing copies the float64 bits verbatim; nothing is rounded.

    >>> import numpy as np
    >>> z = pack_objectives(np.array([1.0]), np.array([2.0]))
    >>> (z.real.tolist(), z.imag.tolist())
    ([1.0], [2.0])
    """
    _require_numpy()
    wd = np.empty(w.shape[0], dtype=np.complex128)
    wd.real = w
    wd.imag = d
    return wd


def segmented_pareto_filter_packed(seg: Array, wd: Array) -> Array:
    """:func:`segmented_pareto_filter` on a packed objective array.

    ``wd`` is the complex128 packing of :func:`pack_objectives`; callers
    that already carry packed objectives skip the repacking pass.

    >>> import numpy as np
    >>> seg = np.array([0, 0, 1])
    >>> wd = pack_objectives(np.array([2.0, 1.0, 1.0]),
    ...                      np.array([6.0, 5.0, 9.0]))
    >>> segmented_pareto_filter_packed(seg, wd).tolist()
    [1, 2]
    """
    _require_numpy()
    n = wd.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # One stable argsort of w + i*d IS the stable (w, d) lexsort; a
    # second stable pass by segment completes lexsort((d, w, seg)).
    o1 = np.argsort(wd, kind="stable")
    order = o1.take(np.argsort(seg.take(o1), kind="stable"))
    seg_o = seg.take(order)
    d_o = wd.imag.take(order)
    # Strict per-segment prefix-min sweep in one accumulate over packed
    # (-seg, d): segment ids are non-decreasing in sorted order, so each
    # new segment's first element has the smallest real part seen so far
    # and instantly becomes the running lexicographic minimum — the
    # prefix min "resets" at every boundary. Inside a segment, the
    # running minimum's imaginary part is exactly the prefix min of d.
    # Segment ids stay far below 2**53, so the float64 real is exact.
    run = np.empty(n, dtype=np.complex128)
    run.real = -seg_o
    run.imag = d_o
    prev_min = np.minimum.accumulate(run)
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    keep[1:] = (prev_min.real[:-1] > run.real[1:]) | (
        d_o[1:] < prev_min.imag[:-1]
    )
    return order[keep]


def segment_strict_prune(
    starts: Array, sizes: Array, w: Array, d: Array
) -> Array:
    """Keep-mask dropping elements strictly dominated inside their segment.

    Segments must be contiguous slices of ``w``/``d`` (``starts[k]`` /
    ``sizes[k]``), in any internal order. For each segment two *real*
    witness points are computed — the minimum-``d`` element (smallest
    ``w`` among those achieving it) and the minimum-``w`` element
    (smallest ``d`` among those) — and every element strictly dominated
    by either witness is dropped. Strictly dominated elements can never
    appear in, nor influence the tie order of, the exact filter, so this
    is a sound pre-pass that typically removes the bulk of a bucket
    before the ``O(k log k)`` sort of :func:`segmented_pareto_keep`.

    >>> import numpy as np
    >>> keep = segment_strict_prune(
    ...     np.array([0]), np.array([3]),
    ...     np.array([1.0, 2.0, 3.0]), np.array([9.0, 1.0, 5.0]))
    >>> keep.tolist()
    [True, True, False]
    """
    _require_numpy()
    n = w.shape[0]
    if n == 0:
        return np.empty(0, dtype=bool)
    nz = sizes > 0
    s = starts[nz]
    rep = sizes[nz]
    # All-float formulation: complex packing would find each witness in
    # one lexicographic reduce, but NumPy's complex minimum/compare
    # loops are scalar while the float64 ones vectorize — at the prune's
    # candidate volumes the extra float passes are the cheaper trade
    # (the sort-bound filter is where packing pays; see
    # segmented_pareto_filter_packed).
    min_d_e = np.repeat(np.minimum.reduceat(d, s), rep)
    min_w_e = np.repeat(np.minimum.reduceat(w, s), rep)
    inf = np.float64("inf")
    # Witness A: among elements attaining the segment's min d, the one
    # with the smallest w (a real element of the segment).
    w_at_min_d = np.repeat(
        np.minimum.reduceat(np.where(d == min_d_e, w, inf), s), rep
    )
    # Witness B: among elements attaining the segment's min w, the one
    # with the smallest d.
    d_at_min_w = np.repeat(
        np.minimum.reduceat(np.where(w == min_w_e, d, inf), s), rep
    )
    # The witnesses are segment minima, so ``min_d_e <= d`` and
    # ``min_w_e <= w`` hold everywhere; the general strict-dominance
    # test collapses to three comparisons per witness. The equality
    # clauses matter on real workloads — grid distances tie constantly,
    # and dropping tied-but-dominated elements here keeps the filter's
    # sort input small.
    dom_a = (w_at_min_d < w) | ((w_at_min_d == w) & (min_d_e < d))
    dom_b = (d_at_min_w < d) | ((d_at_min_w == d) & (min_w_e < w))
    return ~(dom_a | dom_b)


def ragged_product_indices(
    cnt1: Array, cnt2: Array, start1: Array, start2: Array, rows: bool = True
) -> Tuple[Optional[Array], Array, Array]:
    """Flat index arrays of row-major cross products of many front pairs.

    Row ``r`` pairs a front of ``cnt1[r]`` elements starting at
    ``start1[r]`` with one of ``cnt2[r]`` elements at ``start2[r]``; the
    output enumerates, row by row, every ``(i, j)`` product pair in
    row-major order (first front outer) — the enumeration order of the
    reference DP merge bucket. Returns ``(row, i_idx, j_idx)``.

    ``rows=False`` skips materializing the per-product row column and
    returns ``(None, i_idx, j_idx)``: callers that only need row ids for
    a few surviving products can recover them with
    ``np.searchsorted(np.cumsum(cnt1 * cnt2), survivors, side="right")``
    instead of paying a third full-length expansion.

    >>> import numpy as np
    >>> row, i, j = ragged_product_indices(
    ...     np.array([2]), np.array([2]), np.array([0]), np.array([5]))
    >>> i.tolist(), j.tolist()
    ([0, 0, 1, 1], [5, 6, 5, 6])
    """
    _require_numpy()
    counts = cnt1 * cnt2
    total = int(counts.sum())
    n_rows = counts.shape[0]
    if total == 0:
        empty_i = np.empty(0, dtype=np.int64)
        return (empty_i if rows else None), empty_i.copy(), empty_i.copy()
    # Two-level expansion — first one entry per (row, i) pair, then each
    # pair repeated over its j block — avoids any division over the full
    # product array.
    pair_row = np.repeat(np.arange(n_rows, dtype=np.int64), cnt1)
    cum1 = np.concatenate(([0], np.cumsum(cnt1)[:-1]))
    i_vals = (
        start1[pair_row]
        + np.arange(pair_row.shape[0], dtype=np.int64)
        - cum1[pair_row]
    )
    blk = cnt2[pair_row]
    blk_starts = np.concatenate(([0], np.cumsum(blk)[:-1]))
    if rows:
        per_pair = np.stack((pair_row, i_vals, start2[pair_row] - blk_starts))
        expanded = np.repeat(per_pair, blk, axis=1)
        j_idx = expanded[2] + np.arange(total, dtype=np.int64)
        return expanded[0], expanded[1], j_idx
    per_pair = np.stack((i_vals, start2[pair_row] - blk_starts))
    expanded = np.repeat(per_pair, blk, axis=1)
    j_idx = expanded[1] + np.arange(total, dtype=np.int64)
    return None, expanded[0], j_idx


def front_views(
    ptr: Array, cnt: Array, w: Array, d: Array
) -> List[Optional[Tuple[Array, Array]]]:
    """Per-segment ``(w, d)`` array views of a CSR-packed batch of fronts.

    Convenience for tests and debugging: ``ptr[k]``/``cnt[k]`` delimit
    front ``k`` inside the flat arrays. Empty fronts yield ``None``.

    >>> import numpy as np
    >>> front_views(np.array([0, 1]), np.array([1, 0]),
    ...             np.array([1.0]), np.array([2.0]))[1] is None
    True
    """
    _require_numpy()
    out: List[Optional[Tuple[Array, Array]]] = []
    for k in range(ptr.shape[0]):
        c = int(cnt[k])
        if c == 0:
            out.append(None)
        else:
            p = int(ptr[k])
            out.append((w[p : p + c], d[p : p + c]))
    return out
