"""The ECO session layer: :class:`IncrementalRouter` middleware.

Wraps a fully-assembled engine stack and keeps, per tracked net, the
state that makes the next edit cheap — the previous net, its routed
frontier, and (for exact-DP nets) the retained Dreyfus–Wagner solver
state of :func:`~repro.core.pareto_dw.pareto_dw_with_state`.

:meth:`IncrementalRouter.apply_delta` is the warm path. For each
:class:`~repro.incremental.delta.NetDelta` it tries, in order:

1. **cache short-circuit** — the edited net's canonical key may already
   be cached (the cache layer's ``lookup``/``seed`` peek API); an ECO
   hit then costs one key computation and zero solver work,
2. **DW state reuse** — for exact-DP nets, re-solve with the previous
   solve's surviving subset fronts installed (bit-identical to a cold
   solve; see the exactness argument in :mod:`repro.core.pareto_dw`),
3. **warm-started local search** — for ``n > λ`` nets, adapt the
   previous tree to the edit (:func:`adapt_tree`) and seed
   ``PatLabor.local_search`` from it instead of a fresh RSMT,
4. **full route** — closed-form / LUT tiers are already cheap; anything
   else falls back to the wrapped stack.

Results computed off the cache path are published back through
``seed``, so the *next* edit — or plain ``route`` traffic on a
canonical copy — hits. Exactness contract: for the exact tiers
(``closed_form`` / ``lut`` / ``dw``) the incremental frontier is
bit-identical to a cold full re-route of the edited net — same fronts,
same tie collapse, same trees; the warm local-search tier is heuristic
on both paths and is held to equal output *quality* instead.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..core.pareto import Solution
from ..core.pareto_dw import DWReuse, DWState, pareto_dw_with_state
from ..engine.middleware import RouterMiddleware
from ..engine.protocol import RouterCapabilities
from ..exceptions import InvalidNetError, InvalidTreeError, ReproError
from ..geometry.net import Net
from ..geometry.point import l1
from ..obs import counter_add, emit_event, events_enabled, span
from ..routing.tree import RoutingTree
from .delta import NetDelta, apply_delta

#: Tier label for cache-served edits (not a PatLabor dispatch tier).
CACHE_TIER = "cache"
#: Tier label for deltas that cannot change a net's frontier (blockage).
NOOP_TIER = "unchanged"
#: Tiers whose warm results are bit-identical to a cold re-route (the
#: ``docs/numerics.md`` exactness contract). ``local_search`` is
#: heuristic — warm starts change its trajectory, so only quality holds.
EXACT_TIERS = frozenset({"closed_form", "lut", "dw", CACHE_TIER})


@dataclass
class EcoResult:
    """Outcome of one :meth:`IncrementalRouter.apply_delta` call.

    ``front`` is the edited net's routed frontier (with trees). ``tier``
    says which warm path served it: ``"cache"``, a PatLabor dispatch
    tier (``"closed_form"`` / ``"lut"`` / ``"dw"`` / ``"local_search"``),
    or ``"unchanged"`` for net-independent deltas. The mask counters are
    non-zero only on the DW path.
    """

    net: Optional[Net]
    front: List[Solution] = field(default_factory=list)
    tier: str = NOOP_TIER
    kind: str = ""
    cache_hit: bool = False
    reused_masks: int = 0
    total_masks: int = 0
    wall_s: float = 0.0

    @property
    def reuse_rate(self) -> float:
        """Fraction of DW subset fronts served from retained state."""
        return self.reused_masks / self.total_masks if self.total_masks else 0.0


def adapt_tree(
    prev_tree: RoutingTree, new_net: Net, delta: NetDelta
) -> RoutingTree:
    """The previous tree carried across ``delta`` — a local-search seed.

    Structure is preserved wherever the edit allows: a moved pin drags
    its tree node (topology unchanged), an added sink attaches to the
    nearest existing tree node, a removed sink's node degrades to a
    Steiner point, a moved source drags the root. The result is a valid
    (not necessarily good) tree of ``new_net`` — the warm local search
    improves it from there. Falls back to a fresh RSMT when the adapted
    structure fails validation (e.g. the edit collapses an edge).
    """
    from ..baselines.rsmt import rsmt

    try:
        if delta.kind in ("move", "source"):
            assert delta.point is not None
            idx = 0 if delta.kind == "source" else 1 + delta.sink_index
            points = [(p.x, p.y) for p in prev_tree.points]
            points[idx] = delta.point
            return RoutingTree.from_parent(
                new_net, points, list(prev_tree.parent)
            )
        pts = prev_tree.points
        edges = [
            ((pts[c].x, pts[c].y), (pts[p].x, pts[p].y))
            for c, p in prev_tree.edges()
        ]
        if delta.kind == "add":
            assert delta.point is not None
            nearest = min(pts, key=lambda q: l1(q, delta.point))
            edges.append(((nearest.x, nearest.y), delta.point))
        return RoutingTree.from_edges(new_net, edges)
    except (InvalidTreeError, InvalidNetError, IndexError):
        return rsmt(new_net)


@dataclass
class _NetSession:
    """Per-net retained state: previous net, frontier, DW solver state."""

    net: Net
    front: List[Solution]
    dw_state: Optional[DWState] = None


class IncrementalRouter(RouterMiddleware):
    """ECO middleware: delta-aware re-routing over retained state.

    Ordinary ``route`` calls delegate to the wrapped stack and
    additionally *track* the net (by name) so later ``apply_delta``
    calls have a session to edit against. Sessions are LRU-bounded by
    ``max_sessions``; untracked nets must be routed (seeded) before
    they can take deltas.
    """

    def __init__(self, inner: object, max_sessions: int = 10_000) -> None:
        """Wrap ``inner`` (a fully-assembled engine stack)."""
        super().__init__(inner)  # type: ignore[arg-type]
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, _NetSession]" = OrderedDict()

    @property
    def capabilities(self) -> RouterCapabilities:
        """The wrapped capabilities with ``incremental=True``."""
        return replace(self.inner.capabilities, incremental=True)

    @property
    def num_sessions(self) -> int:
        """How many nets currently hold retained ECO state."""
        return len(self._sessions)

    def route(self, net: Net) -> List[Solution]:
        """Route through the wrapped stack and track the net for ECO."""
        front = self.inner.route(net)
        if net.name:
            self._remember(net.name, _NetSession(net=net, front=front))
        return front

    def session_net(self, name: str) -> Optional[Net]:
        """The tracked net currently registered under ``name``, if any."""
        session = self._sessions.get(name)
        return session.net if session is not None else None

    def forget(self, name: str) -> None:
        """Drop the retained state of one net (no-op when untracked)."""
        self._sessions.pop(name, None)

    def clear_sessions(self) -> None:
        """Drop every retained ECO session."""
        self._sessions.clear()

    def _remember(self, name: str, session: _NetSession) -> None:
        if name not in self._sessions and len(self._sessions) >= self.max_sessions:
            self._sessions.popitem(last=False)
        self._sessions[name] = session
        self._sessions.move_to_end(name)

    # ------------------------------------------------------------ warm path

    def apply_delta(self, delta: NetDelta) -> EcoResult:
        """Re-route the edited net, reusing everything the edit spares.

        Returns an :class:`EcoResult` whose ``front`` is — for the exact
        tiers — bit-identical to ``route(apply_delta(old_net, delta))``
        on a cold stack. Raises
        :class:`~repro.exceptions.InvalidNetError` when ``delta`` names
        a net without a tracked session.
        """
        t0 = time.perf_counter()
        if delta.kind == "blockage":
            # Frontiers are congestion-blind; a blockage changes the
            # negotiation scenario (NegotiatedRouter.run_incremental),
            # not any single net's Pareto set.
            return EcoResult(net=None, kind=delta.kind)
        session = self._sessions.get(delta.net)
        if session is None:
            raise InvalidNetError(
                f"no ECO session for net {delta.net!r}; route/seed it first"
            )
        new_net = apply_delta(session.net, delta)
        with span("eco.apply"):
            result = self._solve(session, new_net, delta)
        result.kind = delta.kind
        result.wall_s = time.perf_counter() - t0
        counter_add("eco.solves")
        if result.cache_hit:
            counter_add("eco.cache_hits")
        counter_add("eco.masks_reused", result.reused_masks)
        counter_add("eco.masks_total", result.total_masks)
        if events_enabled():
            emit_event(
                "eco_solve",
                net=delta.net,
                kind=delta.kind,
                tier=result.tier,
                cache_hit=result.cache_hit,
                reused_masks=result.reused_masks,
                total_masks=result.total_masks,
                front_size=len(result.front),
                wall_s=result.wall_s,
            )
        return result

    def _solve(
        self, session: _NetSession, new_net: Net, delta: NetDelta
    ) -> EcoResult:
        """Serve ``new_net`` through the cheapest valid warm path."""
        lookup = getattr(self.inner, "lookup", None)
        if callable(lookup):
            cached = lookup(new_net)
            if cached is not None:
                session.net = new_net
                session.front = cached
                return EcoResult(
                    net=new_net, front=cached, tier=CACHE_TIER, cache_hit=True
                )
        tier_fn = getattr(self.inner, "dispatch_tier", None)
        tier = str(tier_fn(new_net)) if callable(tier_fn) else ""
        reuse = DWReuse()
        if tier == "dw":
            front, state, reuse = pareto_dw_with_state(
                new_net, state=session.dw_state
            )
            session.dw_state = state
        elif tier == "local_search" and session.front:
            seed_tree = adapt_tree(session.front[0][2], new_net, delta)
            try:
                front = self.inner.local_search(new_net, seed_tree=seed_tree)
            except (AttributeError, ReproError):
                front = self.inner.route(new_net)
        else:
            # closed_form / lut / unknown stacks: a full route is already
            # the cheap path (and handles its own caching).
            front = self.inner.route(new_net)
            session.net = new_net
            session.front = front
            return EcoResult(net=new_net, front=front, tier=tier or "route")
        seed = getattr(self.inner, "seed", None)
        if callable(seed):
            seed(new_net, front)
        session.net = new_net
        session.front = front
        return EcoResult(
            net=new_net,
            front=front,
            tier=tier,
            reused_masks=reuse.reused_masks,
            total_masks=reuse.total_masks,
        )
