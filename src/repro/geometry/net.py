"""The net model: one source pin plus sinks, to be spanned by a routing tree.

A :class:`Net` is the unit of work for every algorithm in this library.
Pins are kept in a fixed order with the source always at index 0, matching
the paper's convention ``r = p_1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..exceptions import InvalidNetError
from .bbox import BBox
from .point import Point, PointLike, dedupe_points, is_finite, l1


@dataclass(frozen=True)
class Net:
    """A routing net: ``pins[0]`` is the source, the rest are sinks.

    Pins must be pairwise distinct and finite. The class is immutable so
    nets can be shared freely between algorithms and used as dict keys via
    :meth:`key`.
    """

    pins: Tuple[Point, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if len(self.pins) < 2:
            raise InvalidNetError(
                f"net {self.name!r} needs a source and at least one sink, "
                f"got {len(self.pins)} pin(s)"
            )
        normalized = tuple(Point(float(p[0]), float(p[1])) for p in self.pins)
        for p in normalized:
            if not is_finite(p):
                raise InvalidNetError(f"net {self.name!r} has non-finite pin {p}")
        if len(set(normalized)) != len(normalized):
            raise InvalidNetError(f"net {self.name!r} has duplicate pins")
        object.__setattr__(self, "pins", normalized)

    @classmethod
    def from_points(
        cls,
        source: PointLike,
        sinks: Sequence[PointLike],
        name: str = "",
        drop_duplicates: bool = False,
    ) -> "Net":
        """Build a net from a source and a sink list.

        With ``drop_duplicates=True``, sinks coinciding with each other or
        with the source are silently removed (useful when ingesting raw
        placement data, where stacked pins are common).
        """
        pts = [Point(float(source[0]), float(source[1]))]
        pts.extend(Point(float(s[0]), float(s[1])) for s in sinks)
        if drop_duplicates:
            pts = dedupe_points(pts)
        return cls(pins=tuple(pts), name=name)

    @property
    def source(self) -> Point:
        """The source pin ``r``."""
        return self.pins[0]

    @property
    def sinks(self) -> Tuple[Point, ...]:
        """All sink pins, in declaration order."""
        return self.pins[1:]

    @property
    def degree(self) -> int:
        """Number of pins ``n`` (source included), the paper's net degree."""
        return len(self.pins)

    def bbox(self) -> BBox:
        """Bounding box of every pin."""
        return BBox.of(self.pins)

    def key(self) -> Tuple[Tuple[float, float], ...]:
        """A hashable identity for the pin geometry (ignores the name)."""
        return tuple((p.x, p.y) for p in self.pins)

    def star_wirelength(self) -> float:
        """Wirelength of the source-rooted star — a cheap upper bound."""
        return sum(l1(self.source, s) for s in self.sinks)

    def delay_lower_bound(self) -> float:
        """``max_i ||r - p_i||_1`` — no tree can deliver smaller delay."""
        return max(l1(self.source, s) for s in self.sinks)

    def translated(self, dx: float, dy: float) -> "Net":
        """The same net shifted rigidly by ``(dx, dy)``."""
        return Net(
            pins=tuple(Point(p.x + dx, p.y + dy) for p in self.pins),
            name=self.name,
        )

    def scaled(self, factor: float) -> "Net":
        """The same net scaled about the origin (``factor > 0``)."""
        if factor <= 0:
            raise InvalidNetError(f"scale factor must be positive, got {factor}")
        return Net(
            pins=tuple(Point(p.x * factor, p.y * factor) for p in self.pins),
            name=self.name,
        )

    def with_source(self, index: int) -> "Net":
        """The same pin set re-rooted so that ``pins[index]`` is the source."""
        if not 0 <= index < len(self.pins):
            raise InvalidNetError(f"source index {index} out of range")
        order = [self.pins[index]] + [
            p for i, p in enumerate(self.pins) if i != index
        ]
        return Net(pins=tuple(order), name=self.name)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.pins)


def random_net(
    degree: int,
    rng: Optional[random.Random] = None,
    span: float = 1000.0,
    grid: Optional[int] = None,
    name: str = "",
) -> Net:
    """A uniformly random degree-``degree`` net in ``[0, span]^2``.

    With ``grid`` set, coordinates snap to ``grid`` equally spaced values,
    which guarantees integral Hanan-grid edge lengths (handy for exact
    comparisons in tests).
    """
    if degree < 2:
        raise InvalidNetError(f"cannot generate a net of degree {degree}")
    rng = rng or random.Random()
    pts: List[Point] = []
    seen = set()
    while len(pts) < degree:
        if grid:
            x = round(rng.randrange(grid) * span / max(grid - 1, 1), 6)
            y = round(rng.randrange(grid) * span / max(grid - 1, 1), 6)
        else:
            x = rng.uniform(0.0, span)
            y = rng.uniform(0.0, span)
        if (x, y) not in seen:
            seen.add((x, y))
            pts.append(Point(x, y))
    return Net(pins=tuple(pts), name=name or f"rand_d{degree}")
