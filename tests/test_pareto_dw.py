"""Correctness tests for the exact Pareto-DW dynamic program.

The strongest oracle is the shared-nothing brute-force enumerator
(degree <= 4); above that the suite cross-checks pruning configurations
against each other and pins the frontier's endpoints to independently
computed optima.
"""

import random

import pytest

from repro.baselines.brute_force import brute_force_frontier
from repro.baselines.dreyfus_wagner import steiner_min_tree
from repro.baselines.rsma import rsma
from repro.core.pareto import dominates, is_pareto_front
from repro.core.pareto_dw import DWStats, pareto_dw, pareto_frontier
from repro.exceptions import DegreeTooLargeError
from repro.geometry.net import Net, random_net
from repro.routing.validate import check_tree


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(15))
    def test_degree4_matches_oracle(self, seed):
        net = random_net(4, rng=random.Random(seed), grid=8, span=70)
        assert pareto_frontier(net) == brute_force_frontier(net)

    def test_degree3_matches_oracle(self):
        for seed in range(5):
            net = random_net(3, rng=random.Random(seed), grid=6, span=50)
            assert pareto_frontier(net) == brute_force_frontier(net)

    def test_degree2(self):
        net = Net.from_points((0, 0), [(7, 4)])
        assert pareto_frontier(net) == [(11.0, 11.0)]


class TestPruningEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_all_configs_agree(self, seed, assert_fronts_equal):
        net = random_net(6, rng=random.Random(seed), grid=12, span=100)
        reference = pareto_frontier(
            net, lemma2=False, lemma3=False, lemma4=False
        )
        for l2 in (False, True):
            for l3 in (False, True):
                for l4 in (False, True):
                    got = pareto_frontier(net, lemma2=l2, lemma3=l3, lemma4=l4)
                    assert_fronts_equal(got, reference)

    def test_pruning_reduces_work(self):
        net = random_net(7, rng=random.Random(3))
        on, off = DWStats(), DWStats()
        pareto_frontier(net, stats=on)
        pareto_frontier(net, lemma2=False, lemma3=False, lemma4=False, stats=off)
        assert on.grid_nodes <= off.grid_nodes
        assert on.merge_transitions < off.merge_transitions

    def test_stats_populated(self):
        net = random_net(5, rng=random.Random(1))
        st = DWStats()
        pareto_frontier(net, stats=st)
        assert st.subsets == 2 ** 4 - 1
        assert st.max_front_size >= 1


class TestFrontierEndpoints:
    """Independent anchors: min-w equals the exact RSMT, min-d equals the
    L1 lower bound (always achievable by an arborescence)."""

    @pytest.mark.parametrize("degree", [4, 5, 6, 7])
    def test_endpoints(self, degree):
        rng = random.Random(degree * 17)
        for _ in range(3):
            net = random_net(degree, rng=rng)
            front = pareto_frontier(net)
            assert abs(front[0][0] - steiner_min_tree(net).wirelength()) < 1e-6
            assert abs(front[-1][1] - net.delay_lower_bound()) < 1e-6

    def test_min_delay_matches_rsma(self):
        rng = random.Random(55)
        for _ in range(3):
            net = random_net(6, rng=rng)
            front = pareto_frontier(net)
            assert abs(front[-1][1] - rsma(net).delay()) < 1e-6


class TestFrontierStructure:
    def test_is_antichain(self):
        rng = random.Random(2)
        for _ in range(5):
            net = random_net(7, rng=rng)
            assert is_pareto_front(
                [(w, d, None) for w, d in pareto_frontier(net)]
            )

    def test_trees_realize_objectives(self):
        rng = random.Random(10)
        for _ in range(5):
            net = random_net(6, rng=rng)
            for w, d, tree in pareto_dw(net):
                tw, td = tree.objective()
                assert tw <= w + 1e-6 and td <= d + 1e-6
                check_tree(tree, hanan=True)

    def test_no_heuristic_beats_frontier(self):
        from repro.baselines.salt import salt_sweep
        from repro.baselines.ysd import ysd
        from repro.baselines.prim_dijkstra import pd_sweep

        rng = random.Random(21)
        net = random_net(7, rng=rng)
        frontier = pareto_frontier(net)
        tol = max(max(fw, fd) for fw, fd in frontier) * 1e-9
        for sols in (salt_sweep(net), ysd(net), pd_sweep(net)):
            for w, d, _t in sols:
                for fw, fd in frontier:
                    # "Strictly better than a frontier point" beyond float
                    # noise would disprove exactness.
                    significantly_dominates = (
                        w <= fw + tol
                        and d <= fd + tol
                        and (w < fw - tol or d < fd - tol)
                    )
                    assert not significantly_dominates

    def test_with_and_without_trees_agree(self, assert_fronts_equal):
        rng = random.Random(31)
        for _ in range(5):
            net = random_net(6, rng=rng)
            assert_fronts_equal(
                pareto_dw(net, with_trees=False), pareto_dw(net)
            )


class TestDegenerateInputs:
    def test_collinear_pins(self, line_net):
        front = pareto_frontier(line_net)
        assert front == [(20.0, 20.0)]

    def test_shared_coordinates(self):
        net = Net.from_points((0, 0), [(0, 10), (10, 0), (10, 10)])
        front = pareto_frontier(net)
        # The square: RSMT = 30, and every sink reachable at L1 distance.
        assert front[0][0] == 30.0
        assert front[-1][1] == 20.0

    def test_tiny_coordinates(self):
        net = Net.from_points((0, 0), [(1e-7, 2e-7), (3e-7, 1e-7)])
        front = pareto_frontier(net)
        assert len(front) >= 1
        assert front[0][0] > 0

    def test_degree_limit_enforced(self):
        net = random_net(13, rng=random.Random(0))
        with pytest.raises(DegreeTooLargeError):
            pareto_frontier(net)

    def test_degree_limit_overridable(self):
        # 13 collinear pins: a degenerate Hanan grid where Lemma 4 keeps
        # the subset enumeration polynomial, so the override is feasible.
        pins = [(float(i), 0.0) for i in range(13)]
        net = Net.from_points(pins[6], [p for p in pins if p != pins[6]])
        front = pareto_frontier(net, max_degree=13)
        assert front == [(12.0, 6.0)]
