"""Fig. 7(c) — randomly generated degree-100 nets.

Paper: 100 uniform-random degree-100 nets; PatLabor ties SALT at the
low-wirelength end and is tighter at high wirelength; YSD's
divide-and-conquer is poor at wirelength minimisation. Scaled to
``NUM_NETS`` nets (pure-Python PatLabor needs seconds per degree-100
net). Required shape: (a) YSD's lightest tree is heavier than PatLabor's,
(b) PatLabor matches or beats SALT's delay at loose wirelength budgets.

Timed kernel: one PatLabor route of a degree-100 net.
"""

from repro.core.patlabor import PatLabor, PatLaborConfig
from repro.eval.metrics import average_curves
from repro.eval.reporting import render_curves
from repro.eval.runner import compare_on_nets, fig7_normalizers
from repro.baselines.salt import salt_sweep
from repro.baselines.ysd import ysd

from conftest import write_artifact

NUM_NETS = 4  # paper: 100 — scaled for pure Python


def test_fig7c_degree100(benchmark, suite):
    nets = suite.degree100_nets(count=NUM_NETS)
    router = PatLabor(config=PatLaborConfig(iterations=8, post_refine=False))
    methods = {
        "PatLabor": router.route,
        "SALT": lambda n: salt_sweep(n, epsilons=(0.0, 0.1, 0.25, 0.5, 1.0, 2.0)),
        "YSD": lambda n: ysd(n, weights=(0.0, 0.25, 0.5, 0.75, 1.0)),
    }
    comparisons = compare_on_nets(nets, methods, compute_exact=False)
    norm = fig7_normalizers(nets)
    budgets = [1.0 + 0.05 * i for i in range(15)]
    curves = average_curves(
        comparisons, norm.w_refs, norm.d_refs, budgets=budgets
    )
    rendered = render_curves(
        curves, title=f"Fig. 7(c) — {NUM_NETS} random degree-100 nets"
    )
    write_artifact("fig7c_degree100.txt", rendered)

    # Shape (a): YSD's divide-and-conquer wastes wirelength.
    min_w = {
        name: min(
            min(w for w, _, _ in row.methods[name]) / norm.w_refs[row.net_name]
            for row in comparisons
        )
        for name in methods
    }
    assert min_w["PatLabor"] <= min_w["YSD"] + 1e-9
    # Shape (b): at the loosest budget PatLabor's mean delay is no worse
    # than SALT's by more than a whisker.
    by_name = {c.method: c for c in curves}
    assert (
        by_name["PatLabor"].mean_delay[-1]
        <= by_name["SALT"].mean_delay[-1] + 0.05
    )

    net = nets[0]
    benchmark.pedantic(lambda: router.route(net), rounds=1, iterations=1)
