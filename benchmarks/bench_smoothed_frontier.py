"""Theorem 2 — smoothed frontier sizes are polynomial (≈ linear) in n.

Measures the exact frontier size of κ-smoothed nets across degree and
smoothing parameter. Expected shape (Theorem 2: ``O(n^3 κ)`` expected):
mean size grows slowly with n and increases with κ.

Scaling: paper analyses 9e5 benchmark nets; we sample
``samples`` per (n, κ) cell.

Timed kernel: one exact frontier of a κ=16 degree-7 net.
"""

import random

from repro.analysis.smoothed import frontier_size_experiment, smoothed_net
from repro.core.pareto_dw import pareto_frontier
from repro.eval.reporting import format_table

from conftest import write_artifact

DEGREES = (4, 5, 6, 7, 8)
KAPPAS = (1.0, 4.0, 16.0)
SAMPLES = 12


def test_theorem2_smoothed_frontier(benchmark):
    rows_raw = frontier_size_experiment(
        degrees=DEGREES, kappas=KAPPAS, samples=SAMPLES, seed=7
    )
    by_kappa = {}
    for r in rows_raw:
        by_kappa.setdefault(r.kappa, {})[r.degree] = r

    rows = []
    for n in DEGREES:
        rows.append(
            [n]
            + [
                f"{by_kappa[k][n].mean_size:.2f}/{by_kappa[k][n].max_size}"
                for k in KAPPAS
            ]
        )
    table = format_table(
        ["n"] + [f"kappa={k:g} (mean/max)" for k in KAPPAS],
        rows,
        title=f"Theorem 2 — smoothed frontier sizes ({SAMPLES} nets per cell)",
    )
    write_artifact("theorem2_smoothed.txt", table)

    # Shape assertions: polynomial growth (mean stays tiny vs 2^n), and
    # the most-smoothed column is never richer than the most-concentrated.
    for k in KAPPAS:
        for n in DEGREES:
            assert by_kappa[k][n].mean_size <= n * n  # << 2^n
    mean_k1 = sum(by_kappa[1.0][n].mean_size for n in DEGREES)
    mean_k16 = sum(by_kappa[16.0][n].mean_size for n in DEGREES)
    assert mean_k16 >= mean_k1 * 0.8  # concentration does not shrink fronts

    net = smoothed_net(7, kappa=16.0, rng=random.Random(3))
    benchmark(lambda: pareto_frontier(net))
