"""Pareto-DW: the exact Pareto-frontier dynamic program (paper, Section IV-A).

Adapts Dreyfus–Wagner to bicriterion optimisation. The DP state
``S[Q][v]`` is the Pareto frontier of subtrees rooted at Hanan-grid node
``v`` spanning sink subset ``Q``, with delay measured *from v*. Transitions
follow the paper's Equation (1):

* **merge**     ``S[Q][v] ∋ S[Q1][v] ⊕ S[Q\\Q1][v]`` — join two subtrees at v,
* **extension** ``S[Q][v] ∋ S[Q][u] + ||u - v||_1`` — re-root along an edge.

Because L1 extension is a metric (two hops are dominated by the direct
hop), a single all-pairs closure round per subset suffices; no iterative
relaxation is needed.

Pruning (paper, Section V-A):

* **Lemma 2** — empty-quadrant corner nodes are excluded from the grid,
* **Lemma 3** — merge transitions are skipped at nodes outside the
  bounding box of the active sink subset (the closure from the projection
  dominates them),
* **Lemma 4** — when every sink of ``Q`` lies on the grid boundary, only
  circularly-consecutive splits are enumerated.

The frontier returned is exact regardless of which pruning flags are set;
the flags only change how much work is done (tests cross-check all
configurations).

The hot loops run on the sorted-front kernels of
:mod:`repro.core.frontier`: every DP front is maintained sorted
(``w`` ascending, ``d`` strictly descending), merge transitions use the
O(a+b) two-pointer product of
:func:`~repro.core.frontier.cross_sorted` — fused with the split union
via :func:`~repro.core.frontier.cross_merge_sorted` so dominated product
points are never allocated — closure buckets are per-source shifted runs
merged lazily by :func:`~repro.core.frontier.merge_shifted`, and node
distances come from
one precomputed :meth:`~repro.geometry.hanan.HananGrid.distance_matrix`
per grid. ``kernels=False`` selects the original enumerate-and-sort
reference implementation — same frontiers, more work — kept for the
equivalence tests and the old-vs-new kernel benchmark
(``benchmarks/bench_pareto_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import DegreeTooLargeError
from ..geometry.hanan import GridNode, HananGrid
from ..geometry.net import Net
from ..obs import (
    counter_add,
    emit_event,
    enabled as _obs_enabled,
    events_enabled as _events_enabled,
    gauge_max,
    span,
)
from ..routing.tree import RoutingTree
from .frontier import ShiftedRun, cross_merge_sorted, cross_sorted, merge_shifted
from .pareto import Solution, clean_front, pareto_filter

#: Hard ceiling on exact enumeration; above this the caller should be using
#: PatLabor's local search. Overridable via ``max_degree=``.
DEFAULT_MAX_DEGREE = 12


@dataclass
class DWStats:
    """Work counters for ablation and kernel benchmarks (Lemmas 2–4, kernels).

    ``closure_extensions`` counts extension candidates *considered* and is
    identical between the kernel and reference paths; the two allocation
    counters measure what each path actually materializes:
    ``merge_candidates`` is the number of merge-product solution tuples
    built (reference: ``a · b`` per transition; kernels: at most
    ``a + b - 1``) and ``closure_allocations`` the number of closure-bucket
    solutions built (reference: every shifted candidate; kernels: only
    dominance survivors). Their sum is the "candidate tuples allocated"
    headline that ``benchmarks/bench_pareto_kernels.py`` tracks.
    """

    grid_nodes: int = 0
    pruned_corner_nodes: int = 0
    merge_transitions: int = 0
    merge_skipped_lemma3: int = 0
    splits_saved_lemma4: int = 0
    closure_extensions: int = 0
    merge_candidates: int = 0
    closure_allocations: int = 0
    max_front_size: int = 0
    subsets: int = 0


# Backpointer payloads: small tagged tuples, shared structurally.
#   ("leaf", sink_node)
#   ("ext", u_node, v_node, child_payload)
#   ("merge", payload1, payload2)


def _collect_edges(payload: Any, out: Set[Tuple[GridNode, GridNode]]) -> None:
    stack = [payload]
    while stack:
        p = stack.pop()
        tag = p[0]
        if tag == "leaf":
            continue
        if tag == "ext":
            _, u, v, child = p
            if u != v:
                out.add((u, v))
            stack.append(child)
        else:  # merge
            stack.append(p[1])
            stack.append(p[2])


def _boundary_order(grid: HananGrid, nodes: Sequence[GridNode]) -> Optional[List[int]]:
    """Clockwise boundary rank of each node, or None if any is interior."""
    nx, ny = grid.nx, grid.ny
    ranks: List[int] = []
    for ix, iy in nodes:
        if iy == ny - 1:  # top edge, left -> right
            r = ix
        elif ix == nx - 1:  # right edge, top -> bottom
            r = (nx - 1) + (ny - 1 - iy)
        elif iy == 0:  # bottom edge, right -> left
            r = (nx - 1) + (ny - 1) + (nx - 1 - ix)
        elif ix == 0:  # left edge, bottom -> top
            r = 2 * (nx - 1) + (ny - 1) + iy
        else:
            return None
        ranks.append(r)
    return ranks


def _consecutive_splits(bits: List[int], order: List[int]) -> List[int]:
    """Submasks whose sinks form a circular run in boundary order.

    ``bits`` are the sink indices in ``Q``; ``order[i]`` is the boundary
    rank of sink ``i``. Returns proper, non-empty submasks (as bitmasks
    over the *global* sink indexing) that are consecutive runs; complements
    of runs are runs, so enumerating runs covers all Lemma-4 splits.
    """
    k = len(bits)
    ring = sorted(bits, key=lambda b: order[b])
    masks: Set[int] = set()
    for start in range(k):
        m = 0
        for length in range(1, k):  # proper subsets only
            m |= 1 << ring[(start + length - 1) % k]
            masks.add(m)
    return list(masks)


def _splits_for_mask(
    mask: int,
    bits: List[int],
    size: int,
    boundary_rank: Optional[List[int]],
    stats: Optional[DWStats],
) -> List[int]:
    """The split submasks every DP path enumerates for ``mask``.

    Shared by the tuple, kernel and array engines so the enumeration
    order — which decides payload survival on exact ties — is identical
    across representations. With Lemma 4 active (``boundary_rank`` given
    and covering the mask's sinks) only circularly-consecutive splits are
    kept; otherwise all proper submasks containing the lowest sink bit.
    """
    if boundary_rank is not None and all(
        boundary_rank[i] is not None for i in bits
    ):
        submasks = _consecutive_splits(bits, boundary_rank)
        # Keep only one of each complementary pair (lowest-bit rule).
        low = 1 << bits[0]
        submasks = [sm for sm in submasks if sm & low]
        if stats is not None:
            total = (1 << (size - 1)) - 1
            stats.splits_saved_lemma4 += max(0, total - len(submasks))
    else:
        low = 1 << bits[0]
        rest = mask & ~low
        submasks = []
        sub = rest
        while True:
            submasks.append(sub | low)
            if sub == 0:
                break
            sub = (sub - 1) & rest
        submasks = [sm for sm in submasks if sm != mask]
    return submasks


def pareto_dw(
    net: Net,
    *,
    lemma2: bool = True,
    lemma3: bool = True,
    lemma4: bool = True,
    with_trees: bool = True,
    max_degree: int = DEFAULT_MAX_DEGREE,
    stats: Optional[DWStats] = None,
    kernels: bool = True,
    representation: str = "tuple",
) -> List[Solution]:
    """Exact Pareto frontier of timing-driven routing trees for ``net``.

    Returns Pareto solutions ``(w, d, payload)`` sorted by ascending
    wirelength; with ``with_trees=True`` each payload is the
    :class:`RoutingTree` attaining (or weakly dominating) the objectives,
    otherwise payloads are opaque backpointers.

    ``kernels=False`` runs the enumerate-and-sort reference
    implementation instead of the sorted-front kernels — the returned
    ``(w, d)`` frontier is identical; only the work done differs (see the
    module docstring). It exists for equivalence tests and benchmarks.

    ``representation="array"`` runs the NumPy batch engine instead: every
    DP front lives in contiguous ``(w[], d[])`` arrays and all merge and
    closure buckets of one subset cardinality are filtered in a single
    segmented pass (see :mod:`repro.core.frontier_array` and
    ``docs/numerics.md``). The frontier — objectives, payload tie choices
    and the shared work counters — is bit-identical to the reference;
    only the work done differs. When NumPy is unavailable the call falls
    back to the pure-Python path selected by ``kernels`` (mirroring
    :meth:`~repro.geometry.hanan.HananGrid.distance_matrix`).

    Raises :class:`DegreeTooLargeError` when ``net.degree > max_degree``,
    ``ValueError`` for an unknown ``representation``.
    """
    if representation not in ("tuple", "array"):
        raise ValueError(
            f"representation must be 'tuple' or 'array', got {representation!r}"
        )
    n = net.degree
    if n > max_degree:
        raise DegreeTooLargeError(n, max_degree)
    # With observability on, always collect work counters so they can be
    # flushed into the global registry (callers passing their own DWStats
    # keep ownership and flush nothing).
    flush = stats is None and _obs_enabled()
    if flush:
        stats = DWStats()
    emitting = _events_enabled()
    if emitting:
        import time as _time

        t0 = _time.perf_counter()
    if representation == "array":
        from .frontier_array import HAVE_NUMPY

        if not HAVE_NUMPY:  # pragma: no cover - numpy is a hard dependency
            representation = "tuple"
    with span("dw.solve"):
        if representation == "array":
            result = _pareto_dw_array_impl(
                net,
                lemma2=lemma2,
                lemma3=lemma3,
                lemma4=lemma4,
                with_trees=with_trees,
                stats=stats,
            )
        else:
            result = _pareto_dw_impl(
                net,
                lemma2=lemma2,
                lemma3=lemma3,
                lemma4=lemma4,
                with_trees=with_trees,
                stats=stats,
                kernels=kernels,
            )
    if flush:
        _flush_dw_stats(stats)
    if emitting:
        event = {
            "net": net.name or f"net_{id(net):x}",
            "degree": n,
            "front_size": len(result),
            "wall_s": _time.perf_counter() - t0,
        }
        if stats is not None:
            event["subsets"] = stats.subsets
            event["merge_transitions"] = stats.merge_transitions
            event["max_front_size"] = stats.max_front_size
        emit_event("dw_solve", **event)
    return result


def _flush_dw_stats(stats: DWStats) -> None:
    """Report one solve's :class:`DWStats` into the metrics registry."""
    counter_add("dw.solves")
    counter_add("dw.subsets", stats.subsets)
    counter_add("dw.merge_transitions", stats.merge_transitions)
    counter_add("dw.merge_skipped_lemma3", stats.merge_skipped_lemma3)
    counter_add("dw.splits_saved_lemma4", stats.splits_saved_lemma4)
    counter_add("dw.closure_extensions", stats.closure_extensions)
    counter_add("dw.merge_candidates", stats.merge_candidates)
    counter_add("dw.closure_allocations", stats.closure_allocations)
    counter_add("dw.pruned_corner_nodes", stats.pruned_corner_nodes)
    gauge_max("dw.max_front_size", stats.max_front_size)


def _ext_payload_to(v: GridNode) -> "Callable[[GridNode, Solution], Any]":
    """Payload builder for closure extension edges into target ``v``.

    One shared rewrap per closure bucket; the source node rides along as
    the run tag, so no per-``(u, v)`` closure objects are allocated.
    """

    def rewrap(u: GridNode, s: Solution) -> Any:
        return ("ext", u, v, s[2])

    return rewrap


def _merge_payload(p1: Any, p2: Any) -> Any:
    """Payload combiner of a DP merge transition."""
    return ("merge", p1, p2)


def _pareto_dw_impl(
    net: Net,
    *,
    lemma2: bool,
    lemma3: bool,
    lemma4: bool,
    with_trees: bool,
    stats: Optional[DWStats],
    kernels: bool = True,
    reuse_fronts: Optional[Dict[int, Dict[GridNode, List[Solution]]]] = None,
    capture: Optional[List[Dict[int, Dict[GridNode, List[Solution]]]]] = None,
) -> List[Solution]:
    """The DP body of :func:`pareto_dw` (degree already validated).

    ``reuse_fronts`` maps sink-subset masks to already-solved per-node
    fronts (from a previous solve whose :func:`dw_signature` matched);
    those masks are installed verbatim and skipped by the DP, which is
    what makes an ECO re-solve cheap. ``capture``, when given, receives
    one dict ``{mask: {node: front}}`` of the complete solved table —
    the snapshot :func:`pareto_dw_with_state` wraps into a
    :class:`DWState`. Neither hook changes any computed value: reused
    fronts are bit-identical to what the skipped computation would have
    produced (see :class:`DWState` for the exactness argument).
    """
    grid = HananGrid.of_net(net)
    pin_nodes = grid.pin_nodes()
    source_node = pin_nodes[0]
    sink_nodes = pin_nodes[1:]
    num_sinks = len(sink_nodes)
    full = (1 << num_sinks) - 1

    if lemma2:
        corner = set(grid.corner_nodes())
        nodes = [v for v in grid.nodes() if v not in corner]
    else:
        corner = set()
        nodes = list(grid.nodes())
    if stats is not None:
        stats.grid_nodes = len(nodes)
        stats.pruned_corner_nodes = len(corner)

    boundary_rank = _boundary_order(grid, sink_nodes) if lemma4 else None

    # S[mask] : dict node -> Pareto list of (w, d, payload), each list a
    # sorted front (w ascending, d strictly descending) by construction.
    S: List[Optional[Dict[GridNode, List[Solution]]]] = [None] * (full + 1)

    if kernels:
        # Sorted-front kernel path: precomputed distance matrix, lazy
        # shifted merges for closures, two-pointer products for merges.
        ny = grid.ny
        dmat = grid.distance_matrix()

        def closure(
            merged: Dict[GridNode, List[Solution]]
        ) -> Dict[GridNode, List[Solution]]:
            """One metric-closure round via the lazy shifted-merge kernel."""
            out: Dict[GridNode, List[Solution]] = {}
            sources = [
                (u, u[0] * ny + u[1], cands)
                for u, cands in merged.items()
                if cands
            ]
            for v in nodes:
                row_v = v[0] * ny + v[1]
                rewrap_v = _ext_payload_to(v)
                runs: List[ShiftedRun] = []
                for u, uid, cands in sources:
                    duv = dmat[uid][row_v]
                    if duv == 0.0 and u == v:
                        runs.append((0.0, cands, None))
                    else:
                        runs.append((duv, cands, u))
                        if stats is not None:
                            stats.closure_extensions += len(cands)
                front, allocated = merge_shifted(runs, rewrap_v)
                out[v] = front
                if stats is not None:
                    stats.closure_allocations += allocated
                    if len(front) > stats.max_front_size:
                        stats.max_front_size = len(front)
            return out

        def merge_at(v: GridNode, submasks: List[int], mask: int) -> List[Solution]:
            """Pareto front of all split merges at ``v`` (kernel path)."""
            front: List[Solution] = []
            for q1 in submasks:
                sq1 = S[q1]
                sq2 = S[mask ^ q1]
                s1 = sq1[v] if sq1 is not None else None
                s2 = sq2[v] if sq2 is not None else None
                if not s1 or not s2:
                    continue
                if stats is not None:
                    stats.merge_transitions += 1
                if front:
                    front, allocated = cross_merge_sorted(
                        front, s1, s2, _merge_payload
                    )
                else:
                    front = cross_sorted(s1, s2, _merge_payload)
                    allocated = len(front)
                if stats is not None:
                    stats.merge_candidates += allocated
            return front

    else:
        dist = grid.dist

        def closure(
            merged: Dict[GridNode, List[Solution]]
        ) -> Dict[GridNode, List[Solution]]:
            """One metric-closure round: extend every candidate to every node."""
            out: Dict[GridNode, List[Solution]] = {}
            sources = [(u, cands) for u, cands in merged.items() if cands]
            for v in nodes:
                bucket: List[Solution] = []
                for u, cands in sources:
                    duv = dist(u, v)
                    if duv == 0.0 and u == v:
                        bucket.extend(cands)
                    else:
                        for (w, d, p) in cands:
                            bucket.append((w + duv, d + duv, ("ext", u, v, p)))
                        if stats is not None:
                            stats.closure_extensions += len(cands)
                            stats.closure_allocations += len(cands)
                front = pareto_filter(bucket)
                out[v] = front
                if stats is not None and len(front) > stats.max_front_size:
                    stats.max_front_size = len(front)
            return out

        def merge_at(v: GridNode, submasks: List[int], mask: int) -> List[Solution]:
            """Pareto front of all split merges at ``v`` (reference path)."""
            bucket: List[Solution] = []
            for q1 in submasks:
                sq1 = S[q1]
                sq2 = S[mask ^ q1]
                s1 = sq1[v] if sq1 is not None else None
                s2 = sq2[v] if sq2 is not None else None
                if not s1 or not s2:
                    continue
                if stats is not None:
                    stats.merge_transitions += 1
                    stats.merge_candidates += len(s1) * len(s2)
                for w1, d1, p1 in s1:
                    for w2, d2, p2 in s2:
                        bucket.append(
                            (w1 + w2, max(d1, d2), ("merge", p1, p2))
                        )
            return pareto_filter(bucket)

    # Singletons.
    with span("dw.closure"):
        for si, s_node in enumerate(sink_nodes):
            if reuse_fronts is not None and (1 << si) in reuse_fronts:
                S[1 << si] = reuse_fronts[1 << si]
                continue
            base = {s_node: [(0.0, 0.0, ("leaf", s_node))]}
            S[1 << si] = closure(base)
            if stats is not None:
                stats.subsets += 1

    # Subsets in increasing cardinality.
    masks_by_size: List[List[int]] = [[] for _ in range(num_sinks + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    for size in range(2, num_sinks + 1):
        for mask in masks_by_size[size]:
            if reuse_fronts is not None and mask in reuse_fronts:
                S[mask] = reuse_fronts[mask]
                continue
            bits = [i for i in range(num_sinks) if mask >> i & 1]
            # Bounding box of the active sinks, for Lemma 3.
            if lemma3:
                ixs = [sink_nodes[i][0] for i in bits]
                iys = [sink_nodes[i][1] for i in bits]
                bxlo, bxhi = min(ixs), max(ixs)
                bylo, byhi = min(iys), max(iys)

            # Which splits to enumerate.
            submasks = _splits_for_mask(mask, bits, size, boundary_rank, stats)

            merged: Dict[GridNode, List[Solution]] = {}
            with span("dw.merge"):
                for v in nodes:
                    if lemma3:
                        ix, iy = v
                        if not (bxlo <= ix <= bxhi and bylo <= iy <= byhi):
                            if stats is not None:
                                stats.merge_skipped_lemma3 += 1
                            continue
                    front = merge_at(v, submasks, mask)
                    if front:
                        merged[v] = front
            with span("dw.closure"):
                S[mask] = closure(merged)
            if stats is not None:
                stats.subsets += 1
            # Free sub-frontiers no longer needed? (All smaller masks may
            # still be needed by other supersets; keep everything — memory
            # is bounded by 2^(n-1) * |nodes| * |S|, fine for n <= 12.)

    result = S[full][source_node] if S[full] is not None else []
    if capture is not None:
        capture.append(
            {mask: fronts for mask, fronts in enumerate(S) if fronts is not None}
        )
    if not with_trees:
        return clean_front(result)

    final: List[Solution] = []
    with span("dw.reconstruct"):
        for w, d, payload in result:
            tree = reconstruct_tree(net, grid, payload)
            tw, td = tree.objective()
            # The DP value may correspond to an edge multiset; the realised
            # tree can only be equal or better in both objectives.
            final.append((min(w, tw), min(d, td), tree))
    return clean_front(final)


def _pareto_dw_array_impl(
    net: Net,
    *,
    lemma2: bool,
    lemma3: bool,
    lemma4: bool,
    with_trees: bool,
    stats: Optional[DWStats],
) -> List[Solution]:
    """The array-native DP engine of :func:`pareto_dw` (``representation="array"``).

    Same DP, same transitions, same frontiers as :func:`_pareto_dw_impl` —
    but every front lives in contiguous NumPy arrays and the work of one
    subset cardinality is batched into a handful of vectorized passes:

    * **merge phase** — all ``(mask, split, node)`` cross products of one
      cardinality are enumerated with :func:`~repro.core.frontier_array.\
ragged_product_indices` and filtered by one segmented exact sweep, one
      segment per ``(mask, node)`` bucket;
    * **closure phase** — every merged front is extended to every grid
      node via one broadcast against the distance matrix and filtered the
      same way, reusing source elements for identity extensions exactly
      like the tuple kernels reuse tuples.

    Backpointers are struct-of-arrays (kind/arg columns) instead of
    nested tuples; payload tuples are materialized only for the final
    frontier, which makes the result — objectives, payload structure and
    tie choices included — bit-identical to the reference path (see
    ``docs/numerics.md`` for why each step preserves IEEE semantics).
    """
    import numpy as np

    from .frontier_array import (
        ragged_product_indices,
        segment_strict_prune,
        segmented_pareto_filter,
    )

    # Below this many candidates the strict-dominance pre-pass costs more
    # in fixed per-call passes than the sort it shrinks; the exact filter
    # alone produces identical fronts (the prune only drops elements the
    # filter would drop anyway).
    prune_min = 1024

    grid = HananGrid.of_net(net)
    pin_nodes = grid.pin_nodes()
    source_node = pin_nodes[0]
    sink_nodes = pin_nodes[1:]
    num_sinks = len(sink_nodes)
    full = (1 << num_sinks) - 1

    if lemma2:
        corner = set(grid.corner_nodes())
        nodes = [v for v in grid.nodes() if v not in corner]
    else:
        corner = set()
        nodes = list(grid.nodes())
    if stats is not None:
        stats.grid_nodes = len(nodes)
        stats.pruned_corner_nodes = len(corner)

    boundary_rank = _boundary_order(grid, sink_nodes) if lemma4 else None

    num_nodes = len(nodes)
    ny = grid.ny
    node_index = {v: vi for vi, v in enumerate(nodes)}
    node_flat = np.array([ix * ny + iy for ix, iy in nodes], dtype=np.int64)
    node_ix = np.array([ix for ix, _ in nodes], dtype=np.int64)
    node_iy = np.array([iy for _, iy in nodes], dtype=np.int64)
    # Node-indexed distance matrix, gathered from the same float values
    # grid.dist() produces (bit-identical by the distance_matrix contract).
    dmat = np.asarray(grid.distance_matrix(), dtype=np.float64)[
        np.ix_(node_flat, node_flat)
    ]

    # --- element store: struct-of-arrays backpointers, appended per batch.
    # kind 0 = leaf(sink flat), 1 = ext(child, u flat, v flat),
    # kind 2 = merge(left, right). float columns hold the objectives.
    ew_chunks: List[Any] = []
    ed_chunks: List[Any] = []
    kind_chunks: List[Any] = []
    ea_chunks: List[Any] = []
    eb_chunks: List[Any] = []
    ec_chunks: List[Any] = []
    num_elems = 0
    cons: List[Any] = [None] * 6  # consolidated EW, ED, KIND, EA, EB, EC

    def _append_elems(ew: Any, ed: Any, kind: int, ea: Any, eb: Any, ec: Any) -> int:
        """Append one batch of elements; returns the batch's base id."""
        nonlocal num_elems
        base = num_elems
        ew_chunks.append(ew)
        ed_chunks.append(ed)
        kind_chunks.append(np.full(ew.shape[0], kind, dtype=np.int64))
        ea_chunks.append(ea)
        eb_chunks.append(eb)
        ec_chunks.append(ec)
        num_elems += ew.shape[0]
        cons[0] = None
        return base

    def _elems() -> Tuple[Any, Any, Any, Any, Any, Any]:
        """Consolidated element columns (rebuilt only after appends)."""
        if cons[0] is None:
            cons[0] = np.concatenate(ew_chunks) if ew_chunks else np.empty(0)
            cons[1] = np.concatenate(ed_chunks) if ed_chunks else np.empty(0)
            cons[2] = (
                np.concatenate(kind_chunks)
                if kind_chunks
                else np.empty(0, dtype=np.int64)
            )
            cons[3] = (
                np.concatenate(ea_chunks)
                if ea_chunks
                else np.empty(0, dtype=np.int64)
            )
            cons[4] = (
                np.concatenate(eb_chunks)
                if eb_chunks
                else np.empty(0, dtype=np.int64)
            )
            cons[5] = (
                np.concatenate(ec_chunks)
                if ec_chunks
                else np.empty(0, dtype=np.int64)
            )
        return cons[0], cons[1], cons[2], cons[3], cons[4], cons[5]

    # --- front store: FE maps front slots to element ids; SW/SD mirror
    # each slot's (w, d) objectives in contiguous float columns so the
    # merge phase reads them with plain float gathers (slot values equal
    # the element's exactly — identity closure adds a bitwise 0.0).
    # PTR/CNT give each (mask, node) front's slot range; uncomputed masks
    # read as empty.
    fe_chunks: List[Any] = []
    sw_chunks: List[Any] = []
    sd_chunks: List[Any] = []
    num_slots = 0
    fe_cache: List[Any] = [None, None, None]
    PTR = np.zeros((full + 1, num_nodes), dtype=np.int64)
    CNT = np.zeros((full + 1, num_nodes), dtype=np.int64)

    def _append_slots(fe: Any, sw: Any, sd: Any) -> int:
        nonlocal num_slots
        base = num_slots
        fe_chunks.append(fe)
        sw_chunks.append(sw)
        sd_chunks.append(sd)
        num_slots += fe.shape[0]
        fe_cache[0] = None
        return base

    def _fe() -> Any:
        if fe_cache[0] is None:
            fe_cache[0] = (
                np.concatenate(fe_chunks)
                if fe_chunks
                else np.empty(0, dtype=np.int64)
            )
            fe_cache[1] = (
                np.concatenate(sw_chunks) if sw_chunks else np.empty(0)
            )
            fe_cache[2] = (
                np.concatenate(sd_chunks) if sd_chunks else np.empty(0)
            )
        return fe_cache[0]

    def _slot_w_d() -> Tuple[Any, Any]:
        _fe()
        return fe_cache[1], fe_cache[2]

    def _closure_batch(
        masks: List[int],
        src_ptr: Any,
        src_eids: Any,
        src_vis: Any,
        src_w: Any,
        src_d: Any,
    ) -> None:
        """Extend every source front of every mask to every node, filter.

        ``src_*`` hold the merged fronts of all ``masks`` back to back
        (block ``m`` delimited by ``src_ptr``), each block ordered by
        source node then front position — the reference's closure bucket
        order. Writes the resulting fronts into PTR/CNT/FE and appends
        extension elements for the non-identity survivors.
        """
        n_masks = len(masks)
        e_arr = np.diff(src_ptr)
        n_src = int(e_arr.sum())
        total = n_src * num_nodes
        if stats is not None:
            stats.closure_extensions += n_src * (num_nodes - 1)
        if total == 0:
            return
        # Candidate matrices, element-major: row e = source element,
        # column v = target node, value = source objectives +
        # dmat[u_e, v] — both objectives grow by the same wirelength
        # offset, so two broadcast adds against the shared distance rows
        # build every candidate with no index expansion at all. The
        # segment of cell (e, v) is (mask_of_e, v); within a segment the
        # flattened row-major order is ascending e — the reference
        # bucket order.
        drows = dmat[src_vis]
        c_w = src_w[:, None] + drows
        c_d = src_d[:, None] + drows
        nz = e_arr > 0
        cblock = np.repeat(
            np.arange(int(nz.sum()), dtype=np.int64), e_arr[nz]
        )
        mask_of_e = np.repeat(np.arange(n_masks, dtype=np.int64), e_arr)
        if total >= prune_min:
            # Strict-dominance pre-pass, per segment (m, v) = the mask's
            # rows of one column: the same two real witnesses as
            # segment_strict_prune, computed with axis-0 reduceats over
            # contiguous row blocks (empty blocks skipped via ``nz``).
            bstarts = src_ptr[:-1][nz]
            inf = np.float64("inf")
            min_d = np.minimum.reduceat(c_d, bstarts, axis=0)[cblock]
            min_w = np.minimum.reduceat(c_w, bstarts, axis=0)[cblock]
            w_at = np.minimum.reduceat(
                np.where(c_d == min_d, c_w, inf), bstarts, axis=0
            )[cblock]
            d_at = np.minimum.reduceat(
                np.where(c_w == min_w, c_d, inf), bstarts, axis=0
            )[cblock]
            dom = (w_at < c_w) | ((w_at == c_w) & (min_d < c_d))
            dom |= (d_at < c_d) | ((d_at == c_d) & (min_w < c_w))
            sel = np.flatnonzero(~dom)
            w_c = c_w.ravel().take(sel)
            d_c = c_d.ravel().take(sel)
            e_c = sel // num_nodes
            v_c = sel - e_c * num_nodes
        else:
            sel = None
            w_c = c_w.ravel()
            d_c = c_d.ravel()
            e_c = np.repeat(
                np.arange(n_src, dtype=np.int64), num_nodes
            )
            v_c = np.tile(np.arange(num_nodes, dtype=np.int64), n_src)
        seg_c = mask_of_e.take(e_c) * num_nodes + v_c
        sidx = segmented_pareto_filter(seg_c, w_c, d_c)
        s_seg = seg_c.take(sidx)
        s_w = w_c.take(sidx)
        s_d = d_c.take(sidx)
        e_full = e_c.take(sidx)
        s_child = src_eids.take(e_full)
        s_u = src_vis.take(e_full)
        s_v = v_c.take(sidx)
        is_id = s_u == s_v
        new = ~is_id
        n_new = int(new.sum())
        elem_base = _append_elems(
            s_w[new],
            s_d[new],
            1,
            s_child[new],
            node_flat[s_u[new]],
            node_flat[s_v[new]],
        )
        new_ids = elem_base + np.cumsum(new) - 1
        fe_vals = np.where(is_id, s_child, new_ids)
        slot_base = _append_slots(fe_vals, s_w, s_d)
        counts = np.bincount(s_seg, minlength=n_masks * num_nodes).reshape(
            n_masks, num_nodes
        )
        starts = slot_base + np.concatenate(
            ([0], np.cumsum(counts.ravel())[:-1])
        ).reshape(n_masks, num_nodes)
        masks_arr = np.array(masks, dtype=np.int64)
        PTR[masks_arr] = starts
        CNT[masks_arr] = counts
        if stats is not None:
            stats.closure_allocations += n_new
            top = int(counts.max()) if counts.size else 0
            if top > stats.max_front_size:
                stats.max_front_size = top

    def _merge_batch(
        mask_rows: List[Tuple[int, List[int], Any]],
    ) -> Tuple[Any, Any, Any, Any, Any]:
        """All split merges of one cardinality in one segmented filter.

        ``mask_rows`` holds ``(mask, submasks, bbox_node_indices)`` per
        mask. Returns the merged fronts as closure-batch inputs:
        ``(src_ptr, src_eids, src_vis, src_w, src_d)`` with one block
        per mask (in ``mask_rows`` order), each ordered by node then
        front position. Appends merge elements for every survivor.
        """
        # Row grid construction, fully vectorized across masks: one row per
        # (mask, bbox node, split), node-major within each mask so the
        # products of one (mask, node) bucket land contiguously in split
        # order — the reference enumeration order.
        n_masks = len(mask_rows)
        sub_flat: List[int] = []
        mask_vals: List[int] = []
        ns_list: List[int] = []
        bb_parts: List[Any] = []
        nb_list: List[int] = []
        for mask, submasks, bb in mask_rows:
            sub_flat.extend(submasks)
            mask_vals.append(mask)
            ns_list.append(len(submasks))
            bb_parts.append(bb)
            nb_list.append(bb.shape[0])
        ns_arr = np.array(ns_list, dtype=np.int64)
        nb_arr = np.array(nb_list, dtype=np.int64)
        rows_per_mask = ns_arr * nb_arr
        total_rows = int(rows_per_mask.sum())
        seg_base = int(nb_arr.sum())
        bb_starts = np.concatenate(([0], np.cumsum(nb_arr)))
        seg_mask_ptr = bb_starts
        empty_i = np.empty(0, dtype=np.int64)
        if total_rows == 0:
            return (
                np.zeros(n_masks + 1, dtype=np.int64),
                empty_i,
                empty_i,
                np.empty(0),
                np.empty(0),
            )
        sub_all = np.array(sub_flat, dtype=np.int64)
        bb_all = np.concatenate(bb_parts)
        sub_starts = np.concatenate(([0], np.cumsum(ns_arr)[:-1]))
        row_starts = np.concatenate(([0], np.cumsum(rows_per_mask)[:-1]))
        mask_of_row = np.repeat(np.arange(n_masks, dtype=np.int64), rows_per_mask)
        pos = np.arange(total_rows, dtype=np.int64) - row_starts[mask_of_row]
        ns_rep = ns_arr[mask_of_row]
        v_local = pos // ns_rep
        q1_all = sub_all[sub_starts[mask_of_row] + pos % ns_rep]
        q2_all = np.array(mask_vals, dtype=np.int64)[mask_of_row] ^ q1_all
        segrow = bb_starts[:-1][mask_of_row] + v_local
        v_all = bb_all[segrow]
        c1 = CNT[q1_all, v_all]
        c2 = CNT[q2_all, v_all]
        st1 = PTR[q1_all, v_all]
        st2 = PTR[q2_all, v_all]
        if stats is not None:
            stats.merge_transitions += int(((c1 > 0) & (c2 > 0)).sum())
        cnts = c1 * c2
        _, i_a, i_b = ragged_product_indices(c1, c2, st1, st2, rows=False)
        sw, sd = _slot_w_d()
        # Merged pair: w adds, d maxes (in place over the fresh gathers).
        mw = sw.take(i_a)
        np.add(mw, sw.take(i_b), out=mw)
        md = sd.take(i_a)
        np.maximum(md, sd.take(i_b), out=md)
        n_cand = mw.shape[0]
        if stats is not None:
            stats.merge_candidates += n_cand
        # Rows are mask-major, node-major, split-minor, so segment ids
        # are non-decreasing along the candidate axis: per-segment sizes
        # aggregate per-row product counts, and survivors recover their
        # segment / row ids by binary search instead of a full-length
        # expansion (exact: counts stay far below 2**53).
        sizes = np.bincount(segrow, weights=cnts, minlength=seg_base).astype(
            np.int64
        )
        seg_cum = np.cumsum(sizes)
        starts = np.concatenate(([0], seg_cum[:-1]))
        if n_cand >= prune_min:
            keep0 = segment_strict_prune(starts, sizes, mw, md)
            sel = np.nonzero(keep0)[0]
            w_c = mw.take(sel)
            d_c = md.take(sel)
            seg_c = np.searchsorted(seg_cum, sel, side="right")
        else:
            sel = None
            w_c = mw
            d_c = md
            seg_c = np.repeat(segrow, cnts)
        sidx = segmented_pareto_filter(seg_c, w_c, d_c)
        full = sel.take(sidx) if sel is not None else sidx
        s_w = w_c.take(sidx)
        s_d = d_c.take(sidx)
        s_seg = seg_c.take(sidx)
        fe = _fe()
        elem_base = _append_elems(
            s_w,
            s_d,
            2,
            fe[i_a[full]],
            fe[i_b[full]],
            np.zeros(sidx.shape[0], dtype=np.int64),
        )
        src_eids = elem_base + np.arange(sidx.shape[0], dtype=np.int64)
        seg_counts = np.bincount(s_seg, minlength=seg_base)
        cum = np.concatenate(([0], np.cumsum(seg_counts)))
        block_ptr = cum[seg_mask_ptr]
        row_of = np.searchsorted(np.cumsum(cnts), full, side="right")
        return block_ptr, src_eids, v_all[row_of], s_w, s_d

    # --- singletons: one leaf element per sink, closed over all nodes.
    with span("dw.closure"):
        leaf_vis = np.array(
            [node_index[s_node] for s_node in sink_nodes], dtype=np.int64
        )
        leaf_base = _append_elems(
            np.zeros(num_sinks, dtype=np.float64),
            np.zeros(num_sinks, dtype=np.float64),
            0,
            node_flat[leaf_vis],
            np.zeros(num_sinks, dtype=np.int64),
            np.zeros(num_sinks, dtype=np.int64),
        )
        _closure_batch(
            [1 << si for si in range(num_sinks)],
            np.arange(num_sinks + 1, dtype=np.int64),
            leaf_base + np.arange(num_sinks, dtype=np.int64),
            leaf_vis,
            np.zeros(num_sinks, dtype=np.float64),
            np.zeros(num_sinks, dtype=np.float64),
        )
        if stats is not None:
            stats.subsets += num_sinks

    # --- larger subsets, one batched merge + closure pass per cardinality.
    masks_by_size: List[List[int]] = [[] for _ in range(num_sinks + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    all_vi = np.arange(num_nodes, dtype=np.int64)
    bbox_cache: Dict[Tuple[int, int, int, int], Any] = {}
    for size in range(2, num_sinks + 1):
        mask_rows: List[Tuple[int, List[int], Any]] = []
        for mask in masks_by_size[size]:
            bits = [i for i in range(num_sinks) if mask >> i & 1]
            if lemma3:
                ixs = [sink_nodes[i][0] for i in bits]
                iys = [sink_nodes[i][1] for i in bits]
                key = (min(ixs), max(ixs), min(iys), max(iys))
                bb = bbox_cache.get(key)
                if bb is None:
                    bxlo, bxhi, bylo, byhi = key
                    bb = np.nonzero(
                        (node_ix >= bxlo)
                        & (node_ix <= bxhi)
                        & (node_iy >= bylo)
                        & (node_iy <= byhi)
                    )[0]
                    bbox_cache[key] = bb
                if stats is not None:
                    stats.merge_skipped_lemma3 += num_nodes - bb.shape[0]
            else:
                bb = all_vi
            submasks = _splits_for_mask(mask, bits, size, boundary_rank, stats)
            mask_rows.append((mask, submasks, bb))
        with span("dw.merge"):
            block_ptr, m_eids, m_vis, m_w, m_d = _merge_batch(mask_rows)
        with span("dw.closure"):
            _closure_batch(
                [m for m, _, _ in mask_rows],
                block_ptr,
                m_eids,
                m_vis,
                m_w,
                m_d,
            )
        if stats is not None:
            stats.subsets += len(mask_rows)

    # --- materialize the final frontier's payload tuples (tiny: one walk
    # per surviving solution) so downstream consumers see the exact same
    # backpointer structure as the reference path.
    src_vi = node_index[source_node]
    cnt = int(CNT[full, src_vi])
    ptr = int(PTR[full, src_vi])
    fe = _fe()
    ew, ed, ekind, ea, eb, ec = _elems()
    memo: Dict[int, Any] = {}

    def _payload_of(eid: int) -> Any:
        stack = [eid]
        while stack:
            e = stack[-1]
            if e in memo:
                stack.pop()
                continue
            k = int(ekind[e])
            if k == 0:
                flat = int(ea[e])
                memo[e] = ("leaf", (flat // ny, flat % ny))
                stack.pop()
            elif k == 1:
                child = int(ea[e])
                if child in memo:
                    uf = int(eb[e])
                    vf = int(ec[e])
                    memo[e] = (
                        "ext",
                        (uf // ny, uf % ny),
                        (vf // ny, vf % ny),
                        memo[child],
                    )
                    stack.pop()
                else:
                    stack.append(child)
            else:
                left = int(ea[e])
                right = int(eb[e])
                if left in memo and right in memo:
                    memo[e] = ("merge", memo[left], memo[right])
                    stack.pop()
                else:
                    if left not in memo:
                        stack.append(left)
                    if right not in memo:
                        stack.append(right)
        return memo[eid]

    result = [
        (float(ew[e]), float(ed[e]), _payload_of(int(e)))
        for e in fe[ptr : ptr + cnt].tolist()
    ]
    if not with_trees:
        return clean_front(result)

    final: List[Solution] = []
    with span("dw.reconstruct"):
        for w, d, payload in result:
            tree = reconstruct_tree(net, grid, payload)
            tw, td = tree.objective()
            final.append((min(w, tw), min(d, td), tree))
    return clean_front(final)


def reconstruct_tree(net: Net, grid: HananGrid, payload: Any) -> RoutingTree:
    """Turn a DP backpointer into a concrete :class:`RoutingTree`."""
    node_edges: Set[Tuple[GridNode, GridNode]] = set()
    _collect_edges(payload, node_edges)
    pt = grid.point
    edges = [(pt(a), pt(b)) for a, b in node_edges]
    # The source may coincide with the subtree root without explicit edges
    # (e.g. degree-2 nets): make sure it is a node. Sorted, because set
    # iteration order varies run to run and the extra points decide the
    # tree's node indexing — ledger diffs and cached-tree equality tests
    # need reconstruction to be reproducible.
    referenced = {p for e in edges for p in e}
    extra = sorted(referenced)
    if not edges:
        # Single sink collapsed onto the source path: direct connection.
        edges = [(net.source, s) for s in net.sinks]
    return RoutingTree.from_edges(net, edges, extra_points=extra)


def pareto_frontier(net: Net, **kwargs: Any) -> List[Tuple[float, float]]:
    """Bare ``(w, d)`` frontier of ``net`` (convenience wrapper)."""
    return [(w, d) for w, d, _ in pareto_dw(net, with_trees=False, **kwargs)]


# ------------------------------------------------------ solver-state reuse
#
# The ECO path (repro.incremental). S[Q][v] depends only on: the grid's
# coordinate lines, the Lemma-2 surviving node set, the distance matrix
# (a function of the coordinate lines), the global Lemma-4 boundary flag,
# and the sink subset Q with its bit indexing — never on the source, which
# enters only at the final S[full][source_node] readout. Two solves that
# agree on all of those therefore produce bit-identical fronts for every
# shared subset, payload tie choices included, because the split
# enumeration order of _splits_for_mask is a pure function of the same
# inputs. That is the invariant DWState snapshots and pareto_dw_with_state
# re-validates before reusing anything.


#: A solved DP table: ``{mask: {node: sorted front}}`` with backpointer
#: payloads (never materialized trees).
DWFronts = Dict[int, Dict[GridNode, List[Solution]]]


def dw_signature(net: Net) -> Tuple[Any, ...]:
    """The grid identity two solves must share for DP-state reuse.

    Captures everything ``S[Q][v]`` depends on besides the sink subsets
    themselves: the Hanan coordinate lines (hence the distance matrix),
    the Lemma-2 surviving node set (corner pruning depends on the whole
    pin set), and whether Lemma 4 is globally active (``_boundary_order``
    is all-or-nothing, and it decides split enumeration — which decides
    payload survival on exact objective ties). Computed with the default
    pruning flags, matching what :func:`pareto_dw` runs with.
    """
    grid = HananGrid.of_net(net)
    sink_nodes = grid.pin_nodes()[1:]
    corner = set(grid.corner_nodes())
    nodes = tuple(v for v in grid.nodes() if v not in corner)
    boundary = _boundary_order(grid, sink_nodes) is not None
    return (tuple(grid.xs), tuple(grid.ys), nodes, boundary)


@dataclass
class DWState:
    """Retained Dreyfus–Wagner solver state of one :func:`pareto_dw` solve.

    ``fronts`` holds the complete solved table — every sink-subset mask's
    per-node sorted Pareto front, payloads as backpointers. A later solve
    whose :func:`dw_signature` equals ``signature`` may install any mask
    whose sinks are positionally unchanged (same index, same coordinates)
    and skip its computation; the skipped work would have reproduced the
    stored fronts bit-for-bit (see the module comment above for why).

    Fronts are stored in the tuple representation; :meth:`front_arrays`
    exposes the same data as contiguous ``(w[], d[], payloads)`` arrays —
    the :mod:`repro.core.frontier_array` layout — for array-engine
    consumers. Both views describe one immutable solve; nothing here is
    ever mutated after capture.
    """

    signature: Tuple[Any, ...]
    sink_keys: Tuple[Tuple[float, float], ...]
    fronts: DWFronts

    @property
    def num_masks(self) -> int:
        """How many sink-subset masks the snapshot holds."""
        return len(self.fronts)

    def front_arrays(
        self, mask: int, node: GridNode
    ) -> Tuple[Any, Any, List[Any]]:
        """One stored front as ``(w[], d[], payloads)`` arrays.

        The array-representation view of the tuple-stored front (exact
        float round trip — see :func:`repro.core.frontier_array.\
front_to_arrays`). Returns empty arrays for an unknown mask/node.
        """
        from .frontier_array import front_to_arrays

        front = self.fronts.get(mask, {}).get(node, [])
        return front_to_arrays(front)


@dataclass
class DWReuse:
    """Accounting of one state-reusing solve (what survived the edit)."""

    reused_masks: int = 0
    computed_masks: int = 0

    @property
    def total_masks(self) -> int:
        """All sink-subset masks of the solve (reused + recomputed)."""
        return self.reused_masks + self.computed_masks

    @property
    def reuse_rate(self) -> float:
        """Fraction of subset fronts served from the snapshot (0.0 cold)."""
        total = self.total_masks
        return self.reused_masks / total if total else 0.0


def _reusable_fronts(state: DWState, net: Net) -> Optional[DWFronts]:
    """The subset of ``state.fronts`` valid for ``net``, or None.

    Requires the grid signatures to match exactly, then keeps every mask
    whose sink bits are *positionally unchanged* — sink ``i`` of the new
    net sits at the same coordinates as sink ``i`` of the snapshot's net.
    Index-preserving edits (one sink moved in place, a sink appended or
    dropped from the end, the source moved) keep every untouched subset;
    edits that renumber sinks invalidate everything, because the bit
    indexing feeds the split enumeration order.
    """
    if state.signature != dw_signature(net):
        return None
    old_sinks = state.sink_keys
    new_sinks = tuple((p.x, p.y) for p in net.sinks)
    clean = 0
    for i in range(min(len(old_sinks), len(new_sinks))):
        if old_sinks[i] == new_sinks[i]:
            clean |= 1 << i
    reuse = {
        mask: fronts
        for mask, fronts in state.fronts.items()
        if mask and mask & ~clean == 0
    }
    return reuse or None


def pareto_dw_with_state(
    net: Net,
    *,
    state: Optional[DWState] = None,
    with_trees: bool = True,
    max_degree: int = DEFAULT_MAX_DEGREE,
    stats: Optional[DWStats] = None,
) -> Tuple[List[Solution], DWState, DWReuse]:
    """:func:`pareto_dw` with solver-state snapshot and reuse.

    Solves ``net`` exactly like ``pareto_dw(net)`` — default pruning
    flags, sorted-front kernels — but additionally returns a
    :class:`DWState` snapshot of the full DP table and, when ``state``
    from a previous solve is supplied, installs every still-valid subset
    front instead of recomputing it. The returned frontier is
    **bit-identical** to a cold ``pareto_dw(net)`` in either
    representation (``"tuple"`` or ``"array"`` — the two are themselves
    bit-identical by the ``docs/numerics.md`` contract); only the work
    done differs. Reuse accounting comes back as a :class:`DWReuse`.

    Raises :class:`~repro.exceptions.DegreeTooLargeError` when
    ``net.degree > max_degree`` (same contract as :func:`pareto_dw`).
    """
    n = net.degree
    if n > max_degree:
        raise DegreeTooLargeError(n, max_degree)
    flush = stats is None and _obs_enabled()
    if flush:
        stats = DWStats()
    reuse_fronts = _reusable_fronts(state, net) if state is not None else None
    capture: List[DWFronts] = []
    with span("dw.solve"):
        result = _pareto_dw_impl(
            net,
            lemma2=True,
            lemma3=True,
            lemma4=True,
            with_trees=with_trees,
            stats=stats,
            kernels=True,
            reuse_fronts=reuse_fronts,
            capture=capture,
        )
    if flush:
        assert stats is not None
        _flush_dw_stats(stats)
    fronts = capture[0]
    new_state = DWState(
        signature=dw_signature(net),
        sink_keys=tuple((p.x, p.y) for p in net.sinks),
        fronts=fronts,
    )
    reused = len(reuse_fronts) if reuse_fronts else 0
    reuse = DWReuse(
        reused_masks=reused, computed_masks=len(fronts) - reused
    )
    return result, new_state, reuse
