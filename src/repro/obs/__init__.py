"""``repro.obs`` — zero-dependency observability for the routing pipeline.

The measurement substrate every perf PR reports against: counters, gauges,
timers with percentiles, and nestable tracing spans, all aggregated in one
process-global registry with JSON / Prometheus exporters.

Off by default: until :func:`enable` is called every primitive is a no-op
(a flag check), so library users who never profile pay nothing. Typical
profiling session::

    from repro import obs

    obs.enable()
    router.route(net)                      # instrumented end to end
    print(obs.span_tree_report())          # where the time went
    obs.write_bench_json("route")          # BENCH_route.json for diffing
    obs.disable(); obs.reset()

Instrumented out of the box: ``PatLabor.route`` dispatch and local search,
the Pareto-DW and Pareto-KS engines, the translation cache, batch routing
(including per-worker merges from subprocesses), LUT generation, and the
evaluation runner. ``docs/observability.md`` catalogues every metric name
and the span hierarchy; ``patlabor route --profile`` prints the report
from the command line.
"""

from __future__ import annotations

from .export import dump_json, snapshot, to_prometheus, write_bench_json
from .registry import Registry, TimerStat, get_registry, _REGISTRY
from .report import metrics_summary, span_tree_report
from .spans import current_span_path, span


def enable() -> None:
    """Turn instrumentation on (process-global)."""
    _REGISTRY.enable()


def disable() -> None:
    """Turn instrumentation off; collected metrics are kept until reset."""
    _REGISTRY.disable()


def enabled() -> bool:
    """Whether the global registry is currently recording."""
    return _REGISTRY.enabled


def reset() -> None:
    """Drop every collected metric (does not change enabled/disabled)."""
    _REGISTRY.reset()


def counter_add(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    _REGISTRY.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    _REGISTRY.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if larger (no-op while disabled)."""
    _REGISTRY.gauge_max(name, value)


def timer_observe(name: str, seconds: float) -> None:
    """Record one duration sample for timer ``name`` (no-op while disabled)."""
    _REGISTRY.timer_observe(name, seconds)


__all__ = [
    "Registry",
    "TimerStat",
    "counter_add",
    "current_span_path",
    "disable",
    "dump_json",
    "enable",
    "enabled",
    "gauge_max",
    "gauge_set",
    "get_registry",
    "metrics_summary",
    "reset",
    "snapshot",
    "span",
    "span_tree_report",
    "timer_observe",
    "to_prometheus",
    "write_bench_json",
]
