"""Shared fixtures: RNGs, small lookup tables, benchmark nets.

Expensive artefacts (lookup tables) are session-scoped so the whole suite
builds them once.
"""

from __future__ import annotations

import random

import pytest

from repro.eval.benchmarks import Iccad15LikeSuite
from repro.geometry.net import Net, random_net
from repro.lut.table import LookupTable


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(scope="session")
def lut45() -> LookupTable:
    """Full lookup tables for degrees 4 and 5 (builds in ~2s)."""
    return LookupTable.build(degrees=(4, 5))


@pytest.fixture(scope="session")
def suite() -> Iccad15LikeSuite:
    return Iccad15LikeSuite(seed=42)


@pytest.fixture
def square_net() -> Net:
    """Source at origin, three sinks on a unit-ish square."""
    return Net.from_points((0, 0), [(10, 0), (10, 10), (0, 10)], name="square")


@pytest.fixture
def line_net() -> Net:
    """Collinear pins — a degenerate Hanan grid in one axis."""
    return Net.from_points((0, 0), [(5, 0), (12, 0), (20, 0)], name="line")


def fronts_equal(a, b, rel_tol=1e-6):
    """Compare two (w, d) fronts with relative tolerance."""
    if len(a) != len(b):
        return False
    pairs_a = [(s[0], s[1]) for s in a]
    pairs_b = [(s[0], s[1]) for s in b]
    scale = max(
        (max(abs(w), abs(d)) for w, d in pairs_a + pairs_b), default=1.0
    )
    tol = max(scale * rel_tol, 1e-9)
    return all(
        abs(wa - wb) <= tol and abs(da - db) <= tol
        for (wa, da), (wb, db) in zip(pairs_a, pairs_b)
    )


@pytest.fixture
def assert_fronts_equal():
    def check(a, b, rel_tol=1e-6):
        assert fronts_equal(a, b, rel_tol), (
            f"fronts differ:\n  a={[(s[0], s[1]) for s in a]}"
            f"\n  b={[(s[0], s[1]) for s in b]}"
        )

    return check
