"""``repro.obs`` — zero-dependency observability for the routing pipeline.

The measurement substrate every perf PR reports against, in four layers:

* **registry** — counters, gauges, timers with percentiles, and nestable
  tracing spans, aggregated process-globally with JSON / Prometheus
  exporters (:mod:`repro.obs.registry`, :mod:`repro.obs.export`);
* **events** — a structured JSONL event log: one record per routed net /
  DW solve / batch with net id, degree, dispatch tier, frontier size,
  wall time, and peak RSS (:mod:`repro.obs.events`);
* **trace** — Chrome-trace / Perfetto export of the span tree, including
  cross-process spans merged back from batch workers
  (:mod:`repro.obs.trace`);
* **ledger** — an append-only, concurrent-writer-safe run history plus
  the direction-aware diff engine behind ``repro obs diff`` and the CI
  perf gate ``repro obs check`` (:mod:`repro.obs.ledger`);
* **live** — service telemetry for the serve daemon: mergeable fixed-
  bucket latency histograms, request-scoped ``request_id`` propagation
  into pool workers, and a Prometheus exposition parser/validator
  backing the daemon's ``/metrics`` endpoint and ``repro top``
  (:mod:`repro.obs.live`, :mod:`repro.obs.top`).

Everything is off by default: until the matching ``enable`` is called,
every primitive is a no-op behind a flag check, so library users who
never profile pay nothing. Typical profiling session::

    from repro import obs

    obs.enable()                           # metrics + spans
    obs.events_enable()                    # structured event log
    obs.trace_enable()                     # Chrome-trace capture
    router.route(net)                      # instrumented end to end
    print(obs.span_tree_report())          # where the time went
    obs.write_bench_json("route")          # BENCH_route.json for diffing
    obs.write_chrome_trace("trace.json")   # load in ui.perfetto.dev
    obs.flush_events("events.jsonl")       # one JSON object per event
    obs.disable(); obs.reset()

Instrumented out of the box: ``PatLabor.route`` dispatch and local search,
the Pareto-DW and Pareto-KS engines, the translation cache, batch routing
(including per-worker merges from subprocesses), LUT generation, and the
evaluation runner. ``docs/observability.md`` catalogues every metric name,
event kind, and the span hierarchy; ``patlabor route --profile`` prints
the report from the command line and ``patlabor obs diff/check`` compares
ledger runs.
"""

from __future__ import annotations

from .events import (
    EventLog,
    drain_events,
    emit_event,
    events_disable,
    events_enable,
    events_enabled,
    flush_events,
    get_event_log,
    peak_rss_kb,
    read_events,
)
from .export import (
    dump_json,
    help_original_name,
    prom_name,
    snapshot,
    to_prometheus,
    write_bench_json,
)
from .ledger import (
    MetricDelta,
    append_record,
    diff_metrics,
    diff_records,
    flatten_snapshot,
    make_record,
    read_ledger,
    regressions,
    render_diff,
    resolve_record,
)
from .live import (
    DEFAULT_BOUNDS,
    Exposition,
    LatencyHistogram,
    current_net_id,
    current_request_id,
    log_bucket_bounds,
    merge_histograms,
    parse_prometheus_text,
    percentile_from_buckets,
    request_context,
    validate_exposition,
)
from .registry import Registry, TimerStat, get_registry, _REGISTRY
from .report import metrics_summary, span_tree_report
from .spans import current_span_path, span
from .trace import (
    TraceCollector,
    chrome_trace,
    get_trace_collector,
    trace_disable,
    trace_enable,
    trace_enabled,
    validate_chrome_trace,
    write_chrome_trace,
)


def enable() -> None:
    """Turn instrumentation on (process-global)."""
    _REGISTRY.enable()


def disable() -> None:
    """Turn instrumentation off; collected metrics are kept until reset."""
    _REGISTRY.disable()


def enabled() -> bool:
    """Whether the global registry is currently recording."""
    return _REGISTRY.enabled


def reset() -> None:
    """Drop every collected metric, trace event, and buffered event.

    Does not change any enabled/disabled flag.
    """
    _REGISTRY.reset()
    get_trace_collector().clear()
    get_event_log().clear()


def counter_add(name: str, value: float = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled)."""
    _REGISTRY.counter_add(name, value)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value`` (no-op while disabled)."""
    _REGISTRY.gauge_set(name, value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to ``value`` if larger (no-op while disabled)."""
    _REGISTRY.gauge_max(name, value)


def timer_observe(name: str, seconds: float) -> None:
    """Record one duration sample for timer ``name`` (no-op while disabled)."""
    _REGISTRY.timer_observe(name, seconds)


__all__ = [
    "DEFAULT_BOUNDS",
    "EventLog",
    "Exposition",
    "LatencyHistogram",
    "MetricDelta",
    "Registry",
    "TimerStat",
    "TraceCollector",
    "append_record",
    "chrome_trace",
    "counter_add",
    "current_net_id",
    "current_request_id",
    "current_span_path",
    "diff_metrics",
    "diff_records",
    "disable",
    "drain_events",
    "dump_json",
    "emit_event",
    "enable",
    "enabled",
    "events_disable",
    "events_enable",
    "events_enabled",
    "flatten_snapshot",
    "flush_events",
    "gauge_max",
    "gauge_set",
    "get_event_log",
    "get_registry",
    "get_trace_collector",
    "help_original_name",
    "log_bucket_bounds",
    "make_record",
    "merge_histograms",
    "metrics_summary",
    "parse_prometheus_text",
    "peak_rss_kb",
    "percentile_from_buckets",
    "prom_name",
    "read_events",
    "read_ledger",
    "regressions",
    "render_diff",
    "request_context",
    "reset",
    "resolve_record",
    "snapshot",
    "span",
    "span_tree_report",
    "timer_observe",
    "to_prometheus",
    "trace_disable",
    "trace_enable",
    "trace_enabled",
    "validate_chrome_trace",
    "validate_exposition",
    "write_bench_json",
    "write_chrome_trace",
]
