"""Extension experiment — design-level routing with Pareto candidate sets.

The paper's introduction motivates Pareto sets with DGR-style global
routing: per-net candidate sets improve router outcomes. This benchmark
runs the sequential congestion-negotiated flow over one synthetic design
three ways and compares:

* ``pareto``   — choose per net from PatLabor's Pareto set,
* ``rsmt``     — always minimum wirelength (timing-blind),
* ``shortest`` — always the arborescence (wire-blind).

Required shape: the Pareto flow meets every delay budget (like
``shortest``) at total wirelength no worse than ``shortest`` (it can
trade), and the timing-blind flow misses budgets.

Timed kernel: one full Pareto flow over the workload.
"""

import random

from repro.eval.design_flow import DesignFlowConfig, route_design
from repro.eval.flow_report import render_flow_summary
from repro.geometry.net import random_net

from conftest import write_artifact

NUM_NETS = 14


def _workload():
    rng = random.Random(77)
    return [
        random_net(rng.choice((4, 5, 6, 7)), rng=rng, span=1000.0, name=f"fn{i}")
        for i in range(NUM_NETS)
    ]


def test_ext_design_flow(benchmark):
    nets = _workload()
    config = DesignFlowConfig(delay_slack=0.05, capacity=150.0)
    results = {
        strategy: route_design(nets, strategy=strategy, config=config)
        for strategy in ("pareto", "rsmt", "shortest")
    }
    write_artifact("ext_design_flow.txt", render_flow_summary(results))

    pareto = results["pareto"]
    rsmt_flow = results["rsmt"]
    fast = results["shortest"]

    # Pareto selection meets every budget...
    assert pareto.budget_misses == 0
    # ...the timing-blind flow does not (tight 5% slack)...
    assert rsmt_flow.budget_misses > 0
    # ...and Pareto never spends more wire than always-fast.
    assert pareto.total_wirelength <= fast.total_wirelength + 1e-6

    benchmark.pedantic(
        lambda: route_design(nets, strategy="pareto", config=config),
        rounds=1,
        iterations=1,
    )
