"""Exception hierarchy for the PatLabor reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class InvalidNetError(ReproError):
    """A net is malformed (too few pins, duplicate source, NaN coordinates...)."""


class InvalidTreeError(ReproError):
    """A routing tree violates a structural invariant (cycle, orphan, bad root)."""


class LookupTableError(ReproError):
    """A lookup-table operation failed (missing degree, corrupt file, bad key)."""


class DegreeTooLargeError(LookupTableError):
    """An exact method was asked to handle a net above its supported degree."""

    def __init__(self, degree: int, limit: int) -> None:
        super().__init__(
            f"net degree {degree} exceeds the supported limit {limit} "
            f"for this exact method; use PatLabor's local search instead"
        )
        self.degree = degree
        self.limit = limit


class SerializationError(ReproError):
    """Reading or writing an on-disk artifact (net file, LUT, results) failed."""


class PolicyError(ReproError):
    """Policy construction or selection failed.

    Raised both by pin-selection policies (:mod:`repro.core.policy`) and
    by frontier point policies (:func:`repro.engine.resolve_point_policy`).
    """


class ProtocolVersionError(ReproError):
    """A serve request needs a newer wire-protocol version than it declared.

    Raised by the daemon when a request uses a capability (e.g. the
    ``eco`` op) introduced after the client's declared ``"v"`` field —
    and re-raised typed on the client side from the response's
    ``error_type``, so old clients fail with a clear upgrade message
    instead of a ``KeyError`` deep in response handling.
    """
