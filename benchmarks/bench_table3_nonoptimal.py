"""Table III — ratio of non-optimal nets for n <= 9.

Paper: PatLabor 0.0% everywhere; YSD 0→49.5% and SALT 0→45.4% rising
with degree. Scaled to the shared small-net pool (see conftest). The
exact per-degree percentages differ on synthetic nets; the required shape
is: PatLabor exactly 0%, baselines non-zero and growing with degree.

Timed kernel: PatLabor on one degree-7 net (LUT-free exact path).
"""

from repro.core.patlabor import PatLabor
from repro.eval.metrics import table3
from repro.eval.reporting import render_table3

from conftest import write_artifact


def test_table3_nonoptimal_ratio(benchmark, small_comparisons, small_nets):
    rows = table3(small_comparisons)
    write_artifact("table3_nonoptimal.txt", render_table3(rows))

    for r in rows:
        assert r.ratios["PatLabor"] == 0.0, (
            f"PatLabor non-optimal at degree {r.degree}"
        )
    # Baselines: non-optimality appears and trends upward with degree.
    top = [r for r in rows if r.degree >= 7]
    low = [r for r in rows if r.degree <= 5]
    for method in ("SALT", "YSD"):
        avg_top = sum(r.ratios[method] for r in top) / len(top)
        avg_low = sum(r.ratios[method] for r in low) / len(low)
        assert avg_top >= avg_low
        assert avg_top > 0.0

    net7 = next(n for n in small_nets if n.degree == 7)
    router = PatLabor()
    benchmark(lambda: router.route(net7))
