"""Structured event log: one JSON object per routing-pipeline event.

Where the registry (:mod:`repro.obs.registry`) aggregates, the event log
records: each call to :func:`emit` appends one timestamped dict to an
in-memory buffer, and :func:`flush` writes the buffer as JSON lines. The
emitters shipped with the pipeline are per-*operation*, not per-inner-loop
— one ``net_routed`` event per :meth:`PatLabor.route`, one ``dw_solve``
per exact frontier, one ``batch_done`` per :func:`route_batch` — so an
enabled log costs a dict build per net, and a disabled one costs a single
flag check (the same contract the registry honours).

Event schema (all kinds)::

    {"ts": <unix seconds>, "pid": <os pid>, "kind": "<event kind>", ...}

Kind-specific fields are documented per emitter in
``docs/observability.md``; the load-bearing one is ``net_routed``::

    {"kind": "net_routed", "net": "n17", "degree": 15,
     "tier": "local_search", "front_size": 9,
     "wall_s": 0.4183, "peak_rss_kb": 54112}

Worker processes buffer their own events and ship them back to the parent
inside the batch stats payload (:func:`repro.core.batch.route_batch`
merges them via :meth:`EventLog.extend`), so a multi-process run still
flushes to one chronologically ordered file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Union

try:  # POSIX only; on other platforms peak RSS reads as 0.
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> float:
    """This process's peak resident set size in KiB (0.0 if unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class EventLog:
    """Thread-safe buffered event sink; disabled (no-op) until enabled."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._buffer: List[Dict[str, object]] = []

    # ------------------------------------------------------------ lifecycle

    def enable(self) -> None:
        """Start buffering events (process-local)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop buffering; already-collected events are kept until drained."""
        self.enabled = False

    def clear(self) -> None:
        """Drop every buffered event."""
        with self._lock:
            self._buffer.clear()

    # ------------------------------------------------------------ recording

    def emit(self, kind: str, **fields: object) -> None:
        """Append one event (no-op while disabled).

        ``ts`` (unix seconds) and ``pid`` are stamped automatically;
        ``fields`` must be JSON-serialisable.
        """
        if not self.enabled:
            return
        event: Dict[str, object] = {"ts": time.time(), "pid": os.getpid(), "kind": kind}
        event.update(fields)
        with self._lock:
            self._buffer.append(event)

    def extend(self, events: List[Dict[str, object]]) -> None:
        """Fold another process's drained events into this buffer."""
        if not events:
            return
        with self._lock:
            self._buffer.extend(events)

    # ------------------------------------------------------------ consuming

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the buffered events (chronological order)."""
        with self._lock:
            return sorted(self._buffer, key=lambda e: e.get("ts", 0.0))

    def drain(self) -> List[Dict[str, object]]:
        """Return the buffered events and clear the buffer."""
        with self._lock:
            out = sorted(self._buffer, key=lambda e: e.get("ts", 0.0))
            self._buffer.clear()
        return out

    def flush(self, path: Union[str, Path]) -> Path:
        """Append the buffer to ``path`` as JSON lines and clear it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.drain()
        with open(path, "a", encoding="utf-8") as fp:
            for event in events:
                fp.write(json.dumps(event, sort_keys=True) + "\n")
        return path


#: The process-global event log every instrumented module emits into.
_EVENTS = EventLog()


def get_event_log() -> EventLog:
    """The process-global :class:`EventLog` singleton."""
    return _EVENTS


def events_enable() -> None:
    """Turn structured event logging on (process-global)."""
    _EVENTS.enable()


def events_disable() -> None:
    """Turn structured event logging off; buffered events are kept."""
    _EVENTS.disable()


def events_enabled() -> bool:
    """Whether the global event log is currently recording."""
    return _EVENTS.enabled


def emit_event(kind: str, **fields: object) -> None:
    """Emit one structured event into the global log (no-op while disabled)."""
    _EVENTS.emit(kind, **fields)


def drain_events() -> List[Dict[str, object]]:
    """Return and clear the global log's buffered events."""
    return _EVENTS.drain()


def flush_events(path: Union[str, Path]) -> Path:
    """Append the global log's buffer to ``path`` as JSONL and clear it."""
    return _EVENTS.flush(path)


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read every event from a JSONL file written by :func:`flush_events`."""
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
