"""Cross-cutting invariant checks for routing trees.

These helpers are used both by the test suite and (in cheap form) by the
algorithms themselves as internal sanity checks. Each check raises
:class:`~repro.exceptions.InvalidTreeError` with a precise message, so a
failing algorithm points directly at the violated invariant.
"""

from __future__ import annotations

from typing import Iterable

from ..exceptions import InvalidTreeError
from ..geometry.hanan import HananGrid
from ..geometry.point import l1
from .tree import RoutingTree


def check_spans_net(tree: RoutingTree) -> None:
    """Structural validity + every pin present (delegates to the tree)."""
    tree.validate()


def check_on_hanan_grid(tree: RoutingTree) -> None:
    """Every node (Steiner included) lies on the net's Hanan grid.

    All exact algorithms and the lookup tables guarantee this; heuristics
    in this library are written to preserve it too (their Steiner points
    always combine one pin x-coordinate with one pin y-coordinate).
    """
    grid = HananGrid.of_net(tree.net)
    xs, ys = set(grid.xs), set(grid.ys)
    for i, p in enumerate(tree.points):
        if p.x not in xs or p.y not in ys:
            raise InvalidTreeError(
                f"node {i} at {p} is off the Hanan grid of net {tree.net.name!r}"
            )


def check_objective_bounds(tree: RoutingTree) -> None:
    """Objectives respect their universal lower bounds.

    * delay >= max_i ||r - p_i||  (paths cannot beat the L1 distance),
    * wirelength >= half-perimeter of the pin bounding box,
    * wirelength <= star wirelength is NOT required (trees may exceed the
      star only if they were built badly) — but delay <= wirelength must
      hold since every path is a subset of the wiring.
    """
    w, d = tree.objective()
    lb_d = tree.net.delay_lower_bound()
    if d < lb_d - 1e-9:
        raise InvalidTreeError(
            f"delay {d} beats the L1 lower bound {lb_d} — impossible"
        )
    lb_w = tree.net.bbox().half_perimeter
    if w < lb_w - 1e-9:
        raise InvalidTreeError(
            f"wirelength {w} beats the bounding-box bound {lb_w} — impossible"
        )
    if d > w + 1e-9:
        raise InvalidTreeError(
            f"delay {d} exceeds wirelength {w} — a path left the tree"
        )


def check_sink_paths_monotone_bound(tree: RoutingTree) -> None:
    """Each sink's path length is at least its L1 distance to the source."""
    src = tree.net.source
    for sink, path_len in zip(tree.net.sinks, tree.sink_delays()):
        lb = l1(src, sink)
        if path_len < lb - 1e-9:
            raise InvalidTreeError(
                f"sink {sink}: path length {path_len} < L1 bound {lb}"
            )


def check_tree(tree: RoutingTree, hanan: bool = False) -> None:
    """Run the full invariant battery on one tree."""
    check_spans_net(tree)
    check_objective_bounds(tree)
    check_sink_paths_monotone_bound(tree)
    if hanan:
        check_on_hanan_grid(tree)


def check_all(trees: Iterable[RoutingTree], hanan: bool = False) -> int:
    """Check a collection of trees; returns how many were checked."""
    count = 0
    for t in trees:
        check_tree(t, hanan=hanan)
        count += 1
    return count
