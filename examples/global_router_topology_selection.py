#!/usr/bin/env python3
"""Candidate topology selection for a global router.

Run:  python examples/global_router_topology_selection.py

The paper motivates Pareto optimisation with recent global-routing work
(DGR) that selects per-net topologies from *candidate sets*. This example
plays that integration end to end on a toy chip:

1. generate a placement-like workload (mixed degrees),
2. compute every net's Pareto set once with PatLabor,
3. let a toy timing engine pick, per net, the cheapest topology meeting
   the net's delay budget — the selection step a global router performs,
4. compare total wirelength against two single-solution flows
   (always-RSMT and always-shortest-path).

The Pareto flow meets every budget at strictly less wire than the
always-fast flow — the benefit of having the whole frontier available.
"""

import random

from repro import PatLabor
from repro.baselines.rsma import rsma
from repro.baselines.rsmt import rsmt
from repro.eval.benchmarks import Iccad15LikeSuite


def main() -> None:
    suite = Iccad15LikeSuite(seed=7)
    nets = []
    for degree, count in ((5, 6), (7, 6), (9, 4), (14, 3)):
        nets.extend(suite.small_nets(degrees=(degree,), per_degree=count).get(degree, [])
                    if degree <= 9 else [])
    nets.extend(suite.large_nets(count=3, min_degree=12, max_degree=18))
    rng = random.Random(3)

    router = PatLabor()
    total = {"pareto": 0.0, "rsmt": 0.0, "fast": 0.0}
    met = {"pareto": 0, "rsmt": 0, "fast": 0}

    print(f"{'net':<22}{'budget':>9}{'pareto w':>10}{'rsmt w':>9}{'fast w':>9}")
    for net in nets:
        frontier = router.route(net)
        # A delay budget somewhere between best and worst achievable.
        d_best = min(d for _, d, _ in frontier)
        d_worst = max(d for _, d, _ in frontier)
        budget = d_best + rng.uniform(0.1, 0.9) * max(d_worst - d_best, 1.0)

        # Pareto flow: cheapest solution meeting the budget.
        feasible = [(w, d) for w, d, _ in frontier if d <= budget + 1e-9]
        w_pareto = min(w for w, _ in feasible) if feasible else None

        t_rsmt = rsmt(net)
        t_fast = rsma(net)

        for flow, w, d in (
            ("pareto", w_pareto, budget if feasible else float("inf")),
            ("rsmt", t_rsmt.wirelength(), t_rsmt.delay()),
            ("fast", t_fast.wirelength(), t_fast.delay()),
        ):
            if w is not None and d <= budget + 1e-9:
                met[flow] += 1
                total[flow] += w
            else:
                # Budget miss: fall back to the fastest tree (penalty wire).
                total[flow] += t_fast.wirelength()

        print(
            f"{net.name:<22}{budget:>9.0f}"
            f"{w_pareto if w_pareto else float('nan'):>10.0f}"
            f"{t_rsmt.wirelength():>9.0f}{t_fast.wirelength():>9.0f}"
        )

    print("\nflow summary (lower wirelength at 100% budgets met is better):")
    for flow in ("pareto", "rsmt", "fast"):
        print(
            f"  {flow:<8} total wirelength = {total[flow]:10.0f}   "
            f"budgets met directly = {met[flow]}/{len(nets)}"
        )
    assert met["pareto"] == len(nets), "Pareto flow must meet every budget"
    assert total["pareto"] <= total["fast"] + 1e-6, (
        "Pareto selection should never use more wire than always-fast"
    )
    print("\nPareto candidate selection meets every budget with the least wire ✔")


if __name__ == "__main__":
    main()
