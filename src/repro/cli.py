"""Command-line interface: ``patlabor <command>``.

Commands
--------
route       Route nets from a ``.nets`` file (or a generated random net)
            with PatLabor and print each net's Pareto set.
gen-lut     Generate lookup tables for given degrees and save to JSON.
gen-nets    Generate a synthetic ICCAD-15-like workload into a ``.nets`` file.
compare     Run PatLabor vs SALT vs YSD on a net file and print
            Table III / Table IV style summaries.
draw        Render a net's Pareto-optimal trees to SVG files.

``route``, ``gen-lut``, and ``compare`` accept ``--profile`` (print a
span-tree report and metric summary after the command, via
:mod:`repro.obs`) and ``--profile-json PATH`` (also dump the metrics
snapshot as JSON — e.g. ``BENCH_route.json``).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .core.patlabor import PatLabor, PatLaborConfig
from .geometry.net import Net, random_net


def _cmd_route(args: argparse.Namespace) -> int:
    from .io.nets_format import load_nets
    from .viz.ascii_art import front_summary

    if args.nets:
        nets = load_nets(args.nets)
    else:
        rng = random.Random(args.seed)
        nets = [random_net(args.degree, rng=rng, name="random")]
    lut = None
    if args.lut:
        from .io.lut_io import load_lut

        lut = load_lut(args.lut)
    router = PatLabor(lut=lut, config=PatLaborConfig(lam=args.lam))
    for net in nets:
        front = router.route(net)
        print(f"{net.name or 'net'} (degree {net.degree}): "
              f"{len(front)} Pareto solution(s)")
        print(front_summary(front))
    return 0


def _cmd_gen_lut(args: argparse.Namespace) -> int:
    from .io.lut_io import save_lut
    from .lut.table import LookupTable

    degrees = [int(d) for d in args.degrees.split(",")]
    if args.jobs and args.jobs > 1:
        from .lut.generator import generate_degree_parallel

        table = LookupTable()
        table.prune_mode = args.prune
        for n in degrees:
            import time as _time

            t0 = _time.perf_counter()
            raw = generate_degree_parallel(
                n, jobs=args.jobs, prune_mode=args.prune, limit=args.limit
            )
            table._ingest(n, raw)
            table.stats[n].build_seconds = _time.perf_counter() - t0
            table.stats[n].sampled = args.limit is not None
    else:
        table = LookupTable.build(
            degrees=degrees,
            prune_mode=args.prune,
            limit_per_degree=args.limit,
        )
    save_lut(table, args.output)
    for n, st in sorted(table.stats.items()):
        print(
            f"degree {n}: #Index={st.num_index} "
            f"avg #Topo={st.avg_topologies:.2f} "
            f"({st.build_seconds:.1f}s{', sampled' if st.sampled else ''})"
        )
    print(f"saved to {args.output}")
    return 0


def _cmd_gen_nets(args: argparse.Namespace) -> int:
    from .eval.benchmarks import Iccad15LikeSuite
    from .io.nets_format import save_nets

    suite = Iccad15LikeSuite(seed=args.seed)
    nets: List[Net] = []
    if args.large:
        nets.extend(suite.large_nets(count=args.count))
    else:
        by_degree = suite.small_nets(per_degree=max(1, args.count // 6))
        for group in by_degree.values():
            nets.extend(group)
        nets = nets[: args.count]
    written = save_nets(nets, args.output)
    print(f"wrote {written} nets to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .eval.metrics import table3, table4
    from .eval.reporting import render_table3, render_table4
    from .eval.runner import compare_on_nets
    from .io.nets_format import load_nets

    nets = load_nets(args.nets)
    small = [n for n in nets if n.degree <= args.exact_limit]
    if not small:
        print("no nets small enough for exact comparison", file=sys.stderr)
        return 1
    rows = compare_on_nets(small)
    print(render_table3(table3(rows)))
    print()
    print(render_table4(table4(rows)))
    return 0


def _cmd_draw(args: argparse.Namespace) -> int:
    from .io.nets_format import load_nets
    from .viz.svg import pareto_curve_svg, save_svg, tree_svg

    nets = load_nets(args.nets)
    router = PatLabor()
    net = nets[args.index]
    front = router.route(net)
    save_svg(
        pareto_curve_svg([("PatLabor", front)], title=f"{net.name} Pareto"),
        f"{args.prefix}_curve.svg",
    )
    for i, (w, d, tree) in enumerate(front):
        save_svg(
            tree_svg(tree, title=f"w={w:.0f} d={d:.0f}"),
            f"{args.prefix}_tree{i}.svg",
        )
    print(f"wrote {len(front) + 1} SVG file(s) with prefix {args.prefix!r}")
    return 0


def _add_profile_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--profile",
        action="store_true",
        help="print a span-tree report and metric summary after the command",
    )
    p.add_argument(
        "--profile-json",
        metavar="PATH",
        help="write the metrics snapshot as JSON to PATH (implies --profile)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="patlabor",
        description="Pareto optimization of timing-driven routing trees",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("route", help="route nets and print Pareto sets")
    p.add_argument("--nets", help=".nets input file")
    p.add_argument("--degree", type=int, default=12, help="random net degree")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--lam", type=int, default=9, help="PatLabor lambda")
    p.add_argument("--lut", help="lookup-table JSON file")
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("gen-lut", help="generate lookup tables")
    p.add_argument("--degrees", default="4,5", help="comma-separated degrees")
    p.add_argument("--prune", default="componentwise", choices=["componentwise", "lp"])
    p.add_argument("--limit", type=int, default=None, help="patterns per degree")
    p.add_argument("--jobs", type=int, default=1, help="parallel workers")
    p.add_argument("--output", "-o", default="patlabor_lut.json")
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_gen_lut)

    p = sub.add_parser("gen-nets", help="generate a synthetic workload")
    p.add_argument("--count", type=int, default=60)
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--large", action="store_true", help="degree 10-50 nets")
    p.add_argument("--output", "-o", default="workload.nets")
    p.set_defaults(func=_cmd_gen_nets)

    p = sub.add_parser("compare", help="compare PatLabor / SALT / YSD")
    p.add_argument("nets", help=".nets input file")
    p.add_argument("--exact-limit", type=int, default=9)
    _add_profile_flags(p)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("draw", help="render Pareto trees to SVG")
    p.add_argument("nets", help=".nets input file")
    p.add_argument("--index", type=int, default=0, help="net index in the file")
    p.add_argument("--prefix", default="patlabor")
    p.set_defaults(func=_cmd_draw)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``patlabor`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = getattr(args, "profile", False) or getattr(
        args, "profile_json", None
    )
    if not profiling:
        return args.func(args)

    from . import obs

    obs.enable()
    try:
        rc = args.func(args)
    finally:
        obs.disable()
    print()
    print(obs.span_tree_report())
    summary = obs.metrics_summary()
    if summary:
        print()
        print(summary)
    if getattr(args, "profile_json", None):
        path = obs.dump_json(args.profile_json)
        print(f"\n[metrics written to {path}]")
    return rc


if __name__ == "__main__":
    sys.exit(main())
