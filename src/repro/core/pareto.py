"""Pareto set algebra for bicriterion minimisation.

This module implements the primitives of the paper's Section IV:

* Pareto dominance ``s <= s'`` for objective pairs ``(w, d)``,
* ``Pareto(S)`` — filtering a set down to its non-dominated members in
  ``O(k log k)`` (sort + sweep, the planar maximal-points method),
* ``S + x``    — shifting both objectives (root extension by an edge),
* ``S ⊕ S'``   — the merge product ``(w1+w2, max(d1, d2))``.

Solutions are ``(w, d, payload)`` triples; payloads carry trees or DP
backpointers and never influence dominance. Quality metrics used by the
evaluation harness (hypervolume, multiplicative epsilon indicator,
frontier coverage) live here too.

The functions here are the *generic* operators: they accept arbitrary
solution sets and re-derive sortedness when needed. The hot DP loops use
the sorted-front kernels of :mod:`repro.core.frontier` instead, which
keep sortedness as an invariant (see ``docs/performance.md``); the
operators here route through :func:`~repro.core.frontier.pareto_filter_sorted`
where that fast path applies without changing results.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .frontier import pareto_filter_sorted

Objective = Tuple[float, float]
Solution = Tuple[float, float, Any]

#: Tolerance for floating-point objective comparisons in *metrics* (the
#: core filtering uses exact comparisons; ties are true ties).
DEFAULT_TOL = 1e-9


def dominates(a: Objective, b: Objective) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (``a <= b`` and ``a != b``)."""
    return a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])


def weakly_dominates(a: Objective, b: Objective, tol: float = 0.0) -> bool:
    """True when ``a`` is at least as good as ``b`` in both objectives."""
    return a[0] <= b[0] + tol and a[1] <= b[1] + tol


def pareto_filter(solutions: Iterable[Solution]) -> List[Solution]:
    """Non-dominated subset, sorted by ascending ``w`` (descending ``d``).

    Among solutions with identical ``(w, d)`` the first encountered is
    kept. This is the paper's ``Pareto(S)`` operator.
    """
    items = list(solutions)
    if len(items) <= 1:
        return items
    # Stable sort: ascending w, then ascending d; the sweep keeps the first
    # strictly-improving d, which also dedupes equal objective pairs.
    items.sort(key=lambda s: (s[0], s[1]))
    out: List[Solution] = []
    best_d = float("inf")
    for s in items:
        if s[1] < best_d:
            out.append(s)
            best_d = s[1]
    return out


def clean_front(
    solutions: Iterable[Solution], rel_tol: float = 1e-9
) -> List[Solution]:
    """Tolerance-aware Pareto filter for *final* results.

    Floating-point summation order makes mathematically equal objectives
    differ by ~1e-13 relative, which would inflate frontier counts with
    phantom points. This sweep keeps a solution only when its delay
    improves on the previous kept one by more than ``rel_tol`` of the
    objective magnitude. Use only on end results — inside the DP the exact
    filter is the correct one.
    """
    front = pareto_filter_sorted(solutions)
    if len(front) <= 1:
        return front
    scale = max(max(abs(s[0]), abs(s[1])) for s in front)
    tol = scale * rel_tol
    out: List[Solution] = [front[0]]
    for s in front[1:]:
        if s[1] >= out[-1][1] - tol:
            continue  # no real delay improvement over the previous point
        # Drop earlier points whose wirelength is tolerance-equal to this
        # one: they are the same solution seen through summation noise,
        # and this one has the (strictly) better delay.
        while out and s[0] <= out[-1][0] + tol:
            out.pop()
        out.append(s)
    return out


def shift(solutions: Sequence[Solution], x: float,
          rewrap: Optional[Callable[[Solution], Any]] = None) -> List[Solution]:
    """The paper's ``S + x``: add ``x`` to both objectives of every solution.

    ``rewrap`` optionally rebuilds the payload (e.g. to record the extension
    edge in a DP backpointer); it receives the original solution.
    """
    if rewrap is None:
        return [(w + x, d + x, p) for (w, d, p) in solutions]
    return [(w + x, d + x, rewrap((w, d, p))) for (w, d, p) in solutions]


def cross(
    s1: Sequence[Solution],
    s2: Sequence[Solution],
    combine: Optional[Callable[[Any, Any], Any]] = None,
) -> List[Solution]:
    """The paper's ``S ⊕ S'``: all pairwise merges ``(w1+w2, max(d1,d2))``.

    The result is Pareto-filtered before being returned, since the product
    of two fronts of sizes ``a`` and ``b`` contains at most ``a + b - 1``
    non-dominated points.
    """
    merged: List[Solution] = []
    for w1, d1, p1 in s1:
        for w2, d2, p2 in s2:
            payload = combine(p1, p2) if combine is not None else (p1, p2)
            merged.append((w1 + w2, max(d1, d2), payload))
    return pareto_filter(merged)


def merge_fronts(*fronts: Sequence[Solution]) -> List[Solution]:
    """Pareto-filtered union of several solution sets.

    Inputs need not be sorted; when their concatenation happens to be
    (e.g. a single maintained-sorted front), the sort is skipped. Callers
    that *guarantee* sorted inputs should use
    :func:`repro.core.frontier.merge_sorted_fronts` directly.
    """
    combined: List[Solution] = []
    for f in fronts:
        combined.extend(f)
    return pareto_filter_sorted(combined)


def objectives(solutions: Iterable[Solution]) -> List[Objective]:
    """Strip payloads, returning bare ``(w, d)`` pairs."""
    return [(s[0], s[1]) for s in solutions]


def is_pareto_front(solutions: Sequence[Solution]) -> bool:
    """True when no member dominates another (a valid Pareto *curve*).

    Sort + single sweep, ``O(k log k)``: after sorting the objective
    pairs lexicographically, the set is mutually non-dominated exactly
    when ``w`` strictly ascends and ``d`` strictly descends between
    neighbours. (Equality in either coordinate — including duplicate
    points — is weak dominance between the sorted neighbours; and any
    dominating pair ``a <= b`` elsewhere in the set forces some adjacent
    pair to violate the strict ordering, since ``d`` would fail to
    descend somewhere between ``a``'s and ``b``'s sorted positions.)
    """
    objs = sorted(objectives(solutions))
    prev_w, prev_d = float("-inf"), float("inf")
    for w, d in objs:
        if w == prev_w or d >= prev_d:
            return False
        prev_w, prev_d = w, d
    return True


# --------------------------------------------------------------------------
# Quality metrics (used by the evaluation harness, Tables III/IV, Fig. 7)
# --------------------------------------------------------------------------


def hypervolume(
    solutions: Sequence[Solution], reference: Objective
) -> float:
    """2-D hypervolume dominated by the front, bounded by ``reference``.

    ``reference`` must be weakly worse than every solution; points beyond
    it contribute nothing.
    """
    front = pareto_filter(list(solutions))
    pts = [
        (w, d)
        for (w, d) in objectives(front)
        if w <= reference[0] and d <= reference[1]
    ]
    pts.sort()
    hv = 0.0
    prev_d = reference[1]
    for w, d in pts:
        if d < prev_d:
            hv += (reference[0] - w) * (prev_d - d)
            prev_d = d
    return hv


def epsilon_indicator(
    candidate: Sequence[Solution], reference: Sequence[Solution]
) -> float:
    """Multiplicative epsilon: smallest ``c`` with the candidate
    ``c``-approximating the reference front (paper, Definition 2).

    For every reference solution ``s`` there must be a candidate ``s'``
    with ``s' <= c * s``; returns the max over reference points of the min
    over candidates of the required factor. Zero-valued reference
    objectives are handled by treating 0/0 as factor 1 and x/0 as +inf.

    The inner minimisation runs over the candidate *front* only (the
    factor is monotone in both objectives, so a dominated candidate never
    wins) and, for positive reference points, by binary search: along the
    front sorted by ascending ``w``, the wirelength factor ascends while
    the delay factor descends, so their max is V-shaped and minimised
    where they cross. ``O((k + r) log k)`` overall instead of ``O(k · r)``.
    """
    if not reference:
        return 1.0
    if not candidate:
        return float("inf")
    cand = objectives(pareto_filter(list(candidate)))
    k = len(cand)
    worst = 1.0
    for rw, rd in objectives(reference):
        if rw <= 0 or rd <= 0:
            # Degenerate reference objectives: keep the exact linear-scan
            # semantics for the 0/0 -> 1 and x/0 -> inf conventions.
            best = float("inf")
            for cw, cd in cand:
                fw = (
                    1.0
                    if cw <= rw == 0
                    else (cw / rw if rw > 0 else float("inf"))
                )
                fd = (
                    1.0
                    if cd <= rd == 0
                    else (cd / rd if rd > 0 else float("inf"))
                )
                best = min(best, max(fw, fd, 1.0))
        else:
            # g(i) = cw_i/rw - cd_i/rd strictly ascends along the front;
            # the V-shaped max is minimised at the sign crossing. Find the
            # first index with g >= 0 and evaluate its two neighbours.
            lo, hi = 0, k
            while lo < hi:
                mid = (lo + hi) // 2
                cw, cd = cand[mid]
                if cw / rw >= cd / rd:
                    hi = mid
                else:
                    lo = mid + 1
            best = float("inf")
            for idx in (lo - 1, lo):
                if 0 <= idx < k:
                    cw, cd = cand[idx]
                    best = min(best, max(cw / rw, cd / rd, 1.0))
        worst = max(worst, best)
    return worst


def count_on_frontier(
    candidate: Sequence[Solution],
    frontier: Sequence[Solution],
    tol: float = DEFAULT_TOL,
) -> int:
    """How many frontier points the candidate set attains (Table IV).

    A frontier point counts as found when some candidate matches it within
    ``tol`` in both objectives (candidates cannot strictly beat a true
    frontier point, so matching is the only way to attain it).

    Candidates are sorted once and each frontier point only scans the
    ``bisect``-located window of candidates with ``|cw - fw| <= tol`` —
    ``O((k + r) log k)`` for the usual case of tolerance-sized windows,
    with identical tolerance semantics to the full nested scan.
    """
    cand = sorted(objectives(candidate))
    found = 0
    neg_inf, pos_inf = float("-inf"), float("inf")
    for fw, fd in objectives(frontier):
        lo = bisect_left(cand, (fw - tol, neg_inf))
        hi = bisect_right(cand, (fw + tol, pos_inf))
        for cw, cd in cand[lo:hi]:
            if abs(cd - fd) <= tol:
                found += 1
                break
    return found


def attains_frontier(
    candidate: Sequence[Solution],
    frontier: Sequence[Solution],
    tol: float = DEFAULT_TOL,
) -> bool:
    """True when the candidate finds at least one frontier point (Table III:
    an algorithm is *non-optimal* on a net when this is False)."""
    return count_on_frontier(candidate, frontier, tol=tol) > 0


def normalized_front(
    solutions: Sequence[Solution], w_ref: float, d_ref: float
) -> List[Objective]:
    """Objectives scaled by reference values (Fig. 7 normalisation:
    ``w / w(FLUTE)`` and ``d / d(CL)``)."""
    if w_ref <= 0 or d_ref <= 0:
        raise ValueError("normalisation references must be positive")
    return [(w / w_ref, d / d_ref) for (w, d) in objectives(solutions)]


def front_at_wirelength(
    solutions: Sequence[Solution], w_budget: float
) -> Optional[Objective]:
    """Best-delay solution within a wirelength budget (curve sampling)."""
    best: Optional[Objective] = None
    for w, d in objectives(solutions):
        if w <= w_budget and (best is None or d < best[1]):
            best = (w, d)
    return best
