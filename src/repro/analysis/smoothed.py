"""Smoothed-analysis instance model (paper, Definition 1) and Theorem 2.

A κ-smoothed net samples each pin coordinate independently from a
distribution whose density is bounded by κ on [0, 1]. The canonical such
distribution is uniform on a sub-interval of width 1/κ placed anywhere in
[0, 1] — κ = 1 recovers average-case (uniform) instances, κ → ∞
approaches worst-case (point-mass) instances.

Theorem 2 says the expected frontier size is ``O(n^3 κ)``; the paper's
Fig. 6 measures ≈ 2.85·n on benchmark nets. :func:`frontier_size_experiment`
reproduces the measurement on smoothed instances across n and κ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.pareto_dw import pareto_dw
from ..geometry.net import Net


def smoothed_net(
    degree: int,
    kappa: float = 4.0,
    rng: Optional[random.Random] = None,
    span: float = 1000.0,
    name: str = "",
) -> Net:
    """One κ-smoothed net in ``[0, span]^2``.

    Each coordinate is uniform on a random sub-interval of width
    ``span / kappa`` — density exactly ``kappa / span``, i.e. κ-smoothed
    after normalisation. Larger κ concentrates pins (more cluster-like,
    placement-realistic); κ = 1 is uniform.
    """
    if kappa < 1.0:
        raise ValueError(f"kappa must be >= 1, got {kappa}")
    rng = rng or random.Random()
    width = span / kappa
    pts: List[Tuple[float, float]] = []
    seen = set()
    while len(pts) < degree:
        cx = rng.uniform(0.0, span - width)
        cy = rng.uniform(0.0, span - width)
        x = rng.uniform(cx, cx + width)
        y = rng.uniform(cy, cy + width)
        if (x, y) not in seen:
            seen.add((x, y))
            pts.append((x, y))
    return Net.from_points(pts[0], pts[1:], name=name or f"smooth_k{kappa:g}_d{degree}")


def clustered_net(
    degree: int,
    num_clusters: int = 2,
    cluster_spread: float = 0.08,
    rng: Optional[random.Random] = None,
    span: float = 1000.0,
    name: str = "",
) -> Net:
    """A placement-like clustered net: pins gather around a few centers.

    This is the pin model of the ICCAD-15-like benchmark suite; it is a
    κ-smoothed instance with ``κ ≈ 1 / cluster_spread``.
    """
    rng = rng or random.Random()
    centers = [
        (rng.uniform(0.0, span), rng.uniform(0.0, span))
        for _ in range(max(1, num_clusters))
    ]
    spread = cluster_spread * span
    pts: List[Tuple[float, float]] = []
    seen = set()
    while len(pts) < degree:
        cx, cy = centers[rng.randrange(len(centers))]
        x = min(max(rng.uniform(cx - spread, cx + spread), 0.0), span)
        y = min(max(rng.uniform(cy - spread, cy + spread), 0.0), span)
        if (x, y) not in seen:
            seen.add((x, y))
            pts.append((x, y))
    return Net.from_points(pts[0], pts[1:], name=name or f"clustered_d{degree}")


@dataclass
class FrontierSizeRow:
    """One (degree, kappa) cell of the Theorem-2 experiment."""

    degree: int
    kappa: float
    samples: int
    mean_size: float
    max_size: int
    sizes: List[int] = field(default_factory=list)


def frontier_size_experiment(
    degrees: Sequence[int] = (4, 5, 6, 7, 8),
    kappas: Sequence[float] = (1.0, 4.0, 16.0),
    samples: int = 20,
    seed: int = 0,
) -> List[FrontierSizeRow]:
    """Measure exact frontier sizes across degree and smoothing parameter.

    Expectation from Theorem 2: mean size grows polynomially (empirically
    ~linearly) in n and increases with κ.
    """
    rows: List[FrontierSizeRow] = []
    for kappa in kappas:
        for n in degrees:
            rng = random.Random(seed * 1_000_003 + n * 101 + int(kappa))
            sizes = []
            for _ in range(samples):
                net = smoothed_net(n, kappa=kappa, rng=rng)
                sizes.append(len(pareto_dw(net, with_trees=False)))
            rows.append(
                FrontierSizeRow(
                    degree=n,
                    kappa=kappa,
                    samples=samples,
                    mean_size=sum(sizes) / len(sizes),
                    max_size=max(sizes),
                    sizes=sizes,
                )
            )
    return rows


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept (the paper's Fig. 6 fit line)."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a line")
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    return slope, my - slope * mx
