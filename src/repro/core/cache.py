"""Routing-result cache with translation and dihedral-symmetry invariance.

VLSI designs repeat cell patterns, so many nets are exact translates —
and, because standard cells get mirrored and rotated during placement,
dihedral images — of one another. Both objectives (wirelength, Elmore
path length) are invariant under translation and under the eight D4
symmetries, so the cache can key nets on a *canonical form* and serve
hits by mapping stored trees back into the query frame:

* ``canonicalize="translation"`` — source-relative pin coordinates (the
  historical behaviour): equal for rigid translates.
* ``canonicalize="symmetry"`` — the lexicographically smallest image of
  the source-relative coordinates under the eight
  :class:`~repro.geometry.transforms.GridTransform` elements: equal for
  translates *and* mirrored / rotated copies. Hits apply the inverse
  transform to the cached trees.

Eviction is true LRU (hits refresh recency); the ``evictions`` attribute
and the ``cache.evictions`` counter expose how often capacity bites.

A second, **persistent** tier can sit underneath the LRU: pass ``store=``
(a :class:`~repro.core.cache_store.PersistentStore` or a path) and every
memory miss consults the disk store before routing, while every fresh
solve is appended to it. Disk hits re-enter the LRU, so repeated traffic
is served from memory; the ``store_hits`` attribute and the
``cache.store_hits`` / ``cache.store_misses`` counters separate warm-disk
traffic from genuinely cold solves.

Wraps any :class:`~repro.engine.protocol.Router`; this class *is* the
cache middleware of :func:`repro.engine.build.build_engine`.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

if TYPE_CHECKING:  # circular at runtime: engine imports this module
    from ..engine.protocol import RouterCapabilities
    from .cache_store import PersistentStore

from ..core.pareto import Solution
from ..geometry.net import Net
from ..geometry.point import Point
from ..geometry.transforms import ALL_TRANSFORMS, IDENTITY, GridTransform
from ..obs import counter_add, enabled as obs_enabled, span, timer_observe
from ..routing.tree import RoutingTree

CacheKey = Tuple[Tuple[float, float], ...]

#: Accepted ``canonicalize`` modes of :class:`CachedRouter`.
CANONICALIZE_MODES = ("translation", "symmetry")


def translation_key(net: Net) -> CacheKey:
    """Source-relative pin coordinates — equal for rigid translates.

    Relative coordinates are rounded to 1e-6 so that floating-point noise
    from the subtraction does not split keys; nets whose geometries agree
    only to within 1e-6 therefore share an entry (document this if your
    coordinates are finer than micro-units).
    """
    x0, y0 = net.source
    return tuple(
        (round(p.x - x0, 6), round(p.y - y0, 6)) for p in net.pins
    )


def canonical_key(net: Net) -> Tuple[CacheKey, GridTransform]:
    """Symmetry-canonical key: the smallest dihedral image of the net.

    Applies each of the eight D4 elements to the source-relative pin
    coordinates (same 1e-6 rounding contract as :func:`translation_key`)
    and keeps the lexicographically smallest tuple. Returns that key plus
    the transform mapping the *query* frame onto the canonical frame —
    two nets share a key exactly when some dihedral-plus-translation
    motion maps one onto the other, pin order preserved.
    """
    x0, y0 = net.source
    rel = [(p.x - x0, p.y - y0) for p in net.pins]
    best_key: CacheKey = tuple()
    best_t = IDENTITY
    for t in ALL_TRANSFORMS:
        cand = tuple(
            (round(cx, 6), round(cy, 6))
            for cx, cy in (t.apply_point(x, y) for x, y in rel)
        )
        if not best_key or cand < best_key:
            best_key, best_t = cand, t
    return best_key, best_t


def _translate_tree(tree: RoutingTree, net: Net, dx: float, dy: float) -> RoutingTree:
    points = [Point(p.x + dx, p.y + dy) for p in tree.points]
    # Snap pin nodes (always the first ``degree`` points) onto the query
    # net's exact coordinates: the rigid shift can be an ulp off after
    # float addition — or up to the 1e-6 key rounding when the query is a
    # near-translate — and validation requires exact pin equality.
    points[: net.degree] = list(net.pins)
    return RoutingTree.from_parent(net, points, list(tree.parent))


def _map_tree(
    tree: RoutingTree,
    base_net: Net,
    t_store: GridTransform,
    t_query: GridTransform,
    net: Net,
) -> RoutingTree:
    """Carry a stored tree into the query frame through the canonical one.

    Stored frame --``t_store``--> canonical frame --``t_query``^-1-->
    query frame (plus the rigid translation between sources). Swap and
    negation are exact in floating point, so exact dihedral copies map
    bit-for-bit; pin nodes are snapped exactly as in the translation path.
    """
    inv = t_query.point_inverse()
    sx, sy = base_net.source
    qx, qy = net.source
    points: List[Point] = []
    for p in tree.points:
        cx, cy = t_store.apply_point(p.x - sx, p.y - sy)
        rx, ry = inv.apply_point(cx, cy)
        points.append(Point(rx + qx, ry + qy))
    points[: net.degree] = list(net.pins)
    return RoutingTree.from_parent(net, points, list(tree.parent))


class CachedRouter:
    """Memoising wrapper around a Pareto router (LRU, canonicalizing).

    Parameters
    ----------
    router:
        Any object with ``route(net)`` returning Pareto solutions.
    max_entries:
        Cache capacity; least-recently-used entries are evicted beyond it
        (hits refresh recency, and eviction only happens when inserting a
        genuinely new key, so capacity is always fully usable).
    canonicalize:
        ``"translation"`` (default) keys on source-relative coordinates;
        ``"symmetry"`` additionally folds the eight dihedral symmetries
        into one entry and undoes the transform on hits.
    store:
        Optional persistent tier underneath the LRU — a
        :class:`~repro.core.cache_store.PersistentStore` or a path to
        one. Memory misses consult the store before routing; fresh
        solves are appended to it, so hit rates compound across
        processes and runs.
    """

    def __init__(
        self,
        router: object,
        max_entries: int = 100_000,
        canonicalize: str = "translation",
        store: Union["PersistentStore", str, Path, None] = None,
    ) -> None:
        if canonicalize not in CANONICALIZE_MODES:
            raise ValueError(
                f"unknown canonicalize mode {canonicalize!r}; "
                f"expected one of {CANONICALIZE_MODES}"
            )
        if isinstance(store, (str, Path)):
            from .cache_store import PersistentStore

            store = PersistentStore(store)
        self.router = router
        self.max_entries = max_entries
        self.canonicalize = canonicalize
        self.store = store
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0
        self._cache: "OrderedDict[CacheKey, Tuple[Net, GridTransform, List[Solution]]]" = (
            OrderedDict()
        )

    @property
    def name(self) -> str:
        """The wrapped router's name (middleware transparency)."""
        return getattr(self.router, "name", type(self.router).__name__)

    @property
    def capabilities(self) -> "RouterCapabilities":
        """The wrapped router's capabilities (middleware transparency)."""
        return getattr(self.router, "capabilities")

    def __getattr__(self, item: str) -> object:
        # Forward anything else (dispatch_tier, config, ...) to the
        # wrapped router so the cache composes transparently.
        return getattr(self.router, item)

    def _key(self, net: Net) -> Tuple[CacheKey, GridTransform]:
        if self.canonicalize == "symmetry":
            return canonical_key(net)
        return translation_key(net), IDENTITY

    def _serve_entry(
        self,
        entry: Tuple[Net, GridTransform, List[Solution]],
        net: Net,
        t_query: GridTransform,
    ) -> List[Solution]:
        """Map a cached entry into the query net's frame (exact; see above)."""
        base_net, t_store, solutions = entry
        if t_store == t_query:
            dx = net.source.x - base_net.source.x
            dy = net.source.y - base_net.source.y
            if dx == 0.0 and dy == 0.0 and base_net.key() == net.key():
                return list(solutions)
            with span("cache.translate"):
                return [
                    (w, d, _translate_tree(tree, net, dx, dy))
                    for w, d, tree in solutions
                ]
        with span("cache.transform"):
            return [
                (w, d, _map_tree(tree, base_net, t_store, t_query, net))
                for w, d, tree in solutions
            ]

    def _insert(
        self, key: CacheKey, entry: Tuple[Net, GridTransform, List[Solution]]
    ) -> None:
        """Install ``entry`` in the LRU, evicting only for genuinely new keys."""
        if key not in self._cache and len(self._cache) >= self.max_entries:
            self._cache.popitem(last=False)
            self.evictions += 1
            counter_add("cache.evictions")
        self._cache[key] = entry

    def route(self, net: Net) -> List[Solution]:
        """Pareto set of ``net``, served from cache for canonical copies.

        Lookup order: in-memory LRU, then the persistent store (when one
        is attached; disk hits are promoted back into the LRU), then the
        wrapped router — whose result is installed in both tiers.

        With the registry enabled, each tier's lookup latency also lands
        in a timer (``cache.lookup_seconds``, ``cache.store_get_seconds``,
        ``cache.store_put_seconds``) — and therefore in the mergeable
        latency histograms behind the daemon's ``/metrics`` endpoint. The
        clock reads are guarded by the enabled flag, so the disabled path
        stays branch-only.
        """
        timed = obs_enabled()
        t0 = perf_counter() if timed else 0.0
        with span("cache.key"):
            key, t_query = self._key(net)
        entry = self._cache.get(key)
        if timed:
            timer_observe("cache.lookup_seconds", perf_counter() - t0)
        if entry is not None:
            self._cache.move_to_end(key)
            self.hits += 1
            counter_add("cache.hits")
            return self._serve_entry(entry, net, t_query)
        if self.store is not None:
            t1 = perf_counter() if timed else 0.0
            with span("cache.store_get"):
                stored = self.store.get(key)
            if timed:
                timer_observe("cache.store_get_seconds", perf_counter() - t1)
            if stored is not None:
                self.store_hits += 1
                counter_add("cache.store_hits")
                self._insert(key, stored)
                return self._serve_entry(stored, net, t_query)
            counter_add("cache.store_misses")
        self.misses += 1
        counter_add("cache.misses")
        solutions = self.router.route(net)
        self._insert(key, (net, t_query, list(solutions)))
        if self.store is not None:
            t2 = perf_counter() if timed else 0.0
            with span("cache.store_put"):
                self.store.put(key, net, t_query, list(solutions))
            if timed:
                timer_observe("cache.store_put_seconds", perf_counter() - t2)
        return solutions

    def lookup(self, net: Net) -> Optional[List[Solution]]:
        """Peek both cache tiers without routing and without accounting.

        The ECO short-circuit: an incremental edit that lands on a net
        some canonical copy of which was already solved needs no solver
        work at all. Serves exactly what :meth:`route` would serve on a
        hit — LRU first (recency refreshed), then the persistent store
        (promoted into the LRU) — but leaves the hit/miss counters alone,
        so cache statistics keep meaning "route calls". Returns ``None``
        on a miss in both tiers; the caller decides what to run.
        """
        with span("cache.key"):
            key, t_query = self._key(net)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            return self._serve_entry(entry, net, t_query)
        if self.store is not None:
            with span("cache.store_get"):
                stored = self.store.get(key)
            if stored is not None:
                self._insert(key, stored)
                return self._serve_entry(stored, net, t_query)
        return None

    def seed(self, net: Net, solutions: List[Solution]) -> None:
        """Install an externally-computed frontier under ``net``'s key.

        The write half of the ECO path: incremental solves bypass
        :meth:`route`, so they publish their results here and later
        edits (or ordinary ``route`` traffic on canonical copies) hit.
        The entry is keyed and framed exactly as :meth:`route` would
        have stored it. The persistent store is append-only, so it is
        only written when the key is not already present on disk.
        """
        key, t_query = self._key(net)
        self._insert(key, (net, t_query, list(solutions)))
        if self.store is not None:
            if self.store.get(key) is None:
                with span("cache.store_put"):
                    self.store.put(key, net, t_query, list(solutions))

    @property
    def hit_rate(self) -> float:
        """Fraction of calls served from either cache tier (0.0 when idle)."""
        total = self.hits + self.store_hits + self.misses
        return (self.hits + self.store_hits) / total if total else 0.0

    @property
    def store_hit_rate(self) -> float:
        """Fraction of store lookups (memory misses) served from disk."""
        looked_up = self.store_hits + self.misses
        return self.store_hits / looked_up if looked_up else 0.0

    def clear(self) -> None:
        """Drop every LRU entry and reset hit/miss/eviction statistics.

        The persistent store (when attached) is append-only and is *not*
        cleared — delete the file to reset it.
        """
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.store_hits = 0

    def close(self) -> None:
        """Flush and release the persistent store, if one is attached."""
        if self.store is not None:
            self.store.close()
