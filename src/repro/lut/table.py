"""The PatLabor lookup table: canonical patterns → potentially-optimal topologies.

A :class:`LookupTable` maps each canonical ``(perm, source_col)`` pattern
of every covered degree to its list of potentially-Pareto-optimal
symbolic solutions. Looking up a net:

1. rank the pin coordinates to get the net's pattern and gap vectors,
2. canonicalise the pattern under the eight symmetries, remembering the
   transform,
3. evaluate every stored ``(W, D)`` at the transformed gap vector and
   Pareto-filter numerically — by the soundness of Lemma 1 pruning this
   *is* the exact frontier,
4. map the surviving topologies back through the inverse transform and
   instantiate them as :class:`~repro.routing.tree.RoutingTree` objects.

Degrees 2 and 3 are closed-form (the paper omits them as trivial): the
direct edge, and the star through the coordinate-wise median point, which
simultaneously minimises wirelength and gives every sink a shortest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import LookupTableError
from ..geometry.net import Net
from ..geometry.point import Point, median_point
from ..geometry.transforms import GridTransform, canonical_pattern
from ..routing.tree import RoutingTree
from ..core.frontier import pareto_filter_sorted
from ..core.pareto import Solution, clean_front
from .cluster import TopologyPool
from .generator import (
    Pattern,
    PatternSolutions,
    generate_degree,
    solve_pattern,
)

GridNode = Tuple[int, int]

#: A stored table row: wirelength vector, delay rows, pool topology id.
TableRow = Tuple[Tuple[int, ...], Tuple[Tuple[int, ...], ...], int]


@dataclass
class DegreeStats:
    """Table II statistics for one degree."""

    degree: int
    num_index: int
    avg_topologies: float
    max_topologies: int
    distinct_topologies: int
    build_seconds: float = 0.0
    sampled: bool = False


def net_pattern(net: Net) -> Tuple[Tuple[int, ...], int, List[float], List[float]]:
    """The net's pattern and sorted coordinate arrays.

    Returns ``(perm, source_col, xs, ys)`` where ``xs[c]``/``ys[r]`` are
    the coordinates of pattern column ``c`` / row ``r``. Coordinate ties
    are broken deterministically (by the other axis, then pin index), which
    yields zero-width gaps — evaluation stays exact.
    """
    pins = net.pins
    n = len(pins)
    by_x = sorted(range(n), key=lambda i: (pins[i].x, pins[i].y, i))
    by_y = sorted(range(n), key=lambda i: (pins[i].y, pins[i].x, i))
    col = [0] * n
    row = [0] * n
    for c, i in enumerate(by_x):
        col[i] = c
    for r, i in enumerate(by_y):
        row[i] = r
    perm = [0] * n
    for i in range(n):
        perm[col[i]] = row[i]
    xs = [pins[i].x for i in by_x]
    ys = [pins[i].y for i in by_y]
    return tuple(perm), col[0], xs, ys


class LookupTable:
    """Pareto lookup tables for small-degree timing-driven routing."""

    def __init__(self) -> None:
        self.entries: Dict[int, Dict[Pattern, List[TableRow]]] = {}
        self.pool = TopologyPool()
        self.stats: Dict[int, DegreeStats] = {}
        self.prune_mode: str = "componentwise"
        #: Frontier-kernel representation for query-time Pareto filtering:
        #: ``"tuple"`` (pure Python, default) or ``"array"`` (NumPy
        #: kernels; bit-identical, see ``docs/numerics.md``). Row
        #: evaluation itself stays sequential Python either way — pairwise
        #: summation would change the floats.
        self.representation: str = "tuple"

    # ------------------------------------------------------------ building

    @classmethod
    def build(
        cls,
        degrees: Sequence[int] = (4, 5, 6),
        *,
        prune_mode: str = "componentwise",
        limit_per_degree: Optional[int] = None,
        stride: int = 1,
        progress=None,
    ) -> "LookupTable":
        """Generate tables for the given degrees (full or sampled)."""
        import time

        table = cls()
        table.prune_mode = prune_mode
        for n in degrees:
            t0 = time.perf_counter()
            raw = generate_degree(
                n,
                prune_mode=prune_mode,
                limit=limit_per_degree,
                stride=stride,
                progress=progress,
            )
            table._ingest(n, raw)
            st = table.stats[n]
            st.build_seconds = time.perf_counter() - t0
            st.sampled = limit_per_degree is not None
        return table

    def _ingest(self, n: int, raw: Dict[Pattern, PatternSolutions]) -> None:
        per_pattern: Dict[Pattern, List[TableRow]] = {}
        topo_counts: List[int] = []
        for key, ps in raw.items():
            rows: List[TableRow] = []
            for sol in ps.solutions:
                topo_id = self.pool.intern(sol.payload)
                rows.append((sol.w, sol.rows, topo_id))
            per_pattern[key] = rows
            topo_counts.append(len(rows))
        self.entries[n] = per_pattern
        self.stats[n] = DegreeStats(
            degree=n,
            num_index=len(per_pattern),
            avg_topologies=(
                sum(topo_counts) / len(topo_counts) if topo_counts else 0.0
            ),
            max_topologies=max(topo_counts, default=0),
            distinct_topologies=len(
                {r[2] for rows in per_pattern.values() for r in rows}
            ),
        )

    def add_pattern(self, n: int, perm: Tuple[int, ...], src: int) -> None:
        """Solve and insert a single pattern (lazy / on-demand filling)."""
        ps = solve_pattern(perm, src, prune_mode=self.prune_mode)
        rows = [
            (sol.w, sol.rows, self.pool.intern(sol.payload))
            for sol in ps.solutions
        ]
        self.entries.setdefault(n, {})[(perm, src)] = rows

    # ------------------------------------------------------------- queries

    @property
    def degrees(self) -> List[int]:
        return sorted(self.entries)

    def covers(self, degree: int) -> bool:
        """True when nets of this degree can be served (2/3 are closed-form)."""
        return degree <= 3 or degree in self.entries

    def lookup(
        self, net: Net, *, on_missing: str = "solve"
    ) -> List[Solution]:
        """Exact Pareto frontier of ``net``, with tree payloads.

        ``on_missing`` controls behaviour when the canonical pattern is
        absent (possible for sampled high-degree tables): ``"solve"``
        computes and caches it on the fly, ``"raise"`` raises
        :class:`LookupTableError`.
        """
        n = net.degree
        if n == 2:
            return _degree2_frontier(net)
        if n == 3:
            return _degree3_frontier(net)
        if n not in self.entries:
            raise LookupTableError(
                f"lookup table has no degree-{n} entries "
                f"(available: {self.degrees})"
            )
        perm, src, xs, ys = net_pattern(net)
        cperm, csrc, t = canonical_pattern(perm, src)
        rows = self.entries[n].get((cperm, csrc))
        if rows is None:
            if on_missing == "solve":
                self.add_pattern(n, cperm, csrc)
                rows = self.entries[n][(cperm, csrc)]
            else:
                raise LookupTableError(
                    f"pattern {cperm}/{csrc} missing from degree-{n} table"
                )
        # Gap vectors in the canonical frame.
        qx = [xs[i + 1] - xs[i] for i in range(n - 1)]
        qy = [ys[i + 1] - ys[i] for i in range(n - 1)]
        cgx, cgy = t.apply_gaps(qx, qy)
        gaps = list(cgx) + list(cgy)

        evaluated: List[Solution] = []
        for w_vec, d_rows, topo_id in rows:
            w = sum(c * g for c, g in zip(w_vec, gaps))
            d = max(
                sum(c * g for c, g in zip(r, gaps)) for r in d_rows
            )
            evaluated.append((w, d, topo_id))
        filt = pareto_filter_sorted
        if self.representation == "array":
            from ..core.frontier_array import (
                HAVE_NUMPY,
                pareto_filter_sorted_array,
            )

            if HAVE_NUMPY:
                filt = pareto_filter_sorted_array
        front = filt(evaluated)

        t_inv = t.inverse(n, n)
        cn, _ = t.out_shape(n, n)  # == n
        out: List[Solution] = []
        for w, d, topo_id in front:
            edges = self.pool.get(topo_id)
            tree = _instantiate(net, edges, t_inv, n, xs, ys)
            tw, td = tree.objective()
            out.append((min(w, tw), min(d, td), tree))
        return clean_front(out)

    def frontier(self, net: Net) -> List[Tuple[float, float]]:
        """Bare ``(w, d)`` frontier."""
        return [(w, d) for w, d, _ in self.lookup(net)]


def _instantiate(
    net: Net,
    canonical_edges,
    t_inv: GridTransform,
    n: int,
    xs: Sequence[float],
    ys: Sequence[float],
) -> RoutingTree:
    """Map a canonical-frame topology back onto the query net."""
    def coord(node: GridNode) -> Point:
        qn = t_inv.apply_node(node, n, n)
        return Point(float(xs[qn[0]]), float(ys[qn[1]]))

    edges = []
    referenced = set()
    for a, b in canonical_edges:
        pa, pb = coord(a), coord(b)
        referenced.add(pa)
        referenced.add(pb)
        if pa != pb:
            edges.append((pa, pb))
    if not edges:
        edges = [(net.source, s) for s in net.sinks]
    return RoutingTree.from_edges(net, edges, extra_points=list(referenced))


def _degree2_frontier(net: Net) -> List[Solution]:
    """One solution: the direct connection (optimal in both objectives)."""
    tree = RoutingTree.star(net)
    w, d = tree.objective()
    return [(w, d, tree)]


def _degree3_frontier(net: Net) -> List[Solution]:
    """One solution: the star through the coordinate-wise median.

    For three points the median point lies on a monotone path between
    every pair, so the star is simultaneously the RSMT *and* gives every
    sink its L1-shortest path — a singleton Pareto frontier.
    """
    m = median_point(net.pins)
    edges = [(m, p) for p in net.pins if p != m]
    if not edges:  # impossible for distinct pins, kept for safety
        tree = RoutingTree.star(net)
    else:
        tree = RoutingTree.from_edges(net, edges, extra_points=[m])
    w, d = tree.objective()
    return [(w, d, tree)]
