"""Pareto-DW: the exact Pareto-frontier dynamic program (paper, Section IV-A).

Adapts Dreyfus–Wagner to bicriterion optimisation. The DP state
``S[Q][v]`` is the Pareto frontier of subtrees rooted at Hanan-grid node
``v`` spanning sink subset ``Q``, with delay measured *from v*. Transitions
follow the paper's Equation (1):

* **merge**     ``S[Q][v] ∋ S[Q1][v] ⊕ S[Q\\Q1][v]`` — join two subtrees at v,
* **extension** ``S[Q][v] ∋ S[Q][u] + ||u - v||_1`` — re-root along an edge.

Because L1 extension is a metric (two hops are dominated by the direct
hop), a single all-pairs closure round per subset suffices; no iterative
relaxation is needed.

Pruning (paper, Section V-A):

* **Lemma 2** — empty-quadrant corner nodes are excluded from the grid,
* **Lemma 3** — merge transitions are skipped at nodes outside the
  bounding box of the active sink subset (the closure from the projection
  dominates them),
* **Lemma 4** — when every sink of ``Q`` lies on the grid boundary, only
  circularly-consecutive splits are enumerated.

The frontier returned is exact regardless of which pruning flags are set;
the flags only change how much work is done (tests cross-check all
configurations).

The hot loops run on the sorted-front kernels of
:mod:`repro.core.frontier`: every DP front is maintained sorted
(``w`` ascending, ``d`` strictly descending), merge transitions use the
O(a+b) two-pointer product of
:func:`~repro.core.frontier.cross_sorted` — fused with the split union
via :func:`~repro.core.frontier.cross_merge_sorted` so dominated product
points are never allocated — closure buckets are per-source shifted runs
merged lazily by :func:`~repro.core.frontier.merge_shifted`, and node
distances come from
one precomputed :meth:`~repro.geometry.hanan.HananGrid.distance_matrix`
per grid. ``kernels=False`` selects the original enumerate-and-sort
reference implementation — same frontiers, more work — kept for the
equivalence tests and the old-vs-new kernel benchmark
(``benchmarks/bench_pareto_kernels.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import DegreeTooLargeError
from ..geometry.hanan import GridNode, HananGrid
from ..geometry.net import Net
from ..obs import (
    counter_add,
    emit_event,
    enabled as _obs_enabled,
    events_enabled as _events_enabled,
    gauge_max,
    span,
)
from ..routing.tree import RoutingTree
from .frontier import ShiftedRun, cross_merge_sorted, cross_sorted, merge_shifted
from .pareto import Solution, clean_front, pareto_filter

#: Hard ceiling on exact enumeration; above this the caller should be using
#: PatLabor's local search. Overridable via ``max_degree=``.
DEFAULT_MAX_DEGREE = 12


@dataclass
class DWStats:
    """Work counters for ablation and kernel benchmarks (Lemmas 2–4, kernels).

    ``closure_extensions`` counts extension candidates *considered* and is
    identical between the kernel and reference paths; the two allocation
    counters measure what each path actually materializes:
    ``merge_candidates`` is the number of merge-product solution tuples
    built (reference: ``a · b`` per transition; kernels: at most
    ``a + b - 1``) and ``closure_allocations`` the number of closure-bucket
    solutions built (reference: every shifted candidate; kernels: only
    dominance survivors). Their sum is the "candidate tuples allocated"
    headline that ``benchmarks/bench_pareto_kernels.py`` tracks.
    """

    grid_nodes: int = 0
    pruned_corner_nodes: int = 0
    merge_transitions: int = 0
    merge_skipped_lemma3: int = 0
    splits_saved_lemma4: int = 0
    closure_extensions: int = 0
    merge_candidates: int = 0
    closure_allocations: int = 0
    max_front_size: int = 0
    subsets: int = 0


# Backpointer payloads: small tagged tuples, shared structurally.
#   ("leaf", sink_node)
#   ("ext", u_node, v_node, child_payload)
#   ("merge", payload1, payload2)


def _collect_edges(payload: Any, out: Set[Tuple[GridNode, GridNode]]) -> None:
    stack = [payload]
    while stack:
        p = stack.pop()
        tag = p[0]
        if tag == "leaf":
            continue
        if tag == "ext":
            _, u, v, child = p
            if u != v:
                out.add((u, v))
            stack.append(child)
        else:  # merge
            stack.append(p[1])
            stack.append(p[2])


def _boundary_order(grid: HananGrid, nodes: Sequence[GridNode]) -> Optional[List[int]]:
    """Clockwise boundary rank of each node, or None if any is interior."""
    nx, ny = grid.nx, grid.ny
    ranks: List[int] = []
    for ix, iy in nodes:
        if iy == ny - 1:  # top edge, left -> right
            r = ix
        elif ix == nx - 1:  # right edge, top -> bottom
            r = (nx - 1) + (ny - 1 - iy)
        elif iy == 0:  # bottom edge, right -> left
            r = (nx - 1) + (ny - 1) + (nx - 1 - ix)
        elif ix == 0:  # left edge, bottom -> top
            r = 2 * (nx - 1) + (ny - 1) + iy
        else:
            return None
        ranks.append(r)
    return ranks


def _consecutive_splits(bits: List[int], order: List[int]) -> List[int]:
    """Submasks whose sinks form a circular run in boundary order.

    ``bits`` are the sink indices in ``Q``; ``order[i]`` is the boundary
    rank of sink ``i``. Returns proper, non-empty submasks (as bitmasks
    over the *global* sink indexing) that are consecutive runs; complements
    of runs are runs, so enumerating runs covers all Lemma-4 splits.
    """
    k = len(bits)
    ring = sorted(bits, key=lambda b: order[b])
    masks: Set[int] = set()
    for start in range(k):
        m = 0
        for length in range(1, k):  # proper subsets only
            m |= 1 << ring[(start + length - 1) % k]
            masks.add(m)
    return list(masks)


def pareto_dw(
    net: Net,
    *,
    lemma2: bool = True,
    lemma3: bool = True,
    lemma4: bool = True,
    with_trees: bool = True,
    max_degree: int = DEFAULT_MAX_DEGREE,
    stats: Optional[DWStats] = None,
    kernels: bool = True,
) -> List[Solution]:
    """Exact Pareto frontier of timing-driven routing trees for ``net``.

    Returns Pareto solutions ``(w, d, payload)`` sorted by ascending
    wirelength; with ``with_trees=True`` each payload is the
    :class:`RoutingTree` attaining (or weakly dominating) the objectives,
    otherwise payloads are opaque backpointers.

    ``kernels=False`` runs the enumerate-and-sort reference
    implementation instead of the sorted-front kernels — the returned
    ``(w, d)`` frontier is identical; only the work done differs (see the
    module docstring). It exists for equivalence tests and benchmarks.

    Raises :class:`DegreeTooLargeError` when ``net.degree > max_degree``.
    """
    n = net.degree
    if n > max_degree:
        raise DegreeTooLargeError(n, max_degree)
    # With observability on, always collect work counters so they can be
    # flushed into the global registry (callers passing their own DWStats
    # keep ownership and flush nothing).
    flush = stats is None and _obs_enabled()
    if flush:
        stats = DWStats()
    emitting = _events_enabled()
    if emitting:
        import time as _time

        t0 = _time.perf_counter()
    with span("dw.solve"):
        result = _pareto_dw_impl(
            net,
            lemma2=lemma2,
            lemma3=lemma3,
            lemma4=lemma4,
            with_trees=with_trees,
            stats=stats,
            kernels=kernels,
        )
    if flush:
        _flush_dw_stats(stats)
    if emitting:
        event = {
            "net": net.name or f"net_{id(net):x}",
            "degree": n,
            "front_size": len(result),
            "wall_s": _time.perf_counter() - t0,
        }
        if stats is not None:
            event["subsets"] = stats.subsets
            event["merge_transitions"] = stats.merge_transitions
            event["max_front_size"] = stats.max_front_size
        emit_event("dw_solve", **event)
    return result


def _flush_dw_stats(stats: DWStats) -> None:
    """Report one solve's :class:`DWStats` into the metrics registry."""
    counter_add("dw.solves")
    counter_add("dw.subsets", stats.subsets)
    counter_add("dw.merge_transitions", stats.merge_transitions)
    counter_add("dw.merge_skipped_lemma3", stats.merge_skipped_lemma3)
    counter_add("dw.splits_saved_lemma4", stats.splits_saved_lemma4)
    counter_add("dw.closure_extensions", stats.closure_extensions)
    counter_add("dw.merge_candidates", stats.merge_candidates)
    counter_add("dw.closure_allocations", stats.closure_allocations)
    counter_add("dw.pruned_corner_nodes", stats.pruned_corner_nodes)
    gauge_max("dw.max_front_size", stats.max_front_size)


def _ext_payload_to(v: GridNode) -> "Callable[[GridNode, Solution], Any]":
    """Payload builder for closure extension edges into target ``v``.

    One shared rewrap per closure bucket; the source node rides along as
    the run tag, so no per-``(u, v)`` closure objects are allocated.
    """

    def rewrap(u: GridNode, s: Solution) -> Any:
        return ("ext", u, v, s[2])

    return rewrap


def _merge_payload(p1: Any, p2: Any) -> Any:
    """Payload combiner of a DP merge transition."""
    return ("merge", p1, p2)


def _pareto_dw_impl(
    net: Net,
    *,
    lemma2: bool,
    lemma3: bool,
    lemma4: bool,
    with_trees: bool,
    stats: Optional[DWStats],
    kernels: bool = True,
) -> List[Solution]:
    """The DP body of :func:`pareto_dw` (degree already validated)."""
    grid = HananGrid.of_net(net)
    pin_nodes = grid.pin_nodes()
    source_node = pin_nodes[0]
    sink_nodes = pin_nodes[1:]
    num_sinks = len(sink_nodes)
    full = (1 << num_sinks) - 1

    if lemma2:
        corner = set(grid.corner_nodes())
        nodes = [v for v in grid.nodes() if v not in corner]
    else:
        corner = set()
        nodes = list(grid.nodes())
    if stats is not None:
        stats.grid_nodes = len(nodes)
        stats.pruned_corner_nodes = len(corner)

    boundary_rank = _boundary_order(grid, sink_nodes) if lemma4 else None

    # S[mask] : dict node -> Pareto list of (w, d, payload), each list a
    # sorted front (w ascending, d strictly descending) by construction.
    S: List[Optional[Dict[GridNode, List[Solution]]]] = [None] * (full + 1)

    if kernels:
        # Sorted-front kernel path: precomputed distance matrix, lazy
        # shifted merges for closures, two-pointer products for merges.
        ny = grid.ny
        dmat = grid.distance_matrix()

        def closure(
            merged: Dict[GridNode, List[Solution]]
        ) -> Dict[GridNode, List[Solution]]:
            """One metric-closure round via the lazy shifted-merge kernel."""
            out: Dict[GridNode, List[Solution]] = {}
            sources = [
                (u, u[0] * ny + u[1], cands)
                for u, cands in merged.items()
                if cands
            ]
            for v in nodes:
                row_v = v[0] * ny + v[1]
                rewrap_v = _ext_payload_to(v)
                runs: List[ShiftedRun] = []
                for u, uid, cands in sources:
                    duv = dmat[uid][row_v]
                    if duv == 0.0 and u == v:
                        runs.append((0.0, cands, None))
                    else:
                        runs.append((duv, cands, u))
                        if stats is not None:
                            stats.closure_extensions += len(cands)
                front, allocated = merge_shifted(runs, rewrap_v)
                out[v] = front
                if stats is not None:
                    stats.closure_allocations += allocated
                    if len(front) > stats.max_front_size:
                        stats.max_front_size = len(front)
            return out

        def merge_at(v: GridNode, submasks: List[int], mask: int) -> List[Solution]:
            """Pareto front of all split merges at ``v`` (kernel path)."""
            front: List[Solution] = []
            for q1 in submasks:
                sq1 = S[q1]
                sq2 = S[mask ^ q1]
                s1 = sq1[v] if sq1 is not None else None
                s2 = sq2[v] if sq2 is not None else None
                if not s1 or not s2:
                    continue
                if stats is not None:
                    stats.merge_transitions += 1
                if front:
                    front, allocated = cross_merge_sorted(
                        front, s1, s2, _merge_payload
                    )
                else:
                    front = cross_sorted(s1, s2, _merge_payload)
                    allocated = len(front)
                if stats is not None:
                    stats.merge_candidates += allocated
            return front

    else:
        dist = grid.dist

        def closure(
            merged: Dict[GridNode, List[Solution]]
        ) -> Dict[GridNode, List[Solution]]:
            """One metric-closure round: extend every candidate to every node."""
            out: Dict[GridNode, List[Solution]] = {}
            sources = [(u, cands) for u, cands in merged.items() if cands]
            for v in nodes:
                bucket: List[Solution] = []
                for u, cands in sources:
                    duv = dist(u, v)
                    if duv == 0.0 and u == v:
                        bucket.extend(cands)
                    else:
                        for (w, d, p) in cands:
                            bucket.append((w + duv, d + duv, ("ext", u, v, p)))
                        if stats is not None:
                            stats.closure_extensions += len(cands)
                            stats.closure_allocations += len(cands)
                front = pareto_filter(bucket)
                out[v] = front
                if stats is not None and len(front) > stats.max_front_size:
                    stats.max_front_size = len(front)
            return out

        def merge_at(v: GridNode, submasks: List[int], mask: int) -> List[Solution]:
            """Pareto front of all split merges at ``v`` (reference path)."""
            bucket: List[Solution] = []
            for q1 in submasks:
                sq1 = S[q1]
                sq2 = S[mask ^ q1]
                s1 = sq1[v] if sq1 is not None else None
                s2 = sq2[v] if sq2 is not None else None
                if not s1 or not s2:
                    continue
                if stats is not None:
                    stats.merge_transitions += 1
                    stats.merge_candidates += len(s1) * len(s2)
                for w1, d1, p1 in s1:
                    for w2, d2, p2 in s2:
                        bucket.append(
                            (w1 + w2, max(d1, d2), ("merge", p1, p2))
                        )
            return pareto_filter(bucket)

    # Singletons.
    with span("dw.closure"):
        for si, s_node in enumerate(sink_nodes):
            base = {s_node: [(0.0, 0.0, ("leaf", s_node))]}
            S[1 << si] = closure(base)
            if stats is not None:
                stats.subsets += 1

    # Subsets in increasing cardinality.
    masks_by_size: List[List[int]] = [[] for _ in range(num_sinks + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    for size in range(2, num_sinks + 1):
        for mask in masks_by_size[size]:
            bits = [i for i in range(num_sinks) if mask >> i & 1]
            # Bounding box of the active sinks, for Lemma 3.
            if lemma3:
                ixs = [sink_nodes[i][0] for i in bits]
                iys = [sink_nodes[i][1] for i in bits]
                bxlo, bxhi = min(ixs), max(ixs)
                bylo, byhi = min(iys), max(iys)

            # Which splits to enumerate.
            if boundary_rank is not None and all(
                boundary_rank[i] is not None for i in bits
            ):
                submasks = _consecutive_splits(bits, boundary_rank)
                # Keep only one of each complementary pair (lowest-bit rule).
                low = 1 << bits[0]
                submasks = [sm for sm in submasks if sm & low]
                if stats is not None:
                    total = (1 << (size - 1)) - 1
                    stats.splits_saved_lemma4 += max(0, total - len(submasks))
            else:
                low = 1 << bits[0]
                rest = mask & ~low
                submasks = []
                sub = rest
                while True:
                    submasks.append(sub | low)
                    if sub == 0:
                        break
                    sub = (sub - 1) & rest
                submasks = [sm for sm in submasks if sm != mask]

            merged: Dict[GridNode, List[Solution]] = {}
            with span("dw.merge"):
                for v in nodes:
                    if lemma3:
                        ix, iy = v
                        if not (bxlo <= ix <= bxhi and bylo <= iy <= byhi):
                            if stats is not None:
                                stats.merge_skipped_lemma3 += 1
                            continue
                    front = merge_at(v, submasks, mask)
                    if front:
                        merged[v] = front
            with span("dw.closure"):
                S[mask] = closure(merged)
            if stats is not None:
                stats.subsets += 1
            # Free sub-frontiers no longer needed? (All smaller masks may
            # still be needed by other supersets; keep everything — memory
            # is bounded by 2^(n-1) * |nodes| * |S|, fine for n <= 12.)

    result = S[full][source_node] if S[full] is not None else []
    if not with_trees:
        return clean_front(result)

    final: List[Solution] = []
    with span("dw.reconstruct"):
        for w, d, payload in result:
            tree = reconstruct_tree(net, grid, payload)
            tw, td = tree.objective()
            # The DP value may correspond to an edge multiset; the realised
            # tree can only be equal or better in both objectives.
            final.append((min(w, tw), min(d, td), tree))
    return clean_front(final)


def reconstruct_tree(net: Net, grid: HananGrid, payload: Any) -> RoutingTree:
    """Turn a DP backpointer into a concrete :class:`RoutingTree`."""
    node_edges: Set[Tuple[GridNode, GridNode]] = set()
    _collect_edges(payload, node_edges)
    pt = grid.point
    edges = [(pt(a), pt(b)) for a, b in node_edges]
    # The source may coincide with the subtree root without explicit edges
    # (e.g. degree-2 nets): make sure it is a node. Sorted, because set
    # iteration order varies run to run and the extra points decide the
    # tree's node indexing — ledger diffs and cached-tree equality tests
    # need reconstruction to be reproducible.
    referenced = {p for e in edges for p in e}
    extra = sorted(referenced)
    if not edges:
        # Single sink collapsed onto the source path: direct connection.
        edges = [(net.source, s) for s in net.sinks]
    return RoutingTree.from_edges(net, edges, extra_points=extra)


def pareto_frontier(net: Net, **kwargs: Any) -> List[Tuple[float, float]]:
    """Bare ``(w, d)`` frontier of ``net`` (convenience wrapper)."""
    return [(w, d) for w, d, _ in pareto_dw(net, with_trees=False, **kwargs)]
