"""Chip-scale negotiated-congestion routing over Pareto frontiers.

The classic PathFinder negotiation loop — iterative rip-up-and-reroute
with present + history congestion pricing — with PatLabor's twist: each
net's (wirelength, delay) Pareto frontier is computed **once** (through
the standard :func:`repro.engine.build.build_engine` stack, so the cache
tiers apply), and per iteration the negotiator re-*prices* every frontier
point's min-congestion embedding under the current cell prices and swaps
the net to the cheapest delay-feasible point, instead of rerouting a
single tree from scratch.

The loop (see ``docs/architecture.md`` for the diagram)::

    prepare:   frontier per net (build_engine) -> rasterize every
               (point, edge, L-orientation) onto the CapacityGrid once
    iterate:   for each net, by criticality:
                   rip up its previous demand
                   price all frontier points (vectorized bincount over
                       the precomputed rasterization)
                   pick the cheapest feasible point, commit its demand
               overuse == 0 ? converged : history += overuse,
                                          pres_fac *= mult, repeat

Convergence is tracked per iteration (total overuse, overused cells,
WNS-style worst delay-budget violation, total wirelength, swaps) and
emitted as ``negotiate_iter`` events plus ``negotiate.*`` counters and
gauges; :meth:`NegotiationResult.metrics` returns the flat dict the run
ledger ingests (``negotiate.iterations`` / ``negotiate.final_overuse`` /
``negotiate.worst_delay`` — all lower-is-better in the diff engine).

The single-tree rip-up baseline is the same loop with every net pinned to
one frontier point (``NegotiatorConfig.point_policy``, resolved through
:func:`repro.engine.resolve_point_policy` — the hook the serve daemon
shares), so frontier swapping and the baseline differ in exactly one
degree of freedom.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.pareto import Solution
from ..geometry.net import Net, random_net
from ..routing.embedding import embed_edge
from .model import HAVE_NUMPY, Array, CapacityGrid, np

if TYPE_CHECKING:  # runtime import is lazy (repro.incremental is optional here)
    from ..incremental.delta import NetDelta

#: Delay-budget comparison slack (mirrors ``eval.design_flow``).
_FEAS_EPS = 1e-9


@dataclass
class NegotiatorConfig:
    """Tunables of one negotiation run.

    Attributes
    ----------
    pres_fac_first, pres_fac_mult:
        The PathFinder present-cost schedule: iteration 1 prices overuse
        at ``pres_fac_first``; every later iteration multiplies by
        ``pres_fac_mult``.
    hist_fac, hist_gain:
        History pricing: after each congested iteration every cell's
        history grows by ``hist_gain * overuse`` and is priced into the
        base weight at ``hist_fac``.
    max_iterations:
        Rip-up/re-commit passes before giving up (the iteration cap).
    delay_slack:
        Per-net delay budget ``(1 + slack) * delay_lower_bound`` — only
        frontier points meeting their budget are eligible (Held–Perner
        style guardrail). The min-delay point is always eligible.
    point_policy:
        ``None`` negotiates over the whole frontier (the PatLabor mode).
        A policy spec (e.g. ``"min_delay"``) pins every net to that one
        frontier point, turning the loop into the classic single-tree
        rip-up baseline.
    engine:
        :class:`~repro.engine.build.EngineSpec` used to compute each
        net's frontier once; ``None`` builds the default PatLabor stack
        (shipped LUT + symmetry cache).
    """

    pres_fac_first: float = 0.5
    pres_fac_mult: float = 1.6
    hist_fac: float = 0.3
    hist_gain: float = 1.0
    max_iterations: int = 40
    delay_slack: float = 0.25
    point_policy: Optional[str] = None
    engine: Optional[Any] = None


@dataclass
class IterationStats:
    """Convergence snapshot after one full rip-up/re-commit pass."""

    index: int
    total_overuse: float
    overused_cells: int
    worst_delay: float
    total_wirelength: float
    swaps: int
    pres_fac: float
    seconds: float


@dataclass
class _CompiledNet:
    """One net's frontier, rasterized once onto the scenario grid.

    Every (frontier point, tree edge, L-orientation) triple is a *group*:
    ``cat_idx`` / ``cat_len`` / ``cat_gid`` concatenate all groups' flat
    cell indices, in-cell lengths, and group ids, so one ``bincount``
    prices the whole frontier; ``group_cells`` keeps each group's own
    arrays for committing the chosen point's demand. ``point_slices[k]``
    is ``(g0, E)``: point ``k`` owns groups ``g0 .. g0 + 2E - 1``,
    ordered edge-major with the lower-L orientation first.
    """

    net: Net
    front: List[Solution]
    budget: float
    criticality: float
    allowed: List[int]
    point_w: Array
    point_d: Array
    point_slices: List[Tuple[int, int]]
    group_cells: List[Tuple[Array, Array]]
    outside_cost: Array
    cat_idx: Array
    cat_len: Array
    cat_gid: Array
    n_groups: int

    def point_costs(self, flat_prices: Array) -> Tuple[Array, Array]:
        """Congestion cost of every frontier point under current prices.

        Returns ``(costs, group_costs)``: per-point totals (each edge
        taking its cheaper orientation, ties to the lower L — the same
        rule as ``CongestionMap.best_edge_cost``) and the per-group costs
        needed to recover the chosen orientations.
        """
        if self.cat_idx.size:
            gcost = np.bincount(
                self.cat_gid,
                weights=self.cat_len * flat_prices[self.cat_idx],
                minlength=self.n_groups,
            )
        else:
            gcost = np.zeros(self.n_groups)
        gcost = gcost + self.outside_cost
        costs = np.empty(len(self.point_slices))
        for k, (g0, edges) in enumerate(self.point_slices):
            pair = gcost[g0:g0 + 2 * edges].reshape(edges, 2)
            lower = pair[:, 0] <= pair[:, 1]
            costs[k] = np.where(lower, pair[:, 0], pair[:, 1]).sum()
        return costs, gcost

    def commit_arrays(self, k: int, gcost: Array) -> Tuple[Array, Array]:
        """The chosen point's demand, with per-edge orientations resolved."""
        g0, edges = self.point_slices[k]
        idx_parts: List[Array] = []
        len_parts: List[Array] = []
        for e in range(edges):
            g = g0 + 2 * e
            if gcost[g] > gcost[g + 1]:
                g += 1
            idx, lengths = self.group_cells[g]
            if idx.size:
                idx_parts.append(idx)
                len_parts.append(lengths)
        if not idx_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        return np.concatenate(idx_parts), np.concatenate(len_parts)


@dataclass
class Scenario:
    """A whole-chip routing problem: many nets competing on one grid.

    ``grid`` is the capacity template — every negotiation run starts from
    :meth:`CapacityGrid.fresh` of it, so one scenario can be replayed
    under different configs (frontier vs pinned-point baseline) without
    cross-talk. Compiled per-net state (frontiers + rasterizations) is
    cached on the scenario and shared by those runs.
    """

    nets: Sequence[Net]
    grid: CapacityGrid
    _compiled: Optional[List[_CompiledNet]] = field(
        default=None, repr=False, compare=False
    )
    _compiled_slack: Optional[float] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def random(
        cls,
        nets: int = 500,
        *,
        cells: int = 16,
        span: float = 1000.0,
        degrees: Tuple[int, int] = (4, 6),
        capacity: Optional[float] = None,
        utilization: float = 0.45,
        seed: int = 2029,
    ) -> "Scenario":
        """A reproducible synthetic scenario with real contention.

        ``capacity`` defaults so that the nets' total half-perimeter
        wirelength, spread perfectly evenly, would fill each cell to
        ``utilization`` — random clustering then pushes hot cells over
        capacity, which is the contention negotiation exists to resolve.
        """
        rng = random.Random(seed)
        lo, hi = degrees
        net_list = [
            random_net(rng.randint(lo, hi), rng=rng, span=span, name=f"n{i:04d}")
            for i in range(nets)
        ]
        if capacity is None:
            hpwl = 0.0
            for net in net_list:
                xs = [p.x for p in net.pins]
                ys = [p.y for p in net.pins]
                hpwl += (max(xs) - min(xs)) + (max(ys) - min(ys))
            capacity = hpwl / float(cells * cells) / utilization
        grid = CapacityGrid.uniform(
            0.0, 0.0, span, span, cells, cells, capacity=capacity
        )
        return cls(nets=net_list, grid=grid)

    def perturb(
        self,
        seed: int,
        kind: str = "move",
        count: int = 1,
        blockage_scale: float = 0.5,
    ) -> List["NetDelta"]:
        """A deterministic ECO stream against this scenario's nets.

        Delegates to :func:`repro.incremental.delta.perturb_nets` with
        the grid frame as the coordinate span; ``kind`` is one of
        ``"move"`` / ``"add"`` / ``"remove"`` / ``"blockage"``
        (``blockage_scale`` sets how hard blockages bite). The stream is
        valid replayed in order (each delta is generated against the
        design as edited by the previous ones) and the same ``(seed,
        kind, count)`` always yields the same deltas.
        """
        from ..incremental.delta import perturb_nets

        span = self.grid.nx * self.grid.cell
        return perturb_nets(
            list(self.nets),
            seed,
            kind=kind,
            count=count,
            span=span,
            blockage_scale=blockage_scale,
        )


class NegotiatedRouter:
    """The PathFinder negotiator: frontiers once, price-and-swap per pass.

    Usage::

        scenario = Scenario.random(nets=500)
        result = NegotiatedRouter(scenario).run()
        assert result.converged and result.final_overuse == 0.0

    Frontier computation goes through :func:`repro.engine.build_engine`
    (pass ``config.engine`` to change the stack, e.g. to attach the
    persistent cache tier); an already-built engine can be injected via
    ``engine=`` (how the serve daemon would share its resident engine).
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[NegotiatorConfig] = None,
        *,
        engine: Optional[Any] = None,
    ) -> None:
        """Bind a scenario and config; the engine is resolved lazily."""
        if not HAVE_NUMPY:
            raise RuntimeError(
                "negotiated routing requires NumPy (CapacityGrid pricing)"
            )
        self.scenario = scenario
        self.config = config or NegotiatorConfig()
        self._engine = engine
        self._compiled: Optional[List[_CompiledNet]] = None

    # ------------------------------------------------------------ prepare

    def _resolve_engine(self) -> Any:
        """The frontier source: injected engine or the configured stack."""
        if self._engine is None:
            from ..engine.build import EngineSpec, build_engine

            spec = self.config.engine
            if spec is None:
                from ..lut.default import default_table

                spec = EngineSpec(
                    router="patlabor",
                    router_options={"lut": default_table()},
                    cache="symmetry",
                )
            self._engine = build_engine(spec)
        return self._engine

    def prepare(self) -> List[_CompiledNet]:
        """Compute + rasterize every net's frontier (idempotent, cached).

        The compiled state is cached on the *scenario* keyed by the delay
        slack, so a frontier run and a pinned-point baseline over the
        same scenario route each net exactly once.
        """
        if self._compiled is not None:
            return self._compiled
        scenario = self.scenario
        if (
            scenario._compiled is not None
            and scenario._compiled_slack == self.config.delay_slack
        ):
            self._compiled = scenario._compiled
            return self._compiled
        engine = self._resolve_engine()
        grid = scenario.grid
        compiled: List[_CompiledNet] = []
        with obs.span("negotiate.prepare"):
            for net in scenario.nets:
                front = list(engine.route(net))
                compiled.append(self._compile_net(net, front, grid))
                obs.counter_add("negotiate.points", len(front))
        obs.counter_add("negotiate.nets", len(compiled))
        scenario._compiled = compiled
        scenario._compiled_slack = self.config.delay_slack
        self._compiled = compiled
        return compiled

    def _compile_net(
        self, net: Net, front: List[Solution], grid: CapacityGrid
    ) -> _CompiledNet:
        """Rasterize one net's frontier onto the grid frame."""
        budget = (1.0 + self.config.delay_slack) * net.delay_lower_bound()
        point_w = np.array([w for w, _d, _t in front])
        point_d = np.array([d for _w, d, _t in front])
        allowed = [
            k for k, d in enumerate(point_d) if d <= budget + _FEAS_EPS
        ]
        if not allowed:
            allowed = [int(np.argmin(point_d))]
        point_slices: List[Tuple[int, int]] = []
        group_cells: List[Tuple[Array, Array]] = []
        outside_cost: List[float] = []
        idx_parts: List[Array] = []
        len_parts: List[Array] = []
        gid_parts: List[Array] = []
        for _w, _d, tree in front:
            edges = list(tree.edges())
            point_slices.append((len(group_cells), len(edges)))
            for child, parent in edges:
                a, b = tree.points[parent], tree.points[child]
                for lower_l in (True, False):
                    seg_idx: List[Array] = []
                    seg_len: List[Array] = []
                    outside = 0.0
                    for seg in embed_edge(a, b, lower_l=lower_l):
                        idx, lengths, out = grid.rasterize_segment(seg)
                        seg_idx.append(idx)
                        seg_len.append(lengths)
                        outside += out
                    gidx = (
                        np.concatenate(seg_idx)
                        if seg_idx
                        else np.empty(0, dtype=np.int64)
                    )
                    glen = (
                        np.concatenate(seg_len)
                        if seg_len
                        else np.empty(0, dtype=np.float64)
                    )
                    gid = len(group_cells)
                    group_cells.append((gidx, glen))
                    outside_cost.append(outside * grid.outside_weight)
                    if gidx.size:
                        idx_parts.append(gidx)
                        len_parts.append(glen)
                        gid_parts.append(
                            np.full(gidx.size, gid, dtype=np.int64)
                        )
        n_groups = len(group_cells)
        return _CompiledNet(
            net=net,
            front=front,
            budget=budget,
            criticality=net.delay_lower_bound(),
            allowed=allowed,
            point_w=point_w,
            point_d=point_d,
            point_slices=point_slices,
            group_cells=group_cells,
            outside_cost=np.asarray(outside_cost, dtype=np.float64),
            cat_idx=(
                np.concatenate(idx_parts)
                if idx_parts
                else np.empty(0, dtype=np.int64)
            ),
            cat_len=(
                np.concatenate(len_parts)
                if len_parts
                else np.empty(0, dtype=np.float64)
            ),
            cat_gid=(
                np.concatenate(gid_parts)
                if gid_parts
                else np.empty(0, dtype=np.int64)
            ),
            n_groups=n_groups,
        )

    def _candidate_points(self, compiled: _CompiledNet) -> List[int]:
        """Frontier indices a net may occupy under the configured mode."""
        if self.config.point_policy is None:
            return compiled.allowed
        from ..engine.protocol import resolve_point_policy

        policy = resolve_point_policy(self.config.point_policy)
        return [policy.select(compiled.net, compiled.front)]

    # ---------------------------------------------------------------- run

    def run(self) -> "NegotiationResult":
        """Negotiate until overuse hits zero or the iteration cap."""
        compiled = self.prepare()
        grid = self.scenario.grid.fresh()
        grid.pres_fac = self.config.pres_fac_first
        grid.hist_fac = self.config.hist_fac
        candidates = [self._candidate_points(c) for c in compiled]
        order = sorted(
            range(len(compiled)),
            key=lambda i: (-compiled[i].criticality, i),
        )
        chosen: List[Optional[int]] = [None] * len(compiled)
        committed: List[Optional[Tuple[Array, Array]]] = [None] * len(compiled)
        iterations: List[IterationStats] = []
        converged = False
        for iteration in range(1, self.config.max_iterations + 1):
            t0 = time.perf_counter()
            swaps = 0
            with obs.span("negotiate.iteration"):
                for i in order:
                    c = compiled[i]
                    prev = committed[i]
                    if prev is not None:
                        grid.ripup(*prev)
                    costs, gcost = c.point_costs(grid.flat_prices())
                    best: Optional[Tuple[float, float, float, int]] = None
                    for k in candidates[i]:
                        key = (
                            float(costs[k]),
                            float(c.point_w[k]),
                            float(c.point_d[k]),
                            k,
                        )
                        if best is None or key < best:
                            best = key
                    assert best is not None
                    k = best[3]
                    arrays = c.commit_arrays(k, gcost)
                    grid.commit(*arrays)
                    if chosen[i] is not None and chosen[i] != k:
                        swaps += 1
                    chosen[i] = k
                    committed[i] = arrays
            seconds = time.perf_counter() - t0
            stats = self._iteration_stats(
                iteration, grid, compiled, chosen, swaps, seconds
            )
            iterations.append(stats)
            self._publish_iteration(stats)
            if stats.total_overuse == 0.0:
                converged = True
                break
            grid.update_history(self.config.hist_gain)
            grid.escalate(self.config.pres_fac_mult)
        chosen_map: Dict[str, int] = {}
        committed_map: Dict[str, Tuple[Array, Array]] = {}
        for i, c in enumerate(compiled):
            final_k = chosen[i]
            name = c.net.name or f"net{i}"
            chosen_map[name] = int(final_k) if final_k is not None else 0
            arrays = committed[i]
            if arrays is not None:
                committed_map[name] = arrays
        result = NegotiationResult(
            converged=converged,
            iterations=iterations,
            chosen=chosen_map,
            grid=grid,
            committed=committed_map,
        )
        obs.gauge_set("negotiate.final_overuse", result.final_overuse)
        obs.gauge_set("negotiate.worst_delay", result.worst_delay)
        return result

    # ------------------------------------------------------ incremental run

    @staticmethod
    def _region_cells(
        grid: CapacityGrid, region: Tuple[float, float, float, float]
    ) -> Array:
        """Flat indices of every cell intersecting ``region`` (clamped)."""
        x0, y0, x1, y1 = region
        ix0 = max(0, int(math.floor((min(x0, x1) - grid.xlo) / grid.cell)))
        ix1 = min(
            grid.nx - 1, int(math.floor((max(x0, x1) - grid.xlo) / grid.cell))
        )
        iy0 = max(0, int(math.floor((min(y0, y1) - grid.ylo) / grid.cell)))
        iy1 = min(
            grid.ny - 1, int(math.floor((max(y0, y1) - grid.ylo) / grid.cell))
        )
        if ix1 < ix0 or iy1 < iy0:
            return np.empty(0, dtype=np.int64)
        ix = np.arange(ix0, ix1 + 1, dtype=np.int64)
        iy = np.arange(iy0, iy1 + 1, dtype=np.int64)
        return (ix[:, None] * grid.ny + iy[None, :]).reshape(-1)

    def run_incremental(
        self, previous: "NegotiationResult", delta: "NetDelta"
    ) -> "NegotiationResult":
        """Connection-based rip-up: renegotiate only what ``delta`` dirties.

        Applies ``delta`` to the scenario in place (a net delta replaces
        the named net and recompiles only its rasterization; a blockage
        delta scales the capacity template over its region), then
        partitions the design: **dirty** nets — the edited net plus
        every net whose previously committed demand touches a dirty cell
        (the edited net's old and new cells, or the blockage region) —
        renegotiate from the PathFinder schedule's start, while every
        other net has its previous committed demand replayed verbatim
        and never moves. History prices carry over from ``previous``
        (the VTR ``was_rerouted`` shape: invalidation is per connection,
        accumulated congestion knowledge is not thrown away).

        Falls back to a full :meth:`run` over the updated scenario —
        compiled state is already cached, so frontier work is not
        repeated — when the frozen-background negotiation cannot reach
        zero overuse within the iteration cap. Raises ``ValueError``
        when ``previous`` lacks committed state or names an unknown net.
        """
        if previous.committed is None:
            raise ValueError(
                "previous result lacks committed state; produce it with "
                "run() on this NegotiatedRouter version"
            )
        from ..incremental.delta import apply_delta as apply_net_delta

        compiled = self.prepare()
        scenario = self.scenario
        n_cells = scenario.grid.nx * scenario.grid.ny
        dirty_mask = np.zeros(n_cells, dtype=bool)
        edited_idx: Optional[int] = None
        with obs.span("negotiate.eco_prepare"):
            if delta.kind == "blockage":
                assert delta.region is not None
                cells = self._region_cells(scenario.grid, delta.region)
                scenario.grid.capacity.reshape(-1)[cells] *= delta.scale
                dirty_mask[cells] = True
            else:
                names = [c.net.name for c in compiled]
                try:
                    edited_idx = names.index(delta.net)
                except ValueError:
                    raise ValueError(
                        f"delta names unknown net {delta.net!r}"
                    ) from None
                prev_commit = previous.committed.get(delta.net)
                if prev_commit is not None and prev_commit[0].size:
                    dirty_mask[prev_commit[0]] = True
                new_net = apply_net_delta(compiled[edited_idx].net, delta)
                engine = self._resolve_engine()
                front = list(engine.route(new_net))
                compiled[edited_idx] = self._compile_net(
                    new_net, front, scenario.grid
                )
                nets = list(scenario.nets)
                nets[edited_idx] = new_net
                scenario.nets = nets
                if compiled[edited_idx].cat_idx.size:
                    dirty_mask[compiled[edited_idx].cat_idx] = True
        dirty: List[int] = []
        chosen: List[Optional[int]] = [None] * len(compiled)
        committed: List[Optional[Tuple[Array, Array]]] = [None] * len(compiled)
        grid = scenario.grid.fresh()
        grid.history = previous.grid.history.copy()
        grid.pres_fac = self.config.pres_fac_first
        grid.hist_fac = self.config.hist_fac
        for i, c in enumerate(compiled):
            name = c.net.name or f"net{i}"
            prev_arrays = previous.committed.get(name)
            if (
                i == edited_idx
                or prev_arrays is None
                or (prev_arrays[0].size and bool(dirty_mask[prev_arrays[0]].any()))
            ):
                dirty.append(i)
                chosen[i] = previous.chosen.get(name)
            else:
                grid.commit(*prev_arrays)
                committed[i] = prev_arrays
                chosen[i] = previous.chosen.get(name, 0)
        obs.counter_add("negotiate.eco_rerouted", len(dirty))
        obs.counter_add("negotiate.eco_replayed", len(compiled) - len(dirty))
        candidates = {i: self._candidate_points(compiled[i]) for i in dirty}
        order = sorted(dirty, key=lambda i: (-compiled[i].criticality, i))
        iterations: List[IterationStats] = []
        converged = False
        for iteration in range(1, self.config.max_iterations + 1):
            t0 = time.perf_counter()
            swaps = 0
            with obs.span("negotiate.iteration"):
                for i in order:
                    c = compiled[i]
                    prev = committed[i]
                    if prev is not None:
                        grid.ripup(*prev)
                    costs, gcost = c.point_costs(grid.flat_prices())
                    best: Optional[Tuple[float, float, float, int]] = None
                    for k in candidates[i]:
                        key = (
                            float(costs[k]),
                            float(c.point_w[k]),
                            float(c.point_d[k]),
                            k,
                        )
                        if best is None or key < best:
                            best = key
                    assert best is not None
                    k = best[3]
                    arrays = c.commit_arrays(k, gcost)
                    grid.commit(*arrays)
                    if chosen[i] is not None and chosen[i] != k:
                        swaps += 1
                    chosen[i] = k
                    committed[i] = arrays
            seconds = time.perf_counter() - t0
            stats = self._iteration_stats(
                iteration, grid, compiled, chosen, swaps, seconds
            )
            iterations.append(stats)
            self._publish_iteration(stats)
            if stats.total_overuse == 0.0:
                converged = True
                break
            grid.update_history(self.config.hist_gain)
            grid.escalate(self.config.pres_fac_mult)
        if not converged:
            # The frozen background can wedge negotiation (a clean net may
            # need to move to free a cell) — widen to a full re-run; the
            # cached compiled state makes this pure negotiation work.
            obs.counter_add("negotiate.eco_fallbacks")
            return self.run()
        chosen_map: Dict[str, int] = {}
        committed_map: Dict[str, Tuple[Array, Array]] = {}
        for i, c in enumerate(compiled):
            name = c.net.name or f"net{i}"
            final_k = chosen[i]
            chosen_map[name] = int(final_k) if final_k is not None else 0
            arrays = committed[i]
            if arrays is not None:
                committed_map[name] = arrays
        result = NegotiationResult(
            converged=converged,
            iterations=iterations,
            chosen=chosen_map,
            grid=grid,
            committed=committed_map,
        )
        obs.gauge_set("negotiate.final_overuse", result.final_overuse)
        obs.gauge_set("negotiate.worst_delay", result.worst_delay)
        return result

    def _iteration_stats(
        self,
        iteration: int,
        grid: CapacityGrid,
        compiled: List[_CompiledNet],
        chosen: List[Optional[int]],
        swaps: int,
        seconds: float,
    ) -> IterationStats:
        """Aggregate one pass's convergence numbers."""
        worst = 0.0
        wirelength = 0.0
        for c, k in zip(compiled, chosen):
            if k is None:  # pragma: no cover - every net is committed
                continue
            worst = max(worst, float(c.point_d[k]) - c.budget)
            wirelength += float(c.point_w[k])
        return IterationStats(
            index=iteration,
            total_overuse=grid.total_overuse(),
            overused_cells=grid.overused_cells(),
            worst_delay=max(0.0, worst),
            total_wirelength=wirelength,
            swaps=swaps,
            pres_fac=grid.pres_fac,
            seconds=seconds,
        )

    def _publish_iteration(self, stats: IterationStats) -> None:
        """One iteration's observability: event, counters, timer."""
        obs.emit_event(
            "negotiate_iter",
            iteration=stats.index,
            overuse=stats.total_overuse,
            overused_cells=stats.overused_cells,
            worst_delay=stats.worst_delay,
            wirelength=stats.total_wirelength,
            swaps=stats.swaps,
            pres_fac=stats.pres_fac,
            wall_s=stats.seconds,
        )
        obs.counter_add("negotiate.iterations")
        obs.counter_add("negotiate.swaps", stats.swaps)
        obs.timer_observe("negotiate.iteration_seconds", stats.seconds)


@dataclass
class NegotiationResult:
    """Outcome of one negotiation run.

    ``chosen`` maps net name to the frontier index the net ended on;
    ``grid`` is the run's own grid (demand as committed — hand it to
    :func:`repro.viz.overuse_heatmap_svg` for the congestion picture).
    ``committed`` retains every net's final rasterized demand arrays —
    the state :meth:`NegotiatedRouter.run_incremental` replays for nets
    an ECO delta does not touch.
    """

    converged: bool
    iterations: List[IterationStats]
    chosen: Dict[str, int]
    grid: CapacityGrid
    committed: Optional[Dict[str, Tuple[Array, Array]]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def iteration_count(self) -> int:
        """How many rip-up/re-commit passes ran."""
        return len(self.iterations)

    @property
    def final_overuse(self) -> float:
        """Total overuse after the last pass (0.0 iff converged)."""
        return self.iterations[-1].total_overuse if self.iterations else 0.0

    @property
    def worst_delay(self) -> float:
        """WNS-style worst delay-budget violation of the final choice."""
        return self.iterations[-1].worst_delay if self.iterations else 0.0

    @property
    def total_wirelength(self) -> float:
        """Total wirelength of the final per-net choices."""
        return (
            self.iterations[-1].total_wirelength if self.iterations else 0.0
        )

    @property
    def total_swaps(self) -> int:
        """Frontier-point swaps summed over every pass."""
        return sum(s.swaps for s in self.iterations)

    def metrics(self, prefix: str = "negotiate") -> Dict[str, float]:
        """The flat metric dict ledger records carry (see ``obs.ledger``)."""
        return {
            f"{prefix}.iterations": float(self.iteration_count),
            f"{prefix}.converged": 1.0 if self.converged else 0.0,
            f"{prefix}.final_overuse": self.final_overuse,
            f"{prefix}.overused_cells": float(
                self.iterations[-1].overused_cells if self.iterations else 0
            ),
            f"{prefix}.worst_delay": self.worst_delay,
            f"{prefix}.total_wirelength": self.total_wirelength,
            f"{prefix}.swaps": float(self.total_swaps),
        }
