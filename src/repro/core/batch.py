"""Batch routing: route whole net lists with caching and multiprocessing.

The paper's use case is "route millions of nets"; this module provides the
throughput layer a production deployment needs:

* :func:`route_batch` — route a net list, optionally across worker
  processes (nets are independent), through any registered router
  (``method=...``) with a translation- or symmetry-canonicalizing cache
  in front (``cache_mode=...``).
* :class:`BatchResult` — per-net Pareto sets plus throughput statistics.

Worker processes build their engine **once, at pool initialization** via
:func:`repro.engine.build.build_engine` (a pool ``initializer`` stores it
in a module global), so the engine — lookup tables, cache, RNG state —
is never re-pickled per task: only nets and plain objective results
cross process boundaries. With ``cache_store`` set, every worker shares
one persistent disk tier, so canonical patterns solved by one worker (or
a previous run) are disk hits for all the others.

When observability is enabled (:func:`repro.obs.enable`) the run is
profiled end to end: per-net route times, per-worker throughput and queue
wait, and the workers' own metric registries merged back into the parent
process — all surfaced both in the global registry and in
:attr:`BatchResult.metrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry.net import Net
from .. import obs
from ..obs import emit_event, span, timer_observe
from .pareto import Solution
from .patlabor import PatLaborConfig


@dataclass
class BatchResult:
    """Outcome of one batch run."""

    fronts: Dict[str, List[Solution]]
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    #: Structured profile of the run (only populated while
    #: :func:`repro.obs.enable` is active): headline throughput numbers
    #: plus one entry per worker. ``None`` on unprofiled runs.
    metrics: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def nets_per_second(self) -> float:
        return len(self.fronts) / self.seconds if self.seconds > 0 else 0.0

    @property
    def total_solutions(self) -> int:
        return sum(len(f) for f in self.fronts.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


def _build_batch_engine(
    config: PatLaborConfig,
    use_cache: bool,
    method: str,
    cache_mode: str,
    cache_store: Optional[str] = None,
):
    """The per-process engine stack: validation, cache, observability.

    Resolved through the :mod:`repro.engine` registry — ``method`` names
    any registered router; ``config`` is forwarded to PatLabor only (the
    other routers take no batch-level configuration).
    """
    from ..engine import EngineSpec, build_engine

    options: Dict[str, object] = {}
    if method == "patlabor":
        options["config"] = config
    return build_engine(
        EngineSpec(
            router=method,
            router_options=options,
            cache=cache_mode if use_cache else None,
            cache_store=cache_store if use_cache else None,
        )
    )


def _route_with(
    router, nets: Sequence[Net]
) -> Tuple[Dict[str, List[Solution]], int, int]:
    """Route ``nets`` through an assembled engine, counting cache deltas.

    Hit/miss counts are reported as *deltas* over the call (the engine may
    be a pool-resident instance that already served earlier tasks).
    """
    hits0 = getattr(router, "hits", 0) + getattr(router, "store_hits", 0)
    misses0 = getattr(router, "misses", 0)
    fronts: Dict[str, List[Solution]] = {}
    profiling = obs.enabled()
    for i, net in enumerate(nets):
        name = net.name or f"net_{i}"
        if profiling:
            t0 = time.perf_counter()
            fronts[name] = router.route(net)
            timer_observe("batch.net_seconds", time.perf_counter() - t0)
        else:
            fronts[name] = router.route(net)
    hits = getattr(router, "hits", 0) + getattr(router, "store_hits", 0) - hits0
    misses = getattr(router, "misses", 0) - misses0
    return fronts, hits, misses


def _route_serial(
    nets: Sequence[Net],
    config: PatLaborConfig,
    use_cache: bool,
    method: str = "patlabor",
    cache_mode: str = "translation",
    cache_store: Optional[str] = None,
) -> Tuple[Dict[str, List[Solution]], int, int]:
    router = _build_batch_engine(config, use_cache, method, cache_mode, cache_store)
    try:
        return _route_with(router, nets)
    finally:
        close = getattr(router, "close", None)
        if callable(close):
            close()


#: Pool-resident worker state, populated once per process by
#: :func:`_init_worker` — the engine (and its lookup table / cache) lives
#: here instead of being re-pickled inside every task tuple.
_POOL_STATE: Dict[str, object] = {}


def _init_worker(config_dict, use_cache, method, cache_mode, cache_store, obs_flags):
    """Pool initializer: build the engine once per worker process.

    Runs in the child before any task. The engine stack (with its lookup
    table and cache tiers) is constructed here and kept in a module
    global, so tasks only ship nets; on fork start methods the lookup
    table pages loaded by the parent are inherited copy-on-write and the
    per-worker build is effectively free.
    """
    profiling, tracing, logging_events = obs_flags
    registry = obs.get_registry()
    collector = obs.get_trace_collector()
    event_log = obs.get_event_log()
    if profiling or tracing or logging_events:
        # Fork inherits the parent's buffers; start clean so what is sent
        # back covers exactly this worker's share.
        registry.reset()
        collector.clear()
        event_log.clear()
    if profiling:
        registry.enable()
    if tracing:
        collector.enable()
    if logging_events:
        event_log.enable()
    config = PatLaborConfig(**config_dict)
    _POOL_STATE["engine"] = _build_batch_engine(
        config, use_cache, method, cache_mode, cache_store
    )
    _POOL_STATE["obs_flags"] = obs_flags


def _worker(args):
    """Process-pool worker: routes one shard on the pool-resident engine.

    Returns payload-free fronts (trees don't cross process boundaries
    cheaply; objectives are what batch callers need), plus its metrics
    snapshot / trace events / log events when the parent has the
    corresponding observability layer enabled. The engine itself comes
    from :data:`_POOL_STATE` — built once in :func:`_init_worker`, never
    shipped inside the task tuple.
    """
    nets, dispatched_at = args
    profiling, tracing, logging_events = _POOL_STATE["obs_flags"]
    started_at = time.time()
    registry = obs.get_registry()
    collector = obs.get_trace_collector()
    event_log = obs.get_event_log()
    if profiling or tracing or logging_events:
        # Drop initializer-time noise so what is sent back covers exactly
        # this task's share.
        registry.reset()
        collector.clear()
        event_log.clear()
    t0 = time.perf_counter()
    engine = _POOL_STATE["engine"]
    fronts, hits, misses = _route_with(engine, nets)
    # Pool teardown terminates workers without running atexit hooks, so
    # persist the store's lifetime counters while we still can.
    store = getattr(engine, "store", None)
    if store is not None:
        store.flush_stats()
    slim = {
        name: [(w, d, None) for w, d, _t in front]
        for name, front in fronts.items()
    }
    stats = None
    if profiling or tracing or logging_events:
        elapsed = time.perf_counter() - t0
        stats = {
            "nets": len(slim),
            "seconds": elapsed,
            "nets_per_second": len(slim) / elapsed if elapsed > 0 else 0.0,
            "queue_wait_seconds": max(0.0, started_at - dispatched_at),
            "snapshot": registry.snapshot(with_samples=True) if profiling else None,
            "trace_events": collector.drain() if tracing else [],
            "events": event_log.drain() if logging_events else [],
        }
    return slim, hits, misses, stats


def route_batch(
    nets: Sequence[Net],
    *,
    config: Optional[PatLaborConfig] = None,
    jobs: int = 1,
    use_cache: bool = True,
    method: str = "patlabor",
    cache_mode: str = "translation",
    cache_store: Optional[str] = None,
) -> BatchResult:
    """Route every net; returns per-net Pareto sets keyed by net name.

    ``method`` names any router registered with :mod:`repro.engine`
    (``"patlabor"``, ``"salt"``, ``"pareto-ks"``, ...); each worker
    assembles its own engine stack from that name, so there is no
    batch-local method table. ``cache_mode`` selects the cache's
    canonicalization (``"translation"`` or ``"symmetry"``) and
    ``cache_store`` optionally adds a persistent disk tier shared by
    every worker (both only when ``use_cache`` is set; disk hits count
    into :attr:`BatchResult.cache_hits`).

    With ``jobs > 1`` the nets are sharded across processes and the
    returned solutions carry ``None`` payloads (objectives only); run
    serially when the trees themselves are needed. Each worker builds its
    engine exactly once, in the pool initializer — tasks carry nets, not
    engine state. Workers inherit whichever observability layers are
    enabled in the parent — metrics registry, Chrome-trace capture,
    structured event log — and ship their buffers back for merging, so
    cross-process runs still produce one registry, one trace, and one
    chronological event stream.
    """
    config = config or PatLaborConfig()
    profiling = obs.enabled()
    tracing = obs.trace_enabled()
    logging_events = obs.events_enabled()
    t0 = time.perf_counter()
    with span("batch.route_batch"):
        if not nets:
            # Nothing to route: skip pool setup entirely. Ratio metrics
            # (cache_hit_rate, nets_per_second) read 0.0 on this path.
            result = BatchResult(fronts={}, seconds=time.perf_counter() - t0)
            if profiling:
                result.metrics = _batch_metrics(result, workers=[])
            return result
        if jobs <= 1:
            fronts, hits, misses = _route_serial(
                nets, config, use_cache, method, cache_mode, cache_store
            )
            result = BatchResult(
                fronts=fronts,
                seconds=time.perf_counter() - t0,
                cache_hits=hits,
                cache_misses=misses,
            )
            if profiling:
                result.metrics = _batch_metrics(result, workers=None)
            if logging_events:
                _emit_batch_event(result, jobs=1)
            return result

        import multiprocessing
        from dataclasses import asdict

        shards: List[List[Net]] = [[] for _ in range(jobs)]
        for i, net in enumerate(nets):
            shards[i % jobs].append(net)
        dispatched_at = time.time()
        obs_flags = (profiling, tracing, logging_events)
        initargs = (
            asdict(config), use_cache, method, cache_mode, cache_store,
            obs_flags,
        )
        payload = [(shard, dispatched_at) for shard in shards if shard]
        fronts: Dict[str, List[Solution]] = {}
        hits = misses = 0
        workers: List[Dict[str, float]] = []
        registry = obs.get_registry()
        collector = obs.get_trace_collector()
        event_log = obs.get_event_log()
        with multiprocessing.Pool(
            processes=jobs, initializer=_init_worker, initargs=initargs
        ) as pool:
            for slim, h, m, stats in pool.map(_worker, payload):
                fronts.update(slim)
                hits += h
                misses += m
                if stats is not None:
                    snapshot = stats.pop("snapshot")
                    if snapshot is not None:
                        registry.merge_snapshot(snapshot)
                    collector.extend(stats.pop("trace_events"))
                    event_log.extend(stats.pop("events"))
                    timer_observe(
                        "batch.queue_wait_seconds", stats["queue_wait_seconds"]
                    )
                    timer_observe("batch.worker_seconds", stats["seconds"])
                    workers.append(stats)
    result = BatchResult(
        fronts=fronts,
        seconds=time.perf_counter() - t0,
        cache_hits=hits,
        cache_misses=misses,
    )
    if profiling:
        result.metrics = _batch_metrics(result, workers=workers)
    if logging_events:
        _emit_batch_event(result, jobs=jobs)
    return result


def _emit_batch_event(result: BatchResult, jobs: int) -> None:
    """One ``batch_done`` summary event per :func:`route_batch` call."""
    emit_event(
        "batch_done",
        nets=len(result.fronts),
        jobs=jobs,
        seconds=result.seconds,
        nets_per_second=result.nets_per_second,
        cache_hits=result.cache_hits,
        cache_misses=result.cache_misses,
        cache_hit_rate=result.cache_hit_rate,
        peak_rss_kb=obs.peak_rss_kb(),
    )


def _batch_metrics(
    result: BatchResult, workers: Optional[List[Dict[str, float]]]
) -> Dict[str, object]:
    """The headline profile numbers attached to :attr:`BatchResult.metrics`."""
    obs.counter_add("batch.nets", len(result.fronts))
    return {
        "nets": len(result.fronts),
        "seconds": result.seconds,
        "nets_per_second": result.nets_per_second,
        "cache_hit_rate": result.cache_hit_rate,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "workers": workers if workers is not None else [],
    }
