"""Plain-text / markdown rendering of experiment artefacts.

Every benchmark prints its table or figure series through these helpers so
the console output mirrors the paper's layout (and EXPERIMENTS.md can be
regenerated mechanically).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.frontier_stats import Fig6Result
from ..lut.table import DegreeStats
from .metrics import AveragedCurve, Table3Row, Table4Row


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width aligned text table."""
    cols = [list(map(str, col)) for col in zip(headers, *rows)]
    widths = [max(len(c) for c in col) for col in cols]
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(str(c).rjust(w) for c, w in zip(row, widths))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(sep)
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_table2(stats: Sequence[DegreeStats], title: str = "Table II — lookup table statistics") -> str:
    rows = [
        [
            st.degree,
            st.num_index,
            f"{st.avg_topologies:.2f}",
            st.distinct_topologies,
            f"{st.build_seconds:.1f}s",
            "sampled" if st.sampled else "full",
        ]
        for st in stats
    ]
    return format_table(
        ["Degree", "#Index", "#Topo", "#Distinct", "Time", "Coverage"],
        rows,
        title=title,
    )


def render_table3(rows: Sequence[Table3Row], title: str = "Table III — ratio of non-optimal nets") -> str:
    methods = list(rows[0].ratios.keys()) if rows else []
    body = []
    totals = {m: 0.0 for m in methods}
    total_nets = 0
    for r in rows:
        body.append(
            [r.degree, r.num_nets]
            + [f"{r.ratios[m] * 100:.1f}%" for m in methods]
        )
        for m in methods:
            totals[m] += r.ratios[m] * r.num_nets
        total_nets += r.num_nets
    if total_nets:
        body.append(
            ["Total", total_nets]
            + [f"{totals[m] / total_nets * 100:.1f}%" for m in methods]
        )
    return format_table(["n", "#Net"] + methods, body, title=title)


def render_table4(rows: Sequence[Table4Row], title: str = "Table IV — Pareto-frontier solutions found") -> str:
    methods = list(rows[0].found.keys()) if rows else []
    body = []
    grand = {m: 0 for m in methods}
    frontier_total = 0
    for r in rows:
        body.append([r.degree, r.frontier_total] + [r.found[m] for m in methods])
        for m in methods:
            grand[m] += r.found[m]
        frontier_total += r.frontier_total
    if frontier_total:
        body.append(
            ["Total(ratio)", "1.000"]
            + [f"{grand[m] / frontier_total:.3f}" for m in methods]
        )
    return format_table(["n", "|Frontier|"] + methods, body, title=title)


def render_fig6(result: Fig6Result, title: str = "Fig. 6 — max Pareto frontier size vs degree") -> str:
    rows = [
        [s.degree, s.count, f"{s.mean_size:.2f}", s.max_size]
        for s in result.per_degree
    ]
    table = format_table(["n", "#nets", "mean|F|", "max|F|"], rows, title=title)
    return (
        f"{table}\n"
        f"fit: max|F| ~= {result.slope:.2f} * n + {result.intercept:.2f} "
        f"(paper: y = 2.85x - 10.9)"
    )


def render_curves(
    curves: Sequence[AveragedCurve],
    title: str = "Fig. 7 — averaged normalised Pareto curves",
    budgets_to_show: Optional[Sequence[float]] = None,
) -> str:
    if not curves:
        return title + " (no data)"
    budgets = curves[0].budgets
    if budgets_to_show is not None:
        idx = [min(range(len(budgets)), key=lambda i: abs(budgets[i] - b))
               for b in budgets_to_show]
    else:
        idx = list(range(0, len(budgets), max(1, len(budgets) // 8)))
    headers = ["w-budget"] + [c.method for c in curves]
    rows = []
    for i in idx:
        rows.append(
            [f"{budgets[i]:.2f}"] + [f"{c.mean_delay[i]:.4f}" for c in curves]
        )
    table = format_table(headers, rows, title=title)
    runtimes = ", ".join(f"{c.method}: {c.total_runtime:.2f}s" for c in curves)
    return f"{table}\ntotal runtimes: {runtimes}"


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(map(str, headers)) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for r in rows:
        out.append("| " + " | ".join(map(str, r)) + " |")
    return "\n".join(out)
