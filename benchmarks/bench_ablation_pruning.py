"""Ablation A1 — Pareto-DW pruning lemmas (2, 3, 4) on/off.

DESIGN.md calls out the three pruning lemmas as the reason Pareto-DW is
practical. Measures DP work counters and wall time per configuration on
the same nets; all configurations must return identical frontiers
(exactness is pruning-independent).

Timed kernels: full DW with all pruning vs none (two benchmark rounds via
pedantic manual timing; the pytest-benchmark fixture times the pruned
variant).
"""

import random
import time

from repro.core.pareto_dw import DWStats, pareto_frontier
from repro.eval.reporting import format_table
from repro.geometry.net import random_net

from conftest import write_artifact

CONFIGS = [
    ("all on", dict(lemma2=True, lemma3=True, lemma4=True)),
    ("no L2", dict(lemma2=False, lemma3=True, lemma4=True)),
    ("no L3", dict(lemma2=True, lemma3=False, lemma4=True)),
    ("no L4", dict(lemma2=True, lemma3=True, lemma4=False)),
    ("all off", dict(lemma2=False, lemma3=False, lemma4=False)),
]


def test_ablation_pruning(benchmark):
    rng = random.Random(12)
    nets = [random_net(7, rng=rng) for _ in range(4)]

    reference = [pareto_frontier(n) for n in nets]
    rows = []
    timings = {}
    for name, flags in CONFIGS:
        stats = DWStats()
        t0 = time.perf_counter()
        fronts = [pareto_frontier(n, stats=stats, **flags) for n in nets]
        elapsed = time.perf_counter() - t0
        timings[name] = elapsed
        for got, want in zip(fronts, reference):
            assert len(got) == len(want)
            for (gw, gd), (ww, wd) in zip(got, want):
                assert abs(gw - ww) < 1e-6 and abs(gd - wd) < 1e-6
        rows.append(
            [
                name,
                stats.grid_nodes,
                stats.merge_transitions,
                stats.closure_extensions,
                f"{elapsed:.2f}s",
            ]
        )
    table = format_table(
        ["config", "grid nodes", "merge transitions", "closure ext", "time (4 nets)"],
        rows,
        title="Ablation — Pareto-DW pruning lemmas (degree-7 nets)",
    )
    write_artifact("ablation_pruning.txt", table)

    # Pruning must pay: full pruning beats no pruning clearly.
    assert timings["all on"] < timings["all off"]

    net = nets[0]
    benchmark(lambda: pareto_frontier(net))
