"""Tests for the routing cache and parallel LUT generation."""

import multiprocessing
import random

import pytest

from repro.core.cache import CachedRouter, canonical_key, translation_key
from repro.core.pareto_dw import pareto_frontier
from repro.core.patlabor import PatLabor
from repro.geometry.net import Net, random_net
from repro.lut.generator import generate_degree, generate_degree_parallel


class TestTranslationKey:
    def test_translates_share_key(self):
        net = random_net(6, rng=random.Random(1))
        moved = net.translated(123.5, -77.25)
        assert translation_key(net) == translation_key(moved)

    def test_different_shapes_differ(self):
        a = Net.from_points((0, 0), [(1, 1)])
        b = Net.from_points((0, 0), [(1, 2)])
        assert translation_key(a) != translation_key(b)

    def test_sub_micro_noise_shares_key(self):
        # The documented contract: source-relative coordinates are rounded
        # to 1e-6, so noise well below that collapses onto one key.
        a = Net.from_points((0, 0), [(1.0, 1.0), (2.0, 3.0)])
        b = Net.from_points((0, 0), [(1.0 + 4e-7, 1.0 - 4e-7), (2.0, 3.0)])
        assert translation_key(a) == translation_key(b)

    def test_above_micro_difference_splits_key(self):
        a = Net.from_points((0, 0), [(1.0, 1.0), (2.0, 3.0)])
        b = Net.from_points((0, 0), [(1.0 + 2e-6, 1.0), (2.0, 3.0)])
        assert translation_key(a) != translation_key(b)


class TestCachedRouter:
    def test_hit_on_exact_repeat(self):
        router = CachedRouter(PatLabor())
        net = random_net(5, rng=random.Random(2))
        first = router.route(net)
        second = router.route(net)
        assert router.hits == 1 and router.misses == 1
        assert [(w, d) for w, d, _ in first] == [(w, d) for w, d, _ in second]

    def test_hit_on_translate_returns_valid_trees(self):
        router = CachedRouter(PatLabor())
        net = random_net(5, rng=random.Random(3))
        moved = net.translated(50, 75)
        base = router.route(net)
        translated = router.route(moved)
        assert router.hits == 1
        # Objectives identical; trees live at the translated coordinates.
        assert [(w, d) for w, d, _ in base] == [
            (w, d) for w, d, _ in translated
        ]
        for _w, _d, tree in translated:
            tree.validate()
            assert tree.net is moved or tree.net.key() == moved.key()

    def test_translated_results_match_direct_routing(self, assert_fronts_equal):
        router = CachedRouter(PatLabor())
        net = random_net(6, rng=random.Random(4))
        moved = net.translated(-31.5, 12.0)
        router.route(net)
        cached = router.route(moved)
        assert_fronts_equal(cached, pareto_frontier(moved))

    def test_eviction(self):
        router = CachedRouter(PatLabor(), max_entries=2)
        rng = random.Random(5)
        nets = [random_net(4, rng=rng) for _ in range(3)]
        for n in nets:
            router.route(n)
        router.route(nets[0])  # evicted: must be a miss again
        assert router.misses == 4

    def test_sub_micro_noise_shares_cache_entry(self):
        # Regression for the 1e-6 rounding contract of translation_key:
        # nets differing by < 1e-6 hit the same entry and serve valid
        # trees snapped onto the query net's own pins...
        router = CachedRouter(PatLabor())
        a = Net.from_points((0, 0), [(10.0, 2.0), (7.0, 9.0), (3.0, 8.0)])
        b = Net.from_points(
            (0, 0), [(10.0 + 4e-7, 2.0), (7.0, 9.0 - 4e-7), (3.0, 8.0)]
        )
        first = router.route(a)
        second = router.route(b)
        assert router.hits == 1 and router.misses == 1
        assert [(w, d) for w, d, _ in first] == [
            (w, d) for w, d, _ in second
        ]
        for _w, _d, tree in second:
            tree.validate()
            assert tree.net.key() == b.key()

    def test_above_micro_difference_misses(self):
        # ...while nets differing by > 1e-6 get their own entries.
        router = CachedRouter(PatLabor())
        a = Net.from_points((0, 0), [(10.0, 2.0), (7.0, 9.0), (3.0, 8.0)])
        b = Net.from_points((0, 0), [(10.0 + 2e-6, 2.0), (7.0, 9.0), (3.0, 8.0)])
        router.route(a)
        router.route(b)
        assert router.hits == 0 and router.misses == 2

    def test_hit_rate_and_clear(self):
        router = CachedRouter(PatLabor())
        net = random_net(4, rng=random.Random(6))
        router.route(net)
        router.route(net)
        assert router.hit_rate == 0.5
        router.clear()
        assert router.hit_rate == 0.0
        assert not router._cache


class TestParallelGeneration:
    def test_matches_serial(self):
        serial = generate_degree(4, limit=6)
        parallel = generate_degree_parallel(4, limit=6, jobs=2)
        assert set(serial) == set(parallel)
        for key in serial:
            a = sorted(
                (s.w, tuple(sorted(s.rows))) for s in serial[key].solutions
            )
            b = sorted(
                (s.w, tuple(sorted(s.rows))) for s in parallel[key].solutions
            )
            assert a == b

    def test_jobs_one_falls_back_to_serial(self):
        out = generate_degree_parallel(4, limit=3, jobs=1)
        assert len(out) == 3


class TestLruEviction:
    def test_hits_refresh_recency(self):
        # Access pattern a,b, a, c with capacity 2: the LRU entry is b,
        # so a must survive eviction (FIFO-of-insertion would drop a).
        router = CachedRouter(PatLabor(), max_entries=2)
        rng = random.Random(31)
        a, b, c = (random_net(4, rng=rng) for _ in range(3))
        router.route(a)
        router.route(b)
        router.route(a)  # refresh a
        router.route(c)  # evicts b, not a
        assert router.evictions == 1
        router.route(a)
        assert router.hits == 2 and router.misses == 3
        router.route(b)  # b was evicted: a miss again
        assert router.misses == 4

    def test_capacity_is_fully_used_and_evictions_counted(self):
        from repro import obs

        obs.reset()
        obs.enable()
        try:
            router = CachedRouter(PatLabor(), max_entries=2)
            rng = random.Random(32)
            nets = [random_net(4, rng=rng) for _ in range(2)]
            for n in nets:
                router.route(n)
            # At capacity with no overflow: nothing evicted, both resident.
            assert router.evictions == 0
            for n in nets:
                router.route(n)
            assert router.hits == 2
            router.route(random_net(4, rng=rng))
            assert router.evictions == 1
            snap = obs.snapshot()
            assert snap["counters"]["cache.evictions"] == 1
        finally:
            obs.disable()
            obs.reset()

    def test_clear_resets_eviction_count(self):
        router = CachedRouter(PatLabor(), max_entries=1)
        rng = random.Random(33)
        router.route(random_net(4, rng=rng))
        router.route(random_net(4, rng=rng))
        assert router.evictions == 1
        router.clear()
        assert router.evictions == 0

    def test_unknown_canonicalize_mode_rejected(self):
        with pytest.raises(ValueError, match="canonicalize"):
            CachedRouter(PatLabor(), canonicalize="rotation-only")


def _stress_writer(db: str, seed: int, count: int) -> None:
    """One writer process: route ``count`` nets and append them all."""
    from repro.core.cache_store import PersistentStore

    rng = random.Random(seed)
    store = PersistentStore(db)
    router = PatLabor()
    for _ in range(count):
        net = random_net(4, rng=rng)
        key, t = canonical_key(net)
        store.put(key, net, t, list(router.route(net)))
    store.close()


class TestConcurrentStoreWriters:
    def test_many_writers_one_store(self, tmp_path):
        # Four processes hammer one store; two share a seed so they race
        # on identical keys (first writer wins, the rest must not error).
        from repro.core.cache_store import PersistentStore

        db = str(tmp_path / "stress.sqlite")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_stress_writer, args=(db, seed, 8))
            for seed in (101, 101, 202, 303)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(120)
            assert p.exitcode == 0
        store = PersistentStore(db, readonly=True)
        assert store.healthy
        # 3 distinct seeds x 8 nets, minus any canonical collisions.
        assert 1 <= len(store) <= 24
        # Every key a fresh writer would produce must now be servable.
        rng = random.Random(202)
        for _ in range(8):
            net = random_net(4, rng=rng)
            key, _t = canonical_key(net)
            assert store.get(key) is not None
        assert store.hits == 8

    def test_route_batch_workers_share_a_store(self, tmp_path):
        from repro.core.batch import route_batch

        db = str(tmp_path / "batch.sqlite")
        rng = random.Random(404)
        nets = [random_net(4, rng=rng, name=f"n{i}") for i in range(12)]
        cold = route_batch(nets, jobs=2, cache_mode="symmetry", cache_store=db)
        assert len(cold.fronts) == 12
        # A second pool over the same store: every net is a store hit.
        warm = route_batch(nets, jobs=2, cache_mode="symmetry", cache_store=db)
        assert warm.cache_hit_rate == 1.0
        for name, front in warm.fronts.items():
            assert [(w, d) for w, d, _ in front] == [
                (w, d) for w, d, _ in cold.fronts[name]
            ]
