"""Unit tests for the Hanan grid."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.hanan import HananGrid
from repro.geometry.net import Net, random_net
from repro.geometry.point import Point, l1


def grid_of(pins):
    return HananGrid(pins)


class TestConstruction:
    def test_distinct_coordinates(self, square_net):
        g = HananGrid.of_net(square_net)
        assert g.nx == 2 and g.ny == 2
        assert g.num_nodes == 4

    def test_shared_coordinates_collapse(self):
        g = grid_of([(0, 0), (0, 5), (5, 0)])
        assert g.nx == 2 and g.ny == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            grid_of([])

    def test_pin_nodes_in_order(self, square_net):
        g = HananGrid.of_net(square_net)
        nodes = g.pin_nodes()
        assert [g.point(n) for n in nodes] == list(square_net.pins)


class TestDistances:
    def test_dist_matches_l1(self):
        net = random_net(6, rng=random.Random(2))
        g = HananGrid.of_net(net)
        for a in g.nodes():
            for b in g.nodes():
                assert abs(g.dist(a, b) - l1(g.point(a), g.point(b))) < 1e-9

    def test_gap_vector_sums_to_span(self):
        net = random_net(5, rng=random.Random(3))
        g = HananGrid.of_net(net)
        gaps = g.gap_vector()
        assert abs(sum(gaps[: g.nx - 1]) - (g.xs[-1] - g.xs[0])) < 1e-9
        assert abs(sum(gaps[g.nx - 1 :]) - (g.ys[-1] - g.ys[0])) < 1e-9

    def test_symbolic_dist_evaluates_to_dist(self):
        net = random_net(6, rng=random.Random(4))
        g = HananGrid.of_net(net)
        gaps = g.gap_vector()
        for a in g.nodes():
            for b in g.nodes():
                sym = g.symbolic_dist(a, b)
                val = sum(c * l for c, l in zip(sym, gaps))
                assert abs(val - g.dist(a, b)) < 1e-9

    def test_symbolic_dist_entries_binary(self):
        g = grid_of([(0, 0), (3, 7), (9, 2)])
        for a in g.nodes():
            for b in g.nodes():
                assert set(g.symbolic_dist(a, b)) <= {0, 1}


class TestNodes:
    def test_node_of_roundtrip(self):
        g = grid_of([(0, 0), (3, 7), (9, 2)])
        for node in g.nodes():
            assert g.node_of(g.point(node)) == node

    def test_node_of_off_grid_raises(self):
        g = grid_of([(0, 0), (3, 7)])
        with pytest.raises(KeyError):
            g.node_of((1.5, 1.5))

    def test_neighbors_count(self):
        g = grid_of([(0, 0), (5, 5), (10, 10)])  # 3x3 grid
        corner = (0, 0)
        center = (1, 1)
        assert len(list(g.neighbors(corner))) == 2
        assert len(list(g.neighbors(center))) == 4


class TestCornerPruning:
    """Lemma 2: empty-quadrant corner nodes."""

    def test_pins_never_pruned(self):
        for seed in range(5):
            net = random_net(7, rng=random.Random(seed))
            g = HananGrid.of_net(net)
            active = set(g.active_nodes())
            for node in g.pin_nodes():
                assert node in active

    def test_diagonal_pins_prune_off_diagonal_corners(self):
        # Two diagonal pins: the anti-diagonal corners have an empty
        # quadrant each and must be pruned.
        g = grid_of([(0, 0), (10, 10)])
        pruned = set(g.corner_nodes())
        assert (0, 1) in pruned  # upper-left node: empty lower-left quadrant? no:
        # (0,1) is upper-left: its upper-left quadrant contains no pin.
        assert (1, 0) in pruned
        assert (0, 0) not in pruned and (1, 1) not in pruned

    def test_full_square_nothing_pruned(self, square_net):
        g = HananGrid.of_net(square_net)
        assert g.corner_nodes() == []

    def test_active_plus_pruned_covers_grid(self):
        net = random_net(8, rng=random.Random(11))
        g = HananGrid.of_net(net)
        assert len(g.active_nodes()) + len(g.corner_nodes()) == g.num_nodes

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pruning_preserves_pins_property(self, seed):
        net = random_net(6, rng=random.Random(seed))
        g = HananGrid.of_net(net)
        active = set(g.active_nodes())
        assert set(g.pin_nodes()) <= active
