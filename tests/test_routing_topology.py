"""Unit tests for grid topologies and their symbolic solutions."""

import pytest

from repro.exceptions import InvalidTreeError
from repro.geometry.net import Net
from repro.geometry.transforms import ALL_TRANSFORMS
from repro.routing.topology import GridTopology, _symbolic_edge


def l_topology():
    """3x3 pattern: source (0,0), sinks (1,2) and (2,1), one Steiner."""
    return GridTopology(
        nx=3,
        ny=3,
        source=(0, 0),
        sinks=((1, 2), (2, 1)),
        edges=(((0, 0), (1, 1)), ((1, 1), (1, 2)), ((1, 1), (2, 1))),
    )


class TestSymbolicEdge:
    def test_horizontal(self):
        assert _symbolic_edge((0, 0), (2, 0), 3, 3) == (1, 1, 0, 0)

    def test_vertical(self):
        assert _symbolic_edge((1, 0), (1, 2), 3, 3) == (0, 0, 1, 1)

    def test_diagonal_spans_both(self):
        assert _symbolic_edge((0, 0), (2, 2), 3, 3) == (1, 1, 1, 1)

    def test_zero_for_same_node(self):
        assert _symbolic_edge((1, 1), (1, 1), 3, 3) == (0, 0, 0, 0)


class TestSymbolicSolution:
    def test_w_counts_all_edges(self):
        w, rows = l_topology().symbolic_solution()
        # Edges: (0,0)-(1,1): x0,y0; (1,1)-(1,2): y1; (1,1)-(2,1): x1
        assert w == (1, 1, 1, 1)

    def test_rows_per_sink(self):
        _, rows = l_topology().symbolic_solution()
        assert len(rows) == 2
        # sink (1,2): path (0,0)->(1,1)->(1,2): x0 + y0 + y1
        assert rows[0] == (1, 0, 1, 1)
        # sink (2,1): x0 + y0 + x1
        assert rows[1] == (1, 1, 1, 0)

    def test_unreachable_sink_raises(self):
        topo = GridTopology(
            nx=2, ny=2, source=(0, 0), sinks=((1, 1),), edges=()
        )
        with pytest.raises(InvalidTreeError):
            topo.symbolic_solution()

    def test_evaluate(self):
        gaps = [2.0, 3.0, 5.0, 7.0]  # x-gaps then y-gaps
        w, d = l_topology().evaluate(gaps)
        assert w == 2 + 3 + 5 + 7
        assert d == max(2 + 5 + 7, 2 + 3 + 5)


class TestTransforms:
    @pytest.mark.parametrize("t", ALL_TRANSFORMS, ids=lambda t: t.name)
    def test_transform_preserves_evaluation(self, t):
        topo = l_topology()
        gaps_x, gaps_y = [2.0, 3.0], [5.0, 7.0]
        w0, d0 = topo.evaluate(gaps_x + gaps_y)
        t_topo = topo.transformed(t)
        ngx, ngy = t.apply_gaps(gaps_x, gaps_y)
        w1, d1 = t_topo.evaluate(list(ngx) + list(ngy))
        assert abs(w0 - w1) < 1e-9
        assert abs(d0 - d1) < 1e-9

    def test_canonical_key_detects_identity(self):
        assert l_topology().canonical_key() == l_topology().canonical_key()

    def test_canonical_key_differs(self):
        other = GridTopology(
            nx=3, ny=3, source=(0, 0), sinks=((1, 2), (2, 1)),
            edges=(((0, 0), (1, 2)), ((1, 2), (2, 1))),
        )
        assert other.canonical_key() != l_topology().canonical_key()


class TestInstantiate:
    def test_realises_tree(self):
        topo = l_topology()
        xs, ys = [0.0, 4.0, 9.0], [0.0, 5.0, 11.0]
        net = Net.from_points((0, 0), [(4, 11), (9, 5)])
        tree = topo.instantiate(net, xs, ys)
        w, d = tree.objective()
        ew, ed = topo.evaluate([4.0, 5.0, 5.0, 6.0])
        assert abs(w - ew) < 1e-9
        assert abs(d - ed) < 1e-9

    def test_source_mismatch_raises(self):
        topo = l_topology()
        net = Net.from_points((1, 1), [(4, 11), (9, 5)])
        with pytest.raises(InvalidTreeError):
            topo.instantiate(net, [0.0, 4.0, 9.0], [0.0, 5.0, 11.0])

    def test_nodes_enumerates_everything(self):
        nodes = set(l_topology().nodes())
        assert nodes == {(0, 0), (1, 1), (1, 2), (2, 1)}
