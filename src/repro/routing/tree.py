"""Rooted rectilinear routing trees and their two objectives.

A :class:`RoutingTree` spans all pins of a :class:`~repro.geometry.net.Net`,
is rooted at the source, and may contain extra Steiner nodes. Edges are
abstract rectilinear connections: an edge between nodes ``a`` and ``b``
contributes ``||a - b||_1`` to the wirelength regardless of which L-shape
embeds it, so the objectives are embedding-independent (the embedding
module materialises concrete L-shapes when drawing).

Objectives (paper, Section II):

* ``wirelength`` — sum of edge L1 lengths,
* ``delay``      — maximum source→sink path length along the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import InvalidTreeError
from ..geometry.net import Net
from ..geometry.point import Point, PointLike, l1

Edge = Tuple[int, int]


@dataclass
class RoutingTree:
    """A source-rooted rectilinear Steiner tree for a net.

    Attributes
    ----------
    net:
        The routed net. ``points[i] == net.pins[i]`` for ``i < net.degree``.
    points:
        Node coordinates; pins first (in net order), Steiner nodes after.
    parent:
        ``parent[i]`` is the parent node index of node ``i``; the root
        (node 0, the source) has parent ``-1``.
    """

    net: Net
    points: List[Point]
    parent: List[int]

    # Cached objectives; invalidated by the mutating helpers.
    _wirelength: Optional[float] = field(default=None, repr=False, compare=False)
    _delay: Optional[float] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ factories

    @classmethod
    def from_parent(
        cls, net: Net, points: Sequence[PointLike], parent: Sequence[int]
    ) -> "RoutingTree":
        """Build and validate a tree from a parent array."""
        tree = cls(
            net=net,
            points=[Point(float(p[0]), float(p[1])) for p in points],
            parent=list(parent),
        )
        tree.validate()
        return tree

    @classmethod
    def from_edges(
        cls,
        net: Net,
        edges: Iterable[Tuple[PointLike, PointLike]],
        extra_points: Iterable[PointLike] = (),
    ) -> "RoutingTree":
        """Build a tree from undirected point-pair edges.

        The edge set must form a tree (after deduplication) whose nodes
        include every pin; it is rooted at the source by a BFS. Points not
        matching any pin become Steiner nodes.
        """
        index: Dict[Tuple[float, float], int] = {}
        points: List[Point] = []

        def node_of(p: PointLike) -> int:
            key = (float(p[0]), float(p[1]))
            if key not in index:
                index[key] = len(points)
                points.append(Point(*key))
            return index[key]

        for pin in net.pins:
            node_of(pin)
        for p in extra_points:
            node_of(p)

        adj: Dict[int, Set[int]] = {}
        for a, b in edges:
            ia, ib = node_of(a), node_of(b)
            if ia == ib:
                continue
            adj.setdefault(ia, set()).add(ib)
            adj.setdefault(ib, set()).add(ia)

        parent = [-2] * len(points)  # -2 = unvisited
        parent[0] = -1
        queue = [0]
        while queue:
            u = queue.pop()
            for v in adj.get(u, ()):
                if parent[v] == -2:
                    parent[v] = u
                    queue.append(v)
        if any(p == -2 for p in parent):
            orphans = [points[i] for i, p in enumerate(parent) if p == -2]
            raise InvalidTreeError(
                f"edge set does not connect all nodes; unreachable: {orphans[:5]}"
            )
        tree = cls(net=net, points=points, parent=parent)
        tree.validate()
        return tree

    @classmethod
    def star(cls, net: Net) -> "RoutingTree":
        """The trivial star: every sink wired straight to the source."""
        parent = [-1] + [0] * (net.degree - 1)
        return cls.from_parent(net, list(net.pins), parent)

    # ---------------------------------------------------------- structure

    @property
    def num_nodes(self) -> int:
        return len(self.points)

    @property
    def num_steiner(self) -> int:
        """Number of non-pin nodes."""
        return len(self.points) - self.net.degree

    def children(self) -> List[List[int]]:
        """Child adjacency lists indexed by node."""
        ch: List[List[int]] = [[] for _ in self.points]
        for i, p in enumerate(self.parent):
            if p >= 0:
                ch[p].append(i)
        return ch

    def edges(self) -> List[Edge]:
        """All (child, parent) edges."""
        return [(i, p) for i, p in enumerate(self.parent) if p >= 0]

    def edge_length(self, child: int) -> float:
        """L1 length of the edge from ``child`` to its parent."""
        p = self.parent[child]
        if p < 0:
            raise InvalidTreeError(f"node {child} has no parent edge")
        return l1(self.points[child], self.points[p])

    def topological_order(self) -> List[int]:
        """Nodes ordered root-first (every node after its parent)."""
        ch = self.children()
        order: List[int] = []
        stack = [0]
        while stack:
            u = stack.pop()
            order.append(u)
            stack.extend(ch[u])
        if len(order) != len(self.points):
            raise InvalidTreeError("tree contains unreachable nodes or a cycle")
        return order

    # ---------------------------------------------------------- objectives

    def wirelength(self) -> float:
        """Total wirelength ``w(T)``."""
        if self._wirelength is None:
            pts = self.points
            self._wirelength = sum(
                abs(pts[i].x - pts[p].x) + abs(pts[i].y - pts[p].y)
                for i, p in enumerate(self.parent)
                if p >= 0
            )
        return self._wirelength

    def path_lengths(self) -> List[float]:
        """Source→node path length for every node, in node order."""
        dist = [0.0] * len(self.points)
        for u in self.topological_order():
            p = self.parent[u]
            if p >= 0:
                dist[u] = dist[p] + l1(self.points[u], self.points[p])
        return dist

    def delay(self) -> float:
        """Delay ``d(T)`` — the maximum source→sink path length."""
        if self._delay is None:
            dist = self.path_lengths()
            self._delay = max(dist[i] for i in range(1, self.net.degree))
        return self._delay

    def sink_delays(self) -> List[float]:
        """Source→sink path length per sink (net sink order)."""
        dist = self.path_lengths()
        return [dist[i] for i in range(1, self.net.degree)]

    def objective(self) -> Tuple[float, float]:
        """``(w(T), d(T))`` — the bicriterion objective vector ``s(T)``."""
        return (self.wirelength(), self.delay())

    def stretch(self) -> float:
        """Max sink path length over its L1 lower bound (a shallowness measure)."""
        worst = 1.0
        dist = self.path_lengths()
        src = self.points[0]
        for i in range(1, self.net.degree):
            lb = l1(src, self.points[i])
            if lb > 0:
                worst = max(worst, dist[i] / lb)
        return worst

    def _invalidate(self) -> None:
        self._wirelength = None
        self._delay = None

    # ---------------------------------------------------------- validation

    def validate(self) -> None:
        """Raise :class:`InvalidTreeError` on any structural violation."""
        n = self.net.degree
        if len(self.points) != len(self.parent):
            raise InvalidTreeError("points and parent arrays differ in length")
        if len(self.points) < n:
            raise InvalidTreeError("tree has fewer nodes than the net has pins")
        for i, pin in enumerate(self.net.pins):
            if self.points[i] != pin:
                raise InvalidTreeError(
                    f"node {i} is {self.points[i]} but pin {i} is {pin}"
                )
        if self.parent[0] != -1:
            raise InvalidTreeError("root (source) must have parent -1")
        for i, p in enumerate(self.parent[1:], start=1):
            if not 0 <= p < len(self.points):
                raise InvalidTreeError(f"node {i} has invalid parent {p}")
        self.topological_order()  # raises on cycles / disconnection

    # ------------------------------------------------------- normalisation

    def compacted(self) -> "RoutingTree":
        """An equivalent tree with redundant Steiner nodes removed.

        Removes (a) Steiner nodes coinciding with their parent (zero-length
        edges) and (b) pass-through Steiner nodes with exactly one child
        that lie on a monotone path between parent and child. Neither
        removal changes ``w`` or ``d``.
        """
        n = self.net.degree
        parent = list(self.parent)
        drop: Set[int] = set()
        # Iterate to a fixed point; child lists are recomputed after every
        # structural change so contractions never act on stale adjacency.
        changed = True
        while changed:
            changed = False
            ch: List[List[int]] = [[] for _ in self.points]
            for i, p in enumerate(parent):
                if i not in drop and p >= 0 and p not in drop:
                    ch[p].append(i)
            for v in range(n, len(self.points)):
                if v in drop:
                    continue
                p = parent[v]
                if p < 0:
                    continue
                kids = ch[v]
                if len(kids) == 0:
                    drop.add(v)
                    changed = True
                    break
                if len(kids) == 1:
                    c = kids[0]
                    a, s, b = self.points[p], self.points[v], self.points[c]
                    monotone_x = min(a.x, b.x) <= s.x <= max(a.x, b.x)
                    monotone_y = min(a.y, b.y) <= s.y <= max(a.y, b.y)
                    if monotone_x and monotone_y:
                        parent[c] = p
                        drop.add(v)
                        changed = True
                        break
        keep = [i for i in range(len(self.points)) if i not in drop]
        remap = {old: new for new, old in enumerate(keep)}
        new_points = [self.points[i] for i in keep]
        new_parent = [
            -1 if parent[i] == -1 else remap[parent[i]] for i in keep
        ]
        return RoutingTree.from_parent(self.net, new_points, new_parent)

    def canonical_edge_set(self) -> frozenset:
        """Hashable identity of the compacted tree's geometry (for dedup)."""
        t = self.compacted()
        return frozenset(
            frozenset((tuple(t.points[i]), tuple(t.points[p])))
            for i, p in enumerate(t.parent)
            if p >= 0 and t.points[i] != t.points[p]
        )

    def copy(self) -> "RoutingTree":
        """A deep-enough copy safe for independent mutation."""
        return RoutingTree(self.net, list(self.points), list(self.parent))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutingTree(n={self.net.degree}, nodes={len(self.points)}, "
            f"w={self.wirelength():.1f}, d={self.delay():.1f})"
        )
