"""Classic single-objective Dreyfus–Wagner on the Hanan grid.

Computes an exact rectilinear Steiner *minimum* tree (RSMT) for small pin
sets. This is the exact oracle behind the FLUTE-substitute RSMT engine and
the wirelength normaliser ``w(FLUTE)`` of the paper's Figure 7; it is also
the scalar specialisation of Pareto-DW and shares its state layout, which
the tests exploit to cross-check both implementations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..exceptions import DegreeTooLargeError
from ..geometry.hanan import GridNode, HananGrid
from ..geometry.net import Net
from ..routing.tree import RoutingTree

DEFAULT_MAX_TERMINALS = 10

# Backpointers mirror pareto_dw: ("leaf", node) / ("ext", u, v, p) / ("merge", p1, p2)


def _collect_edges(payload: Any, out: Set[Tuple[GridNode, GridNode]]) -> None:
    stack = [payload]
    while stack:
        p = stack.pop()
        if p[0] == "leaf":
            continue
        if p[0] == "ext":
            _, u, v, child = p
            if u != v:
                out.add((u, v))
            stack.append(child)
        else:
            stack.append(p[1])
            stack.append(p[2])


def steiner_min_tree(net: Net, max_terminals: int = DEFAULT_MAX_TERMINALS) -> RoutingTree:
    """Exact RSMT spanning all pins of ``net`` (root = source).

    Raises :class:`DegreeTooLargeError` above ``max_terminals`` pins; use
    :func:`repro.baselines.rsmt.rsmt` for larger nets.
    """
    n = net.degree
    if n > max_terminals:
        raise DegreeTooLargeError(n, max_terminals)

    grid = HananGrid.of_net(net)
    pin_nodes = grid.pin_nodes()
    root_node = pin_nodes[0]
    terms = pin_nodes[1:]
    k = len(terms)
    full = (1 << k) - 1
    corner = set(grid.corner_nodes())
    nodes = [v for v in grid.nodes() if v not in corner]
    dist = grid.dist

    # S[mask]: dict node -> (cost, payload)
    S: List[Optional[Dict[GridNode, Tuple[float, Any]]]] = [None] * (full + 1)

    def closure(merged: Dict[GridNode, Tuple[float, Any]]) -> Dict[GridNode, Tuple[float, Any]]:
        out: Dict[GridNode, Tuple[float, Any]] = {}
        items = list(merged.items())
        for v in nodes:
            best: Optional[Tuple[float, Any]] = None
            for u, (c, p) in items:
                if u == v:
                    cand = (c, p)
                else:
                    cand = (c + dist(u, v), ("ext", u, v, p))
                if best is None or cand[0] < best[0]:
                    best = cand
            if best is not None:
                out[v] = best
        return out

    for ti, t_node in enumerate(terms):
        S[1 << ti] = closure({t_node: (0.0, ("leaf", t_node))})

    masks_by_size: List[List[int]] = [[] for _ in range(k + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    for size in range(2, k + 1):
        for mask in masks_by_size[size]:
            bits = [i for i in range(k) if mask >> i & 1]
            ixs = [terms[i][0] for i in bits]
            iys = [terms[i][1] for i in bits]
            bxlo, bxhi, bylo, byhi = min(ixs), max(ixs), min(iys), max(iys)
            low = 1 << bits[0]
            rest = mask & ~low
            merged: Dict[GridNode, Tuple[float, Any]] = {}
            for v in nodes:
                ix, iy = v
                if not (bxlo <= ix <= bxhi and bylo <= iy <= byhi):
                    continue
                best: Optional[Tuple[float, Any]] = None
                sub = rest
                while True:
                    q1 = sub | low
                    if q1 != mask:
                        q2 = mask ^ q1
                        a = S[q1].get(v) if S[q1] else None
                        b = S[q2].get(v) if S[q2] else None
                        if a and b:
                            cand = (a[0] + b[0], ("merge", a[1], b[1]))
                            if best is None or cand[0] < best[0]:
                                best = cand
                    if sub == 0:
                        break
                    sub = (sub - 1) & rest
                if best is not None:
                    merged[v] = best
            S[mask] = closure(merged)

    cost, payload = S[full][root_node]
    node_edges: Set[Tuple[GridNode, GridNode]] = set()
    _collect_edges(payload, node_edges)
    pt = grid.point
    edges = [(pt(a), pt(b)) for a, b in node_edges]
    if not edges:
        edges = [(net.source, s) for s in net.sinks]
    referenced = {p for e in edges for p in e}
    tree = RoutingTree.from_edges(net, edges, extra_points=list(referenced))
    return tree


def rsmt_cost(net: Net, max_terminals: int = DEFAULT_MAX_TERMINALS) -> float:
    """Exact RSMT wirelength of a small net."""
    return steiner_min_tree(net, max_terminals=max_terminals).wirelength()
