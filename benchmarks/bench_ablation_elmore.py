"""Ablation A4 (extension) — do path-length Pareto sets cover Elmore?

The paper optimises (wirelength, path length) and lists richer delay
models as future work. This ablation measures how well the path-length
Pareto set serves an Elmore-delay user: for each net, compare the best
Elmore delay among PatLabor's Pareto set against the best Elmore delay
among a large pool of candidate trees from every algorithm in the
library. If the ratio stays near 1, the bicriterion set is a good proxy
under Elmore too.

Timed kernel: Elmore evaluation of one Pareto set.
"""

import random

from repro.baselines.prim_dijkstra import pd_sweep
from repro.baselines.salt import salt_sweep
from repro.baselines.ysd import ysd
from repro.core.patlabor import PatLabor
from repro.eval.reporting import format_table
from repro.geometry.net import random_net
from repro.timing.elmore import ElmoreDelay

from conftest import write_artifact

NUM_NETS = 6
DEGREE = 12


def test_ablation_elmore_coverage(benchmark):
    rng = random.Random(8)
    model = ElmoreDelay()
    rows = []
    ratios = []
    for i in range(NUM_NETS):
        net = random_net(DEGREE, rng=rng)
        ours = PatLabor().route(net)
        pool = list(ours) + salt_sweep(net) + ysd(net) + pd_sweep(net)
        best_ours = min(model.max_delay(t) for _, _, t in ours)
        best_pool = min(model.max_delay(t) for _, _, t in pool)
        ratio = best_ours / best_pool
        ratios.append(ratio)
        rows.append([i, f"{best_ours:.3f}", f"{best_pool:.3f}", f"{ratio:.3f}"])

    mean_ratio = sum(ratios) / len(ratios)
    table = format_table(
        ["net", "best Elmore (PatLabor set)", "best Elmore (all trees)", "ratio"],
        rows,
        title=(
            "Ablation — Elmore coverage of the path-length Pareto set "
            f"(mean ratio {mean_ratio:.3f})"
        ),
    )
    write_artifact("ablation_elmore.txt", table)

    # The bicriterion Pareto set must remain a strong proxy under Elmore.
    assert mean_ratio < 1.25

    net = random_net(DEGREE, rng=random.Random(1))
    front = PatLabor().route(net)
    benchmark(lambda: [model.max_delay(t) for _, _, t in front])
