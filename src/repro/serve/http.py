"""Minimal asyncio HTTP sidecar: ``/metrics``, ``/healthz``, ``/readyz``.

The serve daemon's telemetry endpoint is deliberately *not* a web
framework: it answers exactly three GET paths over HTTP/1.1 with
``Connection: close`` semantics, which is all a Prometheus scraper, a
Kubernetes probe, or ``repro top`` needs — and it keeps the daemon free
of dependencies (the container ships no aiohttp).

Routes:

* ``GET /metrics`` — the daemon's telemetry registry rendered by
  :func:`repro.obs.to_prometheus` (``Content-Type: text/plain;
  version=0.0.4``), including the always-on per-tier latency histograms.
* ``GET /healthz`` — liveness: ``200 ok`` whenever the event loop can
  still schedule the handler (if the loop is wedged, the connection
  simply times out, which is the correct liveness failure mode).
* ``GET /readyz`` — readiness: ``200`` only after every pool worker's
  initializer has completed and the persistent store (when configured)
  is attached and healthy; ``503`` before that, so a load balancer never
  routes traffic into a cold or broken pool.

``HEAD`` is answered like ``GET`` without a body; anything else is a
``404`` (unknown path) or ``405`` (unknown method). Each connection
serves one request — the server closes after responding, matching the
``Connection: close`` header it sends.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Tuple

#: Content type the Prometheus text exposition format mandates.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Longest request head (request line + headers) the endpoint accepts.
MAX_HEAD_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


def _response(
    status: int, body: str, content_type: str = "text/plain; charset=utf-8"
) -> bytes:
    """Serialise one HTTP/1.1 response with ``Connection: close``."""
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


class TelemetryEndpoint:
    """The daemon's HTTP sidecar, bound next to the routing listeners.

    Parameters
    ----------
    metrics:
        Zero-argument callable returning the current Prometheus
        exposition text (the server passes its ``telemetry_registry``
        renderer). Called per scrape, on the event loop — it must stay
        cheap (the daemon's registry render is a lock + string build).
    ready:
        Zero-argument callable answering "is the pool initialized and
        the store attached?" — the ``/readyz`` verdict.
    host / port:
        Bind address. ``port=0`` picks an ephemeral port; read it back
        from :attr:`port` after :meth:`start` (how tests avoid
        collisions).
    """

    def __init__(
        self,
        metrics: Callable[[], str],
        ready: Callable[[], bool],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._metrics = metrics
        self._ready = ready
        self.host = host
        self.requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> Optional[int]:
        """The bound port (None before :meth:`start`)."""
        if self._server is None:
            return None
        for sock in self._server.sockets or []:
            name = sock.getsockname()
            if isinstance(name, tuple) and len(name) >= 2:
                return int(name[1])
        return None  # pragma: no cover - a started server has sockets

    async def start(self) -> None:
        """Bind and start answering probes/scrapes."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.requested_port
        )

    async def stop(self) -> None:
        """Close the listener (in-flight responses finish first)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- handling

    def _route(self, method: str, path: str) -> Tuple[int, str, str]:
        """(status, body, content type) for one parsed request line."""
        if method not in ("GET", "HEAD"):
            return 405, "method not allowed\n", "text/plain; charset=utf-8"
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return 200, self._metrics(), METRICS_CONTENT_TYPE
        if path == "/healthz":
            return 200, "ok\n", "text/plain; charset=utf-8"
        if path == "/readyz":
            if self._ready():
                return 200, "ready\n", "text/plain; charset=utf-8"
            return 503, "not ready\n", "text/plain; charset=utf-8"
        return 404, "not found\n", "text/plain; charset=utf-8"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one request on one connection, then close it."""
        try:
            head = await reader.readuntil(b"\r\n")
            parts = head.decode("ascii", "replace").split()
            if len(parts) < 2:
                writer.write(_response(400, "bad request\n"))
            else:
                method, path = parts[0], parts[1]
                # Drain the header block so the peer's write never sees a
                # reset before our response goes out.
                drained = 0
                while drained < MAX_HEAD_BYTES:
                    line = await reader.readline()
                    drained += len(line)
                    if line in (b"\r\n", b"\n", b""):
                        break
                status, body, ctype = self._route(method, path)
                if method == "HEAD":
                    body = ""
                writer.write(_response(status, body, ctype))
            await writer.drain()
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.CancelledError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover - teardown races
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                pass


__all__: List[str] = ["METRICS_CONTENT_TYPE", "TelemetryEndpoint"]
