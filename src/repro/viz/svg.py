"""SVG rendering of routing trees and Pareto curves (Figs. 1–3 style).

Hand-rolled SVG keeps the library dependency-free; the output opens in
any browser. Trees are drawn with L-shape embeddings, square pins, a
filled square source, and circles for Steiner points — matching the
paper's figure conventions.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.pareto import Solution, objectives
from ..routing.embedding import embed_tree, segments_bbox
from ..routing.tree import RoutingTree

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")


def _svg_header(width: float, height: float) -> str:
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
        f'<rect width="100%" height="100%" fill="white"/>'
    )


def tree_svg(
    tree: RoutingTree,
    size: float = 400.0,
    margin: float = 24.0,
    color: str = "#1f77b4",
    title: str = "",
) -> str:
    """A standalone SVG document drawing one routing tree."""
    segments = embed_tree(tree)
    xlo, ylo, xhi, yhi = segments_bbox(segments)
    span = max(xhi - xlo, yhi - ylo, 1e-9)
    scale = (size - 2 * margin) / span

    def tx(x: float) -> float:
        return margin + (x - xlo) * scale

    def ty(y: float) -> float:
        return size - margin - (y - ylo) * scale  # flip: SVG y grows down

    parts = [_svg_header(size, size)]
    if title:
        parts.append(
            f'<text x="{size / 2:.0f}" y="16" text-anchor="middle" '
            f'font-size="13" font-family="sans-serif">{title}</text>'
        )
    for seg in segments:
        parts.append(
            f'<line x1="{tx(seg.a.x):.1f}" y1="{ty(seg.a.y):.1f}" '
            f'x2="{tx(seg.b.x):.1f}" y2="{ty(seg.b.y):.1f}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
    n = tree.net.degree
    for i, p in enumerate(tree.points):
        cx, cy = tx(p.x), ty(p.y)
        if i == 0:
            parts.append(
                f'<rect x="{cx - 5:.1f}" y="{cy - 5:.1f}" width="10" '
                f'height="10" fill="black"/>'
            )
        elif i < n:
            parts.append(
                f'<rect x="{cx - 4:.1f}" y="{cy - 4:.1f}" width="8" '
                f'height="8" fill="white" stroke="black" stroke-width="1.5"/>'
            )
        else:
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="3" fill="{color}"/>'
            )
    parts.append("</svg>")
    return "".join(parts)


def pareto_curve_svg(
    fronts: Sequence[Tuple[str, Sequence[Solution]]],
    size: float = 480.0,
    margin: float = 48.0,
    title: str = "Pareto curves",
) -> str:
    """A standalone SVG scatter/step plot of several Pareto sets.

    ``fronts`` is a list of ``(label, solutions)`` pairs; each is drawn in
    its own colour with a step line through its points.
    """
    all_pts = [pt for _, front in fronts for pt in objectives(front)]
    if not all_pts:
        return _svg_header(size, size) + "</svg>"
    wlo = min(w for w, _ in all_pts)
    whi = max(w for w, _ in all_pts)
    dlo = min(d for _, d in all_pts)
    dhi = max(d for _, d in all_pts)
    wspan = max(whi - wlo, 1e-9)
    dspan = max(dhi - dlo, 1e-9)

    def tx(w: float) -> float:
        return margin + (w - wlo) / wspan * (size - 2 * margin)

    def ty(d: float) -> float:
        return size - margin - (d - dlo) / dspan * (size - 2 * margin)

    parts = [_svg_header(size, size)]
    parts.append(
        f'<text x="{size / 2:.0f}" y="18" text-anchor="middle" '
        f'font-size="14" font-family="sans-serif">{title}</text>'
    )
    # Axes.
    parts.append(
        f'<line x1="{margin}" y1="{size - margin}" x2="{size - margin}" '
        f'y2="{size - margin}" stroke="black"/>'
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" '
        f'y2="{size - margin}" stroke="black"/>'
        f'<text x="{size / 2:.0f}" y="{size - 8:.0f}" text-anchor="middle" '
        f'font-size="12" font-family="sans-serif">wirelength</text>'
        f'<text x="14" y="{size / 2:.0f}" text-anchor="middle" font-size="12" '
        f'font-family="sans-serif" transform="rotate(-90 14 {size / 2:.0f})">'
        f"delay</text>"
    )
    for idx, (label, front) in enumerate(fronts):
        color = _COLORS[idx % len(_COLORS)]
        pts = sorted(objectives(front))
        # Step line.
        path = []
        for i, (w, d) in enumerate(pts):
            cmd = "M" if i == 0 else "L"
            if i > 0:
                path.append(f"L{tx(w):.1f},{ty(pts[i - 1][1]):.1f}")
            path.append(f"{cmd}{tx(w):.1f},{ty(d):.1f}")
        parts.append(
            f'<path d="{" ".join(path)}" fill="none" stroke="{color}" '
            f'stroke-width="1.5"/>'
        )
        for w, d in pts:
            parts.append(
                f'<circle cx="{tx(w):.1f}" cy="{ty(d):.1f}" r="4" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{size - margin:.0f}" y="{margin + 16 * idx:.0f}" '
            f'text-anchor="end" font-size="12" font-family="sans-serif" '
            f'fill="{color}">{label}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def save_svg(svg: str, path: str) -> None:
    """Write an SVG document to disk."""
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(svg)
