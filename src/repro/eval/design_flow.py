"""Design-level sequential routing flow with congestion feedback.

The paper motivates Pareto sets with DGR-style global routing: per-net
*candidate sets* let the router negotiate congestion. This module plays
that flow on a whole synthetic design:

1. nets are routed in decreasing-size order onto a shared demand grid,
2. each net picks, from its candidate set, the tree minimising a
   negotiation cost (congestion under current demand) subject to a
   per-net delay budget,
3. the chosen tree's segments are committed as demand; cell weights grow
   superlinearly with utilisation, steering later nets away,
4. the flow reports total wirelength, delay-budget misses, and overflow.

Three strategies make the comparison of the paper's intro concrete:

* ``"pareto"``   — choose among PatLabor's full Pareto set,
* ``"rsmt"``     — always the minimum-wirelength tree (timing-blind),
* ``"shortest"`` — always the RSMA tree (wire-blind).

:func:`route_design` is the *one-pass* flow (each net commits once, in
order, and never reconsiders). :func:`route_design_negotiated` maps the
same :class:`DesignFlowConfig` onto the iterative PathFinder negotiator
(:mod:`repro.congestion.negotiate`), which rips up and re-chooses
frontier points across iterations until no cell is over capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..congestion.model import CongestionMap
from ..core.pareto import Solution
from ..core.patlabor import PatLabor
from ..geometry.net import Net
from ..routing.embedding import embed_edge
from ..routing.tree import RoutingTree


@dataclass
class DesignFlowConfig:
    """Tunables of the sequential flow."""

    span: float = 1000.0        # routing region [0, span]^2
    cells: int = 16             # demand grid resolution
    capacity: float = 250.0     # wire length a cell absorbs at weight 1
    delay_slack: float = 0.25   # per-net budget: (1 + slack) * lower bound
    congestion_exponent: float = 2.0


@dataclass
class NetOutcome:
    """One net's committed choice."""

    net_name: str
    wirelength: float
    delay: float
    delay_budget: float
    met_budget: bool
    congestion_cost: float


@dataclass
class DesignFlowResult:
    """Whole-flow summary."""

    outcomes: List[NetOutcome]
    demand: CongestionMap
    capacity: float

    @property
    def total_wirelength(self) -> float:
        return sum(o.wirelength for o in self.outcomes)

    @property
    def budget_misses(self) -> int:
        return sum(0 if o.met_budget else 1 for o in self.outcomes)

    @property
    def overflow(self) -> float:
        """Total demand beyond capacity, summed over cells."""
        total = 0.0
        for col in self.demand.weights:
            for demand in col:
                total += max(0.0, demand - self.capacity)
        return total

    @property
    def max_utilization(self) -> float:
        peak = max(max(col) for col in self.demand.weights)
        return peak / self.capacity if self.capacity > 0 else 0.0


def _negotiation_cost_map(
    demand: CongestionMap, capacity: float, exponent: float
) -> CongestionMap:
    """Cell weights 1 + (utilisation)^exponent — the negotiation pricing."""
    weights = [
        [1.0 + (d / capacity) ** exponent for d in col]
        for col in demand.weights
    ]
    return CongestionMap(
        xlo=demand.xlo, ylo=demand.ylo, cell=demand.cell, weights=weights
    )


def _commit(tree: RoutingTree, demand: CongestionMap) -> None:
    for child, parent in tree.edges():
        for seg in embed_edge(tree.points[parent], tree.points[child]):
            demand.deposit(seg)


def route_design(
    nets: Sequence[Net],
    strategy: str = "pareto",
    config: Optional[DesignFlowConfig] = None,
    router: Optional[PatLabor] = None,
) -> DesignFlowResult:
    """Run the sequential congestion-negotiated flow over a net list."""
    config = config or DesignFlowConfig()
    router = router or PatLabor()
    demand = CongestionMap.uniform(
        0, 0, config.span, config.span, config.cells, config.cells, weight=0.0
    )
    ordered = sorted(nets, key=lambda n: -n.degree)
    outcomes: List[NetOutcome] = []
    for net in ordered:
        budget = (1.0 + config.delay_slack) * net.delay_lower_bound()
        candidates = _candidates(net, strategy, router)
        cost_map = _negotiation_cost_map(
            demand, config.capacity, config.congestion_exponent
        )
        best: Optional[Tuple[float, Solution]] = None
        for sol in candidates:
            w, d, tree = sol
            cost = cost_map.tree_cost(tree)
            feasible = d <= budget + 1e-9
            # Feasible candidates compete on congestion; infeasible ones
            # only matter when nothing is feasible (then min delay wins).
            key = (0 if feasible else 1, cost if feasible else d)
            if best is None or key < best[0]:
                best = (key, sol)
        _, (w, d, tree) = best
        _commit(tree, demand)
        outcomes.append(
            NetOutcome(
                net_name=net.name or "net",
                wirelength=w,
                delay=d,
                delay_budget=budget,
                met_budget=d <= budget + 1e-9,
                congestion_cost=cost_map.tree_cost(tree),
            )
        )
    return DesignFlowResult(
        outcomes=outcomes, demand=demand, capacity=config.capacity
    )


def route_design_negotiated(
    nets: Sequence[Net],
    config: Optional[DesignFlowConfig] = None,
    *,
    max_iterations: int = 40,
    point_policy: Optional[str] = None,
):
    """Run the iterative PathFinder negotiation over a net list.

    The :class:`DesignFlowConfig` frame carries over directly: the region
    is ``[0, span]^2`` cut into ``cells × cells`` capacity cells of
    ``config.capacity`` routable wirelength each, and every net's delay
    budget is ``(1 + delay_slack) × delay_lower_bound``. Unlike
    :func:`route_design`, nets negotiate across iterations — see
    :class:`repro.congestion.negotiate.NegotiatedRouter`. Requires NumPy.

    Returns the :class:`repro.congestion.negotiate.NegotiationResult`.
    """
    from ..congestion.model import CapacityGrid
    from ..congestion.negotiate import (
        NegotiatedRouter,
        NegotiatorConfig,
        Scenario,
    )

    config = config or DesignFlowConfig()
    grid = CapacityGrid.uniform(
        0,
        0,
        config.span,
        config.span,
        config.cells,
        config.cells,
        capacity=config.capacity,
    )
    scenario = Scenario(nets=list(nets), grid=grid)
    negotiator = NegotiatedRouter(
        scenario,
        NegotiatorConfig(
            delay_slack=config.delay_slack,
            max_iterations=max_iterations,
            point_policy=point_policy,
        ),
    )
    return negotiator.run()


#: Candidate-set strategies, mapped to :mod:`repro.engine` registry names
#: ("pareto" uses the caller's PatLabor instance instead).
_STRATEGY_ROUTERS = {"rsmt": "rsmt", "shortest": "rsma"}


def _candidates(
    net: Net, strategy: str, router: PatLabor
) -> List[Solution]:
    if strategy == "pareto":
        return router.route(net)
    try:
        name = _STRATEGY_ROUTERS[strategy]
    except KeyError:
        raise ValueError(f"unknown strategy {strategy!r}") from None
    from ..engine import create_router

    return create_router(name).route(net)
