"""Lookup-table (de)serialisation — JSON with interned topologies.

The on-disk layout mirrors the in-memory structure: one shared topology
pool (edge lists over grid nodes) plus, per degree and per canonical
pattern, rows of ``(W, D, topology-id)``. JSON keeps the artefact
inspectable and platform-independent; tables this size (degrees 4–7)
compress well and load in well under a second.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..exceptions import SerializationError
from ..lut.cluster import TopologyPool
from ..lut.table import DegreeStats, LookupTable

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def _encode_edges(edges) -> List[List[int]]:
    return sorted([a[0], a[1], b[0], b[1]] for a, b in edges)


def _decode_edges(data: List[List[int]]):
    return frozenset(
        ((e[0], e[1]), (e[2], e[3])) for e in data
    )


def save_lut(table: LookupTable, path: PathLike) -> None:
    """Write a lookup table to ``path`` (JSON)."""
    doc = {
        "version": FORMAT_VERSION,
        "prune_mode": table.prune_mode,
        "pool": [_encode_edges(table.pool.get(i)) for i in range(len(table.pool))],
        "degrees": {},
        "stats": {
            str(n): {
                "degree": st.degree,
                "num_index": st.num_index,
                "avg_topologies": st.avg_topologies,
                "max_topologies": st.max_topologies,
                "distinct_topologies": st.distinct_topologies,
                "build_seconds": st.build_seconds,
                "sampled": st.sampled,
            }
            for n, st in table.stats.items()
        },
    }
    for n, patterns in table.entries.items():
        deg_doc = {}
        for (perm, src), rows in patterns.items():
            key = ",".join(map(str, perm)) + f"/{src}"
            deg_doc[key] = [
                {"w": list(w), "d": [list(r) for r in rows_d], "t": tid}
                for (w, rows_d, tid) in rows
            ]
        doc["degrees"][str(n)] = deg_doc
    Path(path).write_text(json.dumps(doc), encoding="utf-8")


def load_lut(path: PathLike) -> LookupTable:
    """Read a lookup table previously written by :func:`save_lut`."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read LUT file {path}: {exc}") from exc
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"LUT file {path} has version {doc.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    table = LookupTable()
    table.prune_mode = doc.get("prune_mode", "componentwise")
    pool = TopologyPool()
    for encoded in doc["pool"]:
        pool.intern(_decode_edges(encoded))
    table.pool = pool
    for n_str, patterns in doc["degrees"].items():
        n = int(n_str)
        table.entries[n] = {}
        for key, rows in patterns.items():
            perm_str, src_str = key.rsplit("/", 1)
            perm = tuple(int(x) for x in perm_str.split(","))
            table.entries[n][(perm, int(src_str))] = [
                (
                    tuple(r["w"]),
                    tuple(tuple(row) for row in r["d"]),
                    int(r["t"]),
                )
                for r in rows
            ]
    for n_str, st in doc.get("stats", {}).items():
        table.stats[int(n_str)] = DegreeStats(**st)
    return table


def lut_file_size(path: PathLike) -> int:
    """Size of the serialized table in bytes (Table II's Size column)."""
    return Path(path).stat().st_size
