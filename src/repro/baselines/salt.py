"""SALT: Steiner shallow-light trees (Chen & Young, TCAD 2020) — baseline.

SALT interpolates between the RSMT (light) and the shortest-path tree
(shallow) with one parameter ``epsilon``: the output guarantees every sink
``v`` a path length of at most ``(1 + epsilon) * ||r - v||_1`` while
keeping total wirelength close to the RSMT's. The construction here
follows the algorithm's structure:

1. seed with the RSMT of the net,
2. walk pins root-outward; any sink whose tree path overshoots its budget
   is rewired to the cheapest attachment that restores the budget
   (the source always qualifies, so the invariant is always satisfiable),
3. post-process with the budget-preserving wirelength refinement passes
   described in the SALT paper (our :func:`per_sink_shallow_refine`).

Sweeping ``epsilon`` yields SALT's Pareto *curve* — this is exactly how
the PatLabor paper evaluates SALT ("we run SALT with different parameters
to obtain Pareto sets").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..geometry.net import Net
from ..geometry.point import l1
from ..routing.refine import (
    apply_reattachment,
    best_reattachment,
    per_sink_shallow_refine,
)
from ..routing.tree import RoutingTree
from .rsmt import rsmt

#: Default epsilon sweep for producing SALT's Pareto set. Matches the
#: published usage: a dense range from near-shortest-path (0) to
#: effectively-RSMT (large).
DEFAULT_EPSILONS: Sequence[float] = (
    0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.55, 0.75, 1.0, 1.5, 2.5, 5.0,
)


def salt(
    net: Net,
    epsilon: float,
    seed: Optional[RoutingTree] = None,
    refine: bool = True,
) -> RoutingTree:
    """One SALT tree: ``(1+epsilon)``-shallow, close to light.

    ``seed`` lets callers share one RSMT across a sweep.
    """
    tree = (seed or rsmt(net)).copy()
    src = net.source

    # Process sinks in root-outward order (ancestor rewires first), so a
    # descendant sees its ancestors' corrected path lengths.
    order = sorted(
        range(1, net.degree), key=lambda i: l1(src, net.pins[i])
    )
    for v in order:
        budget = (1.0 + epsilon) * l1(src, tree.points[v])
        pls = tree.path_lengths()
        if pls[v] <= budget + 1e-9:
            continue
        cand = best_reattachment(
            tree, v, pls, max_arrival=budget, require_cheaper=False
        )
        if cand is None:
            # No cheaper feasible edge — wire straight to the source,
            # which always meets the budget.
            apply_reattachment(tree, v, 0, None, tree.points[0])
        else:
            _, _, node, split_child, at = cand
            apply_reattachment(tree, v, node, split_child, at)
    tree = tree.compacted()
    if refine:
        tree = per_sink_shallow_refine(tree, epsilon)
    return tree


def salt_sweep(
    net: Net,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    refine: bool = True,
) -> List:
    """SALT's Pareto set: one tree per epsilon, Pareto-filtered.

    Returns solutions ``(w, d, tree)`` as used across the library.
    """
    from ..core.pareto import clean_front

    seed = rsmt(net)
    solutions = []
    for eps in epsilons:
        t = salt(net, eps, seed=seed, refine=refine)
        w, d = t.objective()
        solutions.append((w, d, t))
    # The seed itself anchors the light end of the curve.
    w, d = seed.objective()
    solutions.append((w, d, seed))
    return clean_front(solutions)
