"""Congestion-aware routing: exact tri-objective DW and practical helpers.

Implements the paper's first future-work direction — extending Pareto
optimisation to congestion — on top of the existing machinery:

* :func:`pareto_dw3` — exact (w, d, c) frontier by the Dreyfus–Wagner
  recurrence with 3-D dominance. Congestion is additive over edges, so
  the same extension/merge structure applies; the corner/bounding-box
  pruning lemmas are **not** used because their proofs rely on both
  objectives improving towards the pins, which congestion weights can
  invert. Exact therefore only for small nets (``n <= 6`` by default).
* :func:`embed_min_congestion` — zero-cost win for any tree: pick each
  edge's L orientation to dodge hot cells (w and d are embedding-
  invariant, so this is free).
* :func:`congestion_annotated_front` — the practical path for any degree:
  take PatLabor's (w, d) Pareto set, congestion-optimise each tree's
  embedding, and 3-D-filter.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.patlabor import PatLabor
from ..exceptions import DegreeTooLargeError
from ..geometry.hanan import GridNode, HananGrid
from ..geometry.net import Net
from ..routing.embedding import Segment, embed_edge
from ..routing.tree import RoutingTree
from .model import CongestionMap
from .pareto3 import Solution3, pareto_filter3

DEFAULT_MAX_DEGREE3 = 6


def _collect_edges(payload: Any, out: Set[Tuple[GridNode, GridNode]]) -> None:
    stack = [payload]
    while stack:
        p = stack.pop()
        if p[0] == "leaf":
            continue
        if p[0] == "ext":
            _, u, v, child = p
            if u != v:
                out.add((u, v))
            stack.append(child)
        else:
            stack.append(p[1])
            stack.append(p[2])


def pareto_dw3(
    net: Net,
    cmap: CongestionMap,
    max_degree: int = DEFAULT_MAX_DEGREE3,
) -> List[Solution3]:
    """Exact (wirelength, delay, congestion) Pareto frontier.

    Edge congestion uses the cheaper of the two L embeddings (the final
    tree is embedded accordingly). Runs the unpruned DW recurrence —
    exponential in the sink count, intended for ``net.degree <= 6``.
    """
    n = net.degree
    if n > max_degree:
        raise DegreeTooLargeError(n, max_degree)
    grid = HananGrid.of_net(net)
    pin_nodes = grid.pin_nodes()
    source_node = pin_nodes[0]
    sink_nodes = pin_nodes[1:]
    num_sinks = len(sink_nodes)
    full = (1 << num_sinks) - 1
    nodes = list(grid.nodes())
    dist = grid.dist
    point = grid.point

    cong: Dict[Tuple[GridNode, GridNode], float] = {}

    def ccost(u: GridNode, v: GridNode) -> float:
        key = (u, v)
        c = cong.get(key)
        if c is None:
            c = cmap.best_edge_cost(point(u), point(v))[0]
            cong[key] = c
            cong[(v, u)] = c
        return c

    S: List[Optional[Dict[GridNode, List[Solution3]]]] = [None] * (full + 1)

    def closure(merged: Dict[GridNode, List[Solution3]]) -> Dict[GridNode, List[Solution3]]:
        out: Dict[GridNode, List[Solution3]] = {}
        sources = [(u, lst) for u, lst in merged.items() if lst]
        for v in nodes:
            bucket: List[Solution3] = []
            for u, lst in sources:
                if u == v:
                    bucket.extend(lst)
                else:
                    duv = dist(u, v)
                    cuv = ccost(u, v)
                    for w, d, c, p in lst:
                        bucket.append(
                            (w + duv, d + duv, c + cuv, ("ext", u, v, p))
                        )
            out[v] = pareto_filter3(bucket)
        return out

    for si, s_node in enumerate(sink_nodes):
        S[1 << si] = closure({s_node: [(0.0, 0.0, 0.0, ("leaf", s_node))]})

    masks_by_size: List[List[int]] = [[] for _ in range(num_sinks + 1)]
    for mask in range(1, full + 1):
        masks_by_size[bin(mask).count("1")].append(mask)

    for size in range(2, num_sinks + 1):
        for mask in masks_by_size[size]:
            bits = [i for i in range(num_sinks) if mask >> i & 1]
            low = 1 << bits[0]
            rest = mask & ~low
            merged: Dict[GridNode, List[Solution3]] = {}
            for v in nodes:
                bucket: List[Solution3] = []
                sub = rest
                while True:
                    q1 = sub | low
                    if q1 != mask:
                        q2 = mask ^ q1
                        s1 = S[q1].get(v) if S[q1] else None
                        s2 = S[q2].get(v) if S[q2] else None
                        if s1 and s2:
                            for w1, d1, c1, p1 in s1:
                                for w2, d2, c2, p2 in s2:
                                    bucket.append(
                                        (
                                            w1 + w2,
                                            max(d1, d2),
                                            c1 + c2,
                                            ("merge", p1, p2),
                                        )
                                    )
                    if sub == 0:
                        break
                    sub = (sub - 1) & rest
                if bucket:
                    merged[v] = pareto_filter3(bucket)
            S[mask] = closure(merged)

    result = S[full][source_node] if S[full] else []
    final: List[Solution3] = []
    for w, d, c, payload in result:
        edges: Set[Tuple[GridNode, GridNode]] = set()
        _collect_edges(payload, edges)
        pt_edges = [(point(a), point(b)) for a, b in edges]
        if not pt_edges:
            pt_edges = [(net.source, s) for s in net.sinks]
        referenced = [p for e in pt_edges for p in e]
        tree = RoutingTree.from_edges(net, pt_edges, extra_points=referenced)
        tw, td = tree.objective()
        tc = cmap.tree_cost(tree)
        final.append((min(w, tw), min(d, td), min(c, tc), tree))
    return pareto_filter3(final)


def embed_min_congestion(
    tree: RoutingTree, cmap: CongestionMap
) -> Tuple[List[Segment], float]:
    """Per-edge L-orientation choice minimising total congestion.

    Returns the chosen segments and their total congestion cost. This is
    free quality: wirelength and delay do not depend on the choice.
    """
    segments: List[Segment] = []
    total = 0.0
    for child, parent in tree.edges():
        a, b = tree.points[parent], tree.points[child]
        cost, lower = cmap.best_edge_cost(a, b)
        segments.extend(embed_edge(a, b, lower_l=lower))
        total += cost
    return segments, total


def congestion_annotated_front(
    net: Net,
    cmap: CongestionMap,
    router: Optional[PatLabor] = None,
) -> List[Solution3]:
    """Practical tri-objective front for any degree.

    Routes the (w, d) Pareto set with PatLabor, congestion-optimises each
    tree's embedding, and filters in 3-D. Exact in (w, d); congestion is
    a post-optimised annotation (the exact tri-objective frontier can
    contain additional trees — see :func:`pareto_dw3` for small nets).
    """
    router = router or PatLabor()
    front2 = router.route(net)
    out: List[Solution3] = []
    for w, d, tree in front2:
        _, cost = embed_min_congestion(tree, cmap)
        out.append((w, d, cost, tree))
    return pareto_filter3(out)
