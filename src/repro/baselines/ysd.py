"""YSD-substitute: learned weighted-sum routing, modelled as a greedy
weighted constructor (convex-curve method).

Yang, Sun & Ding (ICCAD 2023) train a neural network that, for each
weighted-sum parameter ``alpha``, predicts a routing topology minimising
``alpha * w + (1 - alpha) * d``; large nets use a divide-and-conquer
framework. The released code is incomplete (the PatLabor paper notes it
reimplemented parts) and no GPU stack exists offline, so this module
substitutes a stand-in that preserves both behaviours the paper measures:

* every output minimises a **linear scalarisation**, so the method can
  only reach points on the convex hull of the Pareto frontier — the
  structural weakness Fig. 7 highlights;
* the per-alpha minimisation is **approximate** (a greedy blended-key
  construction plus weighted refinement stands in for the trained
  predictor, which is likewise an imperfect optimiser), so the method
  misses frontier points on harder small nets — the behaviour behind
  Table III's non-zero non-optimality ratios.

Large nets use the same divide-and-conquer framework as the original
(median splits, one best-weighted tree per sub-problem), which inherits
YSD's documented weakness for wirelength minimisation on degree-100 nets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.pareto import Solution, clean_front
from ..geometry.net import Net
from ..geometry.point import Point, l1
from ..routing.attach import TreeBuilder
from ..routing.refine import apply_reattachment, best_reattachment
from ..routing.tree import RoutingTree

DEFAULT_WEIGHTS: Sequence[float] = (
    0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)

#: Above this degree the divide-and-conquer framework takes over.
SMALL_DEGREE_LIMIT = 9


def _scales(net: Net) -> Tuple[float, float]:
    return (max(net.star_wirelength(), 1e-9), max(net.delay_lower_bound(), 1e-9))


def weighted_objective(
    w: float, d: float, alpha: float, scales: Tuple[float, float]
) -> float:
    """The scalarised cost ``alpha*w/ws + (1-alpha)*d/ds``."""
    return alpha * w / scales[0] + (1.0 - alpha) * d / scales[1]


def weighted_construct(net: Net, alpha: float, scales: Tuple[float, float]) -> RoutingTree:
    """Greedy blended-key Steiner growth for one scalarisation.

    At each step the remaining sink with the cheapest blended attachment
    (``alpha``-weighted wirelength increment + ``(1-alpha)``-weighted
    arrival time) is attached at its best Steiner connection. This is the
    stand-in for YSD's neural topology predictor.
    """
    builder = TreeBuilder(net.source)
    arrivals = {0: 0.0}
    pending = dict(enumerate(net.sinks))
    while pending:
        best_key = None
        best_sink = None
        for i, s in pending.items():
            cost, node, split_child, at = builder.best_connection(s)
            if split_child is not None:
                # Arrival through the split edge's parent side.
                parent = builder.parent[split_child]
                base = arrivals[parent] + l1(builder.points[parent], at)
            else:
                base = arrivals[node]
            arrival = base + cost
            key = alpha * cost / scales[0] + (1.0 - alpha) * arrival / scales[1]
            if best_key is None or key < best_key:
                best_key = key
                best_sink = (i, arrival)
        i, arrival = best_sink
        idx = builder.attach(pending.pop(i))
        # Refresh arrival bookkeeping for any nodes added by the attach.
        _recompute_arrivals(builder, arrivals)
    return builder.finish(net)


def _recompute_arrivals(builder: TreeBuilder, arrivals: dict) -> None:
    for idx in range(len(builder.points)):
        if idx in arrivals:
            continue
        p = builder.parent[idx]
        # Parents always precede children in the builder's append order.
        arrivals[idx] = arrivals[p] + l1(builder.points[p], builder.points[idx])


def weighted_refine(
    tree: RoutingTree, alpha: float, scales: Tuple[float, float],
    max_passes: int = 3,
) -> RoutingTree:
    """Hill-climb reattachments on the scalarised objective."""
    work = tree.copy()
    for _ in range(max_passes):
        improved = False
        pls = work.path_lengths()
        current = weighted_objective(*work.objective(), alpha, scales)
        for v in range(1, len(work.points)):
            cand = best_reattachment(work, v, pls, require_cheaper=False)
            if cand is None:
                continue
            _, _, node, split_child, at = cand
            snapshot = (list(work.points), list(work.parent))
            apply_reattachment(work, v, node, split_child, at)
            new = weighted_objective(*work.objective(), alpha, scales)
            if new < current - 1e-12:
                current = new
                improved = True
                pls = work.path_lengths()
            else:
                work.points, work.parent = snapshot
                work._invalidate()
        if not improved:
            break
    return work.compacted()


def ysd_single(net: Net, alpha: float) -> RoutingTree:
    """One YSD-substitute tree for one scalarisation weight."""
    scales = _scales(net)
    if net.degree <= SMALL_DEGREE_LIMIT:
        tree = weighted_construct(net, alpha, scales)
        return weighted_refine(tree, alpha, scales)
    edges = _dc_edges(list(net.pins), net.source, alpha, 0)
    tree = RoutingTree.from_edges(net, edges)
    return weighted_refine(tree, alpha, scales, max_passes=1)


def _dc_edges(
    points: List[Point], source: Point, alpha: float, axis: int
) -> List[Tuple[Point, Point]]:
    """Divide-and-conquer: one best-weighted tree's edges per subset."""
    root_idx = min(range(len(points)), key=lambda i: l1(points[i], source))
    sub = Net.from_points(
        points[root_idx], [p for i, p in enumerate(points) if i != root_idx]
    )
    if len(points) <= SMALL_DEGREE_LIMIT:
        scales = _scales(sub)
        t = weighted_refine(weighted_construct(sub, alpha, scales), alpha, scales)
        return [
            (t.points[i], t.points[p])
            for i, p in t.edges()
            if t.points[i] != t.points[p]
        ]
    ordered = sorted(points, key=lambda p: (p[axis], p[1 - axis]))
    k = len(ordered) // 2
    return _dc_edges(ordered[: k + 1], source, alpha, 1 - axis) + _dc_edges(
        ordered[k:], source, alpha, 1 - axis
    )


def ysd(net: Net, weights: Sequence[float] = DEFAULT_WEIGHTS) -> List[Solution]:
    """The YSD-substitute's Pareto set for ``net``.

    One tree per scalarisation weight, Pareto-filtered. Only convex-hull
    frontier points are reachable even in the best case.
    """
    solutions: List[Solution] = []
    for alpha in weights:
        t = ysd_single(net, alpha)
        w, d = t.objective()
        solutions.append((w, d, t))
    return clean_front(solutions)
