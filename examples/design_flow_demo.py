#!/usr/bin/env python3
"""Design-level routing flow with congestion negotiation.

Run:  python examples/design_flow_demo.py [output_dir]

Routes a small synthetic design three ways — Pareto candidate sets,
always-RSMT, always-shortest-path — through the sequential flow of
``repro.eval.design_flow`` and renders:

* a strategy comparison table (wire / budget misses / overflow),
* a congestion heatmap SVG per strategy with the routed trees overlaid.

This is the paper's global-routing integration story made concrete: with
the whole Pareto set available per net, the router meets every timing
budget while spending the least wire and steering around hot cells.
"""

import random
import sys
from pathlib import Path

from repro.eval.design_flow import DesignFlowConfig, route_design
from repro.eval.flow_report import render_flow_detail, render_flow_summary
from repro.geometry.net import random_net
from repro.viz.heatmap import congestion_heatmap_svg
from repro.viz.svg import save_svg


def main(out_dir: str = "design_flow_out") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)

    rng = random.Random(11)
    nets = [
        random_net(rng.choice((4, 5, 6, 7, 8)), rng=rng, span=1000.0,
                   name=f"net{i:02d}")
        for i in range(18)
    ]
    config = DesignFlowConfig(delay_slack=0.08, capacity=180.0, cells=12)

    results = {}
    for strategy in ("pareto", "rsmt", "shortest"):
        results[strategy] = route_design(nets, strategy=strategy, config=config)
        svg = congestion_heatmap_svg(
            results[strategy].demand,
            title=f"demand — {strategy}",
            vmax=config.capacity * 2,
        )
        save_svg(svg, str(out / f"demand_{strategy}.svg"))

    print(render_flow_summary(results))
    print()
    print(render_flow_detail(results["pareto"], limit=8))
    print(f"\nheatmaps written to {out}/")

    pareto, fast = results["pareto"], results["shortest"]
    assert pareto.budget_misses == 0
    assert pareto.total_wirelength <= fast.total_wirelength + 1e-6
    print(
        "\nPareto flow: every budget met with "
        f"{(1 - pareto.total_wirelength / fast.total_wirelength) * 100:.1f}% "
        "less wire than always-shortest ✔"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
