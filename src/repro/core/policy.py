"""Pin-selection policy π for PatLabor's local search, and its trainer.

The policy scores every unselected sink (paper, Section V-B):

    score(p) = a1 * ||r - p||_1            (far from the source)
             + a2 * dist_T(r, p)           (deep in the current tree)
             - a3 * min_sel ||p - p_sel||  (close to already-selected pins)
             - a4 * HPWL(p, selected)      (keeps the selection compact)

and greedily picks the ``k`` highest-scoring sinks. Parameters are
per-degree (``alpha^(n)``), trained by the paper's policy-iteration /
curriculum scheme: roll out random selections, keep the ones that improve
the Pareto set most, and fit nonnegative weights so the score ranks the
pins of good selections highly; each degree warm-starts the next.

Shipped defaults were produced by :func:`train_policy` on κ-smoothed
random nets (see ``examples/policy_training.py`` to regenerate them).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import PolicyError
from ..geometry.net import Net
from ..geometry.point import hpwl, l1
from ..routing.tree import RoutingTree


@dataclass(frozen=True)
class PolicyParams:
    """Nonnegative score weights ``(a1, a2, a3, a4)``."""

    a1: float
    a2: float
    a3: float
    a4: float

    def __post_init__(self) -> None:
        if min(self.a1, self.a2, self.a3, self.a4) < 0:
            raise PolicyError(f"policy weights must be nonnegative: {self}")

    def as_array(self) -> np.ndarray:
        return np.array([self.a1, self.a2, self.a3, self.a4])


#: Defaults from a policy-iteration run (examples/policy_training.py):
#: source distance and tree depth dominate; the compactness terms matter
#: more as nets grow.
DEFAULT_PARAMS: Dict[int, PolicyParams] = {
    10: PolicyParams(0.62, 1.0, 0.28, 0.10),
    20: PolicyParams(0.55, 1.0, 0.35, 0.14),
    40: PolicyParams(0.50, 1.0, 0.42, 0.18),
    100: PolicyParams(0.45, 1.0, 0.50, 0.22),
}


def pin_features(
    net: Net,
    tree: RoutingTree,
    sink_index: int,
    selected: Sequence[int],
    sink_delays: Sequence[float],
) -> Tuple[float, float, float, float]:
    """The four score features of one candidate sink.

    Features 3 and 4 are zero while nothing is selected yet (paper).
    All features are normalised by the net's bounding-box half-perimeter,
    making the weights scale-free.
    """
    scale = max(net.bbox().half_perimeter, 1e-12)
    p = net.sinks[sink_index]
    f1 = l1(net.source, p) / scale
    f2 = sink_delays[sink_index] / scale
    if selected:
        sel_pts = [net.sinks[i] for i in selected]
        f3 = min(l1(p, q) for q in sel_pts) / scale
        f4 = hpwl([p] + sel_pts) / scale
    else:
        f3 = 0.0
        f4 = 0.0
    return (f1, f2, f3, f4)


class SelectionPolicy:
    """Greedy top-``k`` pin selection under the 4-term score."""

    def __init__(
        self,
        params: Optional[Dict[int, PolicyParams]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.params: Dict[int, PolicyParams] = dict(
            params if params is not None else DEFAULT_PARAMS
        )
        self.rng = rng

    def params_for(self, degree: int) -> PolicyParams:
        """Weights for a net degree (nearest trained degree wins)."""
        if not self.params:
            raise PolicyError("policy has no trained parameters")
        if degree in self.params:
            return self.params[degree]
        nearest = min(self.params, key=lambda n: abs(n - degree))
        return self.params[nearest]

    def select(
        self, net: Net, tree: RoutingTree, k: int
    ) -> List[int]:
        """Indices of the ``k`` sinks to rebuild (greedy argmax score)."""
        alpha = self.params_for(net.degree)
        delays = tree.sink_delays()
        selected: List[int] = []
        remaining = set(range(len(net.sinks)))
        while remaining and len(selected) < k:
            scored = []
            for i in remaining:
                f1, f2, f3, f4 = pin_features(net, tree, i, selected, delays)
                s = alpha.a1 * f1 + alpha.a2 * f2 - alpha.a3 * f3 - alpha.a4 * f4
                scored.append((s, i))
            scored.sort(reverse=True)
            if self.rng is not None and len(scored) > 1:
                # Small exploration: occasionally take the runner-up.
                pick = scored[1][1] if self.rng.random() < 0.15 else scored[0][1]
            else:
                pick = scored[0][1]
            selected.append(pick)
            remaining.discard(pick)
        return selected


def random_selection(
    net: Net, k: int, rng: random.Random
) -> List[int]:
    """A uniformly random selection (exploration rollouts in training)."""
    idx = list(range(len(net.sinks)))
    rng.shuffle(idx)
    return idx[:k]


def train_policy(
    degrees: Sequence[int] = (10, 14, 20, 28, 40),
    *,
    nets_per_degree: int = 6,
    rollouts: int = 10,
    lam: int = 8,
    seed: int = 0,
    span: float = 1000.0,
    router=None,
) -> Dict[int, PolicyParams]:
    """Policy iteration with a degree curriculum (paper, Section V-B).

    For each degree: sample nets, roll out random pin selections through
    one PatLabor local-search iteration, score each rollout by the
    hypervolume gained over the seed tree, and fit nonnegative weights by
    least squares so the score separates pins of above-median rollouts
    from unchosen pins. Each degree's fit warm-starts the next
    (curriculum); degenerate fits keep the previous weights.

    ``router`` is injected to avoid a circular import: it must be a
    callable ``(net, selection, lam) -> float`` returning the rollout's
    improvement. The default uses :class:`repro.core.patlabor.PatLabor`.
    """
    from scipy.optimize import nnls

    from ..geometry.net import random_net

    if router is None:
        from .patlabor import rollout_improvement as router

    rng = random.Random(seed)
    current = PolicyParams(1.0, 1.0, 0.5, 0.25)
    learned: Dict[int, PolicyParams] = {}
    for n in degrees:
        rows: List[Tuple[float, float, float, float]] = []
        targets: List[float] = []
        for _ in range(nets_per_degree):
            net = random_net(n, rng=rng, span=span)
            results = []
            for _ in range(rollouts):
                sel = random_selection(net, lam - 1, rng)
                gain, feats = router(net, sel, lam)
                results.append((gain, sel, feats))
            gains = sorted(r[0] for r in results)
            median = gains[len(gains) // 2]
            for gain, sel, feats in results:
                label = 1.0 if gain > median and gain > 0 else 0.0
                for f in feats:
                    # Negate the subtractive features so nnls can fit all
                    # four weights as nonnegative.
                    rows.append((f[0], f[1], -f[2], -f[3]))
                    targets.append(label)
        x = np.asarray(rows)
        y = np.asarray(targets)
        if len(rows) >= 8 and y.std() > 0:
            # Solve min ||X a - y|| with a >= 0 on the sign-adjusted design.
            coef, _ = nnls(np.hstack([x, np.ones((len(x), 1))]), y)
            a = coef[:4]
            if a.max() > 0:
                a = a / a.max()
                current = PolicyParams(*[float(v) for v in a])
        learned[n] = current
    return learned
