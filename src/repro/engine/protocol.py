"""The ``Router`` protocol: the one interface every tree constructor serves.

Every algorithm in this library — PatLabor, the exact DPs, and all the
baselines — is exposed to callers as a :class:`Router`: an object with a
``name``, a :class:`RouterCapabilities` descriptor, and a single method
``route(net) -> [(w, d, tree), ...]``. Callers (``eval.runner``,
``core.batch``, the CLI, the design flow) never import algorithm modules
directly; they resolve routers by name from :mod:`repro.engine.registry`
and compose middleware around this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

from ..core.pareto import Solution
from ..exceptions import PolicyError
from ..geometry.net import Net


@dataclass(frozen=True)
class RouterCapabilities:
    """What a router promises about its output.

    Attributes
    ----------
    exact_up_to:
        The frontier is provably the full Pareto set for nets of degree
        at most this; ``None`` for purely heuristic methods.
    max_degree:
        Hard input limit — the validation middleware rejects larger nets
        at the engine boundary with
        :class:`~repro.exceptions.DegreeTooLargeError` instead of letting
        them fail deep inside a DP. ``None`` means unbounded.
    pareto:
        True when ``route`` returns a frontier (possibly approximate);
        False for single-tree constructors wrapped as singleton fronts.
    deterministic:
        True when repeated calls on the same net return identical
        results — the property the canonicalizing cache relies on.
    frontier_selection:
        True when the frontier offers a meaningful point choice, i.e.
        :func:`route_select` can pick between genuinely different
        trade-offs. False for single-tree constructors (their singleton
        fronts always select index 0; the call still works).
    incremental:
        True when the engine accepts :class:`~repro.incremental.NetDelta`
        edits through ``apply_delta`` — i.e. an
        :class:`~repro.incremental.IncrementalRouter` is installed in the
        stack. False for plain stacks; every delta then needs a full
        ``route``.
    """

    exact_up_to: Optional[int] = None
    max_degree: Optional[int] = None
    pareto: bool = True
    deterministic: bool = True
    frontier_selection: bool = True
    incremental: bool = False


@runtime_checkable
class Router(Protocol):
    """A per-net tree-construction service.

    ``route`` maps a :class:`~repro.geometry.net.Net` to Pareto solutions
    ``(wirelength, delay, tree)``. Implementations must be safe to call
    millions of times; anything cross-cutting (caching, validation,
    observability) belongs in middleware, not in the router.

    ``name`` and ``capabilities`` are declared as read-only properties so
    both plain attributes and properties satisfy the protocol.
    """

    @property
    def name(self) -> str:
        """Registry name of this router."""
        ...

    @property
    def capabilities(self) -> RouterCapabilities:
        """What this router promises about its output."""
        ...

    def route(self, net: Net) -> List[Solution]:
        """The (possibly approximate) Pareto set of ``net``."""
        ...


# --------------------------------------------------------- point selection


@runtime_checkable
class PointPolicy(Protocol):
    """A frontier-point chooser: ``select(net, front) -> index``.

    The frontier-selection hook shared by the congestion negotiator
    (:mod:`repro.congestion.negotiate`) and the serve daemon's ``select``
    request field: given a net and its routed frontier, return the index
    of the point the caller should commit. Distinct from
    :class:`repro.core.policy.SelectionPolicy`, which picks *pins* inside
    the local search — this picks a whole tree off a finished front.
    """

    @property
    def name(self) -> str:
        """Spec string this policy round-trips through ``resolve_point_policy``."""
        ...

    def select(self, net: Net, front: Sequence[Solution]) -> int:
        """Index into ``front`` of the chosen solution."""
        ...


def _argmin_by(front: Sequence[Solution], key_wd: Tuple[int, int]) -> int:
    """Index minimising the (primary, secondary) objective pair."""
    a, b = key_wd
    return min(
        range(len(front)), key=lambda k: (front[k][a], front[k][b], k)
    )


@dataclass(frozen=True)
class MinWirelengthPolicy:
    """Always the minimum-wirelength frontier point (delay breaks ties)."""

    name: str = "min_wirelength"

    def select(self, net: Net, front: Sequence[Solution]) -> int:
        """Index of the (w, d)-lexicographic minimum."""
        _require_front(front)
        return _argmin_by(front, (0, 1))


@dataclass(frozen=True)
class MinDelayPolicy:
    """Always the minimum-delay frontier point (wirelength breaks ties).

    The timing-safe single-tree choice — what a classic timing-driven
    router commits — and therefore the pinned-point baseline the
    congestion negotiator is measured against.
    """

    name: str = "min_delay"

    def select(self, net: Net, front: Sequence[Solution]) -> int:
        """Index of the (d, w)-lexicographic minimum."""
        _require_front(front)
        return _argmin_by(front, (1, 0))


@dataclass(frozen=True)
class KneePolicy:
    """The balanced trade-off: minimum normalized ``w + d``.

    Both objectives are scaled to [0, 1] over the front's own range
    (degenerate ranges contribute 0), so the pick is invariant to units.
    """

    name: str = "knee"

    def select(self, net: Net, front: Sequence[Solution]) -> int:
        """Index minimising the normalized objective sum."""
        _require_front(front)
        ws = [s[0] for s in front]
        ds = [s[1] for s in front]
        w_span = max(ws) - min(ws)
        d_span = max(ds) - min(ds)

        def score(k: int) -> Tuple[float, int]:
            w_norm = (ws[k] - min(ws)) / w_span if w_span else 0.0
            d_norm = (ds[k] - min(ds)) / d_span if d_span else 0.0
            return (w_norm + d_norm, k)

        return min(range(len(front)), key=score)


@dataclass(frozen=True)
class DelayBudgetPolicy:
    """Cheapest point meeting ``(1 + slack) * delay_lower_bound``.

    The Held–Perner-style constrained choice: minimum wirelength subject
    to the per-net delay budget; when nothing is feasible (only possible
    for approximate fronts missing the min-delay tree), falls back to
    minimum delay.
    """

    slack: float = 0.25

    @property
    def name(self) -> str:
        """Spec string (``budget:<slack>``)."""
        return f"budget:{self.slack:g}"

    def select(self, net: Net, front: Sequence[Solution]) -> int:
        """Index of the cheapest budget-feasible point."""
        _require_front(front)
        budget = (1.0 + self.slack) * net.delay_lower_bound()
        feasible = [k for k, s in enumerate(front) if s[1] <= budget + 1e-9]
        if not feasible:
            return _argmin_by(front, (1, 0))
        return min(feasible, key=lambda k: (front[k][0], front[k][1], k))


def _require_front(front: Sequence[Solution]) -> None:
    """Reject selection over an empty front with a typed error."""
    if not front:
        raise PolicyError("cannot select a point from an empty frontier")


#: Named point policies the string specs resolve to.
POINT_POLICIES = {
    "min_wirelength": MinWirelengthPolicy,
    "min_wl": MinWirelengthPolicy,
    "min_delay": MinDelayPolicy,
    "knee": KneePolicy,
}


def resolve_point_policy(spec: Union[str, PointPolicy]) -> PointPolicy:
    """A :class:`PointPolicy` from its spec (or pass one through).

    Known specs: ``min_wirelength`` (alias ``min_wl``), ``min_delay``,
    ``knee``, and ``budget:<slack>`` (e.g. ``budget:0.25``). Raises
    :class:`~repro.exceptions.PolicyError` on anything else — the error
    the serve daemon turns into an ``ok: false`` response.
    """
    if not isinstance(spec, str):
        return spec
    key = spec.strip().lower().replace("-", "_")
    if key.startswith("budget:"):
        try:
            slack = float(key.split(":", 1)[1])
        except ValueError:
            raise PolicyError(f"malformed budget policy spec {spec!r}") from None
        if slack < 0:
            raise PolicyError(f"budget slack must be >= 0, got {slack}")
        return DelayBudgetPolicy(slack=slack)
    try:
        return POINT_POLICIES[key]()
    except KeyError:
        known = ", ".join(sorted(POINT_POLICIES)) + ", budget:<slack>"
        raise PolicyError(
            f"unknown point policy {spec!r}; known: {known}"
        ) from None


def route_select(
    router: Router, net: Net, policy: Union[str, PointPolicy]
) -> Tuple[List[Solution], int]:
    """Route ``net`` and pick one frontier point: ``(front, index)``.

    The single code path behind the negotiator's pinned-point baseline
    and the serve protocol's ``select`` field, so every caller agrees on
    policy semantics. Raises :class:`~repro.exceptions.PolicyError` when
    the policy returns an out-of-range index.
    """
    resolved = resolve_point_policy(policy)
    front = router.route(net)
    index = resolved.select(net, front)
    if not 0 <= index < len(front):
        raise PolicyError(
            f"policy {resolved.name!r} chose index {index} on a "
            f"{len(front)}-point front"
        )
    return front, index
