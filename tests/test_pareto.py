"""Unit + property tests for the Pareto set algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import (
    attains_frontier,
    clean_front,
    count_on_frontier,
    cross,
    dominates,
    epsilon_indicator,
    front_at_wirelength,
    hypervolume,
    is_pareto_front,
    merge_fronts,
    normalized_front,
    objectives,
    pareto_filter,
    shift,
    weakly_dominates,
)

obj = st.tuples(
    st.floats(0, 1e6, allow_nan=False), st.floats(0, 1e6, allow_nan=False)
)
sols = st.lists(obj.map(lambda p: (p[0], p[1], None)), max_size=40)


class TestDominance:
    def test_strict(self):
        assert dominates((1, 1), (2, 2))
        assert dominates((1, 2), (1, 3))
        assert not dominates((1, 3), (2, 2))
        assert not dominates((2, 2), (1, 3))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1), (1, 1))
        assert weakly_dominates((1, 1), (1, 1))

    @given(obj, obj)
    def test_antisymmetry(self, a, b):
        assert not (dominates(a, b) and dominates(b, a))


class TestParetoFilter:
    def test_simple(self):
        front = pareto_filter([(3, 1, "a"), (1, 3, "b"), (2, 2, "c"), (3, 3, "d")])
        assert [(s[0], s[1]) for s in front] == [(1, 3), (2, 2), (3, 1)]

    def test_duplicates_keep_one(self):
        front = pareto_filter([(1, 1, "first"), (1, 1, "second")])
        assert len(front) == 1

    def test_empty_and_singleton(self):
        assert pareto_filter([]) == []
        assert pareto_filter([(1, 2, None)]) == [(1, 2, None)]

    @given(sols)
    def test_output_is_antichain(self, solutions):
        front = pareto_filter(solutions)
        assert is_pareto_front(front)

    @given(sols)
    def test_every_input_dominated_or_kept(self, solutions):
        front = pareto_filter(solutions)
        front_objs = objectives(front)
        for s in solutions:
            assert any(weakly_dominates(f, (s[0], s[1])) for f in front_objs)

    @given(sols)
    def test_idempotent(self, solutions):
        once = pareto_filter(solutions)
        assert pareto_filter(once) == once

    @given(sols)
    def test_sorted_by_wirelength(self, solutions):
        front = pareto_filter(solutions)
        ws = [s[0] for s in front]
        assert ws == sorted(ws)


class TestAlgebra:
    def test_shift(self):
        assert shift([(1, 2, "x")], 5) == [(6, 7, "x")]

    def test_shift_rewrap(self):
        out = shift([(1, 2, "x")], 5, rewrap=lambda s: ("wrapped", s[2]))
        assert out == [(6, 7, ("wrapped", "x"))]

    def test_cross_objectives(self):
        s1 = [(1, 5, "a")]
        s2 = [(2, 3, "b")]
        out = cross(s1, s2)
        assert [(s[0], s[1]) for s in out] == [(3, 5)]

    def test_cross_max_semantics(self):
        out = cross([(0, 10, None)], [(0, 4, None)])
        assert out[0][1] == 10

    def test_cross_filters(self):
        s1 = [(1, 5, None), (2, 4, None)]
        s2 = [(1, 5, None), (2, 4, None)]
        out = cross(s1, s2)
        assert is_pareto_front(out)

    @given(sols, sols)
    def test_cross_size_bound(self, s1, s2):
        f1, f2 = pareto_filter(s1), pareto_filter(s2)
        out = cross(f1, f2)
        if f1 and f2:
            # Product of fronts of sizes a,b has at most a+b-1 optima.
            assert len(out) <= len(f1) + len(f2) - 1

    def test_merge_fronts(self):
        out = merge_fronts([(1, 3, None)], [(2, 2, None)], [(2, 4, None)])
        assert [(s[0], s[1]) for s in out] == [(1, 3), (2, 2)]


class TestCleanFront:
    def test_collapses_float_noise_in_w(self):
        eps = 1e-13
        out = clean_front([(100.0, 50.0, "bad"), (100.0 + eps, 40.0, "good")])
        assert len(out) == 1
        assert out[0][2] == "good"

    def test_collapses_float_noise_in_d(self):
        eps = 1e-13
        out = clean_front([(100.0, 50.0, "a"), (120.0, 50.0 - eps, "b")])
        assert len(out) == 1
        assert out[0][2] == "a"

    def test_keeps_genuine_points(self):
        pts = [(100.0, 50.0, None), (110.0, 40.0, None), (130.0, 10.0, None)]
        assert clean_front(pts) == pts

    @given(sols)
    def test_subset_of_pareto_filter(self, solutions):
        cleaned = clean_front(solutions)
        full = pareto_filter(solutions)
        assert len(cleaned) <= len(full)
        assert is_pareto_front(cleaned)


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume([(1, 1, None)], (3, 3)) == 4

    def test_two_points(self):
        hv = hypervolume([(1, 2, None), (2, 1, None)], (3, 3))
        # Stacked rectangles: (3-1)*(3-2) + (3-2)*(2-1) = 3.
        assert hv == 3

    def test_points_beyond_reference_ignored(self):
        assert hypervolume([(5, 5, None)], (3, 3)) == 0

    @given(sols)
    def test_monotone_in_solutions(self, solutions):
        ref = (2e6, 2e6)
        hv_all = hypervolume(solutions, ref)
        hv_half = hypervolume(solutions[: len(solutions) // 2], ref)
        assert hv_all >= hv_half - 1e-9 * max(1.0, hv_half)


class TestIndicators:
    def test_epsilon_perfect_match(self):
        f = [(1, 2, None), (2, 1, None)]
        assert epsilon_indicator(f, f) == 1.0

    def test_epsilon_factor(self):
        ref = [(1.0, 1.0, None)]
        cand = [(2.0, 1.5, None)]
        assert epsilon_indicator(cand, ref) == 2.0

    def test_epsilon_empty_candidate(self):
        assert epsilon_indicator([], [(1, 1, None)]) == float("inf")

    def test_epsilon_empty_reference(self):
        assert epsilon_indicator([(1, 1, None)], []) == 1.0

    def test_count_on_frontier(self):
        frontier = [(1, 3, None), (2, 2, None), (3, 1, None)]
        cand = [(1, 3, None), (3, 1, None), (9, 9, None)]
        assert count_on_frontier(cand, frontier) == 2

    def test_attains_frontier(self):
        frontier = [(1, 3, None), (3, 1, None)]
        assert attains_frontier([(3, 1, None)], frontier)
        assert not attains_frontier([(2, 5, None)], frontier)

    def test_normalized_front(self):
        out = normalized_front([(10, 20, None)], 10, 10)
        assert out == [(1.0, 2.0)]

    def test_normalized_rejects_bad_refs(self):
        with pytest.raises(ValueError):
            normalized_front([(1, 1, None)], 0, 1)

    def test_front_at_wirelength(self):
        front = [(1, 3, None), (2, 2, None), (3, 1, None)]
        assert front_at_wirelength(front, 2.5) == (2, 2)
        assert front_at_wirelength(front, 0.5) is None
