"""Elmore delay evaluator — the paper's future-work metric, as an extension.

The paper's conclusion lists richer delay metrics as future work; PD-II
and SALT are conventionally evaluated under Elmore delay, so this module
provides a standard first-order RC model for rectilinear trees:

* every unit of wire contributes resistance ``r`` and capacitance ``c``,
* each sink has a load capacitance,
* the Elmore delay of a sink is the sum over the edges on its source path
  of ``R_edge * (C_downstream + C_edge / 2)``.

The evaluator only *measures* trees — the optimisation objectives of the
library remain (wirelength, path length) as in the paper — enabling the
"does the path-length Pareto set also cover the Elmore trade-off?"
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..geometry.point import l1
from ..routing.tree import RoutingTree


@dataclass(frozen=True)
class RCParameters:
    """Unit-length RC constants and terminal loads.

    Defaults are in arbitrary-but-consistent units; only ratios matter for
    ranking trees.
    """

    unit_resistance: float = 1.0e-3   # per unit length
    unit_capacitance: float = 2.0e-4  # per unit length
    sink_capacitance: float = 1.0     # per sink
    driver_resistance: float = 0.1    # source driver


class ElmoreDelay:
    """First-order (Elmore) RC delay of a routing tree."""

    name = "elmore"

    def __init__(self, params: RCParameters = RCParameters()) -> None:
        self.params = params

    def _downstream_capacitance(self, tree: RoutingTree) -> List[float]:
        """Total capacitance hanging below each node (itself included)."""
        p = self.params
        n = tree.net.degree
        cap = [0.0] * len(tree.points)
        for i in range(1, n):
            cap[i] += p.sink_capacitance
        order = tree.topological_order()
        for u in reversed(order):
            parent = tree.parent[u]
            if parent >= 0:
                edge_cap = p.unit_capacitance * l1(
                    tree.points[u], tree.points[parent]
                )
                cap[u] += edge_cap / 2.0
                cap[parent] += cap[u] + edge_cap / 2.0
        return cap

    def sink_delays(self, tree: RoutingTree) -> List[float]:
        """Elmore delay of every sink, in net sink order."""
        p = self.params
        cap = self._downstream_capacitance(tree)
        # Delay accumulates root-to-node: each edge adds
        # R_edge * (cap below the edge's child + half the edge's own C),
        # plus the driver sees the total capacitance.
        total_cap = cap[0]
        delay = [0.0] * len(tree.points)
        delay[0] = p.driver_resistance * total_cap
        for u in tree.topological_order():
            parent = tree.parent[u]
            if parent < 0:
                continue
            length = l1(tree.points[u], tree.points[parent])
            r_edge = p.unit_resistance * length
            delay[u] = delay[parent] + r_edge * cap[u]
        return [delay[i] for i in range(1, tree.net.degree)]

    def max_delay(self, tree: RoutingTree) -> float:
        """Worst sink Elmore delay."""
        return max(self.sink_delays(tree))

    def critical_sink(self, tree: RoutingTree) -> int:
        delays = self.sink_delays(tree)
        return max(range(len(delays)), key=lambda i: delays[i])
