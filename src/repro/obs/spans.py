"""Nestable tracing spans: ``with span("dw.merge"): ...``.

A span measures one timed region. Spans nest: each thread keeps a stack of
active span names, and a span's duration is recorded under its full
``parent/child/...`` path (e.g. ``patlabor.route/patlabor.local_search/
dw.solve``), which is what the span-tree report renders.

A span is closed by its context manager even when the body raises; the
recorded stat (and the Chrome-trace event, when tracing is on) is then
flagged as errored, so the span tree and exported traces stay well-formed
across failures.

When both the registry and the trace collector are disabled, :func:`span`
returns a shared no-op context manager — no allocation, no clock read —
so instrumented code pays only a function call per region.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter, time
from typing import List

from .live import current_request_id
from .registry import _REGISTRY
from .trace import _TRACE

_tls = threading.local()


def _stack() -> List[str]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "_t0", "_wall0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0 = 0.0
        self._wall0 = 0.0

    def __enter__(self) -> "_Span":
        _stack().append(self.name)
        if _TRACE.enabled:
            self._wall0 = time()
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dt = perf_counter() - self._t0
        stack = _stack()
        path = "/".join(stack)
        stack.pop()
        error = exc_type is not None
        _REGISTRY.span_observe(path, dt, error=error)
        if _TRACE.enabled:
            _TRACE.record(
                self.name,
                path,
                self._wall0 or (time() - dt),
                dt,
                pid=os.getpid(),
                tid=threading.get_ident(),
                error=error,
                request_id=current_request_id(),
            )
        return False


def span(name: str):
    """Context manager timing a named region (no-op while disabled).

    Use static, low-cardinality names (``"dw.merge"``, not one name per
    net); per-item detail belongs in counters and timer samples.
    """
    if not (_REGISTRY.enabled or _TRACE.enabled):
        return _NOOP
    return _Span(name)


def current_span_path() -> str:
    """The active span path of the calling thread ("" outside any span)."""
    return "/".join(_stack())
