"""Theorem 1: instances whose Pareto frontier is exponentially large.

The paper's construction chains m "S-shape" gadgets of 11 pins in a
diagonal pattern with geometrically growing dimensions. This module builds
a *compact* gadget family with the same behaviour that stays small enough
for exact Python-scale verification (5 pins per gadget instead of 11):

Each gadget k hangs an "arc" of four collinear pins at height ``±3u_k``
(signs alternate so adjacent gadgets cannot share vertical wire) followed
by an exit pin back on the baseline. The tree chooses, independently per
gadget, between

* **reuse** — drop to the exit from the arc's end: cheapest wire, but the
  path to everything downstream detours over the arc (+``6 u_k`` delay);
* **fast**  — a dedicated baseline trunk to the exit: +``3 u_k`` wire,
  shortest downstream path.

With ``u_k = 8^k`` the ``2^m`` choice combinations have pairwise
incomparable ``(w, d)`` — an antichain witnessing a frontier of size
``2^m = 2^{Ω(n)}`` — and exact Pareto-DW confirms that for ``m <= 2``
every combination is on the true frontier (verified in the tests and the
Theorem-1 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..geometry.net import Net
from ..geometry.point import Point
from ..routing.tree import RoutingTree

PINS_PER_GADGET = 5


@dataclass(frozen=True)
class GadgetSpec:
    """Geometry of one gadget: arc height sign already applied."""

    arc_x: float      # x of the arc's left end
    h: float          # signed arc height
    x: float          # arc width
    exit_x: float     # x of the exit pin (on the baseline)


def gadget_specs(m: int, base: float = 8.0) -> List[GadgetSpec]:
    """Geometry of the ``m`` chained gadgets."""
    specs: List[GadgetSpec] = []
    ex = 0.0
    prev_u = 0.0
    for i in range(m):
        u = base**i
        sign = 1.0 if i % 2 == 0 else -1.0
        h, x, gap = 3.0 * u * sign, 6.0 * u, 8.0 * u
        runway = 4.0 * prev_u  # decouples this gadget from the previous one
        ax = ex + runway
        specs.append(GadgetSpec(arc_x=ax, h=h, x=x, exit_x=ax + x + gap))
        ex = ax + x + gap
        prev_u = u
    return specs


def exponential_instance(m: int, base: float = 8.0) -> Net:
    """The Theorem-1 instance with ``m`` gadgets (``5m + 1`` pins)."""
    if m < 1:
        raise ValueError("need at least one gadget")
    pins: List[Tuple[float, float]] = [(0.0, 0.0)]
    for g in gadget_specs(m, base):
        for t in range(4):
            pins.append((g.arc_x + t * g.x / 3.0, g.h))
        pins.append((g.exit_x, 0.0))
    return Net.from_points(pins[0], pins[1:], name=f"theorem1_m{m}")


def combination_tree(net: Net, choices: Sequence[bool], base: float = 8.0) -> RoutingTree:
    """The explicit tree for one choice vector (True = reuse, False = fast).

    These are the ``2^m`` witnesses of the theorem's proof sketch: their
    objectives form an antichain (see :func:`verify_antichain`).
    """
    m = len(choices)
    specs = gadget_specs(m, base)
    if net.degree != PINS_PER_GADGET * m + 1:
        raise ValueError("choice vector length does not match the instance")
    edges: List[Tuple[Point, Point]] = []
    entry = Point(0.0, 0.0)
    for g, reuse in zip(specs, choices):
        tops = [Point(g.arc_x + t * g.x / 3.0, g.h) for t in range(4)]
        exit_pin = Point(g.exit_x, 0.0)
        arc_base = Point(g.arc_x, 0.0)
        # Baseline runway from the previous exit to the arc column, then
        # the arc itself (always built: it is the cheapest way to serve
        # the four arc pins).
        if arc_base != entry:
            edges.append((entry, arc_base))
        edges.append((arc_base, tops[0]))
        for a, b in zip(tops, tops[1:]):
            edges.append((a, b))
        if reuse:
            drop = Point(tops[-1].x, 0.0)
            edges.append((tops[-1], drop))
            edges.append((drop, exit_pin))
        else:
            edges.append((arc_base, exit_pin))
        entry = exit_pin
    extra = [p for e in edges for p in e]
    return RoutingTree.from_edges(net, edges, extra_points=extra)


def all_combination_objectives(m: int, base: float = 8.0) -> List[Tuple[float, float]]:
    """Objectives of all ``2^m`` witness trees."""
    net = exponential_instance(m, base)
    out = []
    for mask in range(1 << m):
        choices = [bool(mask >> i & 1) for i in range(m)]
        tree = combination_tree(net, choices, base)
        out.append(tree.objective())
    return out


def verify_antichain(objectives: Sequence[Tuple[float, float]]) -> bool:
    """True when no objective weakly dominates another (all distinct and
    mutually incomparable) — the frontier-size lower-bound witness."""
    for i, a in enumerate(objectives):
        for j, b in enumerate(objectives):
            if i != j and a[0] <= b[0] and a[1] <= b[1]:
                return False
    return True
