"""End-to-end smoke check of the routing daemon (CI's serve job).

``python -m repro.serve.smoke`` exercises the whole service path the way
a deployment would: start ``repro serve`` as a real subprocess on a Unix
socket with a fresh persistent store and the HTTP telemetry sidecar,
route a small workload containing repeats over the socket, assert a warm
hit rate above zero, run one ``eco`` session end to end (seed nets,
apply a pin-move delta, check the reuse accounting and the protocol-v2
version gate), then check the sidecar — ``/healthz`` answers,
``/readyz`` reports ready, and ``/metrics`` serves a **structurally
valid** Prometheus exposition (``validate_exposition``) whose merged
per-tier histogram counts equal the daemon's net total — and shut the
daemon down cleanly (exit code 0). Any failed step exits non-zero with a
diagnostic, so CI catches daemon bit-rot without the full benchmark.
"""

from __future__ import annotations

import random
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import List, Optional, Tuple

from ..geometry.net import Net, random_net
from ..incremental.delta import perturb_nets
from ..obs import parse_prometheus_text, validate_exposition
from .client import ServeClient, ServeError

#: Unique patterns in the smoke workload; each is queried twice (the
#: second pass must be served warm).
UNIQUE_NETS = 5

#: Fixed sidecar port for the smoke daemon (CI curls it too).
METRICS_PORT = 9109


def _workload() -> List[Net]:
    """Ten nets: five unique degree-4..6 patterns, each repeated once."""
    rng = random.Random(2025)
    unique = [
        random_net(4 + i % 3, rng=rng, name=f"smoke{i}")
        for i in range(UNIQUE_NETS)
    ]
    repeats = [
        Net(pins=n.pins, name=f"{n.name}/again") for n in unique
    ]
    return unique + repeats


def _wait_for_socket(path: str, proc: subprocess.Popen, timeout: float = 60.0) -> ServeClient:
    """Poll until the daemon accepts connections (or its process dies)."""
    deadline = time.time() + timeout
    last_error: Optional[Exception] = None
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon exited early with code {proc.returncode}"
            )
        try:
            client = ServeClient(socket_path=path, timeout=30.0)
            client.ping()
            return client
        except (OSError, ServeError) as exc:
            last_error = exc
            time.sleep(0.2)
    raise TimeoutError(f"daemon never came up: {last_error}")


def _http_get(url: str, timeout: float = 10.0) -> Tuple[int, str]:
    """(status, body) for a GET; 4xx/5xx return instead of raising."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def _check_telemetry(base_url: str, nets_total: float) -> Optional[str]:
    """Probe the sidecar; the failure diagnostic, or None when healthy."""
    status, body = _http_get(base_url + "/healthz")
    if status != 200:
        return f"/healthz answered {status}"
    deadline = time.time() + 60.0
    while True:
        status, body = _http_get(base_url + "/readyz")
        if status == 200:
            break
        if time.time() > deadline:
            return f"/readyz never became ready (last: {status} {body!r})"
        time.sleep(0.2)
    status, text = _http_get(base_url + "/metrics")
    if status != 200:
        return f"/metrics answered {status}"
    problems = validate_exposition(text)
    if problems:
        return f"malformed exposition: {problems}"
    expo = parse_prometheus_text(text)
    scraped = expo.value("repro_serve_nets_total")
    if scraped != nets_total:
        return f"nets_total {scraped} != client-observed {nets_total}"
    merged = {
        le: v for le, _labels, v in expo.buckets("repro_serve_net_seconds")
    }.get("+Inf")
    if merged != nets_total:
        return (
            f"merged per-tier histogram count {merged} "
            f"!= nets_total {nets_total}"
        )
    return None


def _check_eco(client: ServeClient, socket_path: str) -> Optional[str]:
    """One ECO session end to end; the failure diagnostic, or None.

    Seeds a session with a fresh workload, applies one deterministic
    pin-move delta, and checks the reuse accounting comes back. Also
    probes the protocol-v2 version gate: an *unversioned* (v1) ``eco``
    request must be rejected with ``error_type`` ``ProtocolVersionError``
    — which the client surfaces as the typed exception.
    """
    rng = random.Random(77)
    nets = [random_net(7, rng=rng, name=f"eco{i}") for i in range(3)]
    seeded = client.eco_seed("smoke-eco", nets)
    if len(seeded) != len(nets) or any(not front for _n, front in seeded):
        return f"eco seed answered {seeded!r}"
    delta = perturb_nets(nets, seed=78, kind="move", count=1)[0]
    result = client.eco_apply("smoke-eco", delta)
    if not result.get("front"):
        return f"eco apply returned no front: {result!r}"
    if not isinstance(result.get("total_masks"), int):
        return f"eco apply carries no reuse accounting: {result!r}"
    stats = client.stats()
    if stats.get("eco_sessions") != 1 or stats.get("eco_deltas") != 1:
        return (
            f"eco stats off: sessions={stats.get('eco_sessions')} "
            f"deltas={stats.get('eco_deltas')}"
        )
    # Version gate: an unversioned eco request must fail typed.
    import json
    import socket as socket_module

    raw = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
    raw.settimeout(30.0)
    try:
        raw.connect(socket_path)
        fp = raw.makefile("rwb")
        fp.write(
            (json.dumps({"id": 1, "op": "eco", "session": "x"}) + "\n").encode()
        )
        fp.flush()
        response = json.loads(fp.readline())
        fp.close()
    finally:
        raw.close()
    if response.get("ok") or response.get("error_type") != "ProtocolVersionError":
        return f"unversioned eco request not version-gated: {response!r}"
    print(
        f"eco OK: tier={result['tier']} "
        f"reuse={result['reused_masks']}/{result['total_masks']} "
        f"v1 rejected with ProtocolVersionError"
    )
    return None


def main() -> int:
    """Run the smoke sequence; return a process exit code."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = str(Path(tmp) / "patlabor.sock")
        store_path = str(Path(tmp) / "cache.sqlite")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--socket", socket_path,
                "--store", store_path,
                "--workers", "2",
                "--metrics-port", str(METRICS_PORT),
            ],
        )
        try:
            client = _wait_for_socket(socket_path, proc)
            with client:
                nets = _workload()
                results = client.route(nets)
                if len(results) != len(nets):
                    print(f"FAIL: {len(results)} results for {len(nets)} nets")
                    return 1
                for name, front in results:
                    if not front:
                        print(f"FAIL: empty front for {name}")
                        return 1
                stats = client.stats()
                print(
                    f"routed {stats['nets']} nets in {stats['requests']} "
                    f"request(s); warm_hit_rate={stats['warm_hit_rate']:.2f} "
                    f"(memory={stats['served_memory']} "
                    f"store={stats['served_store']} "
                    f"routed={stats['served_routed']})"
                )
                if stats["warm_hit_rate"] <= 0.0:
                    print("FAIL: repeated nets produced no warm hits")
                    return 1
                problem = _check_eco(client, socket_path)
                if problem is not None:
                    print(f"FAIL: eco session: {problem}")
                    return 1
                problem = _check_telemetry(
                    f"http://127.0.0.1:{METRICS_PORT}", float(stats["nets"])
                )
                if problem is not None:
                    print(f"FAIL: telemetry sidecar: {problem}")
                    return 1
                print(
                    f"telemetry OK: /metrics valid, p50 "
                    f"{stats['latency_ms']['request']['p50_ms']:.3f} ms"
                )
                client.shutdown()
            rc = proc.wait(timeout=60)
            if rc != 0:
                print(f"FAIL: daemon exited with code {rc} after shutdown")
                return 1
        finally:
            if proc.poll() is None:  # pragma: no cover - only on failure
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        print("serve smoke OK")
        return 0


if __name__ == "__main__":
    sys.exit(main())
