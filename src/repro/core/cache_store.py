"""Disk-backed persistent tier for the symmetry-canonicalizing cache.

The in-memory :class:`~repro.core.cache.CachedRouter` dies with its
process, so every CLI invocation and every fresh worker pays the same
routing work again. :class:`PersistentStore` keeps routed frontiers in an
**append-only SQLite file** keyed on the exact same canonical key the
memory tier uses, so hit rates compound across runs *and* processes: warm
a store once (``repro warm``), and every later process — batch workers,
the ``repro serve`` daemon, plain CLI runs — starts with the whole
history of solved patterns.

Design constraints, in order:

* **Bit-identical transparency.** Entries are stored exactly as the
  memory tier holds them — base-net pins, the store-frame transform, and
  per-solution ``(w, d, points, parent)`` — serialised with ``repr``-
  round-tripping JSON floats. A solution served from disk is therefore
  the same floats the original solve produced (see ``docs/numerics.md``).
* **Never corrupt a reader, never crash on a corrupt file.** Writes are
  ``INSERT OR IGNORE`` transactions serialised by an ``fcntl`` exclusive
  lock on a sidecar ``<path>.lock`` file (single writer at a time, like
  the run ledger); any :class:`sqlite3.Error` — truncated file, garbage
  bytes, concurrent schema surprise — flips the store into a degraded
  mode where every ``get`` is a miss and every ``put`` a no-op.
* **Append-only.** Entries are immutable once written and never evicted;
  recency management stays in the memory LRU in front. ``repro cache
  stats`` reports entry counts and file size so growth is observable.

The module has no dependency on the router stack; it serialises plain
``(Net, GridTransform, [Solution])`` triples.
"""

from __future__ import annotations

import atexit
import json
import os
import sqlite3
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

try:  # POSIX advisory locking; other platforms fall back to SQLite's own.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from ..geometry.net import Net
from ..geometry.transforms import GridTransform
from ..routing.tree import RoutingTree
from .pareto import Solution

PathLike = Union[str, Path]

#: Bumped when the entry payload layout changes; readers reject mismatches
#: (treated as misses) instead of mis-decoding old layouts.
FORMAT_VERSION = 1

#: One stored cache entry: the same triple the memory tier keeps.
StoreEntry = Tuple[Net, GridTransform, List[Solution]]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
"""


def key_to_text(key: Tuple[Tuple[float, float], ...]) -> str:
    """Serialise a canonical cache key to its stable TEXT primary key.

    JSON floats round-trip via ``repr``, so two processes computing the
    same canonical key always produce byte-identical TEXT — the property
    cross-process hits rely on. Negative zeros are folded into positive
    ones first: ``0.0 == -0.0`` (so the memory tier treats them as one
    key) but ``repr`` distinguishes them, and mirrored nets routinely
    produce ``-0.0`` coordinates.
    """
    return json.dumps([[x + 0.0, y + 0.0] for x, y in key])


def _encode_entry(net: Net, transform: GridTransform, solutions: List[Solution]) -> str:
    """One cache entry as a JSON document (floats repr-round-trip)."""
    return json.dumps(
        {
            "v": FORMAT_VERSION,
            "net": {
                "name": net.name,
                "pins": [[p.x, p.y] for p in net.pins],
            },
            "transform": [transform.swap, transform.flip_x, transform.flip_y],
            "solutions": [
                {
                    "w": w,
                    "d": d,
                    "points": [[p.x, p.y] for p in tree.points],
                    "parent": list(tree.parent),
                }
                for w, d, tree in solutions
            ],
        }
    )


def _decode_entry(payload: str) -> Optional[StoreEntry]:
    """Rebuild the ``(net, transform, solutions)`` triple (None if torn)."""
    try:
        doc = json.loads(payload)
        if doc.get("v") != FORMAT_VERSION:
            return None
        net = Net(
            pins=tuple((x, y) for x, y in doc["net"]["pins"]),  # type: ignore[arg-type]
            name=doc["net"].get("name", ""),
        )
        swap, flip_x, flip_y = doc["transform"]
        transform = GridTransform(swap=bool(swap), flip_x=bool(flip_x), flip_y=bool(flip_y))
        solutions: List[Solution] = []
        for sol in doc["solutions"]:
            tree = RoutingTree.from_parent(net, sol["points"], sol["parent"])
            solutions.append((float(sol["w"]), float(sol["d"]), tree))
        return net, transform, solutions
    except Exception:
        # A torn or foreign payload is a miss, never a crash: the router
        # below the cache can always re-solve.
        return None


class PersistentStore:
    """Append-only SQLite store of routed frontiers, keyed canonically.

    Parameters
    ----------
    path:
        SQLite file location (created on first write; parent directories
        are created eagerly). A sidecar ``<path>.lock`` file serialises
        writers across processes.
    readonly:
        Open without write intent: ``put`` becomes a no-op and no lock
        file is touched. Useful for read-mostly fan-out (serve workers on
        a pre-warmed store).

    The store is resilient by construction: any :class:`sqlite3.Error`
    degrades it (``healthy`` turns False), after which every ``get``
    misses and every ``put`` no-ops — callers never see an exception from
    a corrupt or concurrently-rewritten file.
    """

    def __init__(self, path: PathLike, *, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._degraded = False
        self._conn: Optional[sqlite3.Connection] = None
        self._stats_flushed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not readonly:
            atexit.register(self.close)

    # ------------------------------------------------------------- plumbing

    @property
    def healthy(self) -> bool:
        """False once the store degraded (corrupt file / SQLite error)."""
        return not self._degraded

    @property
    def lock_path(self) -> Path:
        """The sidecar file writers flock while appending."""
        return self.path.with_name(self.path.name + ".lock")

    def _connect(self) -> Optional[sqlite3.Connection]:
        """The lazily-opened connection (None while degraded/absent)."""
        if self._degraded:
            return None
        if self._conn is not None:
            return self._conn
        if self.readonly and not self.path.exists():
            return None
        try:
            conn = sqlite3.connect(self.path, timeout=5.0)
            conn.execute("PRAGMA busy_timeout=5000")
            if not self.readonly:
                with self._writer_lock():
                    conn.executescript(_SCHEMA)
                    conn.execute(
                        "INSERT OR IGNORE INTO meta (k, v) VALUES (?, ?)",
                        ("format_version", str(FORMAT_VERSION)),
                    )
                    conn.commit()
            self._conn = conn
            return conn
        except sqlite3.Error:
            self._degrade()
            return None

    def _degrade(self) -> None:
        self._degraded = True
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - close never raises here
                pass
            self._conn = None

    class _writer_lock_ctx:
        """``with``-scoped exclusive flock on the sidecar lock file."""

        def __init__(self, lock_path: Path) -> None:
            self._lock_path = lock_path
            self._fd: Optional[int] = None

        def __enter__(self) -> "PersistentStore._writer_lock_ctx":
            if fcntl is not None:
                self._fd = os.open(self._lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
                fcntl.flock(self._fd, fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc: object) -> None:
            if self._fd is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None

    def _writer_lock(self) -> "PersistentStore._writer_lock_ctx":
        return PersistentStore._writer_lock_ctx(self.lock_path)

    # ------------------------------------------------------------- get / put

    def get(self, key: Tuple[Tuple[float, float], ...]) -> Optional[StoreEntry]:
        """The stored entry under ``key``, or None (miss / torn / degraded)."""
        conn = self._connect()
        if conn is None:
            self.misses += 1
            return None
        try:
            row = conn.execute(
                "SELECT payload FROM entries WHERE key = ?", (key_to_text(key),)
            ).fetchone()
        except sqlite3.Error:
            self._degrade()
            self.misses += 1
            return None
        if row is None:
            self.misses += 1
            return None
        entry = _decode_entry(row[0])
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: Tuple[Tuple[float, float], ...],
        net: Net,
        transform: GridTransform,
        solutions: List[Solution],
    ) -> bool:
        """Append one entry (first writer wins; repeats are ignored).

        Returns True when the row is (already or newly) present, False on
        a degraded store, a readonly store, or payload-free solutions
        (objective-only fronts cannot be replayed into other frames).
        """
        if self.readonly or any(tree is None for _w, _d, tree in solutions):
            return False
        conn = self._connect()
        if conn is None:
            return False
        try:
            payload = _encode_entry(net, transform, solutions)
            with self._writer_lock():
                conn.execute(
                    "INSERT OR IGNORE INTO entries (key, payload, created) "
                    "VALUES (?, ?, ?)",
                    (key_to_text(key), payload, time.time()),
                )
                conn.commit()
        except sqlite3.Error:
            self._degrade()
            return False
        self.puts += 1
        return True

    # ---------------------------------------------------------------- stats

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk this session."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        conn = self._connect()
        if conn is None:
            return 0
        try:
            row = conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            return int(row[0]) if row else 0
        except sqlite3.Error:
            self._degrade()
            return 0

    def flush_stats(self) -> None:
        """Fold this session's hit/miss/put counters into the meta table.

        Cumulative counters survive the process, so ``repro cache stats``
        can report lifetime traffic for a store path. Degraded or
        readonly stores skip the write silently.
        """
        if self.readonly or (self.hits == 0 and self.misses == 0 and self.puts == 0):
            return
        conn = self._connect()
        if conn is None:
            return
        try:
            with self._writer_lock():
                for name, value in (
                    ("hits", self.hits),
                    ("misses", self.misses),
                    ("puts", self.puts),
                ):
                    conn.execute(
                        "INSERT INTO meta (k, v) VALUES (?, ?) "
                        "ON CONFLICT(k) DO UPDATE SET v = CAST(v AS INTEGER) + ?",
                        (f"total_{name}", str(value), value),
                    )
                conn.commit()
            self.hits = self.misses = self.puts = 0
        except sqlite3.Error:
            self._degrade()

    def stats(self) -> Dict[str, object]:
        """A snapshot for ``repro cache stats``: sizes plus counters.

        ``session_*`` counters cover this process since the last flush
        (``session_hit_rate`` is the hit fraction over exactly those, so a
        daemon that queries its own store reports the rate *since start*,
        not lifetime); ``total_*`` counters are the flushed lifetime
        numbers persisted in the meta table (0 when the store never
        flushed).
        """
        out: Dict[str, object] = {
            "path": str(self.path),
            "healthy": self.healthy,
            "entries": len(self),
            "size_bytes": self.path.stat().st_size if self.path.exists() else 0,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_puts": self.puts,
            "session_hit_rate": self.hit_rate,
        }
        for name in ("total_hits", "total_misses", "total_puts"):
            out[name] = 0
        conn = self._connect()
        if conn is not None:
            try:
                for k, v in conn.execute("SELECT k, v FROM meta"):
                    if str(k).startswith("total_"):
                        out[str(k)] = int(v)
            except sqlite3.Error:
                self._degrade()
                out["healthy"] = False
        return out

    def close(self) -> None:
        """Flush session counters and release the connection (idempotent)."""
        try:
            self.flush_stats()
        finally:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover
                    pass
                self._conn = None
