"""Array-native kernels agree bit-for-bit with the pure-Python oracle.

Mirrors ``test_frontier_kernels.py`` for :mod:`repro.core.frontier_array`:

* hypothesis round trips — ``front_to_arrays`` / ``arrays_to_front`` are
  bit-identical inverses;
* every array kernel twin returns exactly what its tuple kernel returns
  (objectives, survivor indices *and* tie choices) on random inputs drawn
  from a tie-heavy value pool, plus deterministic ``math.nextafter``
  rounding-collision cases;
* the segmented batch kernels (``segmented_pareto_filter``,
  ``segment_strict_prune``, ``ragged_product_indices`` and their packed
  variants) match straightforward per-segment references;
* a regression matrix that ``pareto_dw(representation="array")`` equals
  both the ``kernels=True`` and ``kernels=False`` paths on degree 2-9
  nets across the Lemma flags, stats parity included.

Objective values reuse the integer/non-dyadic pool of the tuple-kernel
tests so exact ties and rounding collisions occur constantly.
"""

import math
import random
from itertools import product

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frontier import (
    cross_sorted,
    is_sorted_front,
    merge_shifted,
    merge_sorted_fronts,
    pareto_filter_sorted,
    shift_sorted,
)
from repro.core.frontier_array import (
    arrays_to_front,
    cross_sorted_arrays,
    front_to_arrays,
    merge_shifted_arrays,
    merge_sorted_fronts_arrays,
    pack_objectives,
    pareto_filter_sorted_array,
    pareto_filter_sorted_arrays,
    ragged_product_indices,
    segment_strict_prune,
    segmented_pareto_filter,
    segmented_pareto_filter_packed,
    segmented_pareto_keep,
    shift_sorted_arrays,
)
from repro.core.pareto import objectives, pareto_filter
from repro.core.pareto_dw import DWStats, pareto_dw
from repro.geometry.net import random_net

# Same pool as the tuple-kernel tests: frequent exact ties, non-dyadic
# floats so sums exercise rounding.
coord = st.one_of(
    st.integers(0, 8).map(float),
    st.sampled_from([0.1, 0.3, 1.7, 2.5, 3.3, 10.1]),
)

few = settings(max_examples=200, deadline=None)

# nextafter neighbours of the pool values collide under addition.
_POOL = [0.1, 0.3, 1.7, 2.5, 3.3, 10.1]
collision_value = st.sampled_from(
    [v for base in _POOL for v in (base, math.nextafter(base, math.inf),
                                   math.nextafter(base, -math.inf))]
)


@st.composite
def solution_lists(draw, max_size=12):
    """Arbitrary solution lists; payloads are distinct observable indices."""
    n = draw(st.integers(0, max_size))
    return [(draw(coord), draw(coord), idx) for idx in range(n)]


@st.composite
def fronts(draw, max_size=12):
    """Sorted fronts, as produced by ``pareto_filter``."""
    return pareto_filter(draw(solution_lists(max_size=max_size)))


@st.composite
def segmented_batches(draw, max_segments=5, max_size=40):
    """(seg, w, d) batches with non-decreasing segment ids and tie-heavy values."""
    n = draw(st.integers(0, max_size))
    nseg = draw(st.integers(1, max_segments))
    seg = np.sort(
        np.array([draw(st.integers(0, nseg - 1)) for _ in range(n)],
                 dtype=np.int64)
    )
    w = np.array([draw(collision_value) for _ in range(n)])
    d = np.array([draw(collision_value) for _ in range(n)])
    return seg, w, d


# ------------------------------------------------------------- round trip


class TestRoundTrip:
    @few
    @given(solution_lists())
    def test_tuple_array_tuple_is_bit_identical(self, sols):
        w, d, payloads = front_to_arrays(sols)
        assert arrays_to_front(w, d, payloads) == sols

    @few
    @given(solution_lists())
    def test_values_copied_verbatim(self, sols):
        w, d, _ = front_to_arrays(sols)
        for i, (sw, sd, _p) in enumerate(sols):
            # Bit-level equality, not approximate.
            assert w[i].item() == sw and d[i].item() == sd

    def test_empty_round_trip(self):
        w, d, payloads = front_to_arrays([])
        assert w.shape == (0,) and d.shape == (0,)
        assert arrays_to_front(w, d, payloads) == []


# -------------------------------------------------------------- filtering


class TestParetoFilterSortedArrays:
    @few
    @given(solution_lists())
    def test_matches_tuple_kernel_exactly(self, sols):
        w, d, payloads = front_to_arrays(sols)
        w2, d2, idx = pareto_filter_sorted_arrays(w, d)
        got = arrays_to_front(w2, d2, [payloads[i] for i in idx.tolist()])
        assert got == pareto_filter_sorted(sols) == pareto_filter(sols)

    @few
    @given(solution_lists())
    def test_tuple_api_drop_in(self, sols):
        assert pareto_filter_sorted_array(sols) == pareto_filter_sorted(sols)

    def test_empty_front(self):
        w2, d2, idx = pareto_filter_sorted_arrays(np.empty(0), np.empty(0))
        assert w2.shape == d2.shape == idx.shape == (0,)
        assert pareto_filter_sorted_array([]) == []

    def test_single_point_survives(self):
        w2, d2, idx = pareto_filter_sorted_arrays(
            np.array([1.0]), np.array([2.0])
        )
        assert idx.tolist() == [0]
        assert pareto_filter_sorted_array([(1.0, 2.0, "p")]) == [
            (1.0, 2.0, "p")
        ]

    def test_exact_duplicates_keep_first(self):
        _, _, idx = pareto_filter_sorted_arrays(
            np.array([1.0, 1.0]), np.array([2.0, 2.0])
        )
        assert idx.tolist() == [0]


# ------------------------------------------------------------------ shift


class TestShiftSortedArrays:
    @few
    @given(fronts(), coord)
    def test_matches_tuple_kernel(self, front, x):
        ref = shift_sorted(front, x)
        w, d, payloads = front_to_arrays(front)
        w2, d2, idx = shift_sorted_arrays(w, d, x)
        got = arrays_to_front(w2, d2, [payloads[i] for i in idx.tolist()])
        assert got == ref

    def test_w_collision_keeps_smaller_delay(self):
        w = 1293.2694644882506
        w2 = math.nextafter(w, math.inf)
        off = 96.61455694252402
        assert w != w2 and w + off == w2 + off
        aw, ad, _ = front_to_arrays([(w, 2.0, None), (w2, 1.0, None)])
        _, _, idx = shift_sorted_arrays(aw, ad, off)
        assert idx.tolist() == [1]  # replace-on-w-collision: keep last

    def test_d_collision_keeps_earlier_point(self):
        d_lo = 1293.2694644882506
        d_hi = math.nextafter(d_lo, math.inf)
        off = 96.61455694252402
        assert d_lo + off == d_hi + off
        aw, ad, _ = front_to_arrays([(1.0, d_hi, None), (2.0, d_lo, None)])
        _, _, idx = shift_sorted_arrays(aw, ad, off)
        assert idx.tolist() == [0]  # first point weakly dominates


# ------------------------------------------------------------------ cross


class TestCrossSortedArrays:
    @few
    @given(fronts(max_size=8), fronts(max_size=8))
    def test_matches_tuple_kernel(self, s1, s2):
        ref = cross_sorted(s1, s2, lambda a, b: (a, b))
        w1, d1, p1 = front_to_arrays(s1)
        w2, d2, p2 = front_to_arrays(s2)
        w, d, i_idx, j_idx = cross_sorted_arrays(w1, d1, w2, d2)
        got = arrays_to_front(
            w, d,
            [(p1[i], p2[j]) for i, j in zip(i_idx.tolist(), j_idx.tolist())],
        )
        assert objectives(got) == objectives(ref)
        assert is_sorted_front(got)
        # Index pairs must attain the output objectives exactly.
        for (ow, od, _), i, j in zip(got, i_idx.tolist(), j_idx.tolist()):
            assert ow == s1[i][0] + s2[j][0]
            assert od == max(s1[i][1], s2[j][1])

    @few
    @given(fronts(max_size=8))
    def test_empty_operand(self, s1):
        w1, d1, _ = front_to_arrays(s1)
        for args in (
            (w1, d1, np.empty(0), np.empty(0)),
            (np.empty(0), np.empty(0), w1, d1),
        ):
            w, d, i_idx, j_idx = cross_sorted_arrays(*args)
            assert w.shape == d.shape == i_idx.shape == j_idx.shape == (0,)

    def test_w_collision_emits_single_point(self):
        w = 1293.2694644882506
        w2 = math.nextafter(w, math.inf)
        x = 96.61455694252402
        assert w + x == w2 + x
        aw, ad, _ = front_to_arrays([(w, 2.0, None), (w2, 1.0, None)])
        bw, bd, _ = front_to_arrays([(x, 0.5, None)])
        ow, od, i_idx, _ = cross_sorted_arrays(aw, ad, bw, bd)
        assert ow.tolist() == [w + x] and od.tolist() == [1.0]
        assert i_idx.tolist() == [1]


# ------------------------------------------------------------------ union


class TestMergeArrays:
    @few
    @given(st.lists(fronts(max_size=8), max_size=4))
    def test_merge_sorted_fronts_matches(self, front_list):
        ref = merge_sorted_fronts(*front_list)
        ws, ds, ps = [], [], []
        for f in front_list:
            w, d, p = front_to_arrays(f)
            ws.append(w)
            ds.append(d)
            ps.append(p)
        w2, d2, f_idx, e_idx = merge_sorted_fronts_arrays(ws, ds)
        got = arrays_to_front(
            w2, d2,
            [ps[f][e] for f, e in zip(f_idx.tolist(), e_idx.tolist())],
        )
        assert got == ref

    @few
    @given(
        st.lists(
            st.tuples(coord, fronts(max_size=8)),
            max_size=4,
        )
    )
    def test_merge_shifted_matches(self, runs):
        ref, _ = merge_shifted([(off, f, None) for off, f in runs])
        offs = np.array([off for off, _ in runs], dtype=np.float64)
        ws, ds, ps = [], [], []
        for _, f in runs:
            w, d, p = front_to_arrays(f)
            ws.append(w)
            ds.append(d)
            ps.append(p)
        w2, d2, r_idx, e_idx = merge_shifted_arrays(offs, ws, ds)
        got = arrays_to_front(
            w2, d2,
            [ps[r][e] for r, e in zip(r_idx.tolist(), e_idx.tolist())],
        )
        assert got == ref

    def test_empty_inputs(self):
        w, d, f_idx, e_idx = merge_sorted_fronts_arrays([], [])
        assert w.shape == d.shape == f_idx.shape == e_idx.shape == (0,)
        w, d, r_idx, e_idx = merge_shifted_arrays(np.empty(0), [], [])
        assert w.shape == d.shape == r_idx.shape == e_idx.shape == (0,)


# ------------------------------------------------------- segmented kernels


def _ref_segmented_filter(seg, w, d):
    """Per-segment stable (w, d) sort + strict-d sweep, filter order."""
    idx = sorted(range(len(w)), key=lambda i: (seg[i], w[i], d[i]))
    keep, best, cur = [], None, None
    for i in idx:
        if seg[i] != cur:
            cur, best = seg[i], None
        if best is None or d[i] < best:
            keep.append(i)
            best = d[i]
    return keep


def _ref_strict_prune(starts, sizes, w, d):
    """Witness-dominance keep-mask, one segment at a time."""
    keep = np.ones(len(w), dtype=bool)
    for s, n in zip(starts.tolist(), sizes.tolist()):
        if n == 0:
            continue
        blkw, blkd = w[s : s + n], d[s : s + n]
        min_d, min_w = blkd.min(), blkw.min()
        wa = (min(bw for bw, bd in zip(blkw, blkd) if bd == min_d), min_d)
        wb = (min_w, min(bd for bw, bd in zip(blkw, blkd) if bw == min_w))
        for j in range(n):
            p = (blkw[j], blkd[j])
            for wit in (wa, wb):
                if wit[0] <= p[0] and wit[1] <= p[1] and wit != p:
                    keep[s + j] = False
    return keep


class TestSegmentedFilter:
    @few
    @given(segmented_batches())
    def test_matches_per_segment_reference(self, batch):
        seg, w, d = batch
        got = segmented_pareto_filter(seg, w, d)
        assert got.tolist() == _ref_segmented_filter(
            seg.tolist(), w.tolist(), d.tolist()
        )

    @few
    @given(segmented_batches())
    def test_packed_variant_agrees(self, batch):
        seg, w, d = batch
        wd = pack_objectives(w, d)
        assert (w.tolist(), d.tolist()) == (
            wd.real.tolist(), wd.imag.tolist()
        )
        assert segmented_pareto_filter_packed(seg, wd).tolist() == (
            segmented_pareto_filter(seg, w, d).tolist()
        )

    @few
    @given(segmented_batches())
    def test_keep_mask_on_presorted_input(self, batch):
        seg, w, d = batch
        order = np.lexsort((d, w, seg))
        keep = segmented_pareto_keep(seg[order], w[order], d[order])
        assert sorted(order[keep].tolist()) == sorted(
            _ref_segmented_filter(seg.tolist(), w.tolist(), d.tolist())
        )

    def test_empty(self):
        assert segmented_pareto_filter(
            np.empty(0, dtype=np.int64), np.empty(0), np.empty(0)
        ).shape == (0,)


class TestSegmentStrictPrune:
    @few
    @given(segmented_batches())
    def test_matches_witness_reference(self, batch):
        seg, w, d = batch
        nseg = int(seg.max()) + 1 if seg.size else 1
        sizes = np.bincount(seg, minlength=nseg)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        got = segment_strict_prune(starts, sizes, w, d)
        assert got.tolist() == _ref_strict_prune(starts, sizes, w, d).tolist()

    @few
    @given(segmented_batches())
    def test_sound_for_exact_filter(self, batch):
        # Pruning first must not change the exact filter's survivors.
        seg, w, d = batch
        nseg = int(seg.max()) + 1 if seg.size else 1
        sizes = np.bincount(seg, minlength=nseg)
        starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        keep = segment_strict_prune(starts, sizes, w, d)
        sel = np.flatnonzero(keep)
        pruned = segmented_pareto_filter(seg[sel], w[sel], d[sel])
        direct = segmented_pareto_filter(seg, w, d)
        assert sel[pruned].tolist() == direct.tolist()

    def test_empty(self):
        assert segment_strict_prune(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0),
            np.empty(0),
        ).shape == (0,)


class TestRaggedProductIndices:
    @few
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=5))
    def test_row_major_enumeration(self, shapes):
        cnt1 = np.array([a for a, _ in shapes], dtype=np.int64)
        cnt2 = np.array([b for _, b in shapes], dtype=np.int64)
        start1 = np.concatenate(([0], np.cumsum(cnt1)[:-1])) if shapes else (
            np.empty(0, dtype=np.int64)
        )
        start2 = 100 + (
            np.concatenate(([0], np.cumsum(cnt2)[:-1])) if shapes else
            np.empty(0, dtype=np.int64)
        )
        row, i_idx, j_idx = ragged_product_indices(cnt1, cnt2, start1, start2)
        ref = [
            (r, start1[r] + i, start2[r] + j)
            for r in range(len(shapes))
            for i in range(cnt1[r])
            for j in range(cnt2[r])
        ]
        assert list(zip(row.tolist(), i_idx.tolist(), j_idx.tolist())) == ref
        # rows=False: same pair streams, rows recoverable by searchsorted.
        none_row, i2, j2 = ragged_product_indices(
            cnt1, cnt2, start1, start2, rows=False
        )
        assert none_row is None
        assert i2.tolist() == i_idx.tolist()
        assert j2.tolist() == j_idx.tolist()
        if len(shapes):
            rec = np.searchsorted(
                np.cumsum(cnt1 * cnt2),
                np.arange(i2.shape[0]),
                side="right",
            )
            assert rec.tolist() == row.tolist()

    def test_all_empty(self):
        row, i_idx, j_idx = ragged_product_indices(
            np.array([0, 2], dtype=np.int64),
            np.array([3, 0], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
            np.array([0, 0], dtype=np.int64),
        )
        assert row.shape == i_idx.shape == j_idx.shape == (0,)


# ---------------------------------------- pareto_dw representation matrix


LEMMA_COMBOS = list(product([False, True], repeat=3))


class TestParetoDWArrayEquivalence:
    """representation="array" equals both tuple paths, stats included."""

    @pytest.mark.parametrize("degree", range(2, 10))
    def test_identical_frontier_across_lemma_flags(self, degree):
        net = random_net(
            degree, rng=random.Random(1000 + degree), grid=9, span=90.0
        )
        for lemma2, lemma3, lemma4 in LEMMA_COMBOS:
            kw = dict(
                lemma2=lemma2, lemma3=lemma3, lemma4=lemma4, with_trees=False
            )
            arr = pareto_dw(net, representation="array", **kw)
            for kernels in (False, True):
                ref = pareto_dw(net, kernels=kernels, **kw)
                assert objectives(arr) == objectives(ref), (
                    f"degree={degree} kernels={kernels} "
                    f"lemmas={(lemma2, lemma3, lemma4)}"
                )

    @pytest.mark.parametrize("degree", [4, 6, 8])
    def test_identical_payloads_with_trees(self, degree):
        net = random_net(
            degree, rng=random.Random(2000 + degree), grid=9, span=90.0
        )
        arr = pareto_dw(net, representation="array", with_trees=True)
        ref = pareto_dw(net, kernels=True, with_trees=True)
        # Backpointer structure is materialized identically, so the full
        # solutions — trees included — compare equal.
        assert objectives(arr) == objectives(ref)
        for (w, d, tree), (_, _, rtree) in zip(arr, ref):
            assert tree.edges() == rtree.edges()

    @pytest.mark.parametrize("degree", [5, 7, 9])
    def test_stats_parity(self, degree):
        net = random_net(
            degree, rng=random.Random(3000 + degree), grid=9, span=90.0
        )
        st_t, st_a = DWStats(), DWStats()
        ref = pareto_dw(net, kernels=True, stats=st_t, with_trees=False)
        arr = pareto_dw(
            net, representation="array", stats=st_a, with_trees=False
        )
        assert objectives(arr) == objectives(ref)
        # Workload counters are path-independent; allocation counters are
        # representation-specific and only sanity-checked.
        assert st_a.closure_extensions == st_t.closure_extensions
        assert st_a.merge_transitions == st_t.merge_transitions
        assert st_a.subsets == st_t.subsets
        assert st_a.max_front_size == st_t.max_front_size
        assert st_a.merge_candidates > 0
        assert st_a.closure_allocations > 0

    def test_invalid_representation_rejected(self):
        net = random_net(4, rng=random.Random(1), grid=9, span=90.0)
        with pytest.raises(ValueError, match="representation"):
            pareto_dw(net, representation="matrix")
