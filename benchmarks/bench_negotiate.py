"""Negotiated-congestion routing: frontier swapping vs single-tree rip-up.

The PatLabor claim this benchmark gates: when a PathFinder negotiation
loop can *swap nets between precomputed Pareto frontier points* instead
of re-routing one fixed tree under escalating prices, it resolves the
same contention in no more iterations and strictly less total wirelength
— the per-net candidate sets pay for themselves at chip scale.

One deterministic 500-net contention scenario (16x16 grid, cell capacity
auto-sized for ~45% average utilisation, so hotspot cells start well
over capacity) is negotiated twice over the *same* compiled frontiers:

* **frontier** — the full negotiator: every net may move to any frontier
  point inside its delay budget, priced by the live congestion grid,
* **baseline** — the classic single-tree rip-up loop: every net pinned
  to its min-delay point (the timing-safe choice a single-tree flow
  ships), with only L-orientation freedom left per edge.

Emits

* ``results/negotiate.txt`` — the two-row comparison table,
* ``results/BENCH_negotiate.json`` — counters plus the headline numbers,
* ``results/ledger.jsonl`` — one appended ``negotiate`` run record
  (``negotiate.iterations`` / ``negotiate.final_overuse`` /
  ``negotiate.worst_delay`` / ``negotiate.total_wirelength`` plus the
  ``baseline.*`` twins and ``negotiate.wirelength_saving_rate``) for
  ``repro obs check`` against the committed baseline.

Asserted shape: both runs converge to **zero overuse** within the
iteration cap; the frontier negotiation needs **no more iterations** than
the single-tree baseline, its total wirelength is **strictly lower**, and
neither run violates a delay budget (``worst_delay == 0``).
"""

import json
import time

from repro import obs
from repro.congestion.negotiate import (
    NegotiatedRouter,
    NegotiatorConfig,
    Scenario,
)

from conftest import RESULTS_DIR, write_artifact

NETS = 500          # paper scale: millions; enough for real cell contention
CELLS = 16          # 16x16 capacity grid over [0, 1000]^2
UTILIZATION = 0.45  # auto-capacity target: hotspots overflow, average fits
SEED = 42
MAX_ITERATIONS = 40


def _scenario() -> Scenario:
    return Scenario.random(
        nets=NETS, cells=CELLS, utilization=UTILIZATION, seed=SEED
    )


def test_frontier_negotiation_beats_single_tree_ripup():
    scenario = _scenario()
    obs.enable()
    try:
        t0 = time.perf_counter()
        frontier = NegotiatedRouter(
            scenario, NegotiatorConfig(max_iterations=MAX_ITERATIONS)
        ).run()
        frontier_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        baseline = NegotiatedRouter(
            scenario,
            NegotiatorConfig(
                max_iterations=MAX_ITERATIONS, point_policy="min_delay"
            ),
        ).run()
        baseline_seconds = time.perf_counter() - t0
    finally:
        obs.disable()

    # Both loops must actually resolve the contention.
    assert frontier.converged, (
        f"frontier negotiation stuck at overuse {frontier.final_overuse:.1f} "
        f"after {frontier.iteration_count} iteration(s)"
    )
    assert baseline.converged, (
        f"single-tree baseline stuck at overuse {baseline.final_overuse:.1f}"
    )
    assert frontier.final_overuse == 0.0
    assert baseline.final_overuse == 0.0

    # The paper's trade: frontier swapping converges at least as fast...
    assert frontier.iteration_count <= baseline.iteration_count, (
        f"frontier took {frontier.iteration_count} iteration(s) vs the "
        f"baseline's {baseline.iteration_count}"
    )
    # ...at strictly lower total wirelength, without spending timing.
    saving = baseline.total_wirelength - frontier.total_wirelength
    assert saving > 0.0, (
        f"frontier wirelength {frontier.total_wirelength:.1f} not below "
        f"baseline {baseline.total_wirelength:.1f}"
    )
    assert frontier.worst_delay == 0.0
    assert frontier.worst_delay <= baseline.worst_delay

    rows = [
        f"{'mode':<26}{'iters':>7}{'overuse':>9}{'wirelength':>13}"
        f"{'worst_delay':>13}{'seconds':>9}",
        "-" * 77,
        f"{'frontier negotiation':<26}{frontier.iteration_count:>7}"
        f"{frontier.final_overuse:>9.1f}{frontier.total_wirelength:>13.1f}"
        f"{frontier.worst_delay:>13.3f}{frontier_seconds:>9.3f}",
        f"{'single-tree rip-up':<26}{baseline.iteration_count:>7}"
        f"{baseline.final_overuse:>9.1f}{baseline.total_wirelength:>13.1f}"
        f"{baseline.worst_delay:>13.3f}{baseline_seconds:>9.3f}",
        f"\nwirelength saved by frontier swapping: {saving:.1f} "
        f"({saving / baseline.total_wirelength * 100.0:.2f}%) over "
        f"{NETS} nets, {frontier.total_swaps} swap(s)",
    ]
    write_artifact("negotiate.txt", "\n".join(rows))

    path = obs.write_bench_json(
        "negotiate",
        directory=RESULTS_DIR,
        extra={
            "workload": {
                "nets": NETS,
                "cells": CELLS,
                "utilization": UTILIZATION,
                "seed": SEED,
            },
            "frontier": frontier.metrics(),
            "baseline": baseline.metrics(prefix="baseline"),
            "wirelength_saving": saving,
        },
    )
    payload = json.loads(path.read_text())
    assert payload["wirelength_saving"] > 0.0
    print(f"\n[metrics written to {path}]")

    record = obs.make_record(
        {
            **frontier.metrics(),
            **baseline.metrics(prefix="baseline"),
            "negotiate.wirelength_saving_rate": (
                saving / baseline.total_wirelength
            ),
            "negotiate.seconds": frontier_seconds,
            "negotiate.nets": float(NETS),
        },
        name="negotiate",
        config={
            "nets": NETS,
            "cells": CELLS,
            "utilization": UTILIZATION,
            "seed": SEED,
            "max_iterations": MAX_ITERATIONS,
        },
    )
    ledger_path = obs.append_record(record, RESULTS_DIR / "ledger.jsonl")
    print(f"[run {record['run_id']} appended to {ledger_path}]")
