"""ECO deltas: typed edits against a routed design, with a replay format.

A :class:`NetDelta` is one incremental edit — a sink moved, a sink added
or removed, the source moved, or a rectangular blockage whose capacity
changes — the unit the ECO engine (:mod:`repro.incremental.engine`), the
daemon's ``eco`` request, and the ``repro eco`` CLI all consume.

The text replay format (``.deltas``) mirrors the ``.nets`` format of
:mod:`repro.io.nets_format` — diff-friendly lines, ``#`` comments::

    # one directive per line
    move <net> <sink_index> <x> <y>
    add <net> <x> <y>
    remove <net> <sink_index>
    source <net> <x> <y>
    blockage <x0> <y0> <x1> <y1> <scale>

Deterministic perturbation generators live here too:
:func:`perturb_nets` drives the benchmark/test delta streams, and
:func:`grid_preserving_move` constructs one-pin moves guaranteed (by
construction *and* by an explicit :func:`~repro.core.pareto_dw.\
dw_signature` check) to keep the Hanan-grid distance structure intact,
so the DW warm path has subproblems to reuse.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple, Union

from ..exceptions import SerializationError
from ..geometry.net import Net

PathLike = Union[str, Path]

#: Delta kinds understood by the whole ECO surface (engine, wire, CLI).
DELTA_KINDS = ("move", "add", "remove", "source", "blockage")


class NetDelta:
    """One incremental edit. Immutable value object.

    ``kind`` selects which fields are meaningful:

    ========== ===========================================================
    kind       fields
    ========== ===========================================================
    ``move``   ``net``, ``sink_index``, ``point`` — sink moved in place
    ``add``    ``net``, ``point`` — sink appended to the net
    ``remove`` ``net``, ``sink_index`` — sink dropped
    ``source`` ``net``, ``point`` — source (root) moved
    ``blockage`` ``region`` ``(x0, y0, x1, y1)``, ``scale`` — capacity of
               every congestion cell intersecting the region multiplied
               by ``scale`` (``0`` = hard blockage); net-independent
    ========== ===========================================================
    """

    __slots__ = ("kind", "net", "sink_index", "point", "region", "scale")

    def __init__(
        self,
        kind: str,
        net: str = "",
        sink_index: int = -1,
        point: Optional[Tuple[float, float]] = None,
        region: Optional[Tuple[float, float, float, float]] = None,
        scale: float = 0.0,
    ) -> None:
        """Validate the field combination for ``kind`` and freeze it."""
        if kind not in DELTA_KINDS:
            raise SerializationError(
                f"unknown delta kind {kind!r}; expected one of {DELTA_KINDS}"
            )
        if kind in ("move", "add", "source") and point is None:
            raise SerializationError(f"{kind} delta requires a point")
        if kind in ("move", "remove") and sink_index < 0:
            raise SerializationError(f"{kind} delta requires sink_index >= 0")
        if kind != "blockage" and not net:
            raise SerializationError(f"{kind} delta requires a net name")
        if kind == "blockage" and region is None:
            raise SerializationError("blockage delta requires a region")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "net", net)
        object.__setattr__(self, "sink_index", sink_index)
        object.__setattr__(self, "point", point)
        object.__setattr__(self, "region", region)
        object.__setattr__(self, "scale", scale)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("NetDelta is immutable")

    def __repr__(self) -> str:
        return f"NetDelta({format_delta(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetDelta):
            return NotImplemented
        return all(
            getattr(self, f) == getattr(other, f) for f in self.__slots__
        )

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, f) for f in self.__slots__))


def apply_delta(net: Net, delta: NetDelta) -> Net:
    """The edited net. Blockage deltas leave the net untouched.

    Raises :class:`~repro.exceptions.SerializationError` for an
    out-of-range sink index and lets :class:`~repro.geometry.net.Net`
    validation reject degenerate results (duplicate pins, degree < 2).
    """
    if delta.kind == "blockage":
        return net
    sinks: List[Tuple[float, float]] = [(p.x, p.y) for p in net.sinks]
    source: Tuple[float, float] = (net.source.x, net.source.y)
    if delta.kind in ("move", "remove") and not (
        0 <= delta.sink_index < len(sinks)
    ):
        raise SerializationError(
            f"delta sink_index {delta.sink_index} out of range for net "
            f"{net.name!r} with {len(sinks)} sinks"
        )
    if delta.kind == "move":
        assert delta.point is not None
        sinks[delta.sink_index] = delta.point
    elif delta.kind == "add":
        assert delta.point is not None
        sinks.append(delta.point)
    elif delta.kind == "remove":
        del sinks[delta.sink_index]
    elif delta.kind == "source":
        assert delta.point is not None
        source = delta.point
    return Net.from_points(source, sinks, name=net.name)


# ----------------------------------------------------------- text format


def format_delta(delta: NetDelta) -> str:
    """One replay-format line for ``delta`` (no trailing newline)."""
    if delta.kind == "blockage":
        assert delta.region is not None
        x0, y0, x1, y1 = delta.region
        return f"blockage {x0!r} {y0!r} {x1!r} {y1!r} {delta.scale!r}"
    if delta.kind == "move":
        assert delta.point is not None
        x, y = delta.point
        return f"move {delta.net} {delta.sink_index} {x!r} {y!r}"
    if delta.kind == "add":
        assert delta.point is not None
        x, y = delta.point
        return f"add {delta.net} {x!r} {y!r}"
    if delta.kind == "remove":
        return f"remove {delta.net} {delta.sink_index}"
    assert delta.point is not None
    x, y = delta.point
    return f"source {delta.net} {x!r} {y!r}"


def parse_deltas(fp: TextIO) -> Iterator[NetDelta]:
    """Yield deltas from an open ``.deltas`` text stream."""
    for lineno, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            kind = parts[0]
            if kind == "move":
                yield NetDelta(
                    "move",
                    net=parts[1],
                    sink_index=int(parts[2]),
                    point=(float(parts[3]), float(parts[4])),
                )
            elif kind == "add":
                yield NetDelta(
                    "add", net=parts[1], point=(float(parts[2]), float(parts[3]))
                )
            elif kind == "remove":
                yield NetDelta("remove", net=parts[1], sink_index=int(parts[2]))
            elif kind == "source":
                yield NetDelta(
                    "source",
                    net=parts[1],
                    point=(float(parts[2]), float(parts[3])),
                )
            elif kind == "blockage":
                yield NetDelta(
                    "blockage",
                    region=(
                        float(parts[1]),
                        float(parts[2]),
                        float(parts[3]),
                        float(parts[4]),
                    ),
                    scale=float(parts[5]),
                )
            else:
                raise SerializationError(
                    f"line {lineno}: unknown delta kind {kind!r}"
                )
        except (IndexError, ValueError) as exc:
            raise SerializationError(
                f"line {lineno}: malformed delta: {line!r}"
            ) from exc


def load_deltas(path: PathLike) -> List[NetDelta]:
    """Read every delta in a ``.deltas`` file."""
    with open(path, "r", encoding="utf-8") as fp:
        return list(parse_deltas(fp))


def dump_deltas(deltas: Iterable[NetDelta], fp: TextIO) -> int:
    """Write deltas to an open text file; returns how many were written."""
    count = 0
    for d in deltas:
        fp.write(format_delta(d) + "\n")
        count += 1
    return count


def save_deltas(deltas: Iterable[NetDelta], path: PathLike) -> int:
    """Write deltas to ``path``; returns how many were written."""
    with open(path, "w", encoding="utf-8") as fp:
        return dump_deltas(deltas, fp)


# ----------------------------------------------------------- wire codec


def delta_to_payload(delta: NetDelta) -> Dict[str, Any]:
    """JSON-safe wire form of ``delta`` (inverse of
    :func:`delta_from_payload`)."""
    payload: Dict[str, Any] = {"kind": delta.kind}
    if delta.net:
        payload["net"] = delta.net
    if delta.sink_index >= 0:
        payload["sink_index"] = delta.sink_index
    if delta.point is not None:
        payload["point"] = list(delta.point)
    if delta.region is not None:
        payload["region"] = list(delta.region)
        payload["scale"] = delta.scale
    return payload


def delta_from_payload(payload: Dict[str, Any]) -> NetDelta:
    """Decode a wire payload back into a :class:`NetDelta`.

    Raises :class:`~repro.exceptions.SerializationError` on missing or
    malformed fields (the daemon surfaces this as a typed error).
    """
    if not isinstance(payload, dict) or "kind" not in payload:
        raise SerializationError(f"malformed delta payload: {payload!r}")
    try:
        point = payload.get("point")
        region = payload.get("region")
        return NetDelta(
            kind=str(payload["kind"]),
            net=str(payload.get("net", "")),
            sink_index=int(payload.get("sink_index", -1)),
            point=(float(point[0]), float(point[1])) if point else None,
            region=(
                (
                    float(region[0]),
                    float(region[1]),
                    float(region[2]),
                    float(region[3]),
                )
                if region
                else None
            ),
            scale=float(payload.get("scale", 0.0)),
        )
    except (TypeError, ValueError, IndexError) as exc:
        raise SerializationError(
            f"malformed delta payload: {payload!r}"
        ) from exc


# ------------------------------------------------- perturbation generators


def grid_preserving_move(
    net: Net, rng: random.Random
) -> Optional[NetDelta]:
    """A one-sink move that keeps the DW solver state reusable, or None.

    Tries rng-ordered (sink, Hanan-lattice vacancy) pairs and returns the
    first whose edited net has the same
    :func:`~repro.core.pareto_dw.dw_signature` as ``net`` — same
    coordinate lines, same Lemma-2 survivors, same Lemma-4 boundary flag
    — so every subset front not containing the moved sink is reused
    verbatim by :func:`~repro.core.pareto_dw.pareto_dw_with_state`. The
    signature check is explicit, not assumed: candidates that would drop
    a grid line or flip the boundary flag are rejected. Returns ``None``
    when no such move exists (dense nets can pin every lattice point).
    """
    from ..core.pareto_dw import dw_signature
    from ..geometry.hanan import HananGrid

    signature = dw_signature(net)
    grid = HananGrid.of_net(net)
    occupied = {(p.x, p.y) for p in net.pins}
    vacancies = [
        (x, y) for x in grid.xs for y in grid.ys if (x, y) not in occupied
    ]
    rng.shuffle(vacancies)
    sink_order = list(range(len(net.sinks)))
    rng.shuffle(sink_order)
    for target in vacancies:
        for si in sink_order:
            delta = NetDelta("move", net=net.name, sink_index=si, point=target)
            if dw_signature(apply_delta(net, delta)) == signature:
                return delta
    return None


def perturb_nets(
    nets: Sequence[Net],
    seed: int,
    kind: str = "move",
    count: int = 1,
    span: float = 1000.0,
    blockage_scale: float = 0.5,
) -> List[NetDelta]:
    """A deterministic stream of ``count`` deltas over ``nets``.

    ``kind`` selects the generator: ``"move"`` produces grid-preserving
    one-sink moves (falling back to an arbitrary in-span move when a net
    has no signature-preserving vacancy), ``"add"`` appends a random sink
    within ``span``, ``"remove"`` drops the last sink of a degree > 2
    net, and ``"blockage"`` emits random rectangles whose cell capacity
    is multiplied by ``blockage_scale``. Same ``(nets, seed, kind,
    count)`` — same stream, byte for byte.

    The stream is generated against the *evolving* design: each delta is
    produced from the nets as edited by every previous delta, so the
    whole stream replays cleanly in order (no stale sink indices, no
    pin collisions) and repeat edits of one net keep its solver state
    reusable.
    """
    if kind not in DELTA_KINDS or kind == "source":
        raise SerializationError(
            f"unsupported perturbation kind {kind!r}"
        )
    rng = random.Random(seed)
    names = [net.name for net in nets]
    current: Dict[str, Net] = {net.name: net for net in nets}
    if len(current) != len(nets):
        raise SerializationError("perturb_nets requires uniquely named nets")
    deltas: List[NetDelta] = []
    while len(deltas) < count:
        if kind == "blockage":
            x0 = rng.uniform(0.0, span * 0.8)
            y0 = rng.uniform(0.0, span * 0.8)
            deltas.append(
                NetDelta(
                    "blockage",
                    region=(x0, y0, x0 + span * 0.2, y0 + span * 0.2),
                    scale=blockage_scale,
                )
            )
            continue
        net = current[names[rng.randrange(len(names))]]
        if kind == "move":
            delta = grid_preserving_move(net, rng)
            if delta is None:
                occupied = {(p.x, p.y) for p in net.pins}
                target = (
                    float(rng.randrange(int(span) + 1)),
                    float(rng.randrange(int(span) + 1)),
                )
                if target in occupied:
                    continue
                delta = NetDelta(
                    "move",
                    net=net.name,
                    sink_index=rng.randrange(len(net.sinks)),
                    point=target,
                )
        elif kind == "add":
            occupied = {(p.x, p.y) for p in net.pins}
            target = (
                float(rng.randrange(int(span) + 1)),
                float(rng.randrange(int(span) + 1)),
            )
            if target in occupied:
                continue
            delta = NetDelta("add", net=net.name, point=target)
        else:  # remove
            if net.degree <= 2:
                continue
            delta = NetDelta(
                "remove", net=net.name, sink_index=len(net.sinks) - 1
            )
        current[net.name] = apply_delta(net, delta)
        deltas.append(delta)
    return deltas
