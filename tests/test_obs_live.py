"""Tests for repro.obs.live and the Prometheus exposition round-trip.

Covers the live-telemetry satellites of the observability PR:

* histogram **merge associativity and determinism** (hypothesis: merge
  order never changes bucket counts or reported percentiles);
* metric-name **sanitization round-trip** (dots -> underscores, original
  name recovered from the ``# HELP`` line) as a regression test;
* :func:`validate_exposition` structural checks against both valid
  exporter output and deliberately malformed documents;
* the ``repro top`` consumer (``percentile_from_buckets``, frame
  rendering, scrape-failure exit codes).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    DEFAULT_BOUNDS,
    LatencyHistogram,
    Registry,
    current_net_id,
    current_request_id,
    help_original_name,
    log_bucket_bounds,
    merge_histograms,
    parse_prometheus_text,
    percentile_from_buckets,
    prom_name,
    request_context,
    to_prometheus,
    validate_exposition,
)
from repro.obs.top import TopState, render_frame, run_top

# --------------------------------------------------------------- histograms


class TestBucketBounds:
    def test_default_bounds_are_deterministic_and_monotone(self):
        assert log_bucket_bounds() == DEFAULT_BOUNDS
        assert list(DEFAULT_BOUNDS) == sorted(set(DEFAULT_BOUNDS))
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-5)
        assert DEFAULT_BOUNDS[-1] >= 100.0

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            log_bucket_bounds(lo=0.0)
        with pytest.raises(ValueError):
            log_bucket_bounds(lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            log_bucket_bounds(per_decade=0)


class TestLatencyHistogram:
    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.percentile(0.5) == 0.0
        assert h.mean == 0.0
        assert h.overflow == 0

    def test_observe_and_percentile(self):
        h = LatencyHistogram(bounds=(0.01, 0.1, 1.0))
        for s in (0.005, 0.005, 0.05, 0.5):
            h.observe(s)
        assert h.counts == [2, 1, 1, 0]
        assert h.percentile(0.5) == 0.01
        assert h.percentile(1.0) == 1.0

    def test_overflow_reports_last_finite_bound(self):
        h = LatencyHistogram(bounds=(0.01, 0.1))
        h.observe(5.0)
        assert h.overflow == 1
        assert h.percentile(0.99) == 0.1  # conservative lower estimate

    def test_dict_round_trip(self):
        h = LatencyHistogram()
        for s in (1e-4, 3e-3, 0.2, 7.0):
            h.observe(s)
        back = LatencyHistogram.from_dict(h.as_dict())
        assert back.bounds == h.bounds
        assert back.counts == h.counts
        assert back.count == h.count
        assert back.sum == h.sum

    def test_from_dict_rejects_count_mismatch(self):
        payload = LatencyHistogram(bounds=(1.0,)).as_dict()
        payload["counts"] = [1, 2, 3]
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(payload)

    def test_clone_is_independent(self):
        h = LatencyHistogram()
        h.observe(0.1)
        c = h.clone()
        c.observe(0.2)
        assert h.count == 1 and c.count == 2

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0,)).merge(
                LatencyHistogram(bounds=(2.0,))
            )

    def test_as_summary_keys(self):
        h = LatencyHistogram()
        h.observe(0.01)
        summary = h.as_summary()
        assert set(summary) == {"count", "mean_ms", "p50_ms", "p95_ms", "p99_ms"}
        assert summary["count"] == 1.0
        assert summary["p50_ms"] > 0.0


durations = st.floats(
    min_value=1e-7, max_value=500.0, allow_nan=False, allow_infinity=False
)
worker_groups = st.lists(
    st.lists(durations, max_size=25), min_size=1, max_size=6
)


def _fold(groups, order):
    """Merge per-group histograms in the given index order."""
    hists = []
    for samples in groups:
        h = LatencyHistogram()
        for s in samples:
            h.observe(s)
        hists.append(h)
    return merge_histograms([hists[i] for i in order])


class TestMergeAssociativity:
    """Merge order never changes bucket counts or reported percentiles."""

    @settings(deadline=None, max_examples=60)
    @given(worker_groups)
    def test_fold_order_invariance(self, groups):
        order = list(range(len(groups)))
        forward = _fold(groups, order)
        backward = _fold(groups, order[::-1])
        interleaved = _fold(groups, order[::2] + order[1::2])
        for other in (backward, interleaved):
            assert other.counts == forward.counts
            assert other.count == forward.count
            for q in (0.5, 0.9, 0.95, 0.99, 1.0):
                assert other.percentile(q) == forward.percentile(q)

    @settings(deadline=None, max_examples=60)
    @given(worker_groups)
    def test_pairwise_tree_fold_matches_linear_fold(self, groups):
        hists = []
        for samples in groups:
            h = LatencyHistogram()
            for s in samples:
                h.observe(s)
            hists.append(h)
        linear = merge_histograms(hists)
        # Balanced pairwise reduction: ((a+b) + (c+d)) + ...
        level = [h.clone() for h in hists]
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                merged = level[i]
                merged.merge(level[i + 1])
                nxt.append(merged)
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        assert level[0].counts == linear.counts
        assert level[0].count == linear.count

    @settings(deadline=None, max_examples=60)
    @given(st.lists(durations, max_size=50))
    def test_rebuild_is_deterministic(self, samples):
        a = LatencyHistogram()
        b = LatencyHistogram()
        for s in samples:
            a.observe(s)
        for s in samples:
            b.observe(s)
        assert a.as_dict()["counts"] == b.as_dict()["counts"]
        assert a.percentile(0.99) == b.percentile(0.99)

    @settings(deadline=None, max_examples=60)
    @given(st.lists(durations, min_size=1, max_size=50))
    def test_percentile_consumer_twin_agrees(self, samples):
        """percentile_from_buckets on exported rows == producer percentile."""
        h = LatencyHistogram()
        for s in samples:
            h.observe(s)
        cumulative = h.cumulative()
        rows = [
            (bound, float(cumulative[i])) for i, bound in enumerate(h.bounds)
        ] + [(math.inf, float(cumulative[-1]))]
        for q in (0.5, 0.95, 0.99):
            assert percentile_from_buckets(rows, q) == h.percentile(q)


class TestPercentileFromBuckets:
    def test_empty_rows(self):
        assert percentile_from_buckets([], 0.5) == 0.0
        assert percentile_from_buckets([(0.1, 0.0)], 0.5) == 0.0

    def test_overflow_reports_largest_finite_bound(self):
        rows = [(0.01, 0.0), (0.1, 0.0), (math.inf, 4.0)]
        assert percentile_from_buckets(rows, 0.99) == 0.1


# ---------------------------------------------------------- request context


class TestRequestContext:
    def test_defaults_are_none(self):
        assert current_request_id() is None
        assert current_net_id() is None

    def test_scoping_and_nesting(self):
        with request_context("req-1", "net-a"):
            assert current_request_id() == "req-1"
            assert current_net_id() == "net-a"
            with request_context("req-2"):
                assert current_request_id() == "req-2"
                assert current_net_id() is None
            assert current_request_id() == "req-1"
        assert current_request_id() is None

    def test_tolerates_none(self):
        with request_context(None):
            assert current_request_id() is None


# ------------------------------------------------- exposition & round-trips


def _populated_registry() -> Registry:
    reg = Registry()
    reg.enable()
    reg.counter_add("cache.store_hits", 3)
    reg.counter_add("serve.requests", 11)
    reg.gauge_set("serve.queue_depth", 2.0)
    for s in (0.001, 0.004, 0.02, 0.3):
        reg.timer_observe("route.solve_seconds", s)
    return reg


class TestPrometheusRoundTrip:
    def test_exporter_output_is_structurally_valid(self):
        text = to_prometheus(_populated_registry())
        assert validate_exposition(text) == []

    def test_every_family_has_help_and_type(self):
        expo = parse_prometheus_text(to_prometheus(_populated_registry()))
        assert expo.types["repro_cache_store_hits_total"] == "counter"
        assert expo.types["repro_serve_queue_depth"] == "gauge"
        assert expo.types["repro_route_solve_seconds_seconds"] == "summary"
        assert expo.types["repro_route_solve_seconds"] == "histogram"
        for family in expo.types:
            assert family in expo.help

    def test_name_sanitization_round_trips_via_help(self):
        """Regression: dots -> underscores is lossy, HELP recovers the name."""
        expo = parse_prometheus_text(to_prometheus(_populated_registry()))
        recovered = {
            help_original_name(text) for text in expo.help.values()
        }
        assert {"cache.store_hits", "serve.requests",
                "serve.queue_depth", "route.solve_seconds"} <= recovered

    def test_prom_name_sanitization(self):
        assert prom_name("cache.store_hits") == "repro_cache_store_hits"
        assert prom_name("a.b-c d") == "repro_a_b_c_d"
        assert help_original_name("# no quoted name here") is None

    def test_histogram_buckets_are_cumulative_with_inf(self):
        expo = parse_prometheus_text(to_prometheus(_populated_registry()))
        rows = expo.buckets("repro_route_solve_seconds")
        assert rows, "histogram family missing its buckets"
        values = [v for _le, _labels, v in rows]
        assert values == sorted(values)
        assert rows[-1][0] == "+Inf"
        assert rows[-1][2] == expo.value("repro_route_solve_seconds_count")

    def test_parse_rejects_garbage_lines(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus_text("this is not a metric line\n")
        with pytest.raises(ValueError, match="TYPE"):
            parse_prometheus_text("# TYPE broken\n")

    def test_validate_flags_structural_problems(self):
        # Counter family not ending in _total.
        bad = (
            "# HELP repro_x repro counter 'x'\n"
            "# TYPE repro_x counter\n"
            "repro_x 1\n"
        )
        assert any("_total" in p for p in validate_exposition(bad))
        # Histogram with non-cumulative buckets and no +Inf.
        bad = (
            "# HELP repro_h repro latency histogram 'h'\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1.0"} 3\n'
            "repro_h_sum 1.0\n"
            "repro_h_count 5\n"
        )
        problems = validate_exposition(bad)
        assert any("cumulative" in p for p in problems)
        assert any("+Inf" in p for p in problems)
        # Sample without a TYPE declaration.
        assert any(
            "no # TYPE" in p for p in validate_exposition("repro_orphan 1\n")
        )

    def test_validate_flags_inf_count_mismatch(self):
        bad = (
            "# HELP repro_h repro latency histogram 'h'\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 2\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 0.1\n"
            "repro_h_count 3\n"
        )
        assert any("_count" in p for p in validate_exposition(bad))


# ------------------------------------------------------------- `repro top`

_FRAME_TEXT = """\
# HELP repro_serve_requests_total repro counter 'serve.requests'
# TYPE repro_serve_requests_total counter
repro_serve_requests_total 10
# HELP repro_serve_nets_total repro counter 'serve.nets'
# TYPE repro_serve_nets_total counter
repro_serve_nets_total 40
# HELP repro_serve_errors_total repro counter 'serve.errors'
# TYPE repro_serve_errors_total counter
repro_serve_errors_total 0
# HELP repro_serve_slow_requests_total repro counter 'serve.slow_requests'
# TYPE repro_serve_slow_requests_total counter
repro_serve_slow_requests_total 1
# HELP repro_serve_uptime_seconds repro gauge 'serve.uptime_seconds'
# TYPE repro_serve_uptime_seconds gauge
repro_serve_uptime_seconds 12.5
# HELP repro_serve_ready repro gauge 'serve.ready'
# TYPE repro_serve_ready gauge
repro_serve_ready 1
# HELP repro_serve_workers repro gauge 'serve.workers'
# TYPE repro_serve_workers gauge
repro_serve_workers 2
# HELP repro_serve_queue_depth repro gauge 'serve.queue_depth'
# TYPE repro_serve_queue_depth gauge
repro_serve_queue_depth 0
# HELP repro_serve_queue_depth_max repro gauge 'serve.queue_depth_max'
# TYPE repro_serve_queue_depth_max gauge
repro_serve_queue_depth_max 2
# HELP repro_serve_warm_hit_rate repro gauge 'serve.warm_hit_rate'
# TYPE repro_serve_warm_hit_rate gauge
repro_serve_warm_hit_rate 0.25
# HELP repro_serve_request_seconds repro latency histogram 'serve.request_seconds'
# TYPE repro_serve_request_seconds histogram
repro_serve_request_seconds_bucket{le="0.01"} 6
repro_serve_request_seconds_bucket{le="0.1"} 9
repro_serve_request_seconds_bucket{le="+Inf"} 10
repro_serve_request_seconds_sum 0.5
repro_serve_request_seconds_count 10
"""


class TestTop:
    def test_rates_first_call_is_zero_then_deltas(self):
        state = TopState()
        expo = parse_prometheus_text(_FRAME_TEXT)
        assert state.rates(expo, 100.0) == {
            "repro_serve_requests_total": 0.0,
            "repro_serve_nets_total": 0.0,
            "repro_serve_errors_total": 0.0,
        }
        later = parse_prometheus_text(
            _FRAME_TEXT.replace(
                "repro_serve_requests_total 10",
                "repro_serve_requests_total 30",
            )
        )
        rates = state.rates(later, 102.0)
        assert rates["repro_serve_requests_total"] == pytest.approx(10.0)
        assert rates["repro_serve_nets_total"] == 0.0

    def test_rates_reset_on_daemon_restart(self):
        state = TopState()
        expo = parse_prometheus_text(_FRAME_TEXT)
        state.rates(expo, 100.0)
        restarted = parse_prometheus_text(
            _FRAME_TEXT.replace(
                "repro_serve_requests_total 10",
                "repro_serve_requests_total 1",
            )
        )
        rates = state.rates(restarted, 102.0)
        assert rates["repro_serve_requests_total"] == 0.0  # not negative

    def test_render_frame_contents(self):
        expo = parse_prometheus_text(_FRAME_TEXT)
        frame = render_frame(expo, TopState().rates(expo, 0.0))
        assert "workers 2" in frame
        assert "ready yes" in frame
        assert "request" in frame and "p99 ms" in frame
        assert "warm hit rate  25.0%" in frame
        assert "worker utilization 100.0%" in frame

    def test_run_top_exits_1_when_daemon_absent(self, capsys):
        code = run_top("http://127.0.0.1:9/metrics", iterations=1)
        assert code == 1
        assert "cannot scrape" in capsys.readouterr().out

    def test_run_top_renders_frames_via_stub(self, monkeypatch):
        import repro.obs.top as top_mod

        monkeypatch.setattr(
            top_mod,
            "fetch_metrics",
            lambda url, timeout=5.0: parse_prometheus_text(_FRAME_TEXT),
        )
        frames = []
        code = run_top(
            "http://stub/metrics",
            iterations=2,
            interval=0.0,
            out=frames.append,
            clock=iter([0.0, 1.0]).__next__,
            sleep=lambda _s: None,
        )
        assert code == 0
        assert len(frames) == 2
        assert all("repro serve" in f for f in frames)

    def test_run_top_retries_after_first_success(self, monkeypatch):
        import repro.obs.top as top_mod

        calls = {"n": 0}

        def flaky(url, timeout=5.0):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("connection refused")
            return parse_prometheus_text(_FRAME_TEXT)

        monkeypatch.setattr(top_mod, "fetch_metrics", flaky)
        frames = []
        code = run_top(
            "http://stub/metrics",
            iterations=3,
            interval=0.0,
            out=frames.append,
            sleep=lambda _s: None,
        )
        assert code == 0
        assert sum("retrying" in f for f in frames) == 1
