"""Engine assembly: one spec, one composed middleware stack.

:func:`build_engine` turns an :class:`EngineSpec` (or just a router name)
into a ready-to-use :class:`~repro.engine.protocol.Router`:

.. code-block:: text

    ValidatingRouter            # typed errors at the boundary
      -> CachedRouter           # optional; translation / symmetry keys
        -> ObservedRouter       # spans + net_routed events per real route
          -> <registered router>

The cache sits *outside* observability on purpose: a cache hit is served
without running the router, so it must not emit a ``net_routed`` event —
exactly the accounting the batch benchmarks assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from .middleware import ObservedRouter, ValidatingRouter
from .protocol import Router
from .registry import create_router

#: Cache canonicalization modes accepted by :class:`EngineSpec.cache`.
CACHE_MODES = (None, "translation", "symmetry")


@dataclass
class EngineSpec:
    """Declarative description of one engine stack.

    Attributes
    ----------
    router:
        Registry name of the innermost router (``"patlabor"``,
        ``"salt"``, ...).
    router_options:
        Keyword arguments for the router's registered factory.
    cache:
        ``None`` (no cache), ``"translation"`` (source-relative keys, the
        historical behaviour), or ``"symmetry"`` (translation plus the
        eight dihedral symmetries, serving mirrored nets from one entry).
    cache_entries:
        LRU capacity of the cache layer.
    cache_store:
        Optional path to a persistent
        :class:`~repro.core.cache_store.PersistentStore` SQLite file
        installed underneath the LRU (requires ``cache`` to be set);
        disk hits compound across runs and processes.
    cache_store_readonly:
        Open the persistent store without write intent (pre-warmed
        read-mostly deployments).
    validate:
        Install :class:`~repro.engine.middleware.ValidatingRouter`.
    observe:
        Install :class:`~repro.engine.middleware.ObservedRouter` (no-op
        unless :mod:`repro.obs` layers are enabled).
    incremental:
        Wrap the assembled stack in an
        :class:`~repro.incremental.IncrementalRouter`, the ECO session
        layer: the engine then accepts ``apply_delta`` edits and reuses
        retained solver state, and its capabilities report
        ``incremental=True``.
    """

    router: str = "patlabor"
    router_options: Dict[str, Any] = field(default_factory=dict)
    cache: Optional[str] = None
    cache_entries: int = 100_000
    cache_store: Optional[str] = None
    cache_store_readonly: bool = False
    validate: bool = True
    observe: bool = True
    incremental: bool = False


def build_engine(spec: Union[EngineSpec, str, None] = None) -> Router:
    """Assemble the middleware stack described by ``spec``.

    ``spec`` may be a full :class:`EngineSpec`, a bare router name
    (defaults for everything else), or ``None`` (a plain PatLabor
    engine). Raises ``KeyError`` for unregistered router names and
    ``ValueError`` for unknown cache modes.
    """
    if spec is None:
        spec = EngineSpec()
    elif isinstance(spec, str):
        spec = EngineSpec(router=spec)
    if spec.cache not in CACHE_MODES:
        raise ValueError(
            f"unknown cache mode {spec.cache!r}; expected one of {CACHE_MODES}"
        )
    if spec.cache_store is not None and spec.cache is None:
        raise ValueError(
            "cache_store requires a cache mode; set EngineSpec.cache to "
            "'translation' or 'symmetry'"
        )
    engine: Router = create_router(spec.router, **spec.router_options)
    if spec.observe:
        engine = ObservedRouter(engine)
    if spec.cache is not None:
        from ..core.cache import CachedRouter

        store = None
        if spec.cache_store is not None:
            from ..core.cache_store import PersistentStore

            store = PersistentStore(
                spec.cache_store, readonly=spec.cache_store_readonly
            )
        engine = CachedRouter(
            engine,
            max_entries=spec.cache_entries,
            canonicalize=spec.cache,
            store=store,
        )
    if spec.validate:
        engine = ValidatingRouter(engine)
    if spec.incremental:
        # Imported lazily: repro.incremental imports this module.
        from ..incremental.engine import IncrementalRouter

        engine = IncrementalRouter(engine)
    return engine
