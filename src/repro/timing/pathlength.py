"""Path-length delay model — the paper's ``d(T)``.

The paper measures delay as the maximum source→sink path length. This
module exposes that model behind the same small interface as the Elmore
extension so evaluation code can swap models.
"""

from __future__ import annotations

from typing import List

from ..routing.tree import RoutingTree


class PathLengthDelay:
    """Delay = rectilinear path length from the source."""

    name = "pathlength"

    def sink_delays(self, tree: RoutingTree) -> List[float]:
        """Per-sink delay, in net sink order."""
        return tree.sink_delays()

    def max_delay(self, tree: RoutingTree) -> float:
        """The tree's delay objective ``d(T)``."""
        return tree.delay()

    def critical_sink(self, tree: RoutingTree) -> int:
        """Index (into ``net.sinks``) of the worst sink."""
        delays = tree.sink_delays()
        return max(range(len(delays)), key=lambda i: delays[i])
