"""Tests for the congestion extension (tri-objective routing)."""

import random

import pytest

from repro.congestion.model import CongestionMap
from repro.congestion.pareto3 import (
    dominates3,
    is_pareto_front3,
    pareto_filter3,
    project_wd,
)
from repro.congestion.router import (
    congestion_annotated_front,
    embed_min_congestion,
    pareto_dw3,
)
from repro.core.pareto_dw import pareto_frontier
from repro.exceptions import DegreeTooLargeError
from repro.geometry.net import Net, random_net
from repro.baselines.rsmt import rsmt
from repro.routing.embedding import Segment
from repro.geometry.point import Point


def flat_map(weight=1.0, span=100.0, cells=10):
    return CongestionMap.uniform(0, 0, span, span, cells, cells, weight=weight)


def hotspot_map(span=100.0, cells=10, where=(4, 4), radius=2, hot=10.0):
    cmap = flat_map(span=span, cells=cells)
    cx, cy = where
    for ix in range(max(0, cx - radius), min(cells, cx + radius + 1)):
        for iy in range(max(0, cy - radius), min(cells, cy + radius + 1)):
            cmap.weights[ix][iy] = hot
    return cmap


class TestCongestionMap:
    def test_uniform_cost_equals_length(self):
        cmap = flat_map()
        seg = Segment(Point(10, 20), Point(60, 20))
        assert abs(cmap.segment_cost(seg) - 50) < 1e-9

    def test_weighted_cell_scales_cost(self):
        cmap = hotspot_map(where=(2, 2), radius=0, hot=5.0)
        # Horizontal run through cell (2, 2) = x in [20,30), y in [20,30).
        seg = Segment(Point(20, 25), Point(30, 25))
        assert abs(cmap.segment_cost(seg) - 50) < 1e-9

    def test_partial_cell_crossing(self):
        cmap = hotspot_map(where=(2, 2), radius=0, hot=5.0)
        seg = Segment(Point(25, 25), Point(35, 25))  # half hot, half cool
        assert abs(cmap.segment_cost(seg) - (5 * 5.0 + 5 * 1.0)) < 1e-9

    def test_outside_region_uses_outside_weight(self):
        cmap = flat_map(span=100.0)
        cmap.outside_weight = 3.0
        seg = Segment(Point(-10, 5), Point(0, 5))
        assert abs(cmap.segment_cost(seg) - 30) < 1e-9

    def test_vertical_cost(self):
        cmap = hotspot_map(where=(0, 0), radius=0, hot=2.0)
        seg = Segment(Point(5, 0), Point(5, 10))
        assert abs(cmap.segment_cost(seg) - 20) < 1e-9

    def test_best_edge_cost_picks_cheaper_l(self):
        # Hot square in the lower-right: the lower-L crosses it, the
        # upper-L avoids it.
        cmap = hotspot_map(where=(8, 0), radius=1, hot=10.0)
        cost, lower = cmap.best_edge_cost((70, 5), (99, 30))
        alt = cmap.edge_cost((70, 5), (99, 30), lower_l=True)
        assert cost <= alt
        assert not lower  # upper-L avoids the hot corner

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestionMap(0, 0, 0.0, [[1.0]])
        with pytest.raises(ValueError):
            CongestionMap(0, 0, 1.0, [])
        with pytest.raises(ValueError):
            CongestionMap.uniform(0, 0, 100, 50, 10, 10)

    def test_random_hotspots_deterministic(self):
        a = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(1))
        b = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(1))
        assert a.weights == b.weights


class TestPareto3:
    def test_dominance(self):
        assert dominates3((1, 1, 1), (2, 2, 2))
        assert dominates3((1, 1, 1), (1, 1, 2))
        assert not dominates3((1, 1, 1), (1, 1, 1))
        assert not dominates3((1, 3, 1), (2, 2, 2))

    def test_filter_keeps_tradeoffs(self):
        sols = [
            (1, 3, 3, "a"),
            (3, 1, 3, "b"),
            (3, 3, 1, "c"),
            (4, 4, 4, "dominated"),
        ]
        out = pareto_filter3(sols)
        assert {s[3] for s in out} == {"a", "b", "c"}
        assert is_pareto_front3(out)

    def test_filter_dedupes(self):
        out = pareto_filter3([(1, 1, 1, "x"), (1, 1, 1, "y")])
        assert len(out) == 1

    def test_project_wd(self):
        sols = [(1, 3, 9, "a"), (2, 2, 1, "b"), (1.5, 2.8, 0.5, "c")]
        wd = project_wd(sols)
        assert [(s[0], s[1]) for s in wd] == [(1, 3), (1.5, 2.8), (2, 2)]


class TestParetoDw3:
    def test_uniform_map_reduces_to_2d(self):
        """With weight-1 congestion everywhere, c is determined by the
        embedding of the tree, and the (w, d) projection of the 3-D front
        equals the 2-D frontier."""
        rng = random.Random(1)
        for _ in range(3):
            net = random_net(5, rng=rng, span=100.0)
            front3 = pareto_dw3(net, flat_map())
            wd = [(round(w, 6), round(d, 6)) for w, d, _t in project_wd(front3)]
            exact = [
                (round(w, 6), round(d, 6)) for w, d in pareto_frontier(net)
            ]
            assert wd == exact

    def test_front_is_3d_antichain_of_valid_trees(self):
        net = random_net(5, rng=random.Random(2), span=100.0)
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(3)
        )
        front = pareto_dw3(net, cmap)
        assert front and is_pareto_front3(front)
        for w, d, c, tree in front:
            tree.validate()
            assert c >= 0

    def test_hotspot_creates_congestion_tradeoff(self):
        """A hot region between source and sink forces a wire/congestion
        trade-off: the direct route is short but hot, the detour longer
        but cool."""
        net = Net.from_points((5, 50), [(95, 50), (50, 95)])
        cmap = hotspot_map(where=(5, 5), radius=1, hot=50.0)
        front = pareto_dw3(net, cmap, max_degree=6)
        costs = [c for _w, _d, c, _t in front]
        # The frontier must offer at least one escape from the hot path.
        assert len(front) >= 1
        assert min(costs) < cmap.edge_cost((5, 50), (95, 50))

    def test_degree_guard(self):
        with pytest.raises(DegreeTooLargeError):
            pareto_dw3(random_net(8, rng=random.Random(0)), flat_map())


class TestEmbedding:
    def test_embedding_choice_never_hurts(self):
        rng = random.Random(4)
        for _ in range(3):
            net = random_net(8, rng=rng, span=100.0)
            tree = rsmt(net)
            cmap = CongestionMap.random_hotspots(
                0, 0, 100, 10, rng=random.Random(5)
            )
            _, best = embed_min_congestion(tree, cmap)
            fixed = sum(
                cmap.edge_cost(tree.points[p], tree.points[c])
                for c, p in tree.edges()
            )
            assert best <= fixed + 1e-9

    def test_segments_cover_wirelength(self):
        net = random_net(6, rng=random.Random(6), span=100.0)
        tree = rsmt(net)
        segs, _ = embed_min_congestion(tree, flat_map())
        assert abs(sum(s.length for s in segs) - tree.wirelength()) < 1e-9


class TestAnnotatedFront:
    def test_any_degree(self):
        net = random_net(14, rng=random.Random(7), span=100.0)
        cmap = CongestionMap.random_hotspots(0, 0, 100, 10, rng=random.Random(8))
        front = congestion_annotated_front(net, cmap)
        assert front and is_pareto_front3(front)

    def test_exact_wd_projection_small(self):
        net = random_net(6, rng=random.Random(9), span=100.0)
        front = congestion_annotated_front(net, flat_map())
        wd = [(round(w, 6), round(d, 6)) for w, d, _t in project_wd(front)]
        exact = [(round(w, 6), round(d, 6)) for w, d in pareto_frontier(net)]
        assert wd == exact


# --------------------------------------------------------------- scan_cells


class TestScanCells:
    """Cell rasterization, including the cell-boundary regression cases."""

    def _scan(self, *args):
        from repro.congestion.model import scan_cells

        return scan_cells(*args)

    def test_interior_crossing(self):
        assert self._scan(0.0, 10.0, 5.0, 25.0) == [
            (0, 5.0),
            (1, 10.0),
            (2, 5.0),
        ]

    def test_start_on_cell_boundary_charges_only_right_cell(self):
        # Regression: a span starting exactly on a cell edge used to
        # produce a zero-length sliver in the left cell.
        assert self._scan(0.0, 10.0, 10.0, 20.0) == [(1, 10.0)]

    def test_end_on_cell_boundary_charges_only_left_cell(self):
        assert self._scan(0.0, 10.0, 5.0, 10.0) == [(0, 5.0)]

    def test_aligned_multicell_span(self):
        assert self._scan(0.0, 10.0, 10.0, 40.0) == [
            (1, 10.0),
            (2, 10.0),
            (3, 10.0),
        ]

    def test_zero_length_span_is_empty(self):
        assert self._scan(0.0, 10.0, 15.0, 15.0) == []
        assert self._scan(0.0, 10.0, 20.0, 20.0) == []  # on a boundary

    def test_negative_origin(self):
        assert self._scan(-10.0, 10.0, -5.0, 5.0) == [(0, 5.0), (1, 5.0)]

    def test_lengths_cover_span(self):
        cells = self._scan(0.0, 7.0, 3.3, 29.1)
        assert sum(length for _i, length in cells) == pytest.approx(25.8)
        assert [i for i, _l in cells] == sorted({i for i, _l in cells})

    def test_boundary_start_segment_cost_skips_left_cell(self):
        # The observable bug: a hot cell left of the boundary must not
        # leak into the cost of a segment starting on that boundary.
        cmap = hotspot_map(where=(0, 0), radius=0, hot=100.0)
        seg = Segment(Point(10, 5), Point(20, 5))  # starts at cell edge
        assert abs(cmap.segment_cost(seg) - 10.0) < 1e-9

    def test_zero_length_segment_costs_nothing(self):
        cmap = hotspot_map(where=(1, 0), radius=0, hot=100.0)
        seg = Segment(Point(10, 5), Point(10, 5))
        assert cmap.segment_cost(seg) == 0.0
        assert cmap.segment_cells(seg) == []


# ------------------------------------------------- CapacityGrid bit-identity


from repro.congestion.model import (  # noqa: E402
    HAVE_NUMPY,
    CapacityGrid,
    np,
)

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="CapacityGrid state arrays require NumPy"
)


@needs_numpy
class TestCapacityGrid:
    def test_prices_equal_base_when_idle(self):
        grid = CapacityGrid.uniform(0, 0, 100, 100, 10, 10, capacity=50.0)
        assert np.array_equal(grid.prices(), grid.base)
        assert grid.weight_at(3, 4) == 1.0

    def test_pathfinder_price_formula(self):
        grid = CapacityGrid.uniform(
            0, 0, 100, 100, 10, 10, capacity=10.0, pres_fac=0.5, hist_fac=0.3
        )
        seg = Segment(Point(0, 5), Point(25, 5))
        grid.commit(*grid.rasterize_segment(seg)[:2])
        grid.commit(*grid.rasterize_segment(seg)[:2])
        # Cells 0 and 1 hold 20 demand (overuse 10), cell 2 holds 10.
        assert grid.weight_at(0, 0) == pytest.approx(1.0 * (1 + 0.5 * 10.0))
        assert grid.weight_at(2, 0) == pytest.approx(1.0)
        grid.update_history(gain=1.0)
        assert grid.weight_at(0, 0) == pytest.approx(
            (1.0 + 0.3 * 10.0) * (1 + 0.5 * 10.0)
        )

    def test_commit_ripup_round_trip_restores_zero_demand(self):
        grid = CapacityGrid.uniform(0, 0, 100, 100, 10, 10, capacity=5.0)
        segs = [
            Segment(Point(3, 7), Point(88, 7)),
            Segment(Point(40, 0), Point(40, 99)),
        ]
        arrays = [grid.rasterize_segment(s)[:2] for s in segs]
        for idx, lengths in arrays:
            grid.commit(idx, lengths)
        assert grid.demand.sum() > 0
        for idx, lengths in arrays:
            grid.ripup(idx, lengths)
        assert np.allclose(grid.demand, 0.0)
        assert grid.total_overuse() == 0.0

    def test_overuse_accounting(self):
        grid = CapacityGrid.uniform(0, 0, 100, 100, 10, 10, capacity=4.0)
        seg = Segment(Point(0, 5), Point(10, 5))  # 10 units in cell (0,0)
        grid.commit(*grid.rasterize_segment(seg)[:2])
        assert grid.total_overuse() == pytest.approx(6.0)
        assert grid.overused_cells() == 1
        assert grid.max_utilization() == pytest.approx(2.5)

    def test_fresh_resets_state_but_keeps_frame(self):
        grid = CapacityGrid.uniform(
            0, 0, 100, 100, 10, 10, capacity=5.0, pres_fac=2.0, hist_fac=1.0
        )
        grid.commit(
            *grid.rasterize_segment(Segment(Point(0, 5), Point(50, 5)))[:2]
        )
        grid.update_history()
        fresh = grid.fresh()
        assert fresh.demand.sum() == 0.0 and fresh.history.sum() == 0.0
        assert fresh.pres_fac == 0.0 and fresh.hist_fac == 0.0
        assert np.array_equal(fresh.base, grid.base)
        assert np.array_equal(fresh.capacity, grid.capacity)
        assert (fresh.nx, fresh.ny, fresh.cell) == (
            grid.nx,
            grid.ny,
            grid.cell,
        )

    def test_adapter_round_trip_preserves_weights(self):
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(11)
        )
        grid = CapacityGrid.from_congestion_map(cmap)
        back = grid.as_congestion_map()
        assert back.weights == cmap.weights
        assert back.outside_weight == cmap.outside_weight


@needs_numpy
class TestCapacityGridBitIdentity:
    """With zero demand/history, CapacityGrid costs are bit-identical to
    CongestionMap's — the adapter contract the single-net APIs rely on."""

    def _pair(self, seed):
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(seed)
        )
        cmap.outside_weight = 2.5
        return cmap, CapacityGrid.from_congestion_map(cmap)

    def test_segment_costs_bit_identical(self):
        cmap, grid = self._pair(20)
        rng = random.Random(21)
        for _ in range(50):
            x0, y0 = rng.uniform(-10, 110), rng.uniform(-10, 110)
            if rng.random() < 0.5:
                seg = Segment(Point(x0, y0), Point(rng.uniform(-10, 110), y0))
            else:
                seg = Segment(Point(x0, y0), Point(x0, rng.uniform(-10, 110)))
            assert grid.segment_cost(seg) == cmap.segment_cost(seg)

    def test_tree_and_edge_costs_bit_identical(self):
        cmap, grid = self._pair(22)
        rng = random.Random(23)
        for _ in range(5):
            net = random_net(7, rng=rng, span=100.0)
            tree = rsmt(net)
            assert grid.tree_cost(tree) == cmap.tree_cost(tree)
            for child, parent in tree.edges():
                a, b = tree.points[parent], tree.points[child]
                assert grid.best_edge_cost(a, b) == cmap.best_edge_cost(a, b)

    def test_embed_min_congestion_bit_identical(self):
        cmap, grid = self._pair(24)
        rng = random.Random(25)
        for _ in range(5):
            tree = rsmt(random_net(6, rng=rng, span=100.0))
            segs_map, cost_map = embed_min_congestion(tree, cmap)
            segs_grid, cost_grid = embed_min_congestion(tree, grid)
            assert cost_grid == cost_map
            assert segs_grid == segs_map

    def test_pareto_dw3_bit_identical(self):
        cmap, grid = self._pair(26)
        net = random_net(5, rng=random.Random(27), span=100.0)
        front_map = pareto_dw3(net, cmap)
        front_grid = pareto_dw3(net, grid)
        assert [(w, d, c) for w, d, c, _t in front_map] == [
            (w, d, c) for w, d, c, _t in front_grid
        ]

    def test_annotated_front_bit_identical(self):
        cmap, grid = self._pair(28)
        net = random_net(12, rng=random.Random(29), span=100.0)
        front_map = congestion_annotated_front(net, cmap)
        front_grid = congestion_annotated_front(net, grid)
        assert [(w, d, c) for w, d, c, _t in front_map] == [
            (w, d, c) for w, d, c, _t in front_grid
        ]


# ------------------------------------------------------ property tests


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.congestion.pareto3 import set_free, weakly_dominates3  # noqa: E402

# The tie-heavy pool of the frontier-kernel property tests: small
# integers for frequent exact ties, non-dyadic floats for rounding.
coord3 = st.one_of(
    st.integers(0, 6).map(float),
    st.sampled_from([0.1, 0.3, 1.7, 2.5, 3.3]),
)

few = settings(max_examples=150, deadline=None)


@st.composite
def solution3_lists(draw, max_size=10):
    """Unsorted, duplicate-laden 3-objective solution lists with
    distinct payload indices so tie-breaking is observable."""
    n = draw(st.integers(0, max_size))
    return [
        (draw(coord3), draw(coord3), draw(coord3), idx) for idx in range(n)
    ]


class TestPareto3Properties:
    @few
    @given(solution3_lists())
    def test_filter_output_is_an_antichain(self, sols):
        assert is_pareto_front3(pareto_filter3(sols))

    @few
    @given(solution3_lists())
    def test_ties_collapse_to_first_seen_payload(self, sols):
        # Exact objective duplicates keep the earliest payload; no
        # objective triple survives twice.
        out = pareto_filter3(sols)
        first = {}
        for s in sols:
            first.setdefault((s[0], s[1], s[2]), s[3])
        seen_objs = [(s[0], s[1], s[2]) for s in out]
        assert len(seen_objs) == len(set(seen_objs))
        for s in out:
            assert s[3] == first[(s[0], s[1], s[2])]

    @few
    @given(solution3_lists())
    def test_filter_is_idempotent_and_sorted(self, sols):
        out = pareto_filter3(sols)
        assert pareto_filter3(out) == out
        assert out == sorted(out, key=lambda s: (s[0], s[1], s[2]))

    @few
    @given(solution3_lists())
    def test_survivors_dominate_everything_dropped(self, sols):
        out = pareto_filter3(sols)
        kept_objs = {(s[0], s[1], s[2]) for s in out}
        for s in set_free(sols):
            obj = (s[0], s[1], s[2])
            if obj not in kept_objs:
                assert any(
                    weakly_dominates3(k, obj) for k in kept_objs
                ), obj


class TestEmbedDeterminismProperties:
    @few
    @given(st.integers(0, 500), st.integers(0, 500))
    def test_embed_min_congestion_is_deterministic(self, net_seed, map_seed):
        # Same tree + same map => identical segments and identical cost,
        # bit for bit — the property the negotiator's replay (and the
        # cache tiers above it) depend on.
        net = random_net(5, rng=random.Random(net_seed), span=100.0)
        tree = rsmt(net)
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(map_seed)
        )
        segs_a, cost_a = embed_min_congestion(tree, cmap)
        segs_b, cost_b = embed_min_congestion(tree, cmap)
        assert cost_a == cost_b
        assert segs_a == segs_b

    @few
    @given(st.integers(0, 500))
    def test_embedding_cost_matches_segment_prices(self, seed):
        # The reported min cost is exactly the sum of the chosen
        # segments' costs under the same map.
        rng = random.Random(seed)
        net = random_net(5, rng=rng, span=100.0)
        tree = rsmt(net)
        cmap = CongestionMap.random_hotspots(
            0, 0, 100, 10, rng=random.Random(seed + 1)
        )
        segs, cost = embed_min_congestion(tree, cmap)
        assert cost == pytest.approx(
            sum(cmap.segment_cost(s) for s in segs), rel=1e-12
        )
