"""Congestion model: weighted grids and the array-backed capacity grid.

The paper's conclusion names congestion as the first future-work metric.
This module models it the way global routers do: the region is divided
into uniform g-cells, each carrying a congestion weight (demand/capacity
ratio, hot-spot penalty, ...). The congestion cost of a wire is the
weight-integrated length of its embedding:

    cost(segment) = sum over crossed cells of (length inside cell * weight)

Unlike wirelength and delay, congestion depends on *which* L-shape embeds
an edge — that freedom is exploited by
:func:`repro.congestion.router.embed_min_congestion`.

Two grid classes share one scalar cost semantics (:class:`_GridCostModel`
and the :func:`scan_cells` rasterizer, so their costs are bit-identical
on equal weights — see ``docs/numerics.md``):

* :class:`CongestionMap` — the original static list-of-lists weight map,
  kept unchanged for existing callers (tests mutate ``weights`` in
  place and compare maps by list equality).
* :class:`CapacityGrid` — the array-backed PathFinder state used by
  :mod:`repro.congestion.negotiate`: per-cell ``base`` weights plus
  ``capacity`` / ``demand`` / ``history`` arrays and the negotiated
  present-cost price

      price = (base + hist_fac * history)
              * (1 + pres_fac * max(0, demand - capacity))

  which reduces exactly to ``base`` while demand and history are zero,
  making the grid a drop-in :class:`CongestionMap` for the single-net
  APIs (``pareto_dw3`` / ``embed_min_congestion`` /
  ``congestion_annotated_front`` all duck-type on the cost methods).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..geometry.point import PointLike
from ..routing.embedding import Segment, embed_edge

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..routing.tree import RoutingTree

try:  # pragma: no cover - exercised implicitly on import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less deployment
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Loose alias for numpy arrays (same convention as ``core.frontier_array``).
Array = Any

#: Sub-resolution slack used by the rasterizer: runs shorter than this are
#: attributed to the next cell instead of producing phantom slivers.
_EPS = 1e-12


def _require_numpy() -> None:
    """Raise a clear error when NumPy is unavailable for CapacityGrid."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "repro.congestion.CapacityGrid requires NumPy; the static "
            "CongestionMap API remains available without it"
        )


def scan_cells(
    origin: float, cell: float, lo: float, hi: float
) -> List[Tuple[int, float]]:
    """Cells of a 1-D uniform grid crossed by ``[lo, hi]``, with lengths.

    The shared scalar rasterizer behind every grid cost in this module:
    both :class:`CongestionMap` and :class:`CapacityGrid` integrate
    weights over exactly this cell/length sequence, which is what makes
    their costs bit-identical on equal weights.

    The cell index *advances* (instead of being re-derived from the
    accumulated float coordinate each step), so runs that start or end
    exactly on a cell boundary never attribute length to the wrong cell:
    a boundary hit advances to the next cell, and slivers shorter than
    ``1e-12`` (float misrounds of the boundary itself) are folded into
    the following cell rather than emitted. Empty or reversed intervals
    yield no cells.

    >>> scan_cells(0.0, 10.0, 5.0, 25.0)
    [(0, 5.0), (1, 10.0), (2, 5.0)]
    >>> scan_cells(0.0, 10.0, 10.0, 20.0)   # starts exactly on a boundary
    [(1, 10.0)]
    >>> scan_cells(0.0, 10.0, 7.0, 7.0)     # zero-length run
    []
    """
    if hi <= lo:
        return []
    out: List[Tuple[int, float]] = []
    idx = int((lo - origin) // cell)
    start = lo
    while start < hi - _EPS:
        end = min(hi, origin + (idx + 1) * cell)
        if end <= start + _EPS:
            # ``start`` sits on (or misrounds past) this cell's upper
            # boundary: the run continues in the next cell.
            idx += 1
            continue
        out.append((idx, end - start))
        start = end
        idx += 1
    return out


class _GridCostModel:
    """Scalar congestion-cost semantics shared by every grid class.

    Subclasses provide the grid frame (``xlo`` / ``ylo`` / ``cell`` /
    ``nx`` / ``ny``) and :meth:`weight_at`; this mixin derives every
    cost from them through :func:`scan_cells`, so two grids reporting
    equal weights produce bit-identical costs (same cells, same lengths,
    same accumulation order).
    """

    xlo: float
    ylo: float
    cell: float

    @property
    def nx(self) -> int:
        """Grid width in cells."""
        raise NotImplementedError

    @property
    def ny(self) -> int:
        """Grid height in cells."""
        raise NotImplementedError

    def weight_at(self, ix: int, iy: int) -> float:
        """Effective weight of cell ``(ix, iy)`` (out-of-range included)."""
        raise NotImplementedError

    def _axis_cost(
        self, fixed: float, lo: float, hi: float, horizontal: bool
    ) -> float:
        """Weight-integrated length of an axis-parallel run."""
        if hi <= lo:
            return 0.0
        cost = 0.0
        if horizontal:
            iy = int((fixed - self.ylo) // self.cell)
            for ix, length in scan_cells(self.xlo, self.cell, lo, hi):
                cost += length * self.weight_at(ix, iy)
        else:
            ix = int((fixed - self.xlo) // self.cell)
            for iy, length in scan_cells(self.ylo, self.cell, lo, hi):
                cost += length * self.weight_at(ix, iy)
        return cost

    def segment_cells(self, seg: Segment) -> List[Tuple[Tuple[int, int], float]]:
        """Cells a segment crosses, with the length inside each.

        Out-of-region runs are reported with their out-of-range indices
        (as produced by floor division); callers accumulating demand
        should ignore indices outside ``[0, nx) x [0, ny)``. Zero-length
        segments cross no cells.
        """
        out: List[Tuple[Tuple[int, int], float]] = []
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            iy = int((seg.a.y - self.ylo) // self.cell)
            for ix, length in scan_cells(self.xlo, self.cell, lo, hi):
                out.append(((ix, iy), length))
        else:
            lo, hi = sorted((seg.a.y, seg.b.y))
            ix = int((seg.a.x - self.xlo) // self.cell)
            for iy, length in scan_cells(self.ylo, self.cell, lo, hi):
                out.append(((ix, iy), length))
        return out

    def segment_cost(self, seg: Segment) -> float:
        """Weight-integrated length of one axis-parallel segment."""
        if seg.is_horizontal:
            lo, hi = sorted((seg.a.x, seg.b.x))
            return self._axis_cost(seg.a.y, lo, hi, horizontal=True)
        lo, hi = sorted((seg.a.y, seg.b.y))
        return self._axis_cost(seg.a.x, lo, hi, horizontal=False)

    def edge_cost(self, a: PointLike, b: PointLike, lower_l: bool = True) -> float:
        """Cost of one tree edge under a fixed L-shape convention."""
        return sum(self.segment_cost(s) for s in embed_edge(a, b, lower_l))

    def best_edge_cost(self, a: PointLike, b: PointLike) -> Tuple[float, bool]:
        """Cheaper of the two L embeddings: ``(cost, lower_l_flag)``.

        Ties break deterministically towards the lower L.
        """
        lo = self.edge_cost(a, b, lower_l=True)
        hi = self.edge_cost(a, b, lower_l=False)
        return (lo, True) if lo <= hi else (hi, False)

    def tree_cost(self, tree: "RoutingTree", per_edge_choice: bool = True) -> float:
        """Congestion cost of a whole tree.

        With ``per_edge_choice`` each edge independently takes its cheaper
        L embedding (legal: the objectives w/d are embedding-invariant).
        """
        total = 0.0
        for child, parent in tree.edges():
            a, b = tree.points[parent], tree.points[child]
            if per_edge_choice:
                total += self.best_edge_cost(a, b)[0]
            else:
                total += self.edge_cost(a, b)
        return total


@dataclass
class CongestionMap(_GridCostModel):
    """Per-cell congestion weights on a uniform grid.

    Attributes
    ----------
    xlo, ylo:
        Lower-left corner of the covered region.
    cell:
        Cell edge length (> 0).
    weights:
        ``weights[ix][iy]`` — the congestion weight of cell ``(ix, iy)``.
        Points outside the covered region use ``outside_weight``.
    """

    xlo: float
    ylo: float
    cell: float
    weights: List[List[float]]
    outside_weight: float = 1.0

    def __post_init__(self) -> None:
        """Validate the grid frame."""
        if self.cell <= 0:
            raise ValueError(f"cell size must be positive, got {self.cell}")
        if not self.weights or not self.weights[0]:
            raise ValueError("congestion map needs at least one cell")

    @property
    def nx(self) -> int:
        """Grid width in cells."""
        return len(self.weights)

    @property
    def ny(self) -> int:
        """Grid height in cells."""
        return len(self.weights[0])

    @classmethod
    def uniform(
        cls, xlo: float, ylo: float, xhi: float, yhi: float,
        nx: int, ny: int, weight: float = 1.0,
    ) -> "CongestionMap":
        """A constant-weight map covering ``[xlo, xhi] x [ylo, yhi]``.

        The cell size derives from the x-extent; the grid is ``nx x ny``.
        """
        cell = (xhi - xlo) / nx
        if abs((yhi - ylo) / ny - cell) > 1e-9:
            raise ValueError("uniform map requires square cells")
        return cls(
            xlo=xlo, ylo=ylo, cell=cell,
            weights=[[weight] * ny for _ in range(nx)],
        )

    @classmethod
    def random_hotspots(
        cls, xlo: float, ylo: float, span: float, cells: int,
        hotspots: int = 3, hot_weight: float = 8.0,
        rng: Optional[random.Random] = None,
    ) -> "CongestionMap":
        """A base-weight-1 map with a few square hot regions."""
        rng = rng or random.Random()
        cmap = cls.uniform(xlo, ylo, xlo + span, ylo + span, cells, cells)
        for _ in range(hotspots):
            cx = rng.randrange(cells)
            cy = rng.randrange(cells)
            radius = rng.randint(0, max(1, cells // 6))
            for ix in range(max(0, cx - radius), min(cells, cx + radius + 1)):
                for iy in range(max(0, cy - radius), min(cells, cy + radius + 1)):
                    cmap.weights[ix][iy] = hot_weight
        return cmap

    # --------------------------------------------------------------- costs

    def weight_at(self, ix: int, iy: int) -> float:
        """The weight of cell ``(ix, iy)``; outside cells use the default."""
        if 0 <= ix < self.nx and 0 <= iy < self.ny:
            return self.weights[ix][iy]
        return self.outside_weight

    def deposit(self, seg: Segment, scale: float = 1.0) -> None:
        """Accumulate ``length * scale`` into every crossed in-range cell
        (demand tracking for sequential routing flows)."""
        for (ix, iy), length in self.segment_cells(seg):
            if 0 <= ix < self.nx and 0 <= iy < self.ny:
                self.weights[ix][iy] += length * scale


class CapacityGrid(_GridCostModel):
    """Array-backed congestion state: the PathFinder negotiation substrate.

    Holds four ``(nx, ny)`` float64 arrays — static ``base`` weights,
    per-cell ``capacity``, accumulated ``demand``, and the ``history``
    penalty — plus the two PathFinder knobs ``pres_fac`` / ``hist_fac``.
    The effective cell weight (the negotiated *price*) is

        price = (base + hist_fac * history)
                * (1 + pres_fac * max(0, demand - capacity))

    which is exactly ``base`` while demand and history are zero, so a
    fresh grid is cost-bit-identical to the :class:`CongestionMap` it was
    built from (:meth:`from_congestion_map`). Demand is committed and
    ripped up through flat-index arrays (:meth:`rasterize_segment` /
    :meth:`commit` / :meth:`ripup`), the shape
    :class:`~repro.congestion.negotiate.NegotiatedRouter` re-prices whole
    frontiers with.

    Cells outside the covered region have no capacity bookkeeping; they
    always price at ``outside_weight``.
    """

    def __init__(
        self,
        xlo: float,
        ylo: float,
        cell: float,
        base: Array,
        capacity: Array = math.inf,
        *,
        pres_fac: float = 0.0,
        hist_fac: float = 0.0,
        outside_weight: float = 1.0,
    ) -> None:
        """Build a grid from base weights and (scalar or per-cell) capacity."""
        _require_numpy()
        if cell <= 0:
            raise ValueError(f"cell size must be positive, got {cell}")
        self.xlo = float(xlo)
        self.ylo = float(ylo)
        self.cell = float(cell)
        self.base = np.array(base, dtype=np.float64)
        if self.base.ndim != 2 or self.base.size == 0:
            raise ValueError("base weights must be a non-empty 2-D array")
        self.capacity = np.broadcast_to(
            np.asarray(capacity, dtype=np.float64), self.base.shape
        ).copy()
        self.demand = np.zeros_like(self.base)
        self.history = np.zeros_like(self.base)
        self.pres_fac = float(pres_fac)
        self.hist_fac = float(hist_fac)
        self.outside_weight = float(outside_weight)
        self._version = 0
        self._price_key: Optional[Tuple[int, float, float]] = None
        self._prices: Optional[Array] = None

    # ------------------------------------------------------------ frame

    @property
    def nx(self) -> int:
        """Grid width in cells."""
        return int(self.base.shape[0])

    @property
    def ny(self) -> int:
        """Grid height in cells."""
        return int(self.base.shape[1])

    # ----------------------------------------------------------- builders

    @classmethod
    def uniform(
        cls, xlo: float, ylo: float, xhi: float, yhi: float,
        nx: int, ny: int, *,
        weight: float = 1.0, capacity: float = math.inf,
        pres_fac: float = 0.0, hist_fac: float = 0.0,
    ) -> "CapacityGrid":
        """A constant-weight, constant-capacity grid over a square frame."""
        _require_numpy()
        cell = (xhi - xlo) / nx
        if abs((yhi - ylo) / ny - cell) > 1e-9:
            raise ValueError("uniform grid requires square cells")
        return cls(
            xlo, ylo, cell,
            np.full((nx, ny), float(weight)),
            capacity,
            pres_fac=pres_fac, hist_fac=hist_fac,
        )

    @classmethod
    def from_congestion_map(
        cls, cmap: CongestionMap, capacity: Array = math.inf,
        *, pres_fac: float = 0.0, hist_fac: float = 0.0,
    ) -> "CapacityGrid":
        """The adapter: a grid whose base weights copy ``cmap``'s.

        While demand and history stay zero the grid prices every cell at
        exactly the map's weight, so every scalar cost API —
        ``segment_cost`` / ``edge_cost`` / ``best_edge_cost`` /
        ``tree_cost`` — is bit-identical between the two (asserted by
        ``tests/test_congestion.py``).
        """
        grid = cls(
            cmap.xlo, cmap.ylo, cmap.cell, cmap.weights, capacity,
            pres_fac=pres_fac, hist_fac=hist_fac,
            outside_weight=cmap.outside_weight,
        )
        return grid

    def fresh(self) -> "CapacityGrid":
        """A new grid with this frame/base/capacity and zeroed state.

        Demand and history start at zero and both PathFinder factors at
        0.0 — the state a negotiation run begins from. The base and
        capacity arrays are copied, so runs never alias each other.
        """
        return CapacityGrid(
            self.xlo, self.ylo, self.cell, self.base, self.capacity,
            outside_weight=self.outside_weight,
        )

    def as_congestion_map(self) -> CongestionMap:
        """A static :class:`CongestionMap` of the *current* prices.

        A snapshot, not a view: later demand/history mutations do not
        propagate. Useful to hand negotiated prices to code that only
        speaks the old class (e.g. ``viz.congestion_heatmap_svg``).
        """
        prices = self.prices()
        return CongestionMap(
            xlo=self.xlo, ylo=self.ylo, cell=self.cell,
            weights=[[float(v) for v in col] for col in prices],
            outside_weight=self.outside_weight,
        )

    # ------------------------------------------------------------- pricing

    def prices(self) -> Array:
        """The ``(nx, ny)`` price array under the current PathFinder state.

        Cached until demand/history/factors change; the scalar
        :meth:`weight_at` reads from the same cache, so scalar and
        vectorized pricing always agree exactly.
        """
        key = (self._version, self.pres_fac, self.hist_fac)
        if self._prices is None or self._price_key != key:
            overuse = np.maximum(0.0, self.demand - self.capacity)
            self._prices = (self.base + self.hist_fac * self.history) * (
                1.0 + self.pres_fac * overuse
            )
            self._price_key = key
        return self._prices

    def flat_prices(self) -> Array:
        """The price array flattened in C order (``flat = ix * ny + iy``)."""
        return self.prices().reshape(-1)

    def weight_at(self, ix: int, iy: int) -> float:
        """The current price of cell ``(ix, iy)``; outside uses the default."""
        if 0 <= ix < self.nx and 0 <= iy < self.ny:
            return float(self.prices()[ix, iy])
        return self.outside_weight

    # ------------------------------------------------------ demand editing

    def rasterize_segment(self, seg: Segment) -> Tuple[Array, Array, float]:
        """One segment as ``(flat_idx, lengths, outside_length)``.

        ``flat_idx`` are C-order in-range cell indices (``ix * ny + iy``),
        ``lengths`` the run length inside each; ``outside_length`` is the
        total length outside the covered region (priced at the constant
        ``outside_weight``, never counted as demand). Uses the same
        :func:`scan_cells` rasterizer as the scalar costs.
        """
        idx: List[int] = []
        lengths: List[float] = []
        outside = 0.0
        ny = self.ny
        for (ix, iy), length in self.segment_cells(seg):
            if 0 <= ix < self.nx and 0 <= iy < ny:
                idx.append(ix * ny + iy)
                lengths.append(length)
            else:
                outside += length
        return (
            np.asarray(idx, dtype=np.int64),
            np.asarray(lengths, dtype=np.float64),
            outside,
        )

    def commit(self, flat_idx: Array, lengths: Array) -> None:
        """Add rasterized demand (repeated indices accumulate)."""
        np.add.at(self.demand.reshape(-1), flat_idx, lengths)
        self._version += 1

    def ripup(self, flat_idx: Array, lengths: Array) -> None:
        """Remove previously committed demand (exact inverse of commit)."""
        np.subtract.at(self.demand.reshape(-1), flat_idx, lengths)
        self._version += 1

    # ------------------------------------------------------- convergence

    def overuse(self) -> Array:
        """Per-cell demand beyond capacity (``max(0, demand - capacity)``)."""
        return np.maximum(0.0, self.demand - self.capacity)

    def total_overuse(self) -> float:
        """Summed overuse — the quantity negotiation drives to zero."""
        return float(self.overuse().sum())

    def overused_cells(self) -> int:
        """How many cells currently exceed their capacity."""
        return int((self.demand > self.capacity).sum())

    def max_utilization(self) -> float:
        """Peak demand/capacity ratio over capacitated cells (0 if none)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(
                np.isfinite(self.capacity) & (self.capacity > 0),
                self.demand / self.capacity,
                0.0,
            )
        return float(util.max()) if util.size else 0.0

    def update_history(self, gain: float = 1.0) -> None:
        """Accumulate the PathFinder history penalty from current overuse."""
        self.history += gain * self.overuse()
        self._version += 1

    def escalate(self, factor: float) -> None:
        """Multiply the present-cost factor (the per-iteration schedule)."""
        self.pres_fac *= factor
