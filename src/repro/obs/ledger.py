"""Run ledger: append-only JSONL history of benchmark runs, plus diffing.

Every benchmark / profiled CLI run appends one **record** to a ledger file
(default ``benchmarks/results/ledger.jsonl``), so performance becomes a
*longitudinal* signal instead of a pile of ad-hoc ``BENCH_*.json`` files.
A record is::

    {"run_id": "r-1754400000-ab12cd34", "ts": <unix seconds>,
     "name": "profile",
     "git": {"sha": "...", "branch": "..."},
     "config": {...},                     # whatever the producer ran with
     "metrics": {"nets_per_second": 412.0, "seconds": 1.43, ...},
     "environment": {"python": "3.12.1", "platform": "...",
                     "cpu_count": 16, "hostname": "..."}}

``metrics`` is a *flat* name→number mapping (see :func:`flatten_snapshot`
for deriving one from a registry snapshot) because flat dicts are what the
diff engine compares.

**Writer safety.** :func:`append_record` serialises the record to one
line, then writes it with ``O_APPEND`` under an ``fcntl`` exclusive lock
(lock skipped where unavailable), so concurrent benchmark shards never
interleave partial lines and a reader never sees a torn record.

**Diffing.** :func:`diff_metrics` compares two flat metric dicts with
direction awareness (``*_seconds`` down is good, ``*_per_second`` up is
good — see :func:`metric_direction`) and per-metric noise thresholds;
:func:`regressions` filters to the deltas that exceed threshold in the
bad direction. ``repro obs diff`` / ``repro obs check`` (see
:mod:`repro.cli`) are thin wrappers over these, and CI runs ``check``
against the committed baseline as a soft perf gate.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

try:  # POSIX advisory locking; other platforms fall back to O_APPEND only.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from .live import LatencyHistogram

PathLike = Union[str, Path]

#: Default ledger location, relative to the repository root.
DEFAULT_LEDGER = Path("benchmarks") / "results" / "ledger.jsonl"

#: Default relative noise threshold for timing-ish metrics (wall clocks on
#: shared CI runners jitter; 10% separates signal from scheduler noise).
DEFAULT_REL_THRESHOLD = 0.10

#: Absolute floor under which deltas are ignored regardless of ratio
#: (a 2µs→3µs "regression" is 50% relative and still meaningless).
DEFAULT_ABS_FLOOR = 1e-6


# --------------------------------------------------------------- record build


def git_info(cwd: Optional[PathLike] = None) -> Dict[str, str]:
    """Current git ``{"sha": ..., "branch": ...}`` ("unknown" outside a repo)."""
    out = {"sha": "unknown", "branch": "unknown"}
    for key, args in (
        ("sha", ["git", "rev-parse", "HEAD"]),
        ("branch", ["git", "rev-parse", "--abbrev-ref", "HEAD"]),
    ):
        try:
            proc = subprocess.run(
                args,
                cwd=str(cwd) if cwd else None,
                capture_output=True,
                text=True,
                timeout=5,
            )
            if proc.returncode == 0:
                out[key] = proc.stdout.strip()
        except (OSError, subprocess.SubprocessError):
            pass
    return out


def environment_info() -> Dict[str, object]:
    """The runtime environment snapshot stored in every ledger record."""
    try:
        hostname = socket.gethostname()
    except OSError:  # pragma: no cover - exotic hosts
        hostname = "unknown"
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 0,
        "hostname": hostname,
    }


def make_record(
    metrics: Dict[str, float],
    *,
    name: str = "run",
    config: Optional[Dict[str, object]] = None,
    run_id: Optional[str] = None,
    cwd: Optional[PathLike] = None,
) -> Dict[str, object]:
    """Build a ledger record (without writing it) from flat ``metrics``."""
    ts = time.time()
    return {
        "run_id": run_id or f"r-{int(ts)}-{uuid.uuid4().hex[:8]}",
        "ts": ts,
        "name": name,
        "git": git_info(cwd),
        "config": dict(config or {}),
        "metrics": {k: float(v) for k, v in metrics.items()},
        "environment": environment_info(),
    }


def flatten_snapshot(snap: Dict[str, object]) -> Dict[str, float]:
    """Flatten a registry snapshot into the ledger's metric namespace.

    Counters and gauges keep their names; timers and spans contribute
    ``<name>.total_s`` and ``<name>.mean_s`` (the two numbers the diff
    engine can meaningfully threshold); latency histograms contribute
    ``<name>.p50_ms`` and ``<name>.p99_ms`` (exact bucket-bound
    percentiles — deterministic, so the perf gate can threshold tail
    latency without sample-ring noise).
    """
    flat: Dict[str, float] = {}
    for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
        flat[name] = float(value)
    for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
        flat[name] = float(value)
    for family in ("timers", "spans"):
        for name, stat in snap.get(family, {}).items():  # type: ignore[union-attr]
            flat[f"{name}.total_s"] = float(stat["total_s"])
            flat[f"{name}.mean_s"] = float(stat["mean_s"])
    for name, hist in snap.get("histograms", {}).items():  # type: ignore[union-attr]
        if int(hist.get("count", 0)):
            summary = LatencyHistogram.from_dict(hist).as_summary()
            flat[f"{name}.p50_ms"] = float(summary["p50_ms"])
            flat[f"{name}.p99_ms"] = float(summary["p99_ms"])
    return flat


# ------------------------------------------------------------------ appending


def append_record(record: Dict[str, object], path: PathLike = DEFAULT_LEDGER) -> Path:
    """Atomically append one record to the ledger at ``path``.

    The record is serialised to a single line first, the file is opened
    ``O_APPEND``, and the write happens under an exclusive ``flock`` (when
    the platform has one), so concurrent writers — parallel benchmark
    shards, a CI matrix — can share one ledger without torn lines.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            os.write(fd, data)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
    finally:
        os.close(fd)
    return path


def read_ledger(path: PathLike = DEFAULT_LEDGER) -> List[Dict[str, object]]:
    """Every record in the ledger, oldest first ([] for a missing file)."""
    path = Path(path)
    if not path.exists():
        return []
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def resolve_record(
    spec: str, *, ledger_path: PathLike = DEFAULT_LEDGER
) -> Dict[str, object]:
    """Look up one record by flexible ``spec``.

    Accepted forms: ``latest`` (or ``-1``, ``-2``, ... counting back from
    the newest), a ``run_id`` prefix, or a path to a JSON file holding a
    single record (how committed baselines are referenced).

    Raises :class:`KeyError` when nothing matches.
    """
    candidate = Path(spec)
    if candidate.suffix == ".json" and candidate.exists():
        return json.loads(candidate.read_text(encoding="utf-8"))
    records = read_ledger(ledger_path)
    if spec == "latest":
        spec = "-1"
    try:
        index = int(spec)
    except ValueError:
        index = None
    if index is not None and index < 0:
        if len(records) < -index:
            raise KeyError(
                f"ledger {ledger_path} has {len(records)} record(s); "
                f"cannot resolve {spec!r}"
            )
        return records[index]
    matches = [
        r for r in records if str(r.get("run_id", "")).startswith(spec)
    ]
    if not matches:
        raise KeyError(f"no ledger record matches {spec!r}")
    if len(matches) > 1:
        raise KeyError(
            f"{spec!r} is ambiguous ({len(matches)} records); use more digits"
        )
    return matches[0]


# ------------------------------------------------------------------- diffing


@dataclass
class MetricDelta:
    """One metric's change between a baseline and a current run."""

    name: str
    base: float
    new: float
    direction: Optional[str]   # "higher" / "lower" is better, None = FYI only
    threshold: float           # relative threshold applied to this metric

    @property
    def delta(self) -> float:
        """Absolute change, ``new - base``."""
        return self.new - self.base

    @property
    def rel_delta(self) -> float:
        """Relative change vs the baseline (signed; 0 when base is 0)."""
        return self.delta / abs(self.base) if self.base else 0.0

    def _cleared(self, *, bad_side: bool) -> bool:
        """Whether the move clears the threshold on the requested side."""
        if self.direction is None or abs(self.delta) <= DEFAULT_ABS_FLOOR:
            return False
        worse = self.delta < 0 if self.direction == "higher" else self.delta > 0
        if worse is not bad_side:
            return False
        # A zero baseline gives no magnitude to scale by; any above-floor
        # move on the chosen side counts.
        return self.base == 0 or abs(self.rel_delta) > self.threshold

    @property
    def regressed(self) -> bool:
        """True when the change exceeds threshold in the *bad* direction."""
        return self._cleared(bad_side=True)

    @property
    def improved(self) -> bool:
        """True when the change exceeds threshold in the *good* direction."""
        return self._cleared(bad_side=False)


#: Ordered (pattern, direction, suffix_only) rules; first match wins. The
#: higher-is-better rules come first so ``nets_per_second`` is not caught
#: by the ``seconds`` rule. The short ``_s`` timer suffix is suffix-only,
#: otherwise it would swallow names like ``max_front_size``.
_DIRECTION_RULES = (
    ("per_second", "higher", False),
    ("_rate", "higher", False),
    ("hit_rate", "higher", False),
    ("hits", "higher", False),
    ("seconds", "lower", False),
    ("_s", "lower", True),    # the .total_s / .mean_s / .p99_s suffixes
    ("_ms", "lower", True),   # serve latency metrics (serve.p99_ms, ...)
    ("misses", "lower", False),
    ("errors", "lower", False),
    ("fallbacks", "lower", False),
    ("rss", "lower", False),
    # Negotiated-congestion convergence (see repro.congestion.negotiate):
    # fewer passes, less overuse, smaller worst delay, and less wire are
    # all better. ``wirelength`` sits after ``_rate`` so a saving-rate
    # metric reads higher-is-better while raw totals read lower.
    ("overuse", "lower", False),
    ("iterations", "lower", False),
    ("worst_delay", "lower", False),
    ("wirelength", "lower", False),
)


def metric_direction(name: str) -> Optional[str]:
    """Which way is better for metric ``name`` (None = informational).

    Uses ordered substring rules — throughput patterns before timing
    patterns — so e.g. ``nets_per_second`` reads as higher-is-better even
    though it contains ``seconds``.
    """
    for pattern, direction, suffix_only in _DIRECTION_RULES:
        if name.endswith(pattern) if suffix_only else pattern in name:
            return direction
    return None


def diff_metrics(
    base: Dict[str, float],
    new: Dict[str, float],
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    overrides: Optional[Dict[str, float]] = None,
) -> List[MetricDelta]:
    """Per-metric deltas for every metric present in both dicts.

    ``overrides`` maps metric names to per-metric relative thresholds
    (e.g. ``{"cache_hit_rate": 0.0}`` for a deterministic metric that must
    not move at all). Metrics present on only one side are skipped — a
    renamed metric is a review concern, not a perf regression.
    """
    overrides = overrides or {}
    deltas: List[MetricDelta] = []
    for name in sorted(set(base) & set(new)):
        deltas.append(
            MetricDelta(
                name=name,
                base=float(base[name]),
                new=float(new[name]),
                direction=metric_direction(name),
                threshold=float(overrides.get(name, rel_threshold)),
            )
        )
    return deltas


def regressions(deltas: Sequence[MetricDelta]) -> List[MetricDelta]:
    """The subset of ``deltas`` that regressed beyond their threshold."""
    return [d for d in deltas if d.regressed]


def diff_records(
    base: Dict[str, object],
    new: Dict[str, object],
    *,
    rel_threshold: float = DEFAULT_REL_THRESHOLD,
    overrides: Optional[Dict[str, float]] = None,
) -> List[MetricDelta]:
    """:func:`diff_metrics` over two ledger records' ``metrics`` blocks."""
    return diff_metrics(
        base.get("metrics", {}),  # type: ignore[arg-type]
        new.get("metrics", {}),  # type: ignore[arg-type]
        rel_threshold=rel_threshold,
        overrides=overrides,
    )


def render_diff(deltas: Sequence[MetricDelta], *, only_changed: bool = False) -> str:
    """Aligned text table of metric deltas (the ``obs diff`` output).

    Each line flags direction-aware verdicts: ``REGRESSED`` / ``improved``
    when the move clears the metric's threshold, blank otherwise.
    """
    rows = [d for d in deltas if not only_changed or d.delta]
    if not rows:
        return "(no comparable metrics)"
    name_w = max(len(d.name) for d in rows)
    lines = [
        f"{'metric':<{name_w}} {'baseline':>14} {'current':>14} "
        f"{'delta':>12} {'rel':>8}  verdict"
    ]
    for d in rows:
        verdict = "REGRESSED" if d.regressed else ("improved" if d.improved else "")
        lines.append(
            f"{d.name:<{name_w}} {d.base:>14.6g} {d.new:>14.6g} "
            f"{d.delta:>+12.6g} {d.rel_delta:>+7.1%}  {verdict}"
        )
    return "\n".join(lines)
