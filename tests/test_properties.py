"""Property-based invariants across the whole stack (hypothesis)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.rsma import rsma
from repro.baselines.rsmt import rsmt
from repro.baselines.salt import salt
from repro.core.pareto_dw import pareto_frontier
from repro.core.patlabor import PatLabor
from repro.geometry.hanan import HananGrid
from repro.geometry.net import Net
from repro.geometry.point import l1

# Nets drawn on an integer grid keep all arithmetic exact, so invariants
# can be asserted without tolerances.
coords = st.integers(0, 40)


@st.composite
def nets(draw, min_degree=2, max_degree=7):
    n = draw(st.integers(min_degree, max_degree))
    pts = set()
    while len(pts) < n:
        pts.add((draw(coords), draw(coords)))
    pts = sorted(pts)
    rng = random.Random(draw(st.integers(0, 10**6)))
    rng.shuffle(pts)
    return Net.from_points(pts[0], pts[1:])


slow = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.large_base_example,
        HealthCheck.filter_too_much,
    ],
)


class TestFrontierInvariants:
    @slow
    @given(nets(max_degree=6))
    def test_endpoints_bound_frontier(self, net):
        front = pareto_frontier(net)
        # Wirelength endpoint is the RSMT; delay endpoint is the L1 bound.
        assert front[0][0] <= rsmt(net).wirelength() + 1e-9
        assert abs(front[-1][1] - net.delay_lower_bound()) < 1e-9

    @slow
    @given(nets(max_degree=6))
    def test_frontier_strictly_monotone(self, net):
        front = pareto_frontier(net)
        for (w1, d1), (w2, d2) in zip(front, front[1:]):
            assert w1 < w2 and d1 > d2

    @slow
    @given(nets(max_degree=6))
    def test_frontier_invariant_under_translation(self, net):
        moved = net.translated(13, 7)
        assert pareto_frontier(net) == pareto_frontier(moved)

    @slow
    @given(nets(max_degree=6))
    def test_frontier_scales_linearly(self, net):
        front = pareto_frontier(net)
        scaled = pareto_frontier(net.scaled(3.0))
        assert len(front) == len(scaled)
        for (w, d), (sw, sd) in zip(front, scaled):
            assert abs(sw - 3 * w) < 1e-6 and abs(sd - 3 * d) < 1e-6

    @slow
    @given(nets(max_degree=6))
    def test_frontier_invariant_under_mirror(self, net):
        mirrored = Net.from_points(
            (-net.source.x, net.source.y),
            [(-s.x, s.y) for s in net.sinks],
        )
        assert pareto_frontier(net) == pareto_frontier(mirrored)

    @slow
    @given(nets(max_degree=6))
    def test_frontier_invariant_under_transpose(self, net):
        swapped = Net.from_points(
            (net.source.y, net.source.x),
            [(s.y, s.x) for s in net.sinks],
        )
        assert pareto_frontier(net) == pareto_frontier(swapped)


class TestAlgorithmInvariants:
    @slow
    @given(nets(min_degree=3, max_degree=8))
    def test_rsma_is_shortest_path_tree(self, net):
        t = rsma(net)
        for sink, pl in zip(net.sinks, t.sink_delays()):
            assert abs(pl - l1(net.source, sink)) < 1e-9

    @slow
    @given(nets(min_degree=3, max_degree=8), st.sampled_from([0.0, 0.2, 1.0]))
    def test_salt_budget_holds(self, net, eps):
        t = salt(net, eps)
        for sink, pl in zip(net.sinks, t.sink_delays()):
            assert pl <= (1 + eps) * l1(net.source, sink) + 1e-9

    @slow
    @given(nets(min_degree=3, max_degree=7))
    def test_patlabor_front_within_bounds(self, net):
        front = PatLabor().route(net)
        lb_w = net.bbox().half_perimeter
        lb_d = net.delay_lower_bound()
        for w, d, tree in front:
            assert w >= lb_w - 1e-9
            assert d >= lb_d - 1e-9
            assert d <= w + 1e-9

    @slow
    @given(nets(min_degree=2, max_degree=8))
    def test_hanan_grid_contains_pins(self, net):
        grid = HananGrid.of_net(net)
        for node, pin in zip(grid.pin_nodes(), net.pins):
            assert grid.point(node) == pin

    @slow
    @given(nets(min_degree=3, max_degree=8))
    def test_rsmt_below_star(self, net):
        assert rsmt(net).wirelength() <= net.star_wirelength() + 1e-9
