#!/usr/bin/env python3
"""Regenerate the paper's illustrative figures (Figs. 1-4) as SVG files.

Run:  python examples/paper_figures.py [output_dir]

* Fig. 1 — Pareto curves: PatLabor (full frontier) vs SALT vs YSD sweeps,
* Fig. 2 — three Pareto-optimal trees of one net (min-w / min-d / balanced),
* Fig. 3 — a Hanan grid with a routing tree on it,
* Fig. 4 — the Theorem-1 exponential-frontier gadget instance.
"""

import random
import sys
from pathlib import Path

from repro import Net, PatLabor
from repro.analysis.theorem1 import combination_tree, exponential_instance
from repro.baselines.salt import salt_sweep
from repro.baselines.ysd import ysd
from repro.eval.benchmarks import synth_net
from repro.viz.svg import pareto_curve_svg, save_svg, tree_svg


def pick_example_net() -> Net:
    """A clustered degree-8 net whose frontier has >= 3 points."""
    router = PatLabor()
    for seed in range(200):
        net = synth_net(8, random.Random(seed), style="clustered2")
        if len(router.route(net)) >= 3:
            return net
    raise SystemExit("no example net found")


def main(out_dir: str = "paper_figures") -> None:
    out = Path(out_dir)
    out.mkdir(exist_ok=True)
    router = PatLabor()

    # ---- Fig. 1: Pareto curves ------------------------------------------
    net = pick_example_net()
    frontier = router.route(net)
    save_svg(
        pareto_curve_svg(
            [
                ("PatLabor (full frontier)", frontier),
                ("SALT sweep", salt_sweep(net)),
                ("YSD sweep", ysd(net)),
            ],
            title=f"Fig. 1 — Pareto curves (degree-{net.degree} net)",
        ),
        str(out / "fig1_pareto_curves.svg"),
    )
    print(f"Fig. 1: frontier size {len(frontier)} -> fig1_pareto_curves.svg")

    # ---- Fig. 2: three Pareto-optimal trees -----------------------------
    picks = [
        ("min_wirelength", frontier[0]),
        ("balanced", frontier[len(frontier) // 2]),
        ("min_delay", frontier[-1]),
    ]
    for label, (w, d, tree) in picks:
        save_svg(
            tree_svg(tree, title=f"w={w:.0f}, d={d:.0f}"),
            str(out / f"fig2_{label}.svg"),
        )
        print(f"Fig. 2 ({label}): w={w:.0f} d={d:.0f}")

    # ---- Fig. 3: a Hanan grid and a tree on it --------------------------
    small = Net.from_points((0, 0), [(30, 10), (12, 28), (25, 22)])
    tree = router.route(small)[0][2]
    save_svg(
        tree_svg(tree, title="Fig. 3 — tree on the Hanan grid"),
        str(out / "fig3_hanan_tree.svg"),
    )

    # ---- Fig. 4: Theorem 1 gadget instance ------------------------------
    gadget_net = exponential_instance(2)
    for idx, choices in enumerate([(False, False), (True, True)]):
        tree = combination_tree(gadget_net, list(choices))
        w, d = tree.objective()
        save_svg(
            tree_svg(
                tree,
                title=f"Fig. 4 — gadget combination {choices}: w={w:.0f} d={d:.0f}",
            ),
            str(out / f"fig4_gadget_{idx}.svg"),
        )
    print(f"Fig. 4: gadget instance has {gadget_net.degree} pins")
    print(f"\nall figures written to {out}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
