"""Tests for the Pareto-KS divide-and-conquer approximation."""

import random

import pytest

from repro.core.pareto import epsilon_indicator, is_pareto_front
from repro.core.pareto_dw import pareto_dw
from repro.core.pareto_ks import pareto_ks
from repro.geometry.net import random_net
from repro.routing.validate import check_tree


class TestBaseCase:
    def test_small_net_is_exact(self, assert_fronts_equal):
        rng = random.Random(1)
        for _ in range(3):
            net = random_net(6, rng=rng)
            assert_fronts_equal(pareto_ks(net, base_size=7), pareto_dw(net))

    def test_custom_base_solver_used(self):
        calls = []

        def solver(sub):
            calls.append(sub.degree)
            return pareto_dw(sub)

        net = random_net(5, rng=random.Random(2))
        pareto_ks(net, base_size=6, base_solver=solver)
        assert calls == [5]


class TestLargeNets:
    @pytest.mark.parametrize("degree", [12, 18])
    def test_valid_trees_and_antichain(self, degree):
        net = random_net(degree, rng=random.Random(degree))
        front = pareto_ks(net, base_size=6)
        assert front
        assert is_pareto_front(front)
        for w, d, tree in front:
            check_tree(tree)
            assert abs(tree.wirelength() - w) < 1e-6
            assert abs(tree.delay() - d) < 1e-6

    def test_approximation_quality_vs_exact(self):
        """Theorem 4: Pareto-KS c-approximates the frontier. At this scale
        the constant is small — assert a loose but meaningful bound."""
        rng = random.Random(7)
        worst = 1.0
        for _ in range(4):
            net = random_net(10, rng=rng)
            exact = pareto_dw(net, with_trees=False)
            approx = pareto_ks(net, base_size=5)
            worst = max(worst, epsilon_indicator(approx, exact))
        # Pareto-KS is a weak approximation (the paper's own point: "not
        # good enough in practice"); the theorem only promises
        # O(sqrt(n / log n)). Assert the bound holds with slack.
        assert worst < 6.0

    def test_truncation_cap_respected(self):
        net = random_net(20, rng=random.Random(5))
        front = pareto_ks(net, base_size=5, max_front=4)
        assert len(front) <= 8  # combination can exceed cap only mildly

    def test_deterministic(self):
        net = random_net(14, rng=random.Random(9))
        a = [(w, d) for w, d, _ in pareto_ks(net, base_size=6)]
        b = [(w, d) for w, d, _ in pareto_ks(net, base_size=6)]
        assert a == b

    def test_delay_never_below_lower_bound(self):
        net = random_net(16, rng=random.Random(11))
        lb = net.delay_lower_bound()
        for w, d, _t in pareto_ks(net, base_size=6):
            assert d >= lb - 1e-9
