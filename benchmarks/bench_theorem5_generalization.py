"""Theorem 5 — generalisation of the learned policy parameters.

The theorem bounds the train/test performance gap by Õ(sqrt(n/m)).
Regenerated evidence: train the selection policy on m nets for growing m
and measure the empirical gap on held-out nets — it must stay small and
not grow with m.

Timed kernel: one policy-performance evaluation.
"""

import random

from repro.analysis.generalization import (
    generalization_experiment,
    policy_performance,
)
from repro.core.policy import SelectionPolicy
from repro.eval.reporting import format_table
from repro.geometry.net import random_net

from conftest import write_artifact


def test_theorem5_generalization(benchmark):
    rows = generalization_experiment(
        degree=12, training_sizes=(2, 4, 8), test_nets=8, lam=8, seed=3
    )
    table = format_table(
        ["m (training nets)", "train perf", "test perf", "gap"],
        [
            [r.m, f"{r.train_perf:.4f}", f"{r.test_perf:.4f}", f"{r.gap:.4f}"]
            for r in rows
        ],
        title="Theorem 5 — policy generalisation gap vs training-set size",
    )
    write_artifact("theorem5_generalization.txt", table)

    # The gap is bounded and the largest-m gap is not the worst one.
    gaps = [r.gap for r in rows]
    assert all(g < 0.5 for g in gaps)
    assert gaps[-1] <= max(gaps) + 1e-12

    nets = [random_net(12, rng=random.Random(1)) for _ in range(3)]
    policy = SelectionPolicy()
    benchmark.pedantic(
        lambda: policy_performance(policy, nets, lam=8), rounds=1, iterations=1
    )
