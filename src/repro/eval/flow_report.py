"""Text reporting for the design-level routing flow."""

from __future__ import annotations

from typing import Dict

from .design_flow import DesignFlowResult
from .reporting import format_table


def render_flow_summary(
    results: Dict[str, DesignFlowResult],
    title: str = "Design flow — strategy comparison",
) -> str:
    """Side-by-side summary of strategies over the same net list."""
    rows = []
    for name, r in results.items():
        rows.append(
            [
                name,
                len(r.outcomes),
                f"{r.total_wirelength:.0f}",
                r.budget_misses,
                f"{r.overflow:.0f}",
                f"{r.max_utilization:.2f}",
            ]
        )
    return format_table(
        ["strategy", "#nets", "total wire", "budget misses", "overflow", "peak util"],
        rows,
        title=title,
    )


def render_flow_detail(result: DesignFlowResult, limit: int = 20) -> str:
    """Per-net detail of one flow run (first ``limit`` nets)."""
    rows = [
        [
            o.net_name,
            f"{o.wirelength:.0f}",
            f"{o.delay:.0f}",
            f"{o.delay_budget:.0f}",
            "yes" if o.met_budget else "NO",
            f"{o.congestion_cost:.0f}",
        ]
        for o in result.outcomes[:limit]
    ]
    return format_table(
        ["net", "wire", "delay", "budget", "met", "cong. cost"],
        rows,
        title=f"flow detail ({min(limit, len(result.outcomes))} of "
        f"{len(result.outcomes)} nets)",
    )
