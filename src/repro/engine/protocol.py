"""The ``Router`` protocol: the one interface every tree constructor serves.

Every algorithm in this library — PatLabor, the exact DPs, and all the
baselines — is exposed to callers as a :class:`Router`: an object with a
``name``, a :class:`RouterCapabilities` descriptor, and a single method
``route(net) -> [(w, d, tree), ...]``. Callers (``eval.runner``,
``core.batch``, the CLI, the design flow) never import algorithm modules
directly; they resolve routers by name from :mod:`repro.engine.registry`
and compose middleware around this protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, runtime_checkable

from ..core.pareto import Solution
from ..geometry.net import Net


@dataclass(frozen=True)
class RouterCapabilities:
    """What a router promises about its output.

    Attributes
    ----------
    exact_up_to:
        The frontier is provably the full Pareto set for nets of degree
        at most this; ``None`` for purely heuristic methods.
    max_degree:
        Hard input limit — the validation middleware rejects larger nets
        at the engine boundary with
        :class:`~repro.exceptions.DegreeTooLargeError` instead of letting
        them fail deep inside a DP. ``None`` means unbounded.
    pareto:
        True when ``route`` returns a frontier (possibly approximate);
        False for single-tree constructors wrapped as singleton fronts.
    deterministic:
        True when repeated calls on the same net return identical
        results — the property the canonicalizing cache relies on.
    """

    exact_up_to: Optional[int] = None
    max_degree: Optional[int] = None
    pareto: bool = True
    deterministic: bool = True


@runtime_checkable
class Router(Protocol):
    """A per-net tree-construction service.

    ``route`` maps a :class:`~repro.geometry.net.Net` to Pareto solutions
    ``(wirelength, delay, tree)``. Implementations must be safe to call
    millions of times; anything cross-cutting (caching, validation,
    observability) belongs in middleware, not in the router.

    ``name`` and ``capabilities`` are declared as read-only properties so
    both plain attributes and properties satisfy the protocol.
    """

    @property
    def name(self) -> str:
        """Registry name of this router."""
        ...

    @property
    def capabilities(self) -> RouterCapabilities:
        """What this router promises about its output."""
        ...

    def route(self, net: Net) -> List[Solution]:
        """The (possibly approximate) Pareto set of ``net``."""
        ...
