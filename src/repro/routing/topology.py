"""Abstract tree topologies on Hanan-grid node indices.

A :class:`GridTopology` describes a routing tree *combinatorially*: its
nodes are ``(ix, iy)`` grid indices rather than coordinates, so the same
topology can be instantiated on every net sharing the pattern — exactly
what the lookup tables store. Edges connect two grid nodes and stand for
any monotone rectilinear path between them (each grid gap on the way is
used once), so symbolic wirelength/delay vectors are well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from ..exceptions import InvalidTreeError
from ..geometry.net import Net
from ..geometry.point import Point
from ..geometry.transforms import GridTransform
from .tree import RoutingTree

GridNode = Tuple[int, int]
GridEdge = Tuple[GridNode, GridNode]


def _symbolic_edge(a: GridNode, b: GridNode, nx: int, ny: int) -> Tuple[int, ...]:
    """Gap-usage vector of a monotone path between two grid nodes."""
    counts = [0] * ((nx - 1) + (ny - 1))
    x0, x1 = sorted((a[0], b[0]))
    for k in range(x0, x1):
        counts[k] = 1
    y0, y1 = sorted((a[1], b[1]))
    off = nx - 1
    for k in range(y0, y1):
        counts[off + k] = 1
    return tuple(counts)


@dataclass(frozen=True)
class GridTopology:
    """A tree over grid nodes of an ``nx x ny`` Hanan pattern.

    Attributes
    ----------
    nx, ny:
        Grid dimensions.
    source:
        Grid node of the source pin.
    sinks:
        Grid nodes of the sinks, in net order.
    edges:
        Undirected tree edges over grid nodes. Must connect source and all
        sinks (extra Steiner grid nodes allowed).
    """

    nx: int
    ny: int
    source: GridNode
    sinks: Tuple[GridNode, ...]
    edges: Tuple[GridEdge, ...]

    # ------------------------------------------------------------- algebra

    def nodes(self) -> List[GridNode]:
        """Every grid node referenced by the topology."""
        seen: Dict[GridNode, None] = {self.source: None}
        for s in self.sinks:
            seen.setdefault(s, None)
        for a, b in self.edges:
            seen.setdefault(a, None)
            seen.setdefault(b, None)
        return list(seen)

    def _paths_from_source(self) -> Dict[GridNode, List[GridEdge]]:
        """Edge list of the tree path from the source to every node."""
        adj: Dict[GridNode, List[GridNode]] = {}
        for a, b in self.edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)
        paths: Dict[GridNode, List[GridEdge]] = {self.source: []}
        stack = [self.source]
        while stack:
            u = stack.pop()
            for v in adj.get(u, ()):
                if v not in paths:
                    paths[v] = paths[u] + [(u, v)]
                    stack.append(v)
        return paths

    def symbolic_solution(self) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, ...], ...]]:
        """The paper's ``(W, D)`` representation of this topology.

        ``W`` counts, per grid gap, the total usage over all edges.
        ``D`` has one row per sink counting gap usage on the source→sink
        tree path.
        """
        m = (self.nx - 1) + (self.ny - 1)
        w = [0] * m
        for a, b in self.edges:
            vec = _symbolic_edge(a, b, self.nx, self.ny)
            for k in range(m):
                w[k] += vec[k]
        paths = self._paths_from_source()
        rows: List[Tuple[int, ...]] = []
        for s in self.sinks:
            if s not in paths:
                raise InvalidTreeError(f"sink {s} unreachable in topology")
            row = [0] * m
            for a, b in paths[s]:
                vec = _symbolic_edge(a, b, self.nx, self.ny)
                for k in range(m):
                    row[k] += vec[k]
            rows.append(tuple(row))
        return tuple(w), tuple(rows)

    def evaluate(self, gap_vector: Sequence[float]) -> Tuple[float, float]:
        """Numeric ``(w, d)`` for concrete grid gap lengths."""
        w_vec, d_rows = self.symbolic_solution()
        w = sum(c * g for c, g in zip(w_vec, gap_vector))
        d = max(
            (sum(c * g for c, g in zip(row, gap_vector)) for row in d_rows),
            default=0.0,
        )
        return w, d

    # ---------------------------------------------------------- transforms

    def transformed(self, t: GridTransform) -> "GridTopology":
        """The same topology viewed in the transformed frame."""
        nnx, nny = t.out_shape(self.nx, self.ny)
        f = lambda node: t.apply_node(node, self.nx, self.ny)  # noqa: E731
        return GridTopology(
            nx=nnx,
            ny=nny,
            source=f(self.source),
            sinks=tuple(f(s) for s in self.sinks),
            edges=tuple((f(a), f(b)) for a, b in self.edges),
        )

    def canonical_key(self) -> FrozenSet[FrozenSet[GridNode]]:
        """Hashable identity of the undirected edge set."""
        return frozenset(
            frozenset((a, b)) for a, b in self.edges if a != b
        )

    # -------------------------------------------------------- realisation

    def instantiate(self, net: Net, xs: Sequence[float], ys: Sequence[float]) -> RoutingTree:
        """Materialise the topology on a net whose Hanan lines are ``xs``/``ys``.

        ``xs[ix], ys[iy]`` give the coordinates of grid node ``(ix, iy)``.
        The pins of ``net`` must sit exactly at the grid nodes declared by
        ``source`` and ``sinks`` (in order).
        """
        def coord(node: GridNode) -> Point:
            return Point(float(xs[node[0]]), float(ys[node[1]]))

        if coord(self.source) != net.source:
            raise InvalidTreeError(
                f"topology source {coord(self.source)} != net source {net.source}"
            )
        for s_node, pin in zip(self.sinks, net.sinks):
            if coord(s_node) != pin:
                raise InvalidTreeError(
                    f"topology sink at {coord(s_node)} != net sink {pin}"
                )
        edges = [(coord(a), coord(b)) for a, b in self.edges]
        extra = [coord(n) for n in self.nodes()]
        return RoutingTree.from_edges(net, edges, extra_points=extra)
