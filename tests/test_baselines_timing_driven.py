"""Tests for SALT, Prim–Dijkstra / PD-II, the YSD substitute, and CL RSMA."""

import random

import pytest

from repro.baselines.prim_dijkstra import pd2, pd_sweep, prim_dijkstra
from repro.baselines.rsma import rsma, rsma_delay
from repro.baselines.rsmt import rsmt
from repro.baselines.salt import salt, salt_sweep
from repro.baselines.ysd import weighted_objective, ysd, ysd_single
from repro.core.pareto import is_pareto_front
from repro.geometry.net import Net, random_net
from repro.geometry.point import l1
from repro.routing.validate import check_tree


class TestSalt:
    def test_shallowness_guarantee(self):
        """The defining SALT invariant: every sink within (1+eps) of L1."""
        rng = random.Random(1)
        for eps in (0.0, 0.1, 0.5):
            for _ in range(3):
                net = random_net(12, rng=rng)
                t = salt(net, eps)
                src = net.source
                for sink, pl in zip(net.sinks, t.sink_delays()):
                    assert pl <= (1 + eps) * l1(src, sink) + 1e-6

    def test_eps_zero_is_shortest_path(self):
        net = random_net(10, rng=random.Random(2))
        t = salt(net, 0.0)
        assert abs(t.delay() - net.delay_lower_bound()) < 1e-6

    def test_large_eps_close_to_rsmt(self):
        net = random_net(10, rng=random.Random(3))
        t = salt(net, 50.0)
        assert t.wirelength() <= rsmt(net).wirelength() * 1.05 + 1e-9

    def test_sweep_is_pareto_front(self):
        net = random_net(12, rng=random.Random(4))
        front = salt_sweep(net)
        assert front and is_pareto_front(front)
        for _w, _d, t in front:
            check_tree(t)

    def test_monotone_tradeoff(self):
        """Smaller eps => delay no worse; wirelength may grow."""
        net = random_net(14, rng=random.Random(5))
        t_tight = salt(net, 0.0)
        t_loose = salt(net, 2.0)
        assert t_tight.delay() <= t_loose.delay() + 1e-9


class TestPrimDijkstra:
    def test_alpha0_is_mst_like(self):
        net = random_net(10, rng=random.Random(6))
        t = prim_dijkstra(net, 0.0)
        check_tree(t)
        # Prim on pins only: no Steiner nodes.
        assert t.num_steiner == 0

    def test_alpha1_is_shortest_path_tree(self):
        net = random_net(10, rng=random.Random(7))
        t = prim_dijkstra(net, 1.0)
        assert abs(t.delay() - net.delay_lower_bound()) < 1e-6

    def test_alpha_out_of_range(self):
        net = random_net(5, rng=random.Random(8))
        with pytest.raises(ValueError):
            prim_dijkstra(net, 1.5)

    def test_pd2_never_worse_than_pd(self):
        rng = random.Random(9)
        for alpha in (0.2, 0.6):
            net = random_net(12, rng=rng)
            base = prim_dijkstra(net, alpha)
            refined = pd2(net, alpha)
            assert refined.wirelength() <= base.wirelength() + 1e-9
            assert refined.delay() <= base.delay() + 1e-9

    def test_sweep_front(self):
        net = random_net(12, rng=random.Random(10))
        front = pd_sweep(net)
        assert front and is_pareto_front(front)


class TestYsd:
    def test_alpha1_minimises_wirelength_side(self):
        net = random_net(8, rng=random.Random(11))
        t_w = ysd_single(net, 1.0)
        t_d = ysd_single(net, 0.0)
        assert t_w.wirelength() <= t_d.wirelength() + 1e-9
        assert t_d.delay() <= t_w.delay() + 1e-9

    def test_alpha0_hits_delay_bound(self):
        net = random_net(8, rng=random.Random(12))
        t = ysd_single(net, 0.0)
        assert abs(t.delay() - net.delay_lower_bound()) < 1e-6

    def test_front_convexity_limitation(self):
        """Weighted-sum methods only reach convex-hull points: the front's
        points must all lie on the lower-left convex hull of themselves
        (trivially true) — more tellingly, the method misses known
        non-convex frontier points on crafted instances. Here we assert
        the structural property that each returned solution minimises its
        own scalarisation among the returned set."""
        net = random_net(8, rng=random.Random(13))
        front = ysd(net)
        scales = (
            max(net.star_wirelength(), 1e-9),
            max(net.delay_lower_bound(), 1e-9),
        )
        for alpha in (0.0, 0.25, 0.5, 0.75, 1.0):
            vals = [
                weighted_objective(w, d, alpha, scales) for w, d, _ in front
            ]
            assert min(vals) <= vals[0] + max(vals)  # sanity: well-defined

    def test_large_net_dc_path(self):
        net = random_net(16, rng=random.Random(14))
        front = ysd(net, weights=(0.0, 0.5, 1.0))
        assert front and is_pareto_front(front)
        for _w, _d, t in front:
            check_tree(t)


class TestRsma:
    def test_delay_equals_lower_bound_always(self):
        """The CL arborescence routes every sink on a shortest path."""
        rng = random.Random(15)
        for degree in (5, 9, 15):
            net = random_net(degree, rng=rng)
            assert abs(rsma_delay(net) - net.delay_lower_bound()) < 1e-6

    def test_wire_sharing_beats_star(self):
        # Aligned sinks in one quadrant must share wire.
        net = Net.from_points((0, 0), [(5, 5), (6, 6), (7, 7), (8, 8)])
        t = rsma(net)
        assert t.wirelength() == 16  # chain along the diagonal
        assert t.delay() == 16

    def test_four_quadrants(self):
        net = Net.from_points(
            (0, 0), [(5, 5), (-5, 5), (5, -5), (-5, -5)]
        )
        t = rsma(net)
        check_tree(t)
        assert t.delay() == 10

    def test_valid_trees(self):
        rng = random.Random(16)
        for _ in range(5):
            net = random_net(12, rng=rng)
            check_tree(rsma(net))

    def test_2approx_wirelength(self):
        """CL is a 2-approximation of the optimal arborescence; the RSMT
        lower-bounds any arborescence, so w(CL) <= 2 * w(optimal RSMA)
        can't be checked directly — but w(CL) <= 2 * star is trivial and
        w(CL) >= RSMT must hold."""
        rng = random.Random(17)
        for _ in range(5):
            net = random_net(8, rng=rng)
            w_cl = rsma(net).wirelength()
            assert w_cl <= net.star_wirelength() + 1e-9
            assert w_cl >= rsmt(net).wirelength() - 1e-6
