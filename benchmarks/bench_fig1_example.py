"""Fig. 1 / Fig. 2 — the motivating example.

Regenerates the paper's opening figure on one clustered net: PatLabor
recovers the *full* Pareto frontier while SALT's and the YSD-substitute's
parameter sweeps recover only parts of it. Also emits the three-trees
illustration of Fig. 2 (min-wirelength / min-delay / balanced) as SVG.

Timed kernel: one full PatLabor route of the example net.
"""

import random

from repro.baselines.salt import salt_sweep
from repro.baselines.ysd import ysd
from repro.core.pareto import count_on_frontier
from repro.core.patlabor import PatLabor
from repro.eval.benchmarks import synth_net
from repro.eval.reporting import format_table
from repro.viz.svg import pareto_curve_svg, tree_svg

from conftest import write_artifact


def _example_net():
    """A degree-8 clustered net with a rich frontier (seed chosen so the
    exact frontier has >= 3 points, mirroring Fig. 2's three solutions)."""
    for seed in range(100):
        net = synth_net(8, random.Random(seed), style="clustered2")
        front = PatLabor().route(net)
        if len(front) >= 3:
            return net, front
    raise AssertionError("no multi-point example found — distribution bug")


def test_fig1_example(benchmark):
    net, frontier = _example_net()
    benchmark(lambda: PatLabor().route(net))

    salt_front = salt_sweep(net)
    ysd_front = ysd(net)
    rows = []
    for name, front in (
        ("PatLabor", frontier),
        ("SALT", salt_front),
        ("YSD", ysd_front),
    ):
        rows.append(
            [
                name,
                len(front),
                count_on_frontier(front, frontier),
                f"{min(w for w, _, _ in front):.0f}",
                f"{min(d for _, d, _ in front):.0f}",
            ]
        )
    table = format_table(
        ["method", "#solutions", "on frontier", "best w", "best d"],
        rows,
        title=f"Fig. 1 example ({net.name}, degree {net.degree}; "
        f"frontier size {len(frontier)})",
    )
    svg = pareto_curve_svg(
        [("PatLabor", frontier), ("SALT", salt_front), ("YSD", ysd_front)],
        title="Fig. 1 — Pareto curves",
    )
    write_artifact("fig1_example.txt", table)
    write_artifact("fig1_curves.svg", svg)

    # Fig. 2: min-w, min-d, and a balanced tree.
    picks = [frontier[0], frontier[-1], frontier[len(frontier) // 2]]
    labels = ["min wirelength", "min delay", "balanced"]
    for (w, d, tree), label in zip(picks, labels):
        write_artifact(
            f"fig2_{label.replace(' ', '_')}.svg",
            tree_svg(tree, title=f"{label}: w={w:.0f} d={d:.0f}"),
        )

    # The paper's claim on this figure: baselines cannot recover the full
    # frontier, PatLabor can.
    assert count_on_frontier(frontier, frontier) == len(frontier)
    assert count_on_frontier(salt_front, frontier) < len(frontier) or (
        count_on_frontier(ysd_front, frontier) < len(frontier)
    )
