"""Unit tests for L-shape embedding and the validation battery."""

import random

import pytest

from repro.exceptions import InvalidTreeError
from repro.baselines.rsmt import rsmt
from repro.geometry.net import Net, random_net
from repro.geometry.point import Point
from repro.routing.embedding import (
    Segment,
    embed_edge,
    embed_tree,
    embedded_wirelength,
    segments_bbox,
)
from repro.routing.tree import RoutingTree
from repro.routing.validate import (
    check_objective_bounds,
    check_on_hanan_grid,
    check_sink_paths_monotone_bound,
    check_tree,
)


class TestEmbedEdge:
    def test_zero_length(self):
        assert embed_edge((3, 3), (3, 3)) == []

    def test_axis_parallel_single_segment(self):
        segs = embed_edge((0, 0), (5, 0))
        assert len(segs) == 1
        assert segs[0].is_horizontal

    def test_l_shape_two_segments(self):
        segs = embed_edge((0, 0), (4, 3))
        assert len(segs) == 2
        assert sum(s.length for s in segs) == 7

    def test_lower_vs_upper_l(self):
        lower = embed_edge((0, 0), (4, 3), lower_l=True)
        upper = embed_edge((0, 0), (4, 3), lower_l=False)
        assert lower[0].b == Point(4, 0)
        assert upper[0].b == Point(0, 3)
        assert sum(s.length for s in lower) == sum(s.length for s in upper)


class TestEmbedTree:
    def test_wirelength_invariant_under_embedding(self):
        rng = random.Random(3)
        for _ in range(5):
            net = random_net(7, rng=rng)
            tree = rsmt(net)
            for flag in (True, False):
                segs = embed_tree(tree, lower_l=flag)
                assert abs(embedded_wirelength(segs) - tree.wirelength()) < 1e-9

    def test_segments_all_rectilinear(self):
        net = random_net(6, rng=random.Random(1))
        for seg in embed_tree(rsmt(net)):
            assert seg.is_horizontal or seg.is_vertical

    def test_bbox(self):
        segs = [Segment(Point(0, 0), Point(4, 0)), Segment(Point(4, 0), Point(4, 3))]
        assert segments_bbox(segs) == (0, 0, 4, 3)

    def test_bbox_empty(self):
        assert segments_bbox([]) == (0, 0, 0, 0)


class TestValidation:
    def test_valid_tree_passes_battery(self):
        net = random_net(8, rng=random.Random(2))
        check_tree(rsmt(net), hanan=True)

    def test_star_is_on_hanan(self, square_net):
        check_on_hanan_grid(RoutingTree.star(square_net))

    def test_off_hanan_detected(self, square_net):
        tree = RoutingTree.star(square_net)
        tree.points.append(Point(3.33, 7.77))
        tree.parent.append(0)
        with pytest.raises(InvalidTreeError):
            check_on_hanan_grid(tree)

    def test_objective_bounds_hold_for_heuristics(self):
        from repro.baselines.salt import salt
        from repro.baselines.prim_dijkstra import pd2

        rng = random.Random(7)
        for _ in range(3):
            net = random_net(10, rng=rng)
            check_objective_bounds(salt(net, 0.2))
            check_objective_bounds(pd2(net, 0.5))

    def test_sink_paths_lower_bound(self):
        net = random_net(9, rng=random.Random(8))
        check_sink_paths_monotone_bound(rsmt(net))

    def test_impossible_delay_detected(self, square_net):
        tree = RoutingTree.star(square_net)
        # Forge a cached delay below the L1 lower bound.
        tree._delay = 1.0
        with pytest.raises(InvalidTreeError):
            check_objective_bounds(tree)

    def test_heuristic_trees_stay_on_hanan_grid(self):
        """All heuristics only create Steiner points combining pin
        coordinates — the documented invariant."""
        from repro.baselines.salt import salt
        from repro.baselines.ysd import ysd_single

        rng = random.Random(12)
        for _ in range(3):
            net = random_net(8, rng=rng)
            check_on_hanan_grid(rsmt(net))
            check_on_hanan_grid(salt(net, 0.3))
            check_on_hanan_grid(ysd_single(net, 0.5))
