"""Tests for the PathFinder negotiation subsystem (repro.congestion.negotiate).

Covers the loop's contracts end to end on a small deterministic
contention scenario: convergence to zero overuse, demand accounting
(committed demand equals the wirelength of the chosen trees), replay
determinism, the delay-budget guardrail, the pinned-point baseline mode,
the ``negotiate_iter`` observability stream, and the ledger metric dict.
"""

import json
import random

import pytest

np = pytest.importorskip("numpy")

from repro import obs
from repro.congestion.model import CapacityGrid
from repro.congestion.negotiate import (
    NegotiatedRouter,
    NegotiatorConfig,
    Scenario,
)
from repro.exceptions import PolicyError
from repro.geometry.net import random_net

NETS = 60
CELLS = 10
SEED = 7


@pytest.fixture(autouse=True)
def _quiet_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture(scope="module")
def scenario():
    return Scenario.random(nets=NETS, cells=CELLS, seed=SEED)


@pytest.fixture(scope="module")
def frontier_result(scenario):
    return NegotiatedRouter(scenario, NegotiatorConfig()).run()


@pytest.fixture(scope="module")
def baseline_result(scenario):
    return NegotiatedRouter(
        scenario, NegotiatorConfig(point_policy="min_delay")
    ).run()


class TestScenario:
    def test_random_is_deterministic(self):
        a = Scenario.random(nets=8, cells=4, seed=3)
        b = Scenario.random(nets=8, cells=4, seed=3)
        assert [n.pins for n in a.nets] == [n.pins for n in b.nets]
        assert np.array_equal(a.grid.capacity, b.grid.capacity)

    def test_auto_capacity_targets_utilization(self):
        sc = Scenario.random(nets=8, cells=4, seed=3, utilization=0.5)
        hpwl = 0.0
        for net in sc.nets:
            xs = [p.x for p in net.pins]
            ys = [p.y for p in net.pins]
            hpwl += (max(xs) - min(xs)) + (max(ys) - min(ys))
        expected = hpwl / 16.0 / 0.5
        assert float(sc.grid.capacity[0, 0]) == pytest.approx(expected)

    def test_explicit_capacity_wins(self):
        sc = Scenario.random(nets=4, cells=4, seed=1, capacity=123.0)
        assert float(sc.grid.capacity.max()) == 123.0

    def test_nets_are_named_and_in_region(self):
        sc = Scenario.random(nets=5, cells=4, seed=2, span=200.0)
        assert [n.name for n in sc.nets] == [f"n{i:04d}" for i in range(5)]
        for net in sc.nets:
            for p in net.pins:
                assert 0.0 <= p.x <= 200.0 and 0.0 <= p.y <= 200.0


class TestConvergence:
    def test_converges_to_zero_overuse(self, frontier_result):
        result = frontier_result
        assert result.converged
        assert result.final_overuse == 0.0
        assert result.grid.total_overuse() == 0.0
        assert result.grid.overused_cells() == 0
        assert 1 <= result.iteration_count <= 40

    def test_first_iteration_had_contention(self, frontier_result):
        # The scenario is only a test of negotiation if pass 1 overflows.
        assert frontier_result.iterations[0].total_overuse > 0.0

    def test_every_net_has_a_chosen_point(self, scenario, frontier_result):
        chosen = frontier_result.chosen
        assert set(chosen) == {n.name for n in scenario.nets}
        compiled = {c.net.name: c for c in scenario._compiled}
        for name, k in chosen.items():
            assert 0 <= k < len(compiled[name].front)

    def test_delay_budget_guardrail(self, scenario, frontier_result):
        # Every final choice meets its (1 + slack) * lower-bound budget.
        assert frontier_result.worst_delay == 0.0
        compiled = {c.net.name: c for c in scenario._compiled}
        for name, k in frontier_result.chosen.items():
            c = compiled[name]
            assert float(c.point_d[k]) <= c.budget + 1e-9

    def test_demand_accounts_for_chosen_wirelength(self, frontier_result):
        # Nets live inside the grid region, so committed demand must sum
        # to exactly the total wirelength of the chosen trees.
        demand_total = float(frontier_result.grid.demand.sum())
        assert demand_total == pytest.approx(
            frontier_result.total_wirelength, rel=1e-9
        )

    def test_replay_is_deterministic(self, scenario, frontier_result):
        replay = NegotiatedRouter(scenario, NegotiatorConfig()).run()
        assert replay.chosen == frontier_result.chosen
        assert [
            (s.index, s.total_overuse, s.swaps, s.total_wirelength)
            for s in replay.iterations
        ] == [
            (s.index, s.total_overuse, s.swaps, s.total_wirelength)
            for s in frontier_result.iterations
        ]
        assert np.array_equal(
            replay.grid.demand, frontier_result.grid.demand
        )

    def test_runs_share_one_routing_pass(self, scenario, frontier_result):
        # The compiled frontiers are cached on the scenario; a second
        # router prepares without routing anything again.
        router = NegotiatedRouter(scenario, NegotiatorConfig())
        assert router.prepare() is scenario._compiled

    def test_pres_fac_escalates_across_iterations(self, scenario):
        config = NegotiatorConfig(max_iterations=3)
        result = NegotiatedRouter(scenario, config).run()
        pres = [s.pres_fac for s in result.iterations]
        for earlier, later in zip(pres, pres[1:]):
            assert later == pytest.approx(earlier * config.pres_fac_mult)

    def test_empty_scenario_converges_trivially(self):
        grid = CapacityGrid.uniform(0, 0, 10, 10, 2, 2, capacity=1.0)
        result = NegotiatedRouter(Scenario(nets=[], grid=grid)).run()
        assert result.converged
        assert result.iteration_count == 1
        assert result.total_wirelength == 0.0


class TestBaselineComparison:
    def test_pinned_baseline_never_swaps(self, baseline_result):
        assert baseline_result.total_swaps == 0
        assert all(s.swaps == 0 for s in baseline_result.iterations)

    def test_baseline_converges(self, baseline_result):
        assert baseline_result.converged
        assert baseline_result.final_overuse == 0.0

    def test_frontier_beats_baseline(self, frontier_result, baseline_result):
        # The paper's claim at test scale: frontier swapping resolves the
        # same contention in no more passes and strictly less wire.
        assert (
            frontier_result.iteration_count
            <= baseline_result.iteration_count
        )
        assert (
            frontier_result.total_wirelength
            < baseline_result.total_wirelength
        )
        assert frontier_result.worst_delay <= baseline_result.worst_delay

    def test_unknown_point_policy_raises(self, scenario):
        router = NegotiatedRouter(
            scenario, NegotiatorConfig(point_policy="nope")
        )
        with pytest.raises(PolicyError):
            router.run()


class TestObservability:
    def test_iteration_events_and_counters(self, tmp_path):
        scenario = Scenario.random(nets=12, cells=4, seed=5)
        obs.enable()
        obs.events_enable()
        result = NegotiatedRouter(scenario, NegotiatorConfig()).run()
        path = tmp_path / "events.jsonl"
        obs.flush_events(path)
        events = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        iters = [e for e in events if e["kind"] == "negotiate_iter"]
        assert len(iters) == result.iteration_count
        assert [e["iteration"] for e in iters] == list(
            range(1, result.iteration_count + 1)
        )
        for event in iters:
            for key in (
                "overuse",
                "overused_cells",
                "worst_delay",
                "wirelength",
                "swaps",
                "pres_fac",
                "wall_s",
            ):
                assert key in event
        flat = obs.flatten_snapshot(obs.snapshot())
        assert flat["negotiate.iterations"] == result.iteration_count
        assert flat["negotiate.nets"] == 12.0
        assert flat["negotiate.final_overuse"] == result.final_overuse

    def test_metrics_dict_shape(self, frontier_result):
        metrics = frontier_result.metrics()
        assert set(metrics) == {
            "negotiate.iterations",
            "negotiate.converged",
            "negotiate.final_overuse",
            "negotiate.overused_cells",
            "negotiate.worst_delay",
            "negotiate.total_wirelength",
            "negotiate.swaps",
        }
        assert metrics["negotiate.converged"] == 1.0
        assert metrics["negotiate.iterations"] == float(
            frontier_result.iteration_count
        )
        base = frontier_result.metrics(prefix="baseline")
        assert set(base) == {
            k.replace("negotiate.", "baseline.") for k in metrics
        }


class TestDesignFlowBridge:
    def test_route_design_negotiated_runs_config_frame(self):
        from repro.eval import DesignFlowConfig, route_design_negotiated

        rng = random.Random(31)
        nets = [
            random_net(4, rng=rng, span=300.0, name=f"d{i}")
            for i in range(10)
        ]
        config = DesignFlowConfig(span=300.0, cells=4, capacity=2000.0)
        result = route_design_negotiated(nets, config)
        assert result.converged
        assert set(result.chosen) == {n.name for n in nets}
        assert result.grid.nx == result.grid.ny == 4
        assert float(result.grid.capacity.max()) == 2000.0
