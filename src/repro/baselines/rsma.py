"""Córdova–Lee rectilinear Steiner minimum arborescence (RSMA) heuristic.

An *arborescence* wires every sink along a shortest (monotone) path from
the source, so its delay equals the L1 lower bound ``max_i ||r - p_i||``;
the game is to share wire between those paths. The CL heuristic is the
standard 2-approximation: among the current node set (one quadrant at a
time), repeatedly merge the pair whose *meeting point* — the farthest
point dominated by both — is farthest from the source, replacing the pair
by the meeting point.

This supplies the delay normaliser ``d(CL)`` of the paper's Figure 7 (the
purple circle).
"""

from __future__ import annotations

from typing import List, Tuple

from ..geometry.net import Net
from ..geometry.point import Point
from ..routing.tree import RoutingTree


def _merge_quadrant(
    source: Point, sinks: List[Point], sx: int, sy: int
) -> List[Tuple[Point, Point]]:
    """CL merge loop for one quadrant.

    ``sx, sy`` in {+1, -1} orient the quadrant; work happens in the
    transformed frame where all sinks dominate the source (first quadrant).
    """
    if not sinks:
        return []

    def meet(p: Point, q: Point) -> Point:
        """The farthest point dominated by both, towards the source.

        Working directly in original coordinates (no transform round-trip,
        which would not be float-exact): the quadrant orientation decides
        whether min or max is "closer to the source" per axis.
        """
        mx = min(p.x, q.x) if sx > 0 else max(p.x, q.x)
        my = min(p.y, q.y) if sy > 0 else max(p.y, q.y)
        return Point(mx, my)

    def score(p: Point) -> float:
        """Distance of a dominated point from the source (to maximise)."""
        return sx * (p.x - source.x) + sy * (p.y - source.y)

    active = list(sinks)
    edges: List[Tuple[Point, Point]] = []
    while len(active) > 1:
        best = None
        for i in range(len(active)):
            for j in range(i + 1, len(active)):
                m = meet(active[i], active[j])
                s = score(m)
                if best is None or s > best[0]:
                    best = (s, i, j, m)
        _, i, j, m = best
        for k in (i, j):
            if active[k] != m:
                edges.append((m, active[k]))
        # Replace the pair (remove j first: j > i).
        active.pop(j)
        active.pop(i)
        active.append(m)
    last = active[0]
    if last != source:
        edges.append((source, last))
    return edges


def rsma(net: Net) -> RoutingTree:
    """CL arborescence for ``net``: shortest paths to every sink, shared wire.

    Sinks are split into the four quadrants around the source (boundary
    sinks go to the lexicographically first matching quadrant) and merged
    per quadrant.
    """
    src = net.source
    quadrants: List[List[Point]] = [[], [], [], []]
    orientations = [(1, 1), (1, -1), (-1, 1), (-1, -1)]
    for s in net.sinks:
        dx, dy = s.x - src.x, s.y - src.y
        for qi, (ox, oy) in enumerate(orientations):
            if dx * ox >= 0 and dy * oy >= 0:
                quadrants[qi].append(s)
                break
    edges: List[Tuple[Point, Point]] = []
    for (ox, oy), sinks in zip(orientations, quadrants):
        edges.extend(_merge_quadrant(src, sinks, ox, oy))
    if not edges:
        edges = [(src, s) for s in net.sinks]
    extra = [p for e in edges for p in e]
    return RoutingTree.from_edges(net, edges, extra_points=extra)


def rsma_delay(net: Net) -> float:
    """Delay of the CL tree — always the L1 lower bound (Fig. 7's d(CL))."""
    return rsma(net).delay()
