"""Symbolic solutions over Hanan-grid gap lengths, and Lemma 1 pruning.

During lookup-table generation, a solution is not a number pair but the
paper's parametric form

    ( sum_i w_i * l_i ,  max_i sum_j d_ij * l_j )

represented by an integer usage vector ``W`` and one integer row per sink
in ``D``. Solution 2 can be *safely pruned* by solution 1 when, for every
nonnegative gap assignment, solution 1 is at least as good in both
objectives (paper, Lemma 1 / Equation 2):

* wirelength: ``W1 . l <= W2 . l`` for all ``l >= 0`` — true **iff**
  ``W1 <= W2`` componentwise (test with unit vectors);
* delay: ``max_i D1_i . l <= max_j D2_j . l`` for all ``l >= 0``.

The paper discharges the delay condition with an SMT solver. No SMT
solver is available offline, but none is needed: the condition is linear
arithmetic over the nonnegative orthant, and decomposes per row of ``D1``
into "is this linear function dominated by the max of D2's rows on the
simplex?" — an LP feasibility question that :func:`scipy.optimize.linprog`
decides **exactly**. A cheaper *sufficient* componentwise test (every D1
row dominated by some single D2 row) is the default during generation;
the LP test is exposed for the tighter-tables ablation.
"""

from __future__ import annotations

from typing import Any, Iterable, List, NamedTuple, Sequence, Tuple

import numpy as np

IntVec = Tuple[int, ...]


class SymbolicSolution(NamedTuple):
    """A parametric routing-tree solution.

    ``w`` is the gap-usage vector of the wirelength; ``rows`` holds one
    gap-usage vector per sink path (the matrix ``D``); ``payload`` carries
    the DP backpointer or the finished topology.
    """

    w: IntVec
    rows: Tuple[IntVec, ...]
    payload: Any

    def canonical(self) -> Tuple[IntVec, Tuple[IntVec, ...]]:
        """Payload-free identity with rows sorted (delay is a max — row
        order is irrelevant)."""
        return (self.w, tuple(sorted(self.rows)))

    def evaluate(self, gaps: Sequence[float]) -> Tuple[float, float]:
        """Numeric ``(w, d)`` at a concrete gap assignment."""
        w = sum(c * g for c, g in zip(self.w, gaps))
        d = max(
            (sum(c * g for c, g in zip(row, gaps)) for row in self.rows),
            default=0.0,
        )
        return (w, d)


def _vec_leq(a: IntVec, b: IntVec) -> bool:
    return all(x <= y for x, y in zip(a, b))


def row_covered_componentwise(row: IntVec, rows2: Sequence[IntVec]) -> bool:
    """Sufficient test: some single row of D2 dominates ``row``."""
    return any(_vec_leq(row, r2) for r2 in rows2)


def row_covered_lp(row: IntVec, rows2: Sequence[IntVec], tol: float = 1e-9) -> bool:
    """Exact test: ``row . l <= max_k rows2[k] . l`` for all ``l >= 0``.

    Decided by LP: maximise ``t`` subject to ``(rows2[k] - row) . l + t <= 0``
    for all k, ``sum(l) = 1``, ``l >= 0``. The row is covered iff the
    optimum is ``<= tol`` (no direction in the simplex where it wins).
    """
    from scipy.optimize import linprog

    if row_covered_componentwise(row, rows2):
        return True  # fast path, always correct
    m = len(row)
    k = len(rows2)
    if k == 0:
        return all(c <= 0 for c in row)
    # Variables: l_1..l_m, t. Objective: maximise t -> minimise -t.
    c = np.zeros(m + 1)
    c[-1] = -1.0
    a_ub = np.zeros((k, m + 1))
    for i, r2 in enumerate(rows2):
        a_ub[i, :m] = np.asarray(r2, dtype=float) - np.asarray(row, dtype=float)
        a_ub[i, -1] = 1.0
    b_ub = np.zeros(k)
    a_eq = np.zeros((1, m + 1))
    a_eq[0, :m] = 1.0
    b_eq = np.ones(1)
    bounds = [(0.0, None)] * m + [(None, 1.0)]
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
                  bounds=bounds, method="highs")
    if not res.success:  # pragma: no cover - HiGHS never fails on this form
        return False
    return -res.fun <= tol


def symbolic_dominates(
    s1: SymbolicSolution, s2: SymbolicSolution, mode: str = "componentwise"
) -> bool:
    """True when ``s1`` is at least as good as ``s2`` for every gap
    assignment (so ``s2`` is safely prunable).

    ``mode``: ``"componentwise"`` (sound, may miss prunes) or ``"lp"``
    (exact). Both require ``W1 <= W2`` componentwise, which is exact.
    """
    if not _vec_leq(s1.w, s2.w):
        return False
    if mode == "componentwise":
        cover = row_covered_componentwise
    elif mode == "lp":
        cover = row_covered_lp
    else:
        raise ValueError(f"unknown pruning mode {mode!r}")
    return all(cover(r1, s2.rows) for r1 in s1.rows)


def prune_front(
    solutions: Iterable[SymbolicSolution], mode: str = "componentwise"
) -> List[SymbolicSolution]:
    """Drop duplicates and Lemma-1-dominated solutions.

    Keeps every solution that could be uniquely optimal for *some* gap
    assignment; never discards a potentially optimal topology (soundness
    is what the lookup table's optimality guarantee rests on).
    """
    # Dedupe by canonical identity first (payloads of duplicates are
    # interchangeable: identical objectives everywhere).
    seen = {}
    for s in solutions:
        seen.setdefault(s.canonical(), s)
    items = list(seen.values())
    # Cheap presort: ascending total W usage, so likely-dominating
    # solutions are scanned first.
    items.sort(key=lambda s: (sum(s.w), len(s.rows)))
    kept: List[SymbolicSolution] = []
    for s in items:
        if any(symbolic_dominates(k, s, mode=mode) for k in kept):
            continue
        kept = [k for k in kept if not symbolic_dominates(s, k, mode=mode)]
        kept.append(s)
    return kept


def shift_solution(
    s: SymbolicSolution, edge_vec: IntVec, payload: Any
) -> SymbolicSolution:
    """Extend the subtree root along an edge: add the edge's gap vector to
    the wirelength and to every sink path (the symbolic ``S + x``)."""
    w = tuple(a + b for a, b in zip(s.w, edge_vec))
    rows = tuple(
        tuple(a + b for a, b in zip(row, edge_vec)) for row in s.rows
    )
    return SymbolicSolution(w, rows, payload)


def merge_solutions(
    s1: SymbolicSolution, s2: SymbolicSolution, payload: Any
) -> SymbolicSolution:
    """Join two subtrees at a shared root (symbolic ``S ⊕ S'``)."""
    w = tuple(a + b for a, b in zip(s1.w, s2.w))
    return SymbolicSolution(w, s1.rows + s2.rows, payload)
