"""ICCAD-15-like synthetic benchmark suite.

The paper evaluates on the ICCAD-15 incremental-timing-driven-placement
benchmark: 8 placed designs, ≈1.3 million nets, of which 904,915 have
degree 4–9 (Table III gives the exact per-degree counts). The real
benchmark is not redistributable and unavailable offline, and every
experiment in the paper depends only on per-net pin geometry — so this
module generates a synthetic suite that preserves the two properties the
experiments exercise:

* the **degree histogram** of Table III (plus a long tail of
  larger-degree nets up to 100, "most nets have less than 50 pins");
* **placement-like pin geometry**: pins cluster near a few centers
  (κ-smoothed mixtures), with occasional uniform spreads — this is the
  regime where Pareto frontiers are non-trivial (Fig. 6) and where SALT /
  YSD become non-optimal (Tables III/IV).

Counts are scaled by ``scale`` (default 1/1000 of the paper's volume) so
pure-Python runs finish; every bench documents its sample size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..analysis.smoothed import clustered_net, smoothed_net
from ..geometry.net import Net, random_net

#: Table III per-degree net counts in the real benchmark.
ICCAD15_DEGREE_COUNTS: Dict[int, int] = {
    4: 364670,
    5: 256663,
    6: 103199,
    7: 75055,
    8: 42879,
    9: 62449,
}

#: The 8 design names of the ICCAD-15 benchmark (used as suite sections).
DESIGN_NAMES: Sequence[str] = (
    "superblue1",
    "superblue3",
    "superblue4",
    "superblue5",
    "superblue7",
    "superblue10",
    "superblue16",
    "superblue18",
)

#: Mixture of pin-geometry styles per design (placement heterogeneity).
_STYLES = ("clustered2", "clustered3", "smoothed", "uniform")


def synth_net(
    degree: int, rng: random.Random, span: float = 1000.0, style: Optional[str] = None
) -> Net:
    """One synthetic net with placement-like pin geometry."""
    style = style or rng.choices(_STYLES, weights=(4, 3, 2, 1))[0]
    if style == "clustered2":
        return clustered_net(degree, num_clusters=2, rng=rng, span=span)
    if style == "clustered3":
        return clustered_net(degree, num_clusters=3, rng=rng, span=span)
    if style == "smoothed":
        return smoothed_net(degree, kappa=8.0, rng=rng, span=span)
    return random_net(degree, rng=rng, span=span)


def _renamed(net: Net, name: str) -> Net:
    """The same net under a unique name (suite nets must not collide:
    evaluation normalisers are keyed per net name)."""
    return Net(pins=net.pins, name=name)


def _stable_seed(*parts) -> int:
    """Process-independent seed from mixed parts (``hash()`` of strings is
    randomised per interpreter run, so it must never feed an RNG here)."""
    import zlib

    return zlib.crc32("/".join(str(p) for p in parts).encode()) & 0x7FFFFFFF


@dataclass
class SyntheticDesign:
    """One design of the suite: deterministic net generator."""

    name: str
    seed: int
    span: float = 1000.0

    def nets_of_degree(self, degree: int, count: int) -> List[Net]:
        """``count`` degree-``degree`` nets (deterministic for the seed)."""
        rng = random.Random(_stable_seed(self.seed, degree, count))
        return [
            _renamed(
                synth_net(degree, rng, span=self.span),
                f"{self.name}_d{degree}_{i}",
            )
            for i in range(count)
        ]

    def large_nets(self, count: int, min_degree: int = 10, max_degree: int = 50) -> List[Net]:
        """Larger-degree nets with the benchmark's decaying-degree tail."""
        rng = random.Random(_stable_seed(self.seed, "large", count))
        nets = []
        degrees = list(range(min_degree, max_degree + 1))
        weights = [1.0 / (d * d) for d in degrees]  # heavy small-degree tail
        for i in range(count):
            d = rng.choices(degrees, weights=weights)[0]
            nets.append(
                _renamed(
                    synth_net(d, rng, span=self.span),
                    f"{self.name}_large{i}_d{d}",
                )
            )
        return nets


@dataclass
class Iccad15LikeSuite:
    """The 8-design synthetic suite with Table-III-proportional volumes."""

    seed: int = 2015
    scale: float = 0.001  # fraction of the real benchmark's net counts

    def __post_init__(self) -> None:
        self.designs = [
            SyntheticDesign(name=n, seed=self.seed + i * 7919)
            for i, n in enumerate(DESIGN_NAMES)
        ]

    def counts_for(self, degree: int) -> int:
        """Scaled number of nets of one degree across the whole suite."""
        base = ICCAD15_DEGREE_COUNTS.get(degree, 0)
        return max(1, round(base * self.scale)) if base else 0

    def small_nets(
        self, degrees: Sequence[int] = (4, 5, 6, 7, 8, 9), per_degree: Optional[int] = None
    ) -> Dict[int, List[Net]]:
        """Degree → nets, Table-III proportioned (or ``per_degree`` each)."""
        out: Dict[int, List[Net]] = {}
        for n in degrees:
            count = per_degree if per_degree is not None else self.counts_for(n)
            per_design = -(-count // len(self.designs))  # ceil division
            nets: List[Net] = []
            for d in self.designs:
                nets.extend(d.nets_of_degree(n, per_design))
            out[n] = nets[:count] if count < len(nets) else nets
        return out

    def large_nets(self, count: int = 40, min_degree: int = 10, max_degree: int = 50) -> List[Net]:
        """Large-degree nets pooled across designs."""
        per_design = -(-count // len(self.designs))  # ceil division
        nets: List[Net] = []
        for d in self.designs:
            nets.extend(d.large_nets(per_design, min_degree, max_degree))
        return nets[:count]

    def degree100_nets(self, count: int = 100) -> List[Net]:
        """The Fig. 7(c) workload: random degree-100 nets (paper: 100 of
        them, uniformly random — not clustered)."""
        rng = random.Random(self.seed + 100)
        return [
            random_net(100, rng=rng, span=1000.0, name=f"deg100_{i}")
            for i in range(count)
        ]

    def all_small(self, per_degree: int) -> Iterator[Net]:
        """Flat iterator over small nets, ``per_degree`` of each degree."""
        for nets in self.small_nets(per_degree=per_degree).values():
            yield from nets
