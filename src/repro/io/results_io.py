"""Experiment-result persistence (JSON lines).

Benchmarks append one JSON object per (net, method) so long sweeps can be
resumed and EXPERIMENTS.md regenerated without re-running the routers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from ..core.pareto import Solution
from ..eval.metrics import NetComparison

PathLike = Union[str, Path]


def comparison_to_dict(row: NetComparison) -> Dict:
    """JSON-safe representation (drops tree payloads, keeps objectives)."""
    return {
        "net": row.net_name,
        "degree": row.degree,
        "frontier": [[w, d] for w, d, *_ in row.frontier],
        "methods": {
            m: [[w, d] for w, d, *_ in sols] for m, sols in row.methods.items()
        },
        "runtimes": row.runtimes,
    }


def comparison_from_dict(doc: Dict) -> NetComparison:
    """Inverse of :func:`comparison_to_dict` (payloads become ``None``)."""
    def wrap(pairs: List[List[float]]) -> List[Solution]:
        return [(w, d, None) for w, d in pairs]

    return NetComparison(
        net_name=doc["net"],
        degree=int(doc["degree"]),
        frontier=wrap(doc["frontier"]),
        methods={m: wrap(v) for m, v in doc["methods"].items()},
        runtimes={k: float(v) for k, v in doc.get("runtimes", {}).items()},
    )


def append_results(rows: Iterable[NetComparison], path: PathLike) -> int:
    """Append rows to a ``.jsonl`` results file; returns the count."""
    count = 0
    with open(path, "a", encoding="utf-8") as fp:
        for row in rows:
            fp.write(json.dumps(comparison_to_dict(row)) + "\n")
            count += 1
    return count


def load_results(path: PathLike) -> List[NetComparison]:
    """Read every result row from a ``.jsonl`` file."""
    out: List[NetComparison] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if line:
                out.append(comparison_from_dict(json.loads(line)))
    return out
