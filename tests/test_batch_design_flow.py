"""Tests for batch routing and the design-level congestion flow."""

import random

import pytest

from repro.core.batch import BatchResult, route_batch
from repro.core.patlabor import PatLaborConfig
from repro.eval.design_flow import (
    DesignFlowConfig,
    route_design,
)
from repro.geometry.net import Net, random_net


def workload(count=6, seed=1, degrees=(4, 5, 6)):
    rng = random.Random(seed)
    return [
        random_net(rng.choice(degrees), rng=rng, name=f"n{i}")
        for i in range(count)
    ]


class TestRouteBatch:
    def test_serial_routes_everything(self):
        nets = workload()
        result = route_batch(nets, jobs=1)
        assert set(result.fronts) == {n.name for n in nets}
        assert result.total_solutions >= len(nets)
        assert result.seconds > 0

    def test_cache_pays_on_duplicates(self):
        nets = workload(count=3)
        tripled = nets + [n.translated(10, 10) for n in nets] + nets
        # Names collide after translation; rename for unique keys.
        renamed = []
        for i, n in enumerate(tripled):
            renamed.append(Net(pins=n.pins, name=f"m{i}"))
        result = route_batch(renamed, jobs=1, use_cache=True)
        assert result.cache_hits >= len(nets)

    def test_no_cache_mode(self):
        nets = workload(count=2)
        result = route_batch(nets, jobs=1, use_cache=False)
        assert result.cache_hits == 0 and result.cache_misses == 0

    def test_parallel_matches_serial_objectives(self):
        nets = workload(count=6, seed=3)
        serial = route_batch(nets, jobs=1)
        parallel = route_batch(nets, jobs=2)
        assert set(serial.fronts) == set(parallel.fronts)
        for name in serial.fronts:
            a = [(round(w, 6), round(d, 6)) for w, d, _ in serial.fronts[name]]
            b = [(round(w, 6), round(d, 6)) for w, d, _ in parallel.fronts[name]]
            assert a == b

    def test_parallel_drops_payloads(self):
        nets = workload(count=3, seed=4)
        result = route_batch(nets, jobs=2)
        for front in result.fronts.values():
            assert all(p is None for _w, _d, p in front)

    def test_custom_config_propagates(self):
        nets = [random_net(12, rng=random.Random(5), name="big")]
        result = route_batch(
            nets, config=PatLaborConfig(iterations=1), jobs=1
        )
        assert result.fronts["big"]


class TestDesignFlow:
    def _nets(self, count=8, seed=7):
        rng = random.Random(seed)
        return [
            random_net(rng.choice((4, 5, 6)), rng=rng, span=1000.0, name=f"d{i}")
            for i in range(count)
        ]

    def test_flow_commits_every_net(self):
        nets = self._nets()
        result = route_design(nets, strategy="pareto")
        assert len(result.outcomes) == len(nets)
        assert result.total_wirelength > 0

    def test_pareto_meets_budgets(self):
        """With the Pareto set available, every feasible budget is met
        (the delay endpoint always satisfies a (1+slack) budget)."""
        nets = self._nets(seed=8)
        result = route_design(nets, strategy="pareto")
        assert result.budget_misses == 0

    def test_shortest_strategy_meets_budgets_with_more_wire(self):
        nets = self._nets(seed=9)
        pareto = route_design(nets, strategy="pareto")
        fast = route_design(nets, strategy="shortest")
        assert fast.budget_misses == 0
        assert pareto.total_wirelength <= fast.total_wirelength + 1e-6

    def test_rsmt_strategy_misses_budgets(self):
        """Timing-blind min-wire trees must blow some delay budgets on a
        tight slack."""
        nets = self._nets(count=12, seed=10)
        config = DesignFlowConfig(delay_slack=0.02)
        rsmt_flow = route_design(nets, strategy="rsmt", config=config)
        pareto_flow = route_design(nets, strategy="pareto", config=config)
        assert pareto_flow.budget_misses <= rsmt_flow.budget_misses
        assert rsmt_flow.budget_misses > 0

    def test_demand_accumulates(self):
        nets = self._nets(seed=11)
        result = route_design(nets, strategy="pareto")
        total_demand = sum(sum(col) for col in result.demand.weights)
        # Every committed wirelength lands somewhere on the grid.
        assert total_demand > 0
        assert total_demand <= result.total_wirelength + 1e-6

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            route_design(self._nets(count=1), strategy="magic")

    def test_overflow_and_utilization_reported(self):
        nets = self._nets(count=10, seed=12)
        config = DesignFlowConfig(capacity=10.0)  # tiny capacity: overflow
        result = route_design(nets, strategy="pareto", config=config)
        assert result.overflow > 0
        assert result.max_utilization > 1.0
