"""Pareto-KS: divide-and-conquer Pareto approximation (paper, Section IV-B).

Extends the Kalpakis–Sherman partitioning heuristic to the bicriterion
setting. The plane is split at a median pin (alternating x/y axes); both
halves keep the split pin so their trees share a node and union into a
spanning tree. Base cases are solved exactly — by Pareto-DW, or by lookup
table when one is supplied (paper, Remark 1). Combining two sub-frontiers
forms all ``|S1| x |S2|`` tree unions, evaluates them, and Pareto-filters
— the ``S1 ⊕ S2`` of Theorem 4.

Every sub-instance is rooted at its pin closest to the global source, per
the paper's step 3; final objectives are always measured from the true
source on the assembled tree, so reported values are exact even though the
frontier itself is approximate.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..geometry.net import Net
from ..geometry.point import Point, l1
from ..obs import counter_add, emit_event, events_enabled, gauge_max, span
from ..routing.tree import RoutingTree
from .frontier import pareto_filter_sorted
from .pareto import Solution, clean_front
from .pareto_dw import pareto_dw

#: Base-case routing oracle: maps a small net to Pareto solutions whose
#: payloads are RoutingTree instances.
BaseSolver = Callable[[Net], List[Solution]]

PointEdges = List[Tuple[Point, Point]]


def _tree_edges(tree: RoutingTree) -> PointEdges:
    return [
        (tree.points[i], tree.points[p])
        for i, p in tree.edges()
        if tree.points[i] != tree.points[p]
    ]


def _evaluate(net: Net, edges: PointEdges) -> Solution:
    tree = RoutingTree.from_edges(net, edges)
    w, d = tree.objective()
    return (w, d, tree)


def pareto_ks(
    net: Net,
    *,
    base_size: int = 9,
    base_solver: Optional[BaseSolver] = None,
    max_front: int = 32,
    representation: str = "tuple",
) -> List[Solution]:
    """Approximate the Pareto frontier of ``net`` by divide and conquer.

    Parameters
    ----------
    base_size:
        Sub-instances at or below this pin count are solved exactly
        (paper: ``log n`` in theory, ``λ = 9`` with lookup tables).
    base_solver:
        Exact small-net oracle; defaults to :func:`pareto_dw`.
    max_front:
        Intermediate fronts are truncated to this many solutions (evenly
        spread by wirelength) to bound the ``|S|^2`` combination cost.
    representation:
        ``"tuple"`` (default) runs the pure-Python kernels; ``"array"``
        routes the default base solver through the array-native DP and
        Pareto-filters combination buckets with the NumPy kernels.
        Results are bit-identical either way (``docs/numerics.md``);
        falls back to tuples when NumPy is unavailable.
    """
    if representation not in ("tuple", "array"):
        raise ValueError(
            f"representation must be 'tuple' or 'array', got {representation!r}"
        )
    filt = pareto_filter_sorted
    if representation == "array":
        from .frontier_array import HAVE_NUMPY, pareto_filter_sorted_array

        if HAVE_NUMPY:
            filt = pareto_filter_sorted_array
    solver: BaseSolver = base_solver or (
        lambda sub: pareto_dw(sub, representation=representation)
    )
    source = net.source

    def solve(points: List[Point], axis: int) -> List[Solution]:
        # Root at the pin closest to the global source (== source if present).
        root_idx = min(range(len(points)), key=lambda i: l1(points[i], source))
        sub = Net.from_points(
            points[root_idx],
            [p for i, p in enumerate(points) if i != root_idx],
            name=f"{net.name}/ks{len(points)}",
        )
        if len(points) <= base_size:
            counter_add("ks.base_cases")
            return solver(sub)

        ordered = sorted(points, key=lambda p: (p[axis], p[1 - axis]))
        k = len(ordered) // 2
        left = ordered[: k + 1]
        right = ordered[k:]
        s1 = _truncate(solve(left, 1 - axis), max_front)
        s2 = _truncate(solve(right, 1 - axis), max_front)

        counter_add("ks.combinations", len(s1) * len(s2))
        combined: List[Solution] = []
        for _, _, t1 in s1:
            e1 = _tree_edges(t1)
            for _, _, t2 in s2:
                combined.append(_evaluate(sub, e1 + _tree_edges(t2)))
        return filt(combined)

    emitting = events_enabled()
    if emitting:
        import time as _time

        t0 = _time.perf_counter()
    with span("ks.solve"):
        solutions = solve(list(net.pins), axis=0)
        # Re-root every tree on the true net and measure from the true source.
        final = [
            _evaluate(net, _tree_edges(tree)) for _, _, tree in solutions
        ]
        front = clean_front(final)
    gauge_max("ks.front_size", len(front))
    if emitting:
        emit_event(
            "ks_solve",
            net=net.name or f"net_{id(net):x}",
            degree=net.degree,
            front_size=len(front),
            wall_s=_time.perf_counter() - t0,
        )
    return front


def _truncate(front: Sequence[Solution], limit: int) -> List[Solution]:
    """Keep at most ``limit`` solutions, evenly spaced along the front."""
    front = list(front)
    if len(front) <= limit:
        return front
    step = (len(front) - 1) / (limit - 1)
    picked = [front[round(i * step)] for i in range(limit)]
    # Preserve the extremes exactly.
    picked[0] = front[0]
    picked[-1] = front[-1]
    # A subsequence of a sorted front is sorted: the linear fast path hits.
    return pareto_filter_sorted(picked)
