"""Evaluation harness: benchmark suite, metrics, runner, reporting."""

from .benchmarks import (
    DESIGN_NAMES,
    ICCAD15_DEGREE_COUNTS,
    Iccad15LikeSuite,
    SyntheticDesign,
    synth_net,
)
from .metrics import (
    AveragedCurve,
    NetComparison,
    Table3Row,
    Table4Row,
    average_curves,
    curve_dominates,
    table3,
    table4,
)
from .design_flow import (
    DesignFlowConfig,
    DesignFlowResult,
    NetOutcome,
    route_design,
    route_design_negotiated,
)
from .flow_report import render_flow_detail, render_flow_summary
from .stats import Summary, bootstrap_ci, mean_with_ci, summarize
from .runner import (
    Normalizers,
    compare_on_net,
    compare_on_nets,
    default_methods,
    fig7_normalizers,
)
from .reporting import (
    format_table,
    render_curves,
    render_fig6,
    render_markdown_table,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "AveragedCurve",
    "DesignFlowConfig",
    "DesignFlowResult",
    "NetOutcome",
    "Summary",
    "bootstrap_ci",
    "mean_with_ci",
    "render_flow_detail",
    "render_flow_summary",
    "route_design",
    "route_design_negotiated",
    "summarize",
    "DESIGN_NAMES",
    "ICCAD15_DEGREE_COUNTS",
    "Iccad15LikeSuite",
    "NetComparison",
    "Normalizers",
    "SyntheticDesign",
    "Table3Row",
    "Table4Row",
    "average_curves",
    "compare_on_net",
    "compare_on_nets",
    "curve_dominates",
    "default_methods",
    "fig7_normalizers",
    "format_table",
    "render_curves",
    "render_fig6",
    "render_markdown_table",
    "render_table2",
    "render_table3",
    "render_table4",
    "synth_net",
]
